#!/usr/bin/env python
"""Topology control with local MSTs — the paper's third motivating use.

Dense RGGs waste energy on long redundant links.  The LMST construction
(every node keeps only its edges in the MST of its 1-hop neighbourhood)
yields a sparse, connected, degree-<=6 backbone that still contains the
global MST.  This example quantifies the reduction and verifies the
structural guarantees on a live instance.

    python examples/topology_control.py [n] [seed]
"""

from __future__ import annotations

import sys

from repro import build_rgg, connectivity_radius, euclidean_mst, is_connected, uniform_points
from repro.applications.topology import local_mst_topology, topology_stats
from repro.experiments.report import format_table


def main(n: int = 700, seed: int = 3) -> None:
    points = uniform_points(n, seed=seed)
    # Deliberately dense: twice the connectivity radius.
    g = build_rgg(points, 2.0 * connectivity_radius(n))
    backbone = local_mst_topology(g)
    stats = topology_stats(g, backbone)

    rows = [
        ("edges", stats.edges_before, stats.edges_after),
        ("max degree", stats.max_degree_before, stats.max_degree_after),
        ("sum d^2 over links", f"{stats.energy_cost_before:.2f}",
         f"{stats.energy_cost_after:.2f}"),
        ("connected", is_connected(g), is_connected(backbone)),
    ]
    print(f"LMST topology control on a dense RGG (n={n}, "
          f"r={g.radius:.4f}):\n")
    print(format_table(["property", "before", "after"], rows))

    mst, lengths = euclidean_mst(points)
    kept = set(map(tuple, backbone.edges))
    contained = sum(
        1 for (u, v), d in zip(mst, lengths) if d <= g.radius and (u, v) in kept
    )
    print(f"\nEdges removed: {stats.edge_reduction:.1%}; the backbone still "
          f"contains {contained}/{len(mst)} global-MST edges\n"
          "(all of those short enough to exist in the RGG).")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 700
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    main(n, seed)
