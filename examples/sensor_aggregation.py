#!/usr/bin/env python
"""Data aggregation in a sensor network — the paper's motivating workload.

A field of temperature sensors must report the average temperature to a
sink.  We compare three energy bills:

1. every sensor transmits straight to the sink (no aggregation);
2. convergecast over the MST built by EOPT (paper: the optimal
   aggregation tree);
3. convergecast over the Co-NNT tree (constant-energy construction,
   slightly worse tree).

Includes the tree *construction* cost, so the trade-off the paper studies
(construction energy vs tree quality) is visible end-to-end.

    python examples/sensor_aggregation.py [n] [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import run_connt, run_eopt, uniform_points
from repro.applications.aggregation import direct_to_sink_energy, simulate_aggregation
from repro.experiments.report import format_table


def main(n: int = 800, seed: int = 1) -> None:
    points = uniform_points(n, seed=seed)
    rng = np.random.default_rng(seed)
    # Synthetic temperature field: smooth gradient + sensor noise.
    temperatures = (
        15.0 + 10.0 * points[:, 0] + 5.0 * points[:, 1] + rng.normal(0, 0.5, n)
    )
    sink = 0
    truth = float(temperatures.mean())
    print(f"{n} sensors; true mean temperature {truth:.3f} C; sink = node {sink}\n")

    # Baseline: no aggregation at all.
    direct = direct_to_sink_energy(points, sink)

    rows = [("direct-to-sink", "-", f"{direct:.2f}", "-", f"{direct:.2f}")]
    for builder in (run_eopt, run_connt):
        res = builder(points)
        build_energy = res.energy
        mean, stats = simulate_aggregation(
            points, res.tree_edges, sink, temperatures, op="avg"
        )
        assert abs(mean - truth) < 1e-9, "aggregation must be exact"
        rows.append(
            (
                f"{res.name} tree",
                f"{build_energy:.2f}",
                f"{stats.energy_total:.3f}",
                f"{stats.rounds}",
                f"{build_energy + stats.energy_total:.2f}",
            )
        )

    print(format_table(
        ["strategy", "build energy", "per-round energy", "rounds", "total (1 round)"],
        rows,
    ))

    print(
        "\nThe per-round column is what every subsequent sensing round costs:\n"
        "after a handful of rounds the tree pays for its own construction,\n"
        "and the MST's per-round bill is the provable optimum (sum d^2 over\n"
        "tree edges = L_MST, the paper's Omega(1) lower bound)."
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    main(n, seed)
