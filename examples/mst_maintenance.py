#!/usr/bin/env python
"""MST maintenance under node failures — dynamics, the intro's motivation.

Builds the MST once with EOPT, then kills rising fractions of nodes and
compares *repairing* the surviving forest (resuming Borůvka phases from
the fragments the failures left behind) against *rebuilding* from
scratch.

    python examples/mst_maintenance.py [n] [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import run_eopt, run_modified_ghs, uniform_points
from repro.applications.maintenance import repair_after_failures
from repro.experiments.report import format_table
from repro.mst.kruskal import kruskal_mst
from repro.mst.quality import tree_cost
from repro.rgg.build import build_rgg


def main(n: int = 800, seed: int = 0) -> None:
    points = uniform_points(n, seed=seed)
    base = run_eopt(points)
    print(f"Built the MST of {n} sensors with EOPT "
          f"(energy {base.energy:.1f}).\n")

    rng = np.random.default_rng(seed + 1)
    rows = []
    for frac in (0.02, 0.05, 0.10, 0.20):
        failed = rng.choice(n, size=int(frac * n), replace=False)
        rep = repair_after_failures(points, base.tree_edges, failed)
        survivors = rep.extras["survivors"]
        rebuild = run_modified_ghs(points[survivors])

        sub_pts = points[survivors]
        g = build_rgg(sub_pts, rep.extras["radius"])
        opt, _ = kruskal_mst(g.n, g.edges, g.lengths)
        quality = tree_cost(sub_pts, rep.tree_edges) / tree_cost(sub_pts, opt)

        repair_e = rep.stats.energy_by_stage["repair:ghs"]
        rebuild_e = rebuild.stats.energy_by_stage["phases"]
        rows.append(
            (
                f"{frac:.0%}",
                rep.extras["initial_fragments"],
                rep.phases,
                f"{repair_e:.2f}",
                f"{rebuild_e:.2f}",
                f"{rebuild_e / repair_e:.1f}x",
                f"{quality:.4f}",
            )
        )
    print(format_table(
        ["failed", "fragments", "phases", "repair E", "rebuild E",
         "saving", "quality"],
        rows,
    ))
    print(
        "\nRepair resumes the Borůvka merge from the fragments the failures\n"
        "created, so its cost scales with the damage, not the network —\n"
        "and the repaired tree stays (essentially) optimal."
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, seed)
