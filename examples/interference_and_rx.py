#!/usr/bin/env python
"""Beyond the paper's model: interference and reception costs (Sec. VIII).

The paper's results assume collision-free rounds and count only transmit
energy, deferring both to future work.  This example runs the modified
GHS twice — on the collision-free kernel and on the RBN contention kernel
— and then re-prices a run under per-reception energy, showing:

* contention resolution costs *time* (rounds), not energy or correctness;
* reception costs penalise chatty algorithms (GHS) hardest.

    python examples/interference_and_rx.py [n] [seed]
"""

from __future__ import annotations

import sys

from repro import run_eopt, run_ghs, uniform_points
from repro.algorithms.base import collect_tree_edges
from repro.algorithms.ghs.driver import hello_round, run_ghs_phases
from repro.algorithms.ghs.node import GHSNode
from repro.experiments.report import format_table
from repro.geometry.radius import connectivity_radius
from repro.mst.quality import same_tree
from repro.sim.interference import ContentionKernel
from repro.sim.kernel import SynchronousKernel


def run_mghs_on(kernel_cls, points, radius):
    k = kernel_cls(points, max_radius=radius)
    k.add_nodes(lambda i, ctx: GHSNode(i, ctx, use_tests=False, announce=True))
    k.start()
    hello_round(k, radius)
    run_ghs_phases(k, k.nodes)
    edges = collect_tree_edges((nd.id, nd.tree_edges) for nd in k.nodes)
    return edges, k


def main(n: int = 250, seed: int = 0) -> None:
    points = uniform_points(n, seed=seed)
    r = connectivity_radius(n)

    print("== RBN contention resolution ==\n")
    base_edges, base_k = run_mghs_on(SynchronousKernel, points, r)
    cont_edges, cont_k = run_mghs_on(ContentionKernel, points, r)
    assert same_tree(base_edges, cont_edges)
    rows = [
        ("energy", f"{base_k.stats().energy_total:.2f}",
         f"{cont_k.stats().energy_total:.2f}"),
        ("messages", base_k.stats().messages_total, cont_k.stats().messages_total),
        ("rounds", base_k.stats().rounds, cont_k.stats().rounds),
        ("worst round slots", 1, cont_k.max_slot_factor),
    ]
    print(format_table(["metric", "collision-free", "RBN contention"], rows))
    print("\nSame tree, same energy bill — interference only slows the clock\n"
          "(the paper's Sec. VIII claim, with an ideal TDMA scheduler).\n")

    print("== Reception-energy accounting ==\n")
    rows = []
    for rx in (0.0, 1e-4, 1e-3):
        ghs = run_ghs(points, rx_cost=rx)
        eopt = run_eopt(points, rx_cost=rx)
        rows.append(
            (
                f"{rx:g}",
                f"{ghs.stats.total_energy_with_rx:.1f}",
                f"{eopt.stats.total_energy_with_rx:.1f}",
                f"{ghs.stats.total_energy_with_rx / eopt.stats.total_energy_with_rx:.1f}x",
            )
        )
    print(format_table(["rx cost", "GHS total", "EOPT total", "gap"], rows))
    print("\nGHS hears orders of magnitude more traffic (its TEST probes\n"
          "dominate), so charging receptions widens its disadvantage in\n"
          "absolute terms — the TX-only metric understates EOPT's win.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 250
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, seed)
