#!/usr/bin/env python
"""Reproduce the paper's Figure 3 at the terminal.

Sweeps n, runs GHS / EOPT / Co-NNT on shared instances, prints the
Fig. 3(a) energy table, renders both panels as ASCII plots and fits the
Fig. 3(b) slopes (expected: ~2, ~1, ~0 — the powers of log n in each
algorithm's energy law).

    python examples/energy_scaling.py [max_n]
"""

from __future__ import annotations

import sys

from repro.experiments.config import BENCH_NS, SweepConfig
from repro.experiments.figures import (
    fig3a_energy,
    fig3a_plot,
    fig3a_rows,
    fig3b_plot,
    fig3b_slopes,
)
from repro.experiments.report import format_table


def main(max_n: int = 2000) -> None:
    ns = tuple(n for n in BENCH_NS if n <= max_n)
    cfg = SweepConfig(ns=ns, seeds=(0, 1))
    print(f"Sweeping n in {ns}, 2 seeds each (this runs "
          f"{3 * len(ns) * 2} full distributed simulations)...\n")
    sweep = fig3a_energy(cfg)

    headers = ["n"] + [f"E[{a}]" for a in cfg.algorithms]
    print(format_table(headers, fig3a_rows(sweep)))
    print()
    print(fig3a_plot(sweep))
    print()
    print(fig3b_plot(sweep))
    print()

    fits = fig3b_slopes(sweep)
    rows = [
        (alg, f"{fit.slope:.2f}", f"{fit.r_squared:.3f}", expected)
        for (alg, fit), expected in zip(fits.items(), ("~2", "~1", "~0"))
    ]
    print(format_table(["algorithm", "fitted slope", "R^2", "paper"], rows))
    print(
        "\nReading: energy = c (log n)^slope.  GHS pays log^2 n, EOPT log n\n"
        "(provably optimal without coordinates), Co-NNT a constant."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
