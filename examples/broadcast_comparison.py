#!/usr/bin/env python
"""Energy-efficient broadcast: MST relay vs flooding vs one big shout.

The paper (Sec. II, citing Wan et al. / Clementi et al.) notes that
broadcasting along an MST consumes energy within a constant factor of the
optimum.  This example measures three strategies on one instance:

* **MST relay** — each node relays with just enough power for its tree
  children;
* **flooding** — every node re-broadcasts once at the connectivity radius;
* **one shout** — the source transmits once, at enough power to cover the
  whole field (energy = d_max^2, huge because of the quadratic law).

    python examples/broadcast_comparison.py [n] [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import connectivity_radius, run_eopt, uniform_points
from repro.applications.broadcast import simulate_flooding, simulate_tree_broadcast
from repro.experiments.report import format_table


def main(n: int = 600, seed: int = 2) -> None:
    points = uniform_points(n, seed=seed)
    source = int(np.argmin(points[:, 0] + points[:, 1]))  # a corner node
    r = connectivity_radius(n)

    res = run_eopt(points)
    mst_reached, mst_stats = simulate_tree_broadcast(points, res.tree_edges, source)
    flood_reached, flood_stats = simulate_flooding(points, r, source)

    d = points - points[source]
    d_max = float(np.sqrt((d * d).sum(axis=1).max()))
    shout_energy = d_max * d_max

    rows = [
        ("MST relay", mst_reached, mst_stats.messages_total,
         f"{mst_stats.energy_total:.4f}"),
        ("flooding", flood_reached, flood_stats.messages_total,
         f"{flood_stats.energy_total:.4f}"),
        ("one shout", n, 1, f"{shout_energy:.4f}"),
    ]
    print(f"Broadcasting from node {source} to {n} nodes "
          f"(flood radius {r:.4f}):\n")
    print(format_table(["strategy", "reached", "messages", "energy"], rows))
    print(
        f"\nMST relay is {flood_stats.energy_total / mst_stats.energy_total:.1f}x "
        f"cheaper than flooding and "
        f"{shout_energy / mst_stats.energy_total:.1f}x cheaper than one shout —\n"
        "many short hops beat few long ones under the d^2 law."
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    main(n, seed)
