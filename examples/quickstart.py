#!/usr/bin/env python
"""Quickstart: build an MST three ways and compare energy bills.

Runs the paper's three algorithms on one random sensor field and prints
what each paid (energy, messages, rounds) and what it built.

    python examples/quickstart.py [n] [seed]
"""

from __future__ import annotations

import sys

from repro import (
    euclidean_mst,
    run_connt,
    run_eopt,
    run_ghs,
    same_tree,
    tree_cost,
    uniform_points,
)
from repro.experiments.report import format_table


def main(n: int = 500, seed: int = 0) -> None:
    print(f"Deploying {n} sensors uniformly in the unit square (seed={seed})...")
    points = uniform_points(n, seed=seed)

    # The centralized ground truth.
    mst_edges, _ = euclidean_mst(points)
    print(f"Exact Euclidean MST: {len(mst_edges)} edges, "
          f"length {tree_cost(points, mst_edges):.3f}, "
          f"energy cost (sum d^2) {tree_cost(points, mst_edges, 2.0):.3f}\n")

    results = [
        run_ghs(points),     # classical GHS: the energy-hungry baseline
        run_eopt(points),    # the paper's O(log n)-energy exact algorithm
        run_connt(points),   # coordinate-aware O(1)-energy approximation
    ]

    rows = []
    for res in results:
        exact = same_tree(res.tree_edges, mst_edges)
        rows.append(
            (
                res.name,
                f"{res.energy:.2f}",
                res.messages,
                res.rounds,
                res.phases,
                "exact MST" if exact else
                f"approx (x{tree_cost(points, res.tree_edges) / tree_cost(points, mst_edges):.3f} length)",
            )
        )
    print(format_table(
        ["algorithm", "energy", "messages", "rounds", "phases", "tree"], rows
    ))

    eopt, ghs = results[1], results[0]
    print(f"\nEOPT used {ghs.energy / eopt.energy:.1f}x less energy than GHS "
          f"for the exact same tree.")
    print("EOPT stage breakdown:")
    for stage, msgs, energy in eopt.stats.stage_table():
        print(f"  {stage:<14} {msgs:>7} msgs  {energy:>8.3f} energy")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, seed)
