#!/usr/bin/env python
"""Explore the giant-component phenomenon EOPT is built on (Thm 5.2).

Sweeps the step-1 radius constant c and shows how the giant component
emerges: below the percolation threshold the field shatters into small
components; above it, one giant swallows almost everything while the
leftovers stay O(log^2 n).  This is exactly why EOPT can afford to run
its first step at the tiny radius sqrt(c1/n).

Also renders the Fig. 1 picture: the largest cluster of good cells.

    python examples/percolation_explorer.py [n] [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import giant_radius, uniform_points
from repro.experiments.figures import fig1_percolation
from repro.experiments.report import format_table
from repro.percolation.giant import analyze_percolation


def main(n: int = 3000, seed: int = 0) -> None:
    points = uniform_points(n, seed=seed)
    log2n = float(np.log(n) ** 2)
    print(f"n = {n} nodes; log^2 n = {log2n:.1f}\n")

    rows = []
    for c in (0.6, 0.8, 1.0, 1.2, 1.4, 1.8, 2.4):
        rep = analyze_percolation(points, giant_radius(n, c))
        rows.append(
            (
                f"{c:.1f}",
                f"{rep.radius:.4f}",
                f"{rep.giant_fraction:.1%}",
                rep.max_non_giant_component,
                f"{rep.small_region_bound_constant():.2f}",
                len(rep.component_sizes),
            )
        )
    print(format_table(
        ["c", "radius", "giant", "2nd comp", "beta", "#components"], rows
    ))
    print(
        "\nThe paper's step-1 constant is c = 1.4: past the percolation\n"
        "threshold, the giant holds ~95% of nodes and the biggest leftover\n"
        "component is a small multiple of log^2 n (the beta column).\n"
    )

    fig1 = fig1_percolation(n=n, seed=seed)
    print(f"Fig. 1 reproduction (good-cell giant cluster, c = 3.0, "
          f"r = {fig1.radius:.4f}):")
    print(fig1.good_cluster_picture)


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, seed)
