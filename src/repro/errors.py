"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate normally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeometryError(ReproError):
    """Invalid geometric input (points outside the unit square, bad radius...)."""


class GraphError(ReproError):
    """Structural problem with a graph (disconnected where connectivity is
    required, vertex index out of range, malformed edge list...)."""


class NotSpanningError(GraphError):
    """An edge set expected to span all vertices does not."""


class CycleError(GraphError):
    """An edge set expected to be acyclic contains a cycle."""


class SimulationError(ReproError):
    """The distributed-simulation kernel reached an invalid state."""


class PowerLimitError(SimulationError):
    """A node attempted to transmit beyond its allowed maximum radius."""


class ProtocolError(SimulationError):
    """A distributed protocol violated its own state-machine invariants."""


class ConvergenceError(ReproError):
    """An iterative procedure (threshold search, fit) failed to converge."""


class ExperimentError(ReproError):
    """Invalid experiment configuration or inconsistent sweep results."""
