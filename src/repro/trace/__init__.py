"""Opt-in structured run tracing: phase/round/fragment event streams.

Where :mod:`repro.perf` answers "where did the time go", ``repro.trace``
answers "what did the run *do*": an ordered stream of structured events
recorded at phase/round/fragment granularity — phase boundaries with
fragment-count/size histograms, per-round message/energy deltas by kind,
fault-plane outcomes, retry/settle repair activity.  The paper's central
claim is a *trajectory* property (Thm 5.2: EOPT's step 1 leaves one
giant fragment plus only small ones, which is why step 2 is cheap), and
a trace makes that trajectory first-class, diffable data instead of an
end-of-run scalar.

The cost contract is shared with :mod:`repro.perf`: disabled (the
default) every hook is one ``if trace.enabled`` attribute check per
phase or round — never per message — and recorded runs stay bit-identical
in every headline stat (``tests/test_trace.py`` pins this).  Enabled,
events accumulate in a process-global registry:

>>> from repro.trace import trace
>>> trace.enable()
>>> ...  # run a simulation
>>> trace.export_jsonl("run.jsonl")

Because every event a run emits is a deterministic function of the run's
inputs, two runs that should be equivalent (legacy vs fast kernel,
planes on vs off, before vs after a refactor) produce *identical* event
streams; :mod:`repro.trace.diff` compares two streams and reports the
first divergent event with context — the triage tool the hot-path
equivalence tests and the ``bench_*`` golden gates reuse.

Events are plain dicts with JSON-scalar fields only (``to_jsonl`` /
``load_jsonl`` round-trip exactly): ``{"i": <index>, "ev": <type>,
...fields}``.  See ``docs/observability.md`` for the full schema.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "TraceRegistry",
    "trace",
    "load_jsonl",
    "events_to_jsonl",
    "export_events_jsonl",
]


def _copy_event(event: dict) -> dict:
    """Deep-copy one event (fields are JSON scalars, dicts and lists)."""
    out = {}
    for k, v in event.items():
        if isinstance(v, dict):
            v = dict(v)
        elif isinstance(v, list):
            v = list(v)
        out[k] = v
    return out


class TraceRegistry:
    """Process-global, append-only event stream.

    Attributes
    ----------
    enabled:
        Master switch.  Call sites guard with ``if trace.enabled`` so the
        disabled cost is one attribute read; :meth:`emit` checks again as
        a backstop, so an unguarded call site cannot leak events into a
        disabled registry.
    events:
        The recorded event dicts, in emission order.  Each carries its
        index ``i`` and type ``ev`` plus event-specific fields.
    """

    __slots__ = ("enabled", "events")

    def __init__(self) -> None:
        self.enabled = False
        self.events: list[dict] = []

    # -- switches -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded events (the enabled flag is untouched)."""
        self.events.clear()

    # -- recording ----------------------------------------------------------

    def emit(self, ev: str, **fields: Any) -> None:
        """Append one event (no-op while disabled — backstop guard).

        ``fields`` must be JSON-representable scalars, lists or dicts so
        the stream survives a JSONL round trip unchanged.
        """
        if not self.enabled:
            return
        event = {"i": len(self.events), "ev": ev}
        event.update(fields)
        self.events.append(event)

    def merge(self, events: Iterable[dict], *, source: str | None = None) -> None:
        """Fold events recorded elsewhere (another process) into this stream.

        Events are appended in the given order and re-indexed to this
        registry's sequence; ``source`` (e.g. a sweep-cell key) is stamped
        on each as ``src`` so a merged sweep trace stays attributable.
        Merging a snapshot never mutates the input and is additive, so
        merging N disjoint worker snapshots equals one in-process run of
        the same N cells in the same order.
        """
        for event in events:
            copy = _copy_event(event)
            copy["i"] = len(self.events)
            if source is not None:
                copy["src"] = source
            self.events.append(copy)

    # -- reading / export ----------------------------------------------------

    def snapshot(self) -> list[dict]:
        """An independent copy of the event stream (safe to merge/mutate)."""
        return [_copy_event(e) for e in self.events]

    def to_jsonl(self) -> str:
        """The event stream as JSON Lines (one event object per line)."""
        return events_to_jsonl(self.events)

    def export_jsonl(self, path: str | Path) -> Path:
        """Write the stream to ``path`` as JSONL; returns the path."""
        return export_events_jsonl(self.events, path)


def events_to_jsonl(events: Iterable[dict]) -> str:
    """Any event list (a registry's, or one carried by a
    :class:`~repro.runspec.report.RunReport`) as JSON Lines."""
    return "".join(
        json.dumps(e, sort_keys=True, allow_nan=False) + "\n" for e in events
    )


def export_events_jsonl(events: Iterable[dict], path: str | Path) -> Path:
    """Write ``events`` to ``path`` as JSONL; returns the path."""
    p = Path(path)
    p.write_text(events_to_jsonl(events))
    return p


def load_jsonl(path: str | Path) -> list[dict]:
    """Load a trace exported by :meth:`TraceRegistry.export_jsonl`."""
    events = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


#: The process-global registry every hook writes to.
trace = TraceRegistry()
