"""Trace comparison: find the first divergent event between two runs.

Two runs that should be equivalent — legacy vs fast kernel, planes on vs
off, before vs after a refactor — emit identical event streams, so the
interesting question is never "are they equal" (that's one ``==``) but
"*where* do they first disagree".  :func:`diff_traces` answers it with
the index of the first divergent event, both sides' versions of it, and
a window of the preceding agreed-upon events for context, which usually
pins the failure to a specific phase and round before any debugger is
opened.  The hot-path equivalence tests and the ``bench_*`` golden gates
reuse this as their triage path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.trace import load_jsonl

__all__ = ["Divergence", "diff_traces", "diff_files", "format_divergence"]


def _canon(event: dict | None) -> str | None:
    """A canonical string form of one event (key order removed).

    Serializing through JSON also collapses the tuple/list distinction,
    so an in-memory trace compares equal to its own JSONL round trip.
    """
    if event is None:
        return None
    return json.dumps(event, sort_keys=True, allow_nan=False)


@dataclass(frozen=True)
class Divergence:
    """The first point where two traces disagree.

    ``left`` / ``right`` are the two versions of the divergent event
    (``None`` when that side's trace ended early); ``context`` is the
    tail of events both sides agreed on just before the split.
    """

    index: int
    left: dict | None
    right: dict | None
    context: tuple[dict, ...] = field(default=())

    def to_dict(self) -> dict:
        """Plain JSON-serializable payload (fuzz counterexample exports)."""
        return {
            "kind": "trace_divergence",
            "index": self.index,
            "left": self.left,
            "right": self.right,
            "context": list(self.context),
        }


def diff_traces(
    a: Sequence[dict], b: Sequence[dict], *, context: int = 3
) -> Divergence | None:
    """First divergence between two event streams, or None if identical.

    Events are compared structurally after JSON canonicalization, so
    key order and list-vs-tuple payloads never produce false positives.
    A strictly shorter trace diverges at its end (the missing side is
    reported as ``None``).
    """
    n = max(len(a), len(b))
    for i in range(n):
        ea = a[i] if i < len(a) else None
        eb = b[i] if i < len(b) else None
        if _canon(ea) != _canon(eb):
            lo = max(0, i - context)
            return Divergence(
                index=i, left=ea, right=eb, context=tuple(a[lo:i])
            )
    return None


def diff_files(
    path_a: str | Path, path_b: str | Path, *, context: int = 3
) -> Divergence | None:
    """:func:`diff_traces` over two JSONL exports."""
    return diff_traces(load_jsonl(path_a), load_jsonl(path_b), context=context)


def format_divergence(
    d: Divergence | None, label_a: str = "left", label_b: str = "right"
) -> str:
    """Human-readable report (multi-line) for a divergence, or agreement."""
    if d is None:
        return "traces identical"
    lines = [f"traces diverge at event {d.index}:"]
    for event in d.context:
        lines.append(f"    = {_canon(event)}")
    lines.append(f"  {label_a:>7}: {_canon(d.left) or '<trace ended>'}")
    lines.append(f"  {label_b:>7}: {_canon(d.right) or '<trace ended>'}")
    return "\n".join(lines)
