"""Process-parallel sweep execution.

The Fig. 3 sweep at the paper's full grid is hundreds of independent
simulations — embarrassingly parallel.  ``sweep_energy_parallel`` fans
the (algorithm, n, seed) grid out over a process pool and reassembles an
:class:`~repro.experiments.runner.EnergySweep` bit-identical to the
serial one (every cell is a deterministic function of its coordinates).

Workers re-derive the instance from the seed instead of shipping point
arrays across the pipe — cheaper and keeps tasks self-describing (cf. the
mpi4py guidance on communicating small descriptors over big buffers).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.config import SweepConfig
from repro.experiments.runner import EnergySweep, run_algorithm
from repro.geometry.points import uniform_points


def _run_cell(task: tuple) -> tuple:
    """Worker: one (algorithm, n, seed) cell -> (key, energy, messages, rounds).

    Module-level so it pickles under the spawn start method.
    """
    alg, n, seed, cfg_tuple = task
    cfg = SweepConfig(*cfg_tuple)
    pts = uniform_points(n, seed=seed)
    res = run_algorithm(alg, pts, cfg)
    return (alg, n, seed), res.energy, res.messages, res.rounds


def sweep_energy_parallel(
    config: SweepConfig | None = None,
    *,
    workers: int | None = None,
) -> EnergySweep:
    """Run the sweep grid on a process pool.

    Parameters
    ----------
    config:
        Sweep specification (defaults as in
        :func:`~repro.experiments.runner.sweep_energy`).
    workers:
        Pool size; defaults to the CPU count.  ``workers=1`` still goes
        through the pool (useful to test the path); for a single-core
        host there is no speedup, only isolation.
    """
    cfg = config or SweepConfig()
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")

    cfg_tuple = (
        cfg.ns,
        cfg.seeds,
        cfg.algorithms,
        cfg.ghs_radius_const,
        cfg.eopt_c1,
        cfg.eopt_c2,
        cfg.eopt_beta,
    )
    tasks = [
        (alg, n, seed, cfg_tuple)
        for alg in cfg.algorithms
        for n in cfg.ns
        for seed in cfg.seeds
    ]

    shape = (len(cfg.ns), len(cfg.seeds))
    energy = {a: np.zeros(shape) for a in cfg.algorithms}
    messages = {a: np.zeros(shape, dtype=np.int64) for a in cfg.algorithms}
    rounds = {a: np.zeros(shape, dtype=np.int64) for a in cfg.algorithms}
    n_index = {n: i for i, n in enumerate(cfg.ns)}
    s_index = {s: j for j, s in enumerate(cfg.seeds)}

    with ProcessPoolExecutor(max_workers=workers) as pool:
        for (alg, n, seed), e, m, r in pool.map(_run_cell, tasks, chunksize=1):
            i, j = n_index[n], s_index[seed]
            energy[alg][i, j] = e
            messages[alg][i, j] = m
            rounds[alg][i, j] = r

    return EnergySweep(config=cfg, energy=energy, messages=messages, rounds=rounds)
