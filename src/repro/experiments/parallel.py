"""Process-parallel sweep execution.

The Fig. 3 sweep at the paper's full grid is hundreds of independent
simulations — embarrassingly parallel.  ``sweep_energy_parallel`` fans
the (algorithm, n, seed) grid out over a process pool and reassembles an
:class:`~repro.experiments.runner.EnergySweep` bit-identical to the
serial one (every cell is a deterministic function of its coordinates).

Workers re-derive the instance from the seed instead of shipping point
arrays across the pipe — cheaper and keeps tasks self-describing (cf. the
mpi4py guidance on communicating small descriptors over big buffers).
Each worker derives it through the per-process
:func:`~repro.experiments.instances.get_points` cache; tasks are ordered
cell-major ((n, seed) outer, algorithm inner) and chunked so that one
chunk carries every algorithm of a cell — the worker builds the instance
once and the remaining algorithms of the cell hit the cache.

One :class:`~concurrent.futures.ProcessPoolExecutor` stays alive at
module level across sweeps: spawning workers pays interpreter start-up
and a cold instance cache on every call otherwise, which dwarfs small
sweeps.  :func:`shutdown` tears it down explicitly (tests, clean exits);
a sweep that dies with a broken pool also tears it down so the next call
gets fresh workers, and an ``atexit`` hook shuts it down at interpreter
exit so no sweep-and-exit process leaks its workers.
"""

from __future__ import annotations

import atexit
import math
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.config import SweepConfig
from repro.experiments.instances import get_points
from repro.experiments.runner import EnergySweep, run_algorithm
from repro.perf import perf
from repro.trace import trace


#: The module-level pool reused across sweeps (lazily created).
_pool: ProcessPoolExecutor | None = None
_pool_workers = 0


def _executor(workers: int) -> ProcessPoolExecutor:
    """The shared pool, (re)created when the worker count changes."""
    global _pool, _pool_workers
    if _pool is None or _pool_workers != workers:
        shutdown()
        _pool = ProcessPoolExecutor(max_workers=workers)
        _pool_workers = workers
    return _pool


def shutdown() -> None:
    """Tear down the shared pool (idempotent; next sweep respawns it)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown()
        _pool = None
        _pool_workers = 0


# A process that sweeps and exits without calling shutdown() would leak
# the worker processes until interpreter teardown reaps them (and under
# some start methods hang joining them).  Registering shutdown() makes
# the module-level pool safe to hold for the process lifetime.
atexit.register(shutdown)


def _run_cell(task: tuple) -> tuple:
    """Worker: one (algorithm, n, seed) cell -> (key, energy, messages,
    rounds, perf snapshot, trace snapshot).

    Module-level so it pickles under the spawn start method.  The parent
    can't flip the workers' process-global perf/trace registries (the
    pool is pre-spawned and reused), so whether instrumentation is wanted
    travels in the task; the worker records into a registry reset at the
    task boundary — pool reuse must not leak one cell's numbers into the
    next — and ships the per-cell snapshot back for the parent to merge.
    Snapshots are ``None`` when instrumentation is off, keeping the
    fast path's IPC payload unchanged.
    """
    alg, n, seed, cfg_tuple, want_perf, want_trace = task
    cfg = SweepConfig(*cfg_tuple)
    pts = get_points(n, seed)
    psnap = tsnap = None
    if want_perf:
        perf.reset()
        perf.enable()
    if want_trace:
        trace.reset()
        trace.enable()
    try:
        res = run_algorithm(alg, pts, cfg)
    finally:
        if want_perf:
            psnap = perf.snapshot()
            perf.disable()
            perf.reset()
        if want_trace:
            tsnap = trace.snapshot()
            trace.disable()
            trace.reset()
    return (alg, n, seed), res.energy, res.messages, res.rounds, psnap, tsnap


def _chunksize(n_tasks: int, workers: int, per_chunk: int) -> int:
    """Adaptive ``pool.map`` chunksize.

    A multiple of ``per_chunk`` (the number of algorithms per cell, so a
    chunk never splits a cell across workers), aiming at ~4 chunks per
    worker to balance scheduling overhead against tail latency.
    """
    per_chunk = max(1, per_chunk)
    target = math.ceil(n_tasks / (workers * 4))
    return max(per_chunk, per_chunk * math.ceil(target / per_chunk))


def sweep_energy_parallel(
    config: SweepConfig | None = None,
    *,
    workers: int | None = None,
) -> EnergySweep:
    """Run the sweep grid on a process pool.

    Parameters
    ----------
    config:
        Sweep specification (defaults as in
        :func:`~repro.experiments.runner.sweep_energy`).
    workers:
        Pool size; defaults to the CPU count.  ``workers=1`` still goes
        through the pool (useful to test the path); for a single-core
        host there is no speedup, only isolation.
    """
    cfg = config or SweepConfig()
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")

    cfg_tuple = (
        cfg.ns,
        cfg.seeds,
        cfg.algorithms,
        cfg.ghs_radius_const,
        cfg.eopt_c1,
        cfg.eopt_c2,
        cfg.eopt_beta,
    )
    # Cell-major ordering: all algorithms of one (n, seed) cell are
    # adjacent, so a cell's chunk shares one cached instance build.
    # The parent's instrumentation switches are captured here, once: the
    # pre-spawned workers never see this process's registries.
    want_perf = perf.enabled
    want_trace = trace.enabled
    tasks = [
        (alg, n, seed, cfg_tuple, want_perf, want_trace)
        for n in cfg.ns
        for seed in cfg.seeds
        for alg in cfg.algorithms
    ]

    shape = (len(cfg.ns), len(cfg.seeds))
    energy = {a: np.zeros(shape) for a in cfg.algorithms}
    messages = {a: np.zeros(shape, dtype=np.int64) for a in cfg.algorithms}
    rounds = {a: np.zeros(shape, dtype=np.int64) for a in cfg.algorithms}
    n_index = {n: i for i, n in enumerate(cfg.ns)}
    s_index = {s: j for j, s in enumerate(cfg.seeds)}

    chunksize = _chunksize(len(tasks), workers, len(cfg.algorithms))
    pool = _executor(workers)
    try:
        for (alg, n, seed), e, m, r, psnap, tsnap in pool.map(
            _run_cell, tasks, chunksize=chunksize
        ):
            i, j = n_index[n], s_index[seed]
            energy[alg][i, j] = e
            messages[alg][i, j] = m
            rounds[alg][i, j] = r
            # pool.map yields in task order, so merged traces interleave
            # cells exactly as the serial sweep would run them.
            if psnap is not None:
                perf.merge(psnap)
            if tsnap is not None:
                trace.merge(tsnap, source=f"{alg}:n{n}:s{seed}")
    except BaseException:
        # A worker crash (BrokenProcessPool) or interrupt may leave the
        # shared pool unusable; drop it so the next sweep starts clean.
        shutdown()
        raise

    return EnergySweep(config=cfg, energy=energy, messages=messages, rounds=rounds)
