"""Process-parallel sweep execution.

The Fig. 3 sweep at the paper's full grid is hundreds of independent
simulations — embarrassingly parallel.  ``sweep_energy_parallel`` is now
a thin shell over the runspec engine: the same spec list the serial
sweep executes goes to :func:`repro.runspec.engine.execute_batch` with
``backend="process"``, which ships each spec to a worker as its
serialized dict (small, self-describing task payloads — the worker
re-derives the instance from the seed through the per-process
:func:`~repro.experiments.instances.get_points` cache).  Tasks stay
cell-major ((n, seed) outer, algorithm inner) and chunks align to the
algorithm count, so one chunk carries every algorithm of a cell and the
worker builds the instance once.

The engine owns the module-level :class:`~concurrent.futures.ProcessPoolExecutor`
that stays alive across sweeps (spawning workers pays interpreter
start-up and a cold instance cache on every call otherwise);
:func:`shutdown` tears it down explicitly (tests, clean exits), an
``atexit`` hook reaps it at interpreter exit, and a host that cannot
spawn a pool at all (sandboxed CI) degrades to the serial backend with a
single :class:`RuntimeWarning` — every cell is deterministic, so the
results are identical, only slower.  ``_pool`` / ``_pool_workers`` remain
readable here as aliases of the engine's pool state.
"""

from __future__ import annotations

import atexit

from repro.experiments.config import SweepConfig
from repro.experiments.runner import EnergySweep, sweep_from_reports, sweep_specs
from repro.runspec import engine as _engine
from repro.runspec.engine import execute_batch, shutdown

__all__ = ["sweep_energy_parallel", "shutdown"]


# The engine registers its own hook; registering the (idempotent)
# shutdown here as well preserves this module's historical contract that
# importing it alone makes sweep-and-exit safe.
atexit.register(shutdown)


def __getattr__(name: str):
    # The pool state lives in the engine now; keep the long-standing
    # ``parallel._pool`` / ``parallel._pool_workers`` introspection
    # surface (tests, debugging) aliased to it.
    if name in ("_pool", "_pool_workers"):
        return getattr(_engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def sweep_energy_parallel(
    config: SweepConfig | None = None,
    *,
    workers: int | None = None,
) -> EnergySweep:
    """Run the sweep grid on a process pool.

    Bit-identical to :func:`~repro.experiments.runner.sweep_energy`
    (every cell is a deterministic function of its coordinates) — the two
    differ only in the ``execute_batch`` backend.

    Parameters
    ----------
    config:
        Sweep specification (defaults as in
        :func:`~repro.experiments.runner.sweep_energy`).
    workers:
        Pool size; defaults to the CPU count.  ``workers=1`` still goes
        through the pool (useful to test the path); for a single-core
        host there is no speedup, only isolation.
    """
    cfg = config or SweepConfig()
    specs = sweep_specs(cfg)
    reports = execute_batch(
        specs,
        backend="process",
        workers=workers,
        chunk_align=len(cfg.algorithms),
    )
    return sweep_from_reports(cfg, specs, reports)
