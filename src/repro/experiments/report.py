"""Plain-text / markdown table formatting for bench output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ExperimentError


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    markdown: bool = False,
) -> str:
    """Format rows as an aligned text (or markdown) table."""
    if not headers:
        raise ExperimentError("table needs headers")
    str_rows = [[_fmt(v) for v in row] for row in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ExperimentError(
                f"row width {len(r)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    if markdown:
        head = "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |"
        sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
        body = [
            "| " + " | ".join(v.ljust(w) for v, w in zip(r, widths)) + " |"
            for r in str_rows
        ]
        return "\n".join([head, sep, *body])
    head = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    sep = "  ".join("-" * w for w in widths)
    body = ["  ".join(v.rjust(w) for v, w in zip(r, widths)) for r in str_rows]
    return "\n".join([head, sep, *body])
