"""Plain-text / markdown table formatting for bench output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ExperimentError


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    markdown: bool = False,
) -> str:
    """Format rows as an aligned text (or markdown) table."""
    if not headers:
        raise ExperimentError("table needs headers")
    str_rows = [[_fmt(v) for v in row] for row in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ExperimentError(
                f"row width {len(r)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    if markdown:
        head = "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |"
        sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
        body = [
            "| " + " | ".join(v.ljust(w) for v, w in zip(r, widths)) + " |"
            for r in str_rows
        ]
        return "\n".join([head, sep, *body])
    head = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    sep = "  ".join("-" * w for w in widths)
    body = ["  ".join(v.rjust(w) for v, w in zip(r, widths)) for r in str_rows]
    return "\n".join([head, sep, *body])


#: Headers paired with :func:`phase_summary_rows`.
PHASE_SUMMARY_HEADERS = (
    "phase", "rounds", "messages", "energy", "fragments", "largest"
)


def phase_summary_rows(events: Sequence[dict]) -> list[tuple]:
    """Aggregate a trace into per-phase rows.

    Each GHS-family phase (one ``phase_start``/``phase_end`` bracket)
    becomes ``(phase, rounds, messages, energy, fragments, largest
    fragment size)``, with round-event message/energy deltas summed over
    the bracket.  The pre-phase segment (HELLO discovery, census, …) is
    reported as phase label ``"-"`` so every traced message is accounted
    somewhere.  Events from merged multi-run traces keep their ``src``
    prefix on the phase label.
    """
    rows: list[tuple] = []
    seg_msgs = 0
    seg_energy = 0.0
    seg_rounds = 0
    seg_start_round: int | None = None
    open_phase: dict | None = None
    for ev in events:
        kind = ev.get("ev")
        if kind == "round":
            seg_msgs += ev.get("dm", 0)
            seg_energy += ev.get("de", 0.0)
            seg_rounds += 1
        elif kind == "phase_start":
            if seg_msgs or seg_rounds:
                rows.append(("-", seg_rounds, seg_msgs, seg_energy, "", ""))
            seg_msgs, seg_energy, seg_rounds = 0, 0.0, 0
            seg_start_round = ev.get("round")
            open_phase = ev
        elif kind == "phase_end":
            label = str(ev.get("phase", "?"))
            if "src" in ev:
                label = f"{ev['src']}:{label}"
            sizes = ev.get("sizes") or []
            largest = sizes[-1][0] if sizes else ""
            span = (
                ev["round"] - seg_start_round
                if seg_start_round is not None and "round" in ev
                else seg_rounds
            )
            rows.append(
                (label, span, seg_msgs, seg_energy,
                 ev.get("fragments", ""), largest)
            )
            seg_msgs, seg_energy, seg_rounds = 0, 0.0, 0
            seg_start_round = None
            open_phase = None
    if seg_msgs or seg_rounds:
        label = str(open_phase.get("phase", "?")) if open_phase else "-"
        rows.append((label, seg_rounds, seg_msgs, seg_energy, "", ""))
    return rows


def format_phase_summary(events: Sequence[dict]) -> str:
    """A per-phase table for one recorded trace (CLI ``run --trace``)."""
    rows = phase_summary_rows(events)
    if not rows:
        return "(trace has no round or phase events)"
    return format_table(PHASE_SUMMARY_HEADERS, rows)
