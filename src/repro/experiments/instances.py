"""Shared, cached problem instances for sweeps.

A sweep cell is identified by ``(n, seed)``; every algorithm in the cell
runs on the *same* point set (the paper measures all algorithms on the
same random instances).  The serial sweep used to rebuild that array once
per algorithm and the parallel workers once per task; :func:`get_points`
builds each instance exactly once per process and hands out a read-only
view, so a cache hit can never be corrupted by a caller mutating the
array in place.

The cache is a small LRU (instances are cheap to rebuild; the win is
skipping redundant builds *within* a sweep, not pinning memory forever).
Worker processes share the cache automatically because it is module-level
state: with cell-major task ordering and a chunk per cell, one worker
sees all algorithms of a cell back to back.

Graph-shaped instances additionally key on the **instance layout**
(``dense`` vs ``chunked`` CSR — see :data:`repro.rgg.LAYOUTS`): kernel
backends declare the layout they expect through the kernel registry, and
a mixed-kernel sweep must never be served a cached instance assembled
for a different backend's layout.  Point sets are layout-independent, so
:func:`get_points` stays keyed on ``(n, seed)`` alone.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.geometry.points import uniform_points

#: Maximum number of cached (n, seed) instances per process.
_CACHE_SIZE = 64

#: Maximum number of cached built graphs (heavier than point sets).
_GRAPH_CACHE_SIZE = 8

_cache: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
_graph_cache: OrderedDict[tuple[int, int, float, str], object] = OrderedDict()
_hits = 0
_misses = 0


def get_points(n: int, seed: int) -> np.ndarray:
    """The uniform instance for sweep cell ``(n, seed)``, cached.

    Returns a **read-only** float64 array of shape ``(n, 2)`` — callers
    that need to mutate it must copy.  Identical to
    ``uniform_points(n, seed=seed)`` in values.
    """
    global _hits, _misses
    key = (int(n), int(seed))
    pts = _cache.get(key)
    if pts is not None:
        _hits += 1
        _cache.move_to_end(key)
        return pts
    _misses += 1
    pts = uniform_points(key[0], seed=key[1])
    pts.setflags(write=False)
    _cache[key] = pts
    while len(_cache) > _CACHE_SIZE:
        _cache.popitem(last=False)
    return pts


def adopt_points(n: int, seed: int, pts: np.ndarray) -> np.ndarray:
    """Install an externally built instance for ``(n, seed)`` in the cache.

    The shared-memory instance fabric attaches the parent's published
    array in each worker and adopts it here, so every later
    :func:`get_points` call serves the attached view instead of
    rebuilding.  The array must hold exactly ``uniform_points(n,
    seed=seed)`` — adoption trusts the caller (the fabric publishes from
    the same builder) and only enforces shape and read-only-ness.
    Neither a hit nor a miss is counted: nothing was requested yet.
    """
    pts = np.asarray(pts, dtype=float)
    if pts.shape != (int(n), 2):
        from repro.errors import ExperimentError

        raise ExperimentError(
            f"adopted instance for (n={n}) has shape {pts.shape}, wanted ({n}, 2)"
        )
    if pts.flags.writeable:
        pts = pts.view()
        pts.setflags(write=False)
    key = (int(n), int(seed))
    _cache[key] = pts
    _cache.move_to_end(key)
    while len(_cache) > _CACHE_SIZE:
        _cache.popitem(last=False)
    return pts


def evict_points(n: int, seed: int, *, only: np.ndarray | None = None) -> None:
    """Drop the cached instance for ``(n, seed)``, if present.

    With ``only``, the entry is dropped just when it *is* that array
    (identity, not equality) — the instance fabric uses this to retire
    exactly the shared-memory view it adopted without disturbing an
    entry something else has since installed.  The next
    :func:`get_points` call rebuilds from the seed.
    """
    key = (int(n), int(seed))
    cur = _cache.get(key)
    if cur is None:
        return
    if only is not None and cur is not only:
        return
    del _cache[key]


def get_graph(n: int, seed: int, radius: float, *, layout: str = "dense"):
    """The built RGG for ``(n, seed, radius)`` under ``layout``, cached.

    The cache key includes the layout: a ``chunked`` instance (memmap-
    backed CSR for the turbo backend at scale) is a different object
    from the ``dense`` one even though the arrays hold equal values, and
    serving one where the other was requested would silently change the
    memory profile the caller asked for.  Use
    :func:`repro.sim.kernel_layout` to resolve a kernel mode's layout.
    """
    global _hits, _misses
    from repro.rgg import LAYOUTS, build_rgg_layout

    if layout not in LAYOUTS:
        from repro.errors import GraphError

        raise GraphError(
            f"unknown instance layout {layout!r}; expected one of {', '.join(LAYOUTS)}"
        )
    key = (int(n), int(seed), float(radius), layout)
    g = _graph_cache.get(key)
    if g is not None:
        _hits += 1
        _graph_cache.move_to_end(key)
        return g
    _misses += 1
    g = build_rgg_layout(get_points(n, seed), float(radius), layout)
    _graph_cache[key] = g
    while len(_graph_cache) > _GRAPH_CACHE_SIZE:
        _graph_cache.popitem(last=False)
    return g


def cache_info() -> dict:
    """Hit/miss/size counters for the per-process instance cache."""
    return {
        "hits": _hits,
        "misses": _misses,
        "size": len(_cache),
        "max_size": _CACHE_SIZE,
        "graph_size": len(_graph_cache),
        "graph_max_size": _GRAPH_CACHE_SIZE,
    }


def clear_cache() -> None:
    """Drop every cached instance and reset the counters."""
    global _hits, _misses
    _cache.clear()
    _graph_cache.clear()
    _hits = 0
    _misses = 0
