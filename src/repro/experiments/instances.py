"""Shared, cached problem instances for sweeps.

A sweep cell is identified by ``(n, seed)``; every algorithm in the cell
runs on the *same* point set (the paper measures all algorithms on the
same random instances).  The serial sweep used to rebuild that array once
per algorithm and the parallel workers once per task; :func:`get_points`
builds each instance exactly once per process and hands out a read-only
view, so a cache hit can never be corrupted by a caller mutating the
array in place.

The cache is a small LRU (instances are cheap to rebuild; the win is
skipping redundant builds *within* a sweep, not pinning memory forever).
Worker processes share the cache automatically because it is module-level
state: with cell-major task ordering and a chunk per cell, one worker
sees all algorithms of a cell back to back.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.geometry.points import uniform_points

#: Maximum number of cached (n, seed) instances per process.
_CACHE_SIZE = 64

_cache: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
_hits = 0
_misses = 0


def get_points(n: int, seed: int) -> np.ndarray:
    """The uniform instance for sweep cell ``(n, seed)``, cached.

    Returns a **read-only** float64 array of shape ``(n, 2)`` — callers
    that need to mutate it must copy.  Identical to
    ``uniform_points(n, seed=seed)`` in values.
    """
    global _hits, _misses
    key = (int(n), int(seed))
    pts = _cache.get(key)
    if pts is not None:
        _hits += 1
        _cache.move_to_end(key)
        return pts
    _misses += 1
    pts = uniform_points(key[0], seed=key[1])
    pts.setflags(write=False)
    _cache[key] = pts
    while len(_cache) > _CACHE_SIZE:
        _cache.popitem(last=False)
    return pts


def cache_info() -> dict:
    """Hit/miss/size counters for the per-process instance cache."""
    return {
        "hits": _hits,
        "misses": _misses,
        "size": len(_cache),
        "max_size": _CACHE_SIZE,
    }


def clear_cache() -> None:
    """Drop every cached instance and reset the counters."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0
