"""Generators for the paper's figures.

Each returns plain data (rows / arrays / strings) so benches can print it
and tests can assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.ascii_plot import ascii_grid, ascii_xy
from repro.experiments.config import SweepConfig
from repro.experiments.runner import EnergySweep, sweep_energy
from repro.geometry.points import uniform_points
from repro.geometry.potential import (
    nearest_higher_rank_distance,
    potential_angle,
)
from repro.geometry.radius import giant_radius
from repro.percolation.cells import good_cell_mask, occupancy_grid
from repro.percolation.giant import analyze_percolation
from repro.theory.scaling import FitResult, fit_loglog_slope


# --------------------------------------------------------------------- FIG1

@dataclass(frozen=True)
class Fig1Result:
    """The giant-component picture of Fig. 1, as data + ASCII art."""

    n: int
    radius: float
    giant_fraction: float
    max_small_region_nodes: int
    good_cluster_picture: str  # '#' = largest good cluster, '.' = rest

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FIG1: n={self.n} r={self.radius:.4f} "
            f"giant={self.giant_fraction:.2%} "
            f"max small region={self.max_small_region_nodes} nodes\n"
            f"{self.good_cluster_picture}"
        )


def fig1_percolation(n: int = 2000, c1: float = 3.0, seed: int = 0) -> Fig1Result:
    """Reproduce Fig. 1: the unique giant cluster of good cells.

    The picture marks cells of the largest good-cell cluster ``#`` and all
    other cells ``.`` — the complement's connected gray regions of
    Fig. 1(b) are the small regions trapping non-giant components.

    The default ``c1 = 3`` puts the r/2-cell lattice in the supercritical
    site-percolation regime the proof of Thm 5.2 needs ("there is a
    positive constant c1 such that..."); the paper's *experimental*
    constant 1.4 is enough for the RGG itself to percolate but not for
    this coarser cell-level picture (see
    :attr:`repro.percolation.giant.PercolationReport.max_small_region_nodes`).
    """
    pts = uniform_points(n, seed=seed)
    r = giant_radius(n, c1)
    report = analyze_percolation(pts, r)
    grid = occupancy_grid(pts, r)
    good = good_cell_mask(grid)
    labels = grid.label_clusters(good, connectivity=4)
    sizes = grid.cluster_sizes(labels)
    if len(sizes):
        largest = int(np.argmax(sizes)) + 1
        picture = ascii_grid((labels == largest).astype(int))
    else:
        picture = ascii_grid(np.zeros_like(labels))
    return Fig1Result(
        n=n,
        radius=r,
        giant_fraction=report.giant_fraction,
        max_small_region_nodes=report.max_small_region_nodes,
        good_cluster_picture=picture,
    )


# --------------------------------------------------------------------- FIG2

@dataclass(frozen=True)
class Fig2Result:
    """Numeric verification of the potential-region lemmas (Fig. 2)."""

    n: int
    min_potential_angle: float       # Lemma 6.1: >= 0.5
    mean_sq_connect_distance: float  # Theorem 6.1: n * this <= 4
    expected_sq_bound: float         # mean of 2/(n alpha_u) (Lemma 6.2)
    max_connect_distance: float      # Lemma 6.3: <= c sqrt(log n / n)
    lemma63_constant: float          # that c, measured


def fig2_potential(n: int = 2000, seed: int = 0) -> Fig2Result:
    """Measure alpha_u, d_u and the lemma constants on one instance."""
    if n < 2:
        raise ExperimentError("need n >= 2")
    pts = uniform_points(n, seed=seed)
    alpha = potential_angle(pts)
    d = nearest_higher_rank_distance(pts)
    finite = np.isfinite(d)
    d_fin = d[finite]
    alpha_fin = alpha[finite]
    with np.errstate(divide="ignore"):
        bound = 2.0 / (n * alpha_fin)
    return Fig2Result(
        n=n,
        min_potential_angle=float(alpha.min()),
        mean_sq_connect_distance=float(np.mean(d_fin**2)),
        expected_sq_bound=float(np.mean(bound)),
        max_connect_distance=float(d_fin.max()),
        lemma63_constant=float(d_fin.max() / np.sqrt(np.log(n) / n)),
    )


# -------------------------------------------------------------------- FIG3a

def fig3a_energy(config: SweepConfig | None = None) -> EnergySweep:
    """Run the Fig. 3(a) sweep: energy vs n for GHS / EOPT / Co-NNT."""
    return sweep_energy(config)


def fig3a_rows(sweep: EnergySweep) -> list[tuple]:
    """Fig. 3(a) as printable rows: (n, E_GHS, E_EOPT, E_CoNNT, ...)."""
    algs = sweep.config.algorithms
    rows = []
    for i, n in enumerate(sweep.ns):
        rows.append((int(n),) + tuple(float(sweep.energy[a][i].mean()) for a in algs))
    return rows


def fig3a_plot(sweep: EnergySweep) -> str:
    """ASCII rendition of Fig. 3(a)."""
    series = {
        a: (sweep.ns.astype(float), sweep.mean_energy(a))
        for a in sweep.config.algorithms
    }
    return ascii_xy(
        series,
        title="Fig 3(a): energy vs n",
        xlabel="n",
        ylabel="energy",
    )


# -------------------------------------------------------------------- FIG3b

def fig3b_slopes(
    sweep: EnergySweep, *, min_n: int = 100
) -> dict[str, FitResult]:
    """Fit log(W) ~ log log n per algorithm (Fig. 3(b)).

    Small n are excluded (``min_n``) exactly as one reads the asymptotic
    slope off the right side of the paper's plot.  Expected slopes:
    GHS ≈ 2, EOPT ≈ 1, Co-NNT ≈ 0.
    """
    mask = sweep.ns >= min_n
    if mask.sum() < 2:
        raise ExperimentError(f"need >= 2 sweep points with n >= {min_n}")
    out = {}
    for alg in sweep.config.algorithms:
        out[alg] = fit_loglog_slope(sweep.ns[mask], sweep.mean_energy(alg)[mask])
    return out


def fig3b_plot(sweep: EnergySweep, *, min_n: int = 100) -> str:
    """ASCII rendition of Fig. 3(b): log(energy) vs log log n."""
    mask = sweep.ns >= min_n
    series = {
        a: (
            np.log(np.log(sweep.ns[mask].astype(float))),
            np.log(sweep.mean_energy(a)[mask]),
        )
        for a in sweep.config.algorithms
    }
    return ascii_xy(
        series,
        title="Fig 3(b): log(energy) vs loglog n",
        xlabel="loglog n",
        ylabel="log energy",
    )
