"""Experiment harness: seeded sweeps and per-figure/table generators.

Every artifact of the paper's evaluation section maps to one generator
here (see the experiment index in DESIGN.md):

* FIG1  — :func:`~repro.experiments.figures.fig1_percolation`
* FIG2  — :func:`~repro.experiments.figures.fig2_potential`
* FIG3a — :func:`~repro.experiments.figures.fig3a_energy`
* FIG3b — :func:`~repro.experiments.figures.fig3b_slopes`
* TAB1  — :func:`~repro.experiments.tables.tab1_quality`
* THM52 — :func:`~repro.experiments.tables.thm52_giant`
* LB    — :func:`~repro.experiments.tables.lower_bound_table`

The benchmark files under ``benchmarks/`` are thin wrappers that call
these generators and print the rows, so a bench run regenerates the
paper's numbers verbatim.
"""

from repro.experiments.config import SweepConfig, PAPER_NS, SMOKE_NS, BENCH_NS
from repro.experiments.instances import (
    adopt_points,
    cache_info,
    clear_cache,
    evict_points,
    get_graph,
    get_points,
)
from repro.experiments.runner import run_algorithm, sweep_energy, EnergySweep
from repro.experiments.parallel import sweep_energy_parallel
from repro.experiments.figures import (
    fig1_percolation,
    fig2_potential,
    fig3a_energy,
    fig3b_slopes,
)
from repro.experiments.tables import tab1_quality, thm52_giant, lower_bound_table
from repro.experiments.ascii_plot import ascii_xy, ascii_grid
from repro.experiments.report import format_table

__all__ = [
    "SweepConfig",
    "PAPER_NS",
    "SMOKE_NS",
    "BENCH_NS",
    "run_algorithm",
    "sweep_energy",
    "sweep_energy_parallel",
    "EnergySweep",
    "get_points",
    "get_graph",
    "adopt_points",
    "evict_points",
    "cache_info",
    "clear_cache",
    "fig1_percolation",
    "fig2_potential",
    "fig3a_energy",
    "fig3b_slopes",
    "tab1_quality",
    "thm52_giant",
    "lower_bound_table",
    "ascii_xy",
    "ascii_grid",
    "format_table",
]
