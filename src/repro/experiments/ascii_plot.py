"""Terminal plotting for bench output.

The benches must *show* the figures they regenerate; with no display in a
test environment, we render them as ASCII scatter plots (one glyph per
series) and character grids (for the Fig. 1 percolation picture).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ExperimentError

_GLYPHS = "ox+*#@%&"


def ascii_xy(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render named (x, y) series as an ASCII scatter plot.

    Each series gets the next glyph from ``o x + * ...``; the legend maps
    glyphs back to names.  Axes are linear; transform inputs (log, etc.)
    before calling if needed.
    """
    if not series:
        raise ExperimentError("no series to plot")
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if xs_all.size == 0:
        raise ExperimentError("series are empty")
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    y_lo, y_hi = float(ys_all.min()), float(ys_all.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for k, (name, (xs, ys)) in enumerate(series.items()):
        glyph = _GLYPHS[k % len(_GLYPHS)]
        legend.append(f"{glyph}={name}")
        for x, y in zip(xs, ys):
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            canvas[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel} [{y_lo:.3g} .. {y_hi:.3g}]")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel} [{x_lo:.3g} .. {x_hi:.3g}]    " + "  ".join(legend))
    return "\n".join(lines)


def ascii_grid(mask: np.ndarray, *, chars: str = ".#", max_side: int = 64) -> str:
    """Render a 2-D integer/boolean grid as characters.

    ``chars[v]`` renders value ``v`` (values clipped into range).  Grids
    larger than ``max_side`` are downsampled by majority so the Fig. 1
    picture stays terminal-sized.
    """
    grid = np.asarray(mask)
    if grid.ndim != 2:
        raise ExperimentError(f"grid must be 2-D, got shape {grid.shape}")
    m = max(grid.shape)
    if m > max_side:
        step = int(math.ceil(m / max_side))
        grid = grid[::step, ::step]
    grid = np.clip(grid.astype(np.int64), 0, len(chars) - 1)
    # Transpose so x runs rightward and y upward, matching the unit square.
    rows = []
    for j in range(grid.shape[1] - 1, -1, -1):
        rows.append("".join(chars[v] for v in grid[:, j]))
    return "\n".join(rows)
