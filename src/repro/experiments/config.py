"""Sweep configuration shared by benches, examples and tests.

The paper's experiments vary n from 50 to 5000 uniform nodes (Sec. VII).
``PAPER_NS`` mirrors that grid; ``BENCH_NS`` is the default for the
pytest-benchmark harness (full shape, tractable wall-clock); ``SMOKE_NS``
keeps CI-style test runs fast.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError

#: The paper's n-grid (Sec. VII: "the number of nodes varies from 50 to 5000").
PAPER_NS: tuple[int, ...] = (50, 100, 250, 500, 1000, 1500, 2000, 2500, 3000, 4000, 5000)

#: Default grid for the benchmark harness: same dynamic range, fewer points.
BENCH_NS: tuple[int, ...] = (50, 100, 250, 500, 1000, 2000, 4000)

#: Fast grid for tests.
SMOKE_NS: tuple[int, ...] = (50, 100, 200)

#: Algorithms of Fig. 3, by label used throughout.
FIG3_ALGORITHMS: tuple[str, ...] = ("GHS", "EOPT", "Co-NNT")


@dataclass(frozen=True)
class SweepConfig:
    """One energy-sweep specification.

    Attributes
    ----------
    ns:
        Node counts to sweep.
    seeds:
        Seeds; each (n, seed) pair is one independent uniform instance.
    algorithms:
        Labels accepted by :func:`repro.experiments.runner.run_algorithm`.
    ghs_radius_const / eopt_c1 / eopt_c2 / eopt_beta:
        The paper's experimental constants (Sec. VII).
    """

    ns: tuple[int, ...] = BENCH_NS
    seeds: tuple[int, ...] = (0, 1, 2)
    algorithms: tuple[str, ...] = FIG3_ALGORITHMS
    ghs_radius_const: float = 1.6
    eopt_c1: float = 1.4
    eopt_c2: float = 1.6
    eopt_beta: float = 1.0

    def __post_init__(self) -> None:
        if not self.ns:
            raise ExperimentError("sweep needs at least one n")
        if any(n < 2 for n in self.ns):
            raise ExperimentError("all n must be >= 2")
        if not self.seeds:
            raise ExperimentError("sweep needs at least one seed")
        if not self.algorithms:
            raise ExperimentError("sweep needs at least one algorithm")
