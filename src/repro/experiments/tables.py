"""Generators for the paper's in-text tables and theorem empirics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.connt import run_connt
from repro.errors import ExperimentError
from repro.geometry.points import uniform_points
from repro.geometry.radius import giant_radius
from repro.mst.delaunay import euclidean_mst
from repro.mst.quality import tree_cost
from repro.percolation.giant import analyze_percolation
from repro.theory.bounds import (
    knn_energy_need,
    mst_energy_lower_bound,
    spanning_tree_energy_lower_bound,
)


# ---------------------------------------------------------------------- TAB1

#: The quality numbers quoted in Sec. VII, as (n -> (connt, mst)) pairs.
PAPER_TAB1_EDGE_SUMS: dict[int, tuple[float, float]] = {
    1000: (22.9, 20.8),
    5000: (50.5, 46.3),
}
#: Sec. VII: "the sum of the squared edges of both Co-NNT and MST are
#: constants ... 0.68 and 0.52, respectively".
PAPER_TAB1_SQ_SUMS: tuple[float, float] = (0.68, 0.52)


@dataclass(frozen=True)
class QualityRow:
    """Co-NNT vs exact MST quality at one n (the Sec. VII comparison)."""

    n: int
    connt_edge_sum: float
    mst_edge_sum: float
    connt_sq_sum: float
    mst_sq_sum: float

    @property
    def length_ratio(self) -> float:
        """Co-NNT tree length relative to the optimum (paper: ~1.1)."""
        return self.connt_edge_sum / self.mst_edge_sum


def tab1_quality(
    ns: tuple[int, ...] = (1000, 5000), seed: int = 0
) -> list[QualityRow]:
    """Measure the Sec. VII quality comparison on fresh uniform instances."""
    rows = []
    for n in ns:
        pts = uniform_points(n, seed=seed)
        connt = run_connt(pts)
        mst_edges, _ = euclidean_mst(pts)
        rows.append(
            QualityRow(
                n=n,
                connt_edge_sum=tree_cost(pts, connt.tree_edges, alpha=1.0),
                mst_edge_sum=tree_cost(pts, mst_edges, alpha=1.0),
                connt_sq_sum=tree_cost(pts, connt.tree_edges, alpha=2.0),
                mst_sq_sum=tree_cost(pts, mst_edges, alpha=2.0),
            )
        )
    return rows


# --------------------------------------------------------------------- THM52

@dataclass(frozen=True)
class GiantRow:
    """Thm 5.2 empirics at one n."""

    n: int
    radius: float
    giant_fraction: float
    second_component: int      # size of the largest non-giant component
    max_small_region_nodes: int
    beta_estimate: float       # max region nodes / log^2 n


def thm52_giant(
    ns: tuple[int, ...] = (500, 1000, 2000, 4000),
    c1: float = 1.4,
    seed: int = 0,
) -> list[GiantRow]:
    """Giant fraction and small-region sizes across n at r = c1 sqrt(1/n)."""
    rows = []
    for n in ns:
        pts = uniform_points(n, seed=seed)
        rep = analyze_percolation(pts, giant_radius(n, c1))
        rows.append(
            GiantRow(
                n=n,
                radius=rep.radius,
                giant_fraction=rep.giant_fraction,
                second_component=rep.max_non_giant_component,
                max_small_region_nodes=rep.max_small_region_nodes,
                beta_estimate=rep.small_region_bound_constant(),
            )
        )
    return rows


# ------------------------------------------------------------------------ LB

@dataclass(frozen=True)
class LowerBoundRow:
    """Thm 4.1 / Lemma 4.1 constants at one n."""

    n: int
    l_mst: float                 # Omega(1) bound: sum d^2 over EMST
    knn_k: int
    knn_min_energy: float        # min over nodes of d_k^2
    lemma41_b: float             # empirical b with k/(b n) = knn_min_energy
    omega_log_curve: float       # log n / pi reference


def lower_bound_table(
    ns: tuple[int, ...] = (500, 1000, 2000, 4000),
    seed: int = 0,
) -> list[LowerBoundRow]:
    """Exhibit the lower-bound constants of Sec. IV on uniform instances."""
    rows = []
    for n in ns:
        if n < 8:
            raise ExperimentError("lower-bound table needs n >= 8")
        pts = uniform_points(n, seed=seed)
        k = max(2, int(np.ceil(np.log(n))))
        need = knn_energy_need(pts, k)
        min_energy = float(need.min())
        rows.append(
            LowerBoundRow(
                n=n,
                l_mst=mst_energy_lower_bound(pts),
                knn_k=k,
                knn_min_energy=min_energy,
                lemma41_b=k / (n * min_energy) if min_energy > 0 else float("inf"),
                omega_log_curve=spanning_tree_energy_lower_bound(n),
            )
        )
    return rows
