"""Seeded sweep execution on top of the runspec engine.

``run_algorithm`` is the single dispatch point from an algorithm label to
a runner, so benches, tables and tests agree on what "GHS at n = 1000"
means; it resolves the label through the algorithm registry
(:mod:`repro.runspec.registry`) — the accepted labels are whatever is
registered, in canonical order.  ``sweep_energy`` runs a full
(algorithm x n x seed) grid by generating one :class:`RunSpec` per cell
entry and feeding them to :func:`repro.runspec.engine.execute_batch`,
then folding the reports into the energy tensor plus means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.algorithms.base import AlgorithmResult
from repro.experiments.config import SweepConfig
from repro.perf import perf
from repro.runspec.engine import dispatch, execute_batch
from repro.runspec.registry import get as get_algorithm
from repro.runspec.report import RunReport
from repro.runspec.spec import RunSpec
from repro.sim.faults import FaultPlan
from repro.trace import trace


def spec_from_config(
    name: str,
    cfg: SweepConfig,
    *,
    n: int,
    seed: int = 0,
    faults: FaultPlan | None = None,
    perf: bool = False,
    trace: bool = False,
) -> RunSpec:
    """Build the :class:`RunSpec` for ``name`` with the sweep's constants."""
    return RunSpec(
        algorithm=name,
        n=n,
        seed=seed,
        ghs_radius_const=cfg.ghs_radius_const,
        eopt_c1=cfg.eopt_c1,
        eopt_c2=cfg.eopt_c2,
        eopt_beta=cfg.eopt_beta,
        faults=faults,
        perf=perf,
        trace=trace,
    )


def run_algorithm(
    name: str,
    points: np.ndarray,
    config: SweepConfig | None = None,
    *,
    faults: FaultPlan | None = None,
) -> AlgorithmResult:
    """Run the algorithm labelled ``name`` with the sweep's constants.

    ``name`` is resolved through the algorithm registry
    (:func:`repro.runspec.registry.names` lists what is accepted; an
    unknown label raises with the registered labels spelled out).

    ``faults`` threads a seeded :class:`FaultPlan` into the runner; the
    GHS family and Co-NNT recover (ACK/retry), Rand-NNT has no recovery
    layer and rejects a non-null plan.
    """
    cfg = config or SweepConfig()
    pts = np.asarray(points, dtype=float)
    entry = get_algorithm(name)
    spec = spec_from_config(name, cfg, n=len(pts), faults=faults)
    return dispatch(entry, pts, spec)


@dataclass(frozen=True)
class EnergySweep:
    """Result of one (algorithm x n x seed) sweep.

    ``energy[alg]`` has shape ``(len(ns), len(seeds))``; ``messages`` and
    ``rounds`` likewise.  Means are over seeds.
    """

    config: SweepConfig
    energy: dict[str, np.ndarray]
    messages: dict[str, np.ndarray]
    rounds: dict[str, np.ndarray]

    @property
    def ns(self) -> np.ndarray:
        return np.asarray(self.config.ns, dtype=np.int64)

    def mean_energy(self, alg: str) -> np.ndarray:
        """Seed-mean energy per n for ``alg``."""
        return self.energy[alg].mean(axis=1)

    def mean_messages(self, alg: str) -> np.ndarray:
        """Seed-mean message count per n for ``alg``."""
        return self.messages[alg].mean(axis=1)


def sweep_specs(
    config: SweepConfig | None = None,
    *,
    perf_enabled: bool | None = None,
    trace_enabled: bool | None = None,
) -> list[RunSpec]:
    """The sweep grid as specs, cell-major ((n, seed) outer, algorithm inner).

    Cell-major ordering keeps all algorithms of one (n, seed) cell
    adjacent, so a process-pool chunk aligned to ``len(cfg.algorithms)``
    shares one cached instance build per cell, and merged traces
    interleave cells exactly as the serial sweep runs them.

    ``perf_enabled`` / ``trace_enabled`` set the specs' instrumentation
    switches; they default to the *ambient* registry state, so an
    instrumented session (``--perf`` / ``--trace``) transparently gets
    per-cell snapshots merged back by :func:`sweep_from_reports`.
    """
    cfg = config or SweepConfig()
    want_perf = perf.enabled if perf_enabled is None else perf_enabled
    want_trace = trace.enabled if trace_enabled is None else trace_enabled
    return [
        spec_from_config(
            alg, cfg, n=n, seed=seed, perf=want_perf, trace=want_trace
        )
        for n in cfg.ns
        for seed in cfg.seeds
        for alg in cfg.algorithms
    ]


def sweep_from_reports(
    cfg: SweepConfig,
    specs: Sequence[RunSpec],
    reports: Iterable[RunReport],
) -> EnergySweep:
    """Fold per-spec reports into the sweep tensors.

    Reports must arrive in spec order (``execute_batch`` guarantees it).
    Instrumentation snapshots carried by the reports merge into the
    ambient registries here — traces gain a ``src`` stamp naming the
    sweep cell, identical for the serial and process backends.
    """
    shape = (len(cfg.ns), len(cfg.seeds))
    energy = {a: np.zeros(shape) for a in cfg.algorithms}
    messages = {a: np.zeros(shape, dtype=np.int64) for a in cfg.algorithms}
    rounds = {a: np.zeros(shape, dtype=np.int64) for a in cfg.algorithms}
    n_index = {n: i for i, n in enumerate(cfg.ns)}
    s_index = {s: j for j, s in enumerate(cfg.seeds)}
    for spec, report in zip(specs, reports):
        i, j = n_index[spec.n], s_index[spec.seed]
        energy[spec.algorithm][i, j] = report.energy
        messages[spec.algorithm][i, j] = report.messages
        rounds[spec.algorithm][i, j] = report.rounds
        if report.perf is not None:
            perf.merge(report.perf)
        if report.trace is not None:
            trace.merge(report.trace, source=spec.cell)
    return EnergySweep(config=cfg, energy=energy, messages=messages, rounds=rounds)


def sweep_energy(config: SweepConfig | None = None) -> EnergySweep:
    """Run the full sweep; every (n, seed) uses one shared point set.

    Sharing the point set across algorithms matches the paper's setup
    (all three algorithms measured on the same random instances) and
    removes cross-algorithm sampling noise from the comparison.  The grid
    goes through :func:`repro.runspec.engine.execute_batch` with the
    serial backend — the same path the process-parallel sweep fans out.
    """
    cfg = config or SweepConfig()
    specs = sweep_specs(cfg)
    reports = execute_batch(specs, backend="serial")
    return sweep_from_reports(cfg, specs, reports)
