"""Seeded sweep execution.

``run_algorithm`` is the single dispatch point from an algorithm label to
a runner, so benches, tables and tests agree on what "GHS at n = 1000"
means.  ``sweep_energy`` runs a full (algorithm x n x seed) grid and
returns the energy tensor plus means.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import AlgorithmResult
from repro.algorithms.connt import run_connt
from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_ghs, run_modified_ghs
from repro.algorithms.randnnt import run_randnnt
from repro.errors import ExperimentError
from repro.experiments.config import SweepConfig
from repro.experiments.instances import get_points
from repro.sim.faults import FaultPlan


def run_algorithm(
    name: str,
    points: np.ndarray,
    config: SweepConfig | None = None,
    *,
    faults: FaultPlan | None = None,
) -> AlgorithmResult:
    """Run the algorithm labelled ``name`` with the sweep's constants.

    Accepted labels: ``"GHS"``, ``"MGHS"``, ``"EOPT"``, ``"Co-NNT"``,
    ``"Rand-NNT"`` (the [15] baseline from the paper's Related Work).

    ``faults`` threads a seeded :class:`FaultPlan` into the runner; the
    GHS family and Co-NNT recover (ACK/retry), Rand-NNT has no recovery
    layer and rejects a non-null plan.
    """
    cfg = config or SweepConfig()
    fkw = {} if faults is None else {"faults": faults}
    if name == "GHS":
        return run_ghs(points, radius_const=cfg.ghs_radius_const, **fkw)
    if name == "MGHS":
        return run_modified_ghs(points, radius_const=cfg.ghs_radius_const, **fkw)
    if name == "EOPT":
        return run_eopt(
            points, c1=cfg.eopt_c1, c2=cfg.eopt_c2, beta=cfg.eopt_beta, **fkw
        )
    if name == "Co-NNT":
        return run_connt(points, **fkw)
    if name == "Rand-NNT":
        if faults is not None and not faults.is_null:
            raise ExperimentError(
                "Rand-NNT has no fault-recovery layer; run it without --drop-rate/--crash"
            )
        return run_randnnt(points)
    raise ExperimentError(f"unknown algorithm label {name!r}")


@dataclass(frozen=True)
class EnergySweep:
    """Result of one (algorithm x n x seed) sweep.

    ``energy[alg]`` has shape ``(len(ns), len(seeds))``; ``messages`` and
    ``rounds`` likewise.  Means are over seeds.
    """

    config: SweepConfig
    energy: dict[str, np.ndarray]
    messages: dict[str, np.ndarray]
    rounds: dict[str, np.ndarray]

    @property
    def ns(self) -> np.ndarray:
        return np.asarray(self.config.ns, dtype=np.int64)

    def mean_energy(self, alg: str) -> np.ndarray:
        """Seed-mean energy per n for ``alg``."""
        return self.energy[alg].mean(axis=1)

    def mean_messages(self, alg: str) -> np.ndarray:
        """Seed-mean message count per n for ``alg``."""
        return self.messages[alg].mean(axis=1)


def sweep_energy(config: SweepConfig | None = None) -> EnergySweep:
    """Run the full sweep; every (n, seed) uses one shared point set.

    Sharing the point set across algorithms matches the paper's setup
    (all three algorithms measured on the same random instances) and
    removes cross-algorithm sampling noise from the comparison.
    """
    cfg = config or SweepConfig()
    shape = (len(cfg.ns), len(cfg.seeds))
    energy = {a: np.zeros(shape) for a in cfg.algorithms}
    messages = {a: np.zeros(shape, dtype=np.int64) for a in cfg.algorithms}
    rounds = {a: np.zeros(shape, dtype=np.int64) for a in cfg.algorithms}
    for i, n in enumerate(cfg.ns):
        for j, seed in enumerate(cfg.seeds):
            pts = get_points(n, seed)
            for alg in cfg.algorithms:
                res = run_algorithm(alg, pts, cfg)
                energy[alg][i, j] = res.energy
                messages[alg][i, j] = res.messages
                rounds[alg][i, j] = res.rounds
    return EnergySweep(config=cfg, energy=energy, messages=messages, rounds=rounds)
