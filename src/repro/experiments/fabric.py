"""Shared-memory instance fabric for the process-pool batch path.

Without it, every pool worker re-derives each instance from ``(n,
seed)``: the point set through ``uniform_points`` and — far more
expensively for turbo-eligible runs — the kernel's CSR neighbor table
through a fresh ``cKDTree.query_pairs``.  With cell-major chunking one
worker pays that once per cell, but every *worker* that ever touches the
cell pays it again, and at the turbo backend's scale (``n`` up to
``10^6``) the duplicated CSR arrays dominate the fleet's resident
footprint.

The fabric removes the duplication: the **parent** builds each needed
array exactly once per ``(n, seed)`` (points) and ``(n, seed, radius)``
(neighbor-table CSR for turbo-layout runs), copies it into a
:class:`multiprocessing.shared_memory.SharedMemory` segment, and ships a
small JSON manifest with each task.  **Workers** attach the segments
read-only, adopt the points view into the per-process instance cache
(:func:`repro.experiments.instances.adopt_points`) and register the
rehydrated tables with the kernel's table-provider hook
(:func:`repro.sim.kernel.set_table_provider`), so the arrays are mapped,
never rebuilt and never copied.

Lifecycle — and why segments are never closed mid-process
---------------------------------------------------------

``np.ndarray(..., buffer=shm.buf)`` does *not* pin the mapping: numpy
releases the Py_buffer immediately and keeps only an object reference,
so ``shm.close()`` happily unmaps memory that live arrays still point
into and the next read is a use-after-unmap crash — in this process or,
via fork-inherited caches, in a worker.  The fabric therefore splits the
two halves of cleanup:

* **unlink** (releasing the OS name, so ``/dev/shm`` shows nothing) runs
  eagerly — on LRU eviction past the byte budget and on
  :func:`release`; the fabric also retires the adopted cache entries
  and provider registrations it created, so later lookups rebuild
  instead of dereferencing a retired view;
* **close** (unmapping) is deferred: the ``SharedMemory`` object moves
  to a graveyard that keeps it referenced until interpreter exit, when
  unmapping can no longer break a live array.  POSIX keeps unlinked
  memory alive until the last map goes away, so readers race nothing.

:func:`release` is called by :func:`repro.runspec.engine.shutdown` and
from an ``atexit`` hook.  Worker attachments live for the worker's
lifetime; pool shutdown recycles the processes and with them the maps.

Any failure — segment creation denied (sandboxed CI), attach racing an
eviction, the ``REPRO_NO_SHM=1`` kill switch — degrades to per-worker
rebuilds.  The fabric is a pure accelerator: attached and rebuilt arrays
are bit-identical by construction, so reports cannot differ.
"""

from __future__ import annotations

import atexit
import os
from collections import OrderedDict

import numpy as np

__all__ = [
    "attach_manifest",
    "manifest_for_specs",
    "release",
    "shm_available",
    "stats",
]

#: Upper bound on the bytes the parent pins in live segments; the LRU
#: evicts (unlink + retire) past it.
_MAX_FABRIC_BYTES = int(os.environ.get("REPRO_SHM_MAX_BYTES", 1 << 30))

#: Set False after the first failed segment creation: a host that cannot
#: create one segment will not create the next either.
_creation_ok = True

#: Parent-side published segments: key -> _Published/_TableSet (LRU
#: order).  Keys: ("points", n, seed) and ("table", n, seed, radius).
_published: "OrderedDict[tuple, object]" = OrderedDict()

#: Unlinked-but-possibly-still-viewed SharedMemory objects, kept
#: referenced so nothing unmaps under a live array (see module docs).
_graveyard: list = []

#: Worker-side attachments, keyed like the manifest entries; values hold
#: the SharedMemory objects (kept mapped for process life) and the
#: adopted arrays/tables.
_attached: dict[tuple, object] = {}

#: Table registry behind the kernel provider hook: id(points array) ->
#: {radius: _NeighborTable}.  The keying array is held strongly by the
#: instance cache / _attached, pinning the id.
_tables_by_points_id: dict[int, dict] = {}
_provider_installed = False

_hits = 0
_misses = 0


def shm_available() -> bool:
    """Whether the fabric may publish segments in this process."""
    if os.environ.get("REPRO_NO_SHM"):
        return False
    if not _creation_ok:
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    return True


class _Published:
    """One parent-side shared segment holding one array."""

    def __init__(self, shm, array: np.ndarray) -> None:
        self.shm = shm
        self.array = array
        self.nbytes = shm.size

    def retire(self) -> None:
        """Unlink the OS name and defer the unmap (see module docs)."""
        try:
            self.shm.unlink()
        except (OSError, FileNotFoundError):
            pass
        _graveyard.append(self.shm)


def _create_segment(array: np.ndarray) -> "_Published | None":
    """Copy ``array`` into a fresh segment; None when SHM is unusable."""
    global _creation_ok
    if not shm_available():
        return None
    from multiprocessing import shared_memory

    arr = np.ascontiguousarray(array)
    try:
        shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    except (OSError, ValueError):
        _creation_ok = False
        return None
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[:] = arr
    view.setflags(write=False)
    return _Published(shm, view)


class _PointsEntry(_Published):
    """Published points: also retires its instance-cache adoption."""

    def __init__(self, shm, array, n: int, seed: int) -> None:
        super().__init__(shm, array)
        self.n = n
        self.seed = seed

    def retire(self) -> None:
        from repro.experiments.instances import evict_points

        evict_points(self.n, self.seed, only=self.array)
        _tables_by_points_id.pop(id(self.array), None)
        super().retire()


class _TableSet:
    """The three CSR segments of one published neighbor table."""

    def __init__(self, segments, points: np.ndarray, radius: float) -> None:
        self.segments = segments
        self.nbytes = sum(s.nbytes for s in segments)
        self.points_id = id(points)
        self.radius = float(radius)

    def retire(self) -> None:
        tables = _tables_by_points_id.get(self.points_id)
        if tables is not None:
            tables.pop(self.radius, None)
            if not tables:
                _tables_by_points_id.pop(self.points_id, None)
        for s in self.segments:
            s.retire()


def _evict_to_budget(keep: set | None = None) -> None:
    """LRU-evict past the byte budget, sparing ``keep`` (the live batch)."""
    total = sum(p.nbytes for p in _published.values())
    for key in list(_published):
        if total <= _MAX_FABRIC_BYTES:
            break
        if keep and key in keep:
            continue
        pub = _published.pop(key)
        total -= pub.nbytes
        pub.retire()


def _register_table(points: np.ndarray, radius: float, table) -> None:
    """Make ``table`` servable for ``(points, radius)`` via the provider."""
    global _provider_installed
    _tables_by_points_id.setdefault(id(points), {})[float(radius)] = table
    if not _provider_installed:
        from repro.sim.kernel import set_table_provider

        set_table_provider(_provider)
        _provider_installed = True


def _provider(points: np.ndarray, radius: float):
    """Kernel table-provider hook: serve a registered prebuilt table."""
    global _hits, _misses
    tables = _tables_by_points_id.get(id(points))
    table = tables.get(float(radius)) if tables else None
    if table is not None:
        _hits += 1
    else:
        _misses += 1
    return table


# -- parent side -------------------------------------------------------------


def _table_specs(specs) -> "OrderedDict[tuple, None]":
    """The ``(n, seed, radius)`` CSR builds worth staging for ``specs``.

    Turbo-layout GHS-family runs at the paper's connectivity radius;
    anything with a dynamic radius schedule (EOPT's step transitions)
    or a per-message reference kernel rebuilds locally.
    """
    from repro.geometry.radius import connectivity_radius
    from repro.sim.backends import kernel_layout
    from repro.sim.kernel import table_within_budget

    wanted: OrderedDict[tuple, None] = OrderedDict()
    for spec in specs:
        if spec.algorithm not in ("GHS", "MGHS"):
            continue
        try:
            if kernel_layout(spec.kernel) != "chunked":
                continue
        except Exception:
            continue
        r = connectivity_radius(spec.n, spec.ghs_radius_const)
        if not table_within_budget(spec.n, r):
            continue
        wanted.setdefault(("table", int(spec.n), int(spec.seed), float(r)))
    return wanted


def manifest_for_specs(specs) -> list | None:
    """Publish (or reuse) segments for ``specs``; returns manifest entries.

    Returns ``None`` when shared memory is unavailable or disabled —
    the caller fans out without a manifest and workers rebuild locally.
    The parent also adopts its own published views (instance cache +
    table provider), so a serial fallback reuses the same arrays.
    """
    from repro.experiments.instances import adopt_points, get_points
    from repro.sim.kernel import make_neighbor_table, neighbor_csr_arrays

    if not shm_available():
        return None
    manifest: list = []
    live: set = set()
    cells = OrderedDict(((int(s.n), int(s.seed)), None) for s in specs)
    for n, seed in cells:
        key = ("points", n, seed)
        pub = _published.get(key)
        if pub is None:
            seg = _create_segment(get_points(n, seed))
            if seg is None:
                return None
            pub = _PointsEntry(seg.shm, seg.array, n, seed)
            _published[key] = pub
            # Serve the shared view locally too (values are identical).
            adopt_points(n, seed, pub.array)
        _published.move_to_end(key)
        live.add(key)
        manifest.append(
            {"kind": "points", "n": n, "seed": seed, "shm": pub.shm.name}
        )
    for key in _table_specs(specs):
        _, n, seed, r = key
        tset = _published.get(key)
        if tset is None:
            pts = _published[("points", n, seed)].array
            indptr, ids, dists = neighbor_csr_arrays(pts, r)
            segs = tuple(_create_segment(a) for a in (indptr, ids, dists))
            if any(s is None for s in segs):
                for s in segs:
                    if s is not None:
                        s.retire()
                return None
            tset = _TableSet(segs, pts, r)
            _published[key] = tset
            _register_table(
                pts, r, make_neighbor_table(r, *(s.array for s in segs))
            )
        _published.move_to_end(key)
        live.add(key)
        ip, ids_seg, d_seg = tset.segments
        manifest.append(
            {
                "kind": "table",
                "n": n,
                "seed": seed,
                "radius": r,
                "shm_indptr": ip.shm.name,
                "shm_ids": ids_seg.shm.name,
                "shm_dists": d_seg.shm.name,
                "m": int(len(ids_seg.array)),
            }
        )
    _evict_to_budget(keep=live)
    return manifest


def release() -> None:
    """Unlink every parent-side segment and retire its adoptions.

    Idempotent.  The OS names disappear immediately; the mappings are
    parked in the graveyard until interpreter exit so no live view can
    dangle (see module docs).
    """
    while _published:
        _, pub = _published.popitem(last=False)
        pub.retire()


atexit.register(release)


# -- worker side -------------------------------------------------------------


def _attach_array(name: str, shape, dtype) -> "np.ndarray | None":
    """Attach one segment read-only; None when it is gone or unusable.

    No resource-tracker gymnastics: pool workers are descendants of the
    publishing parent and share its tracker, where the attach-time
    re-registration is a set no-op and the parent's unlink performs the
    one unregister.
    """
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except (OSError, ValueError):
        return None
    arr = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
    arr.setflags(write=False)
    _attached[("seg", name)] = shm  # keep mapped for process life
    return arr


def attach_manifest(manifest) -> None:
    """Worker: attach every not-yet-seen manifest entry.

    Idempotent per ``(kind, coordinates)`` key — repeated tasks carrying
    the same manifest cost two dict probes.  Any entry that fails to
    attach is skipped; the worker rebuilds that instance locally.
    """
    if not manifest or os.environ.get("REPRO_NO_SHM"):
        return
    from repro.experiments.instances import adopt_points
    from repro.sim.kernel import make_neighbor_table

    for entry in manifest:
        if entry["kind"] == "points":
            key = ("points", entry["n"], entry["seed"])
            if key in _attached:
                continue
            arr = _attach_array(entry["shm"], (entry["n"], 2), np.float64)
            if arr is None:
                continue
            _attached[key] = adopt_points(entry["n"], entry["seed"], arr)
        elif entry["kind"] == "table":
            key = ("table", entry["n"], entry["seed"], float(entry["radius"]))
            if key in _attached:
                continue
            pts = _attached.get(("points", entry["n"], entry["seed"]))
            if pts is None:
                continue  # table is only useful keyed to shared points
            n, m = entry["n"], entry["m"]
            indptr = _attach_array(entry["shm_indptr"], (n + 1,), np.int64)
            ids = _attach_array(entry["shm_ids"], (m,), np.int64)
            dists = _attach_array(entry["shm_dists"], (m,), np.float64)
            if indptr is None or ids is None or dists is None:
                continue
            table = make_neighbor_table(entry["radius"], indptr, ids, dists)
            _attached[key] = table
            _register_table(pts, entry["radius"], table)


def stats() -> dict:
    """Fabric observability: live segments, bytes, provider hit/misses."""
    return {
        "enabled": shm_available(),
        "published_segments": len(_published),
        "published_bytes": sum(p.nbytes for p in _published.values()),
        "retired_segments": len(_graveyard),
        "attached_segments": sum(1 for k in _attached if k[0] == "seg"),
        "provider_hits": _hits,
        "provider_misses": _misses,
        "max_bytes": _MAX_FABRIC_BYTES,
    }
