"""JSON persistence for experiment results.

Sweeps are expensive (hundreds of full distributed simulations at the
paper's grid), so benches and downstream analyses need to save and reload
them.  The schema is deliberately plain JSON — no pickle — so results are
diffable and portable.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.algorithms.base import AlgorithmResult
from repro.errors import ExperimentError
from repro.experiments.config import SweepConfig
from repro.experiments.runner import EnergySweep

SCHEMA_VERSION = 1


def sweep_to_dict(sweep: EnergySweep) -> dict:
    """Convert an :class:`EnergySweep` to plain JSON-serialisable data."""
    cfg = sweep.config
    return {
        "schema": SCHEMA_VERSION,
        "kind": "energy_sweep",
        "config": {
            "ns": list(cfg.ns),
            "seeds": list(cfg.seeds),
            "algorithms": list(cfg.algorithms),
            "ghs_radius_const": cfg.ghs_radius_const,
            "eopt_c1": cfg.eopt_c1,
            "eopt_c2": cfg.eopt_c2,
            "eopt_beta": cfg.eopt_beta,
        },
        "energy": {a: sweep.energy[a].tolist() for a in cfg.algorithms},
        "messages": {a: sweep.messages[a].tolist() for a in cfg.algorithms},
        "rounds": {a: sweep.rounds[a].tolist() for a in cfg.algorithms},
    }


def sweep_from_dict(data: dict) -> EnergySweep:
    """Inverse of :func:`sweep_to_dict` (validates the schema)."""
    if data.get("kind") != "energy_sweep":
        raise ExperimentError(f"not an energy_sweep payload: {data.get('kind')!r}")
    if data.get("schema") != SCHEMA_VERSION:
        raise ExperimentError(f"unsupported schema version {data.get('schema')!r}")
    c = data["config"]
    cfg = SweepConfig(
        ns=tuple(c["ns"]),
        seeds=tuple(c["seeds"]),
        algorithms=tuple(c["algorithms"]),
        ghs_radius_const=c["ghs_radius_const"],
        eopt_c1=c["eopt_c1"],
        eopt_c2=c["eopt_c2"],
        eopt_beta=c["eopt_beta"],
    )
    shape = (len(cfg.ns), len(cfg.seeds))

    def load(block: dict, dtype) -> dict[str, np.ndarray]:
        out = {}
        for alg in cfg.algorithms:
            arr = np.asarray(block[alg], dtype=dtype)
            if arr.shape != shape:
                raise ExperimentError(
                    f"array for {alg!r} has shape {arr.shape}, expected {shape}"
                )
            out[alg] = arr
        return out

    return EnergySweep(
        config=cfg,
        energy=load(data["energy"], float),
        messages=load(data["messages"], np.int64),
        rounds=load(data["rounds"], np.int64),
    )


def save_sweep(sweep: EnergySweep, path: str | Path) -> Path:
    """Write a sweep to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(sweep_to_dict(sweep), indent=1))
    return path


def load_sweep(path: str | Path) -> EnergySweep:
    """Read a sweep previously written by :func:`save_sweep`."""
    return sweep_from_dict(json.loads(Path(path).read_text()))


def result_to_dict(result: AlgorithmResult) -> dict:
    """Serialise one algorithm run (tree + stats) to plain data."""
    s = result.stats
    return {
        "schema": SCHEMA_VERSION,
        "kind": "algorithm_result",
        "name": result.name,
        "n": result.n,
        "phases": result.phases,
        "tree_edges": result.tree_edges.tolist(),
        "extras": _jsonable(result.extras),
        "stats": {
            "energy_total": s.energy_total,
            "messages_total": s.messages_total,
            "rounds": s.rounds,
            "energy_by_kind": s.energy_by_kind,
            "messages_by_kind": s.messages_by_kind,
            "energy_by_stage": s.energy_by_stage,
            "messages_by_stage": s.messages_by_stage,
            "rx_energy_total": s.rx_energy_total,
            "receptions_total": s.receptions_total,
        },
    }


def save_result(result: AlgorithmResult, path: str | Path) -> Path:
    """Write one run's record to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=1))
    return path


def _jsonable(obj):
    """Best-effort conversion of extras (numpy scalars/arrays) to JSON."""
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    return obj
