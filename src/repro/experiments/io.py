"""JSON persistence for experiment results.

Sweeps are expensive (hundreds of full distributed simulations at the
paper's grid), so benches and downstream analyses need to save and reload
them.  The schema is deliberately plain JSON — no pickle — so results are
diffable and portable.  Every payload is stamped with ``schema_version``
(writers before the runspec layer used ``schema``; loaders accept both)
and numpy leakage is normalized through the one canonical
:func:`repro.runspec.spec.jsonable` helper.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.algorithms.base import AlgorithmResult
from repro.errors import ExperimentError
from repro.experiments.config import SweepConfig
from repro.experiments.runner import EnergySweep
from repro.runspec.report import result_to_dict
from repro.runspec.spec import SCHEMA_VERSION, jsonable

__all__ = [
    "SCHEMA_VERSION",
    "sweep_to_dict",
    "sweep_from_dict",
    "save_sweep",
    "load_sweep",
    "result_to_dict",
    "save_result",
]


def _check_schema(data: dict, kind: str) -> None:
    """Validate the ``kind`` and ``schema_version`` stamps of a payload."""
    if data.get("kind") != kind:
        raise ExperimentError(f"not an {kind} payload: {data.get('kind')!r}")
    version = data.get("schema_version", data.get("schema"))
    if version != SCHEMA_VERSION:
        raise ExperimentError(f"unsupported schema version {version!r}")


def sweep_to_dict(sweep: EnergySweep) -> dict:
    """Convert an :class:`EnergySweep` to plain JSON-serialisable data."""
    cfg = sweep.config
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "energy_sweep",
        "config": {
            "ns": list(cfg.ns),
            "seeds": list(cfg.seeds),
            "algorithms": list(cfg.algorithms),
            "ghs_radius_const": cfg.ghs_radius_const,
            "eopt_c1": cfg.eopt_c1,
            "eopt_c2": cfg.eopt_c2,
            "eopt_beta": cfg.eopt_beta,
        },
        "energy": {a: sweep.energy[a].tolist() for a in cfg.algorithms},
        "messages": {a: sweep.messages[a].tolist() for a in cfg.algorithms},
        "rounds": {a: sweep.rounds[a].tolist() for a in cfg.algorithms},
    }


def sweep_from_dict(data: dict) -> EnergySweep:
    """Inverse of :func:`sweep_to_dict` (validates the schema)."""
    _check_schema(data, "energy_sweep")
    c = data["config"]
    cfg = SweepConfig(
        ns=tuple(c["ns"]),
        seeds=tuple(c["seeds"]),
        algorithms=tuple(c["algorithms"]),
        ghs_radius_const=c["ghs_radius_const"],
        eopt_c1=c["eopt_c1"],
        eopt_c2=c["eopt_c2"],
        eopt_beta=c["eopt_beta"],
    )
    shape = (len(cfg.ns), len(cfg.seeds))

    def load(block: dict, dtype) -> dict[str, np.ndarray]:
        out = {}
        for alg in cfg.algorithms:
            arr = np.asarray(block[alg], dtype=dtype)
            if arr.shape != shape:
                raise ExperimentError(
                    f"array for {alg!r} has shape {arr.shape}, expected {shape}"
                )
            out[alg] = arr
        return out

    return EnergySweep(
        config=cfg,
        energy=load(data["energy"], float),
        messages=load(data["messages"], np.int64),
        rounds=load(data["rounds"], np.int64),
    )


def save_sweep(sweep: EnergySweep, path: str | Path) -> Path:
    """Write a sweep to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(jsonable(sweep_to_dict(sweep)), indent=1))
    return path


def load_sweep(path: str | Path) -> EnergySweep:
    """Read a sweep previously written by :func:`save_sweep`."""
    return sweep_from_dict(json.loads(Path(path).read_text()))


def save_result(result: AlgorithmResult, path: str | Path) -> Path:
    """Write one run's record to ``path`` as JSON; returns the path.

    The payload is :func:`repro.runspec.report.result_to_dict` — the full
    statistics record the runspec layer archives inside run reports.
    """
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=1))
    return path
