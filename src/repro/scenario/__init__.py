"""The scenario plane: declarative timed event schedules over a run.

A :class:`ScenarioPlan` is a frozen, JSON-round-trippable list of timed
events — node crashes (permanent or transient), joins, graceful leaves,
waypoint ``move`` steps over the unit square, and ``repair``/``rebuild``
maintenance checkpoints.  It lives inside :class:`~repro.runspec.spec.
RunSpec` exactly like a :class:`~repro.sim.faults.FaultPlan` does, hashes
into ``spec_hash``/``result_key``, and is interpreted by the
:class:`ScenarioScheduler`, which drives the registered ``MAINT``
workload (:mod:`repro.applications.maintenance`): between maintenance
cycles the world mutates, at each checkpoint the surviving spanning
forest is reconnected incrementally (or rebuilt from scratch) by the GHS
machinery, and a repair-vs-rebuild energy ledger lands in the
:class:`~repro.runspec.report.RunReport`.  See ``docs/scenarios.md``.
"""

from repro.scenario.plan import (
    EVENT_KINDS,
    ScenarioEvent,
    ScenarioPlan,
    scenarioplan_from_dict,
    scenarioplan_to_dict,
)

__all__ = [
    "EVENT_KINDS",
    "ScenarioEvent",
    "ScenarioPlan",
    "ScenarioScheduler",
    "scenarioplan_from_dict",
    "scenarioplan_to_dict",
]


def __getattr__(name: str):
    # The scheduler drags in the whole sim/GHS stack; load it lazily so
    # that `repro.runspec.spec` (which only needs the plan types) stays
    # cheap to import.
    if name == "ScenarioScheduler":
        from repro.scenario.scheduler import ScenarioScheduler

        return ScenarioScheduler
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
