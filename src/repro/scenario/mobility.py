"""Deterministic scenario generators: churn and waypoint mobility.

These build :class:`~repro.scenario.plan.ScenarioPlan` values from a
seed, so a whole churn sweep is reproducible from ``(n, seed,
scenario_seed)`` alone.  Positions for ``join``/``move`` events are
drawn uniformly over the unit square — the classic random-waypoint
model's destination draw — because plan generation happens *before* the
instance exists (the plan must not depend on the instance points, or
the spec hash would have to capture them).

The generators only ever schedule events for node ids that are
guaranteed alive at application time (initial ids minus prior
casualties, plus prior joins), so any generated plan replays cleanly.
"""

from __future__ import annotations

import numpy as np

from repro.scenario.plan import ScenarioEvent, ScenarioPlan

__all__ = ["churn_plan", "waypoint_plan", "mixed_plan", "PRESETS"]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(int(seed) & ((1 << 63) - 1))


def churn_plan(
    n: int,
    *,
    seed: int = 0,
    cycles: int = 3,
    crashes_per_cycle: int = 2,
    transient_rate: float = 0.5,
    joins_per_cycle: int = 1,
    gap: int = 40,
    checkpoint: str = "repair",
    min_alive: int = 4,
) -> ScenarioPlan:
    """Node churn: crashes (some transient) + joins, one checkpoint per cycle.

    ``checkpoint`` selects ``repair`` (incremental) or ``rebuild``
    (from scratch) — the bench runs the *same* schedule both ways to
    measure the repair-vs-rebuild energy gap.
    """
    rng = _rng(seed)
    alive = list(range(int(n)))
    next_id = int(n)
    events: list[ScenarioEvent] = []
    rnd = 0
    for _ in range(int(cycles)):
        rnd += int(gap)
        k = min(int(crashes_per_cycle), max(0, len(alive) - int(min_alive)))
        victims = sorted(
            int(alive[i]) for i in rng.choice(len(alive), size=k, replace=False)
        )
        for v in victims:
            if rng.random() < transient_rate:
                dur = int(rng.integers(3, 12))
                events.append(ScenarioEvent(round=rnd, kind="crash", node=v, duration=dur))
            else:
                events.append(ScenarioEvent(round=rnd, kind="crash", node=v))
                alive.remove(v)
        for _ in range(int(joins_per_cycle)):
            x, y = rng.random(2)
            events.append(ScenarioEvent(round=rnd, kind="join", x=float(x), y=float(y)))
            alive.append(next_id)
            next_id += 1
        events.append(ScenarioEvent(round=rnd, kind=checkpoint))
    return ScenarioPlan(events=tuple(events))


def waypoint_plan(
    n: int,
    *,
    seed: int = 0,
    cycles: int = 3,
    movers_per_cycle: int = 3,
    gap: int = 40,
    checkpoint: str = "repair",
) -> ScenarioPlan:
    """Pure mobility: each cycle a few nodes jump to fresh waypoints."""
    rng = _rng(seed)
    n = int(n)
    events: list[ScenarioEvent] = []
    rnd = 0
    for _ in range(int(cycles)):
        rnd += int(gap)
        k = min(int(movers_per_cycle), n)
        movers = sorted(int(i) for i in rng.choice(n, size=k, replace=False))
        for v in movers:
            x, y = rng.random(2)
            events.append(
                ScenarioEvent(round=rnd, kind="move", node=v, x=float(x), y=float(y))
            )
        events.append(ScenarioEvent(round=rnd, kind=checkpoint))
    return ScenarioPlan(events=tuple(events))


def mixed_plan(
    n: int,
    *,
    seed: int = 0,
    cycles: int = 3,
    gap: int = 40,
    checkpoint: str = "repair",
) -> ScenarioPlan:
    """Crash + join + move churn — the acceptance-criteria workload."""
    rng = _rng(seed)
    alive = list(range(int(n)))
    next_id = int(n)
    events: list[ScenarioEvent] = []
    rnd = 0
    for _ in range(int(cycles)):
        rnd += int(gap)
        if len(alive) > 4:
            v = int(alive[int(rng.integers(len(alive)))])
            if rng.random() < 0.5:
                events.append(
                    ScenarioEvent(round=rnd, kind="crash", node=v,
                                  duration=int(rng.integers(3, 10)))
                )
            else:
                events.append(ScenarioEvent(round=rnd, kind="crash", node=v))
                alive.remove(v)
        x, y = rng.random(2)
        events.append(ScenarioEvent(round=rnd, kind="join", x=float(x), y=float(y)))
        alive.append(next_id)
        next_id += 1
        mover = int(alive[int(rng.integers(len(alive)))])
        x, y = rng.random(2)
        events.append(
            ScenarioEvent(round=rnd, kind="move", node=mover, x=float(x), y=float(y))
        )
        events.append(ScenarioEvent(round=rnd, kind=checkpoint))
    return ScenarioPlan(events=tuple(events))


#: Named presets for ``repro scenarios --emit`` (name -> plan factory).
PRESETS: dict[str, callable] = {
    "churn": churn_plan,
    "mobility": waypoint_plan,
    "mixed": mixed_plan,
}
