"""Frozen, hashable scenario plans: timed event schedules over a run.

A :class:`ScenarioPlan` is the scenario-plane twin of
:class:`~repro.sim.faults.FaultPlan`: a frozen value object that lives
inside a ``RunSpec``, serializes to canonical JSON, and therefore hashes
into ``spec_hash``/``result_key``.  It is pure data — interpretation
belongs to :class:`~repro.scenario.scheduler.ScenarioScheduler`.

Event model
-----------

Each :class:`ScenarioEvent` carries a ``round`` (a *minimum* global
round at which it may take effect), a ``kind``, and kind-specific
payload fields:

``crash``
    Node ``node`` fails.  ``duration is None`` means permanent;
    ``duration >= 1`` means the node is down for that many rounds from
    the start of the next maintenance cycle and then recovers
    (exercising the reliable-retry layer + ``GHSRecovery``).
``join``
    A brand-new node appears at ``(x, y)`` in the unit square.  Ids are
    assigned deterministically: the j-th join in the plan becomes node
    ``n0 + j`` where ``n0`` is the initial instance size.
``leave``
    Node ``node`` departs gracefully (same world effect as a permanent
    crash, but recorded separately in the ledger/trace).
``move``
    Node ``node`` relocates to ``(x, y)`` — one waypoint step of the
    mobility model.
``repair`` / ``rebuild``
    Maintenance checkpoints: all pending events are applied to the
    world, then the spanning structure is reconnected incrementally
    from the surviving forest (``repair``) or recomputed from scratch
    (``rebuild``).  A plan whose trailing events lack a checkpoint gets
    an implicit final ``repair``.

Rounds must be non-decreasing so that equal schedules have equal
canonical encodings (hash stability).  Fields that a kind does not use
must hold their defaults — again so that one semantic schedule has
exactly one encoding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ExperimentError

SCHEMA_VERSION = 1

#: Recognized event kinds, in canonical order.
EVENT_KINDS = ("crash", "join", "leave", "move", "repair", "rebuild")

#: Kinds that are maintenance checkpoints rather than world mutations.
CHECKPOINT_KINDS = ("repair", "rebuild")


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed event.  See the module docstring for the kind table."""

    round: int
    kind: str
    node: int = -1
    x: float = 0.0
    y: float = 0.0
    duration: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.round, int) or isinstance(self.round, bool):
            raise ExperimentError(f"event round must be an int, got {self.round!r}")
        if self.round < 0:
            raise ExperimentError(f"event round must be >= 0, got {self.round}")
        if self.kind not in EVENT_KINDS:
            raise ExperimentError(
                f"unknown event kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )
        if not isinstance(self.node, int) or isinstance(self.node, bool):
            raise ExperimentError(f"event node must be an int, got {self.node!r}")
        needs_node = self.kind in ("crash", "leave", "move")
        if needs_node and self.node < 0:
            raise ExperimentError(f"{self.kind} event needs node >= 0, got {self.node}")
        if not needs_node and self.node != -1:
            raise ExperimentError(
                f"{self.kind} event must leave node at -1, got {self.node}"
            )
        has_pos = self.kind in ("join", "move")
        for name, v in (("x", self.x), ("y", self.y)):
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                raise ExperimentError(f"event {name} must be a number, got {v!r}")
            if has_pos and not 0.0 <= float(v) <= 1.0:
                raise ExperimentError(
                    f"{self.kind} event {name}={v!r} outside the unit square"
                )
            if not has_pos and float(v) != 0.0:
                raise ExperimentError(
                    f"{self.kind} event must leave {name} at 0.0, got {v!r}"
                )
        if self.duration is not None:
            if self.kind != "crash":
                raise ExperimentError(f"{self.kind} event cannot carry a duration")
            if not isinstance(self.duration, int) or isinstance(self.duration, bool):
                raise ExperimentError(
                    f"crash duration must be an int or None, got {self.duration!r}"
                )
            if self.duration < 1:
                raise ExperimentError(
                    f"transient crash duration must be >= 1, got {self.duration}"
                )
        # Canonicalize x/y to float so (0 vs 0.0) cannot split the hash.
        object.__setattr__(self, "x", float(self.x))
        object.__setattr__(self, "y", float(self.y))

    def to_row(self) -> list:
        """Compact row encoding: ``[round, kind, node, x, y, duration]``."""
        return [self.round, self.kind, self.node, self.x, self.y, self.duration]

    @classmethod
    def from_row(cls, row) -> "ScenarioEvent":
        if not isinstance(row, (list, tuple)) or len(row) != 6:
            raise ExperimentError(f"scenario event row must have 6 fields, got {row!r}")
        rnd, kind, node, x, y, duration = row
        return cls(round=rnd, kind=kind, node=node, x=x, y=y, duration=duration)


@dataclass(frozen=True)
class ScenarioPlan:
    """An ordered, frozen schedule of :class:`ScenarioEvent`\\ s."""

    events: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        events = tuple(self.events)
        prev = 0
        for ev in events:
            if not isinstance(ev, ScenarioEvent):
                raise ExperimentError(
                    f"ScenarioPlan events must be ScenarioEvent, got {type(ev).__name__}"
                )
            if ev.round < prev:
                raise ExperimentError(
                    "scenario events must have non-decreasing rounds "
                    f"(round {ev.round} after {prev})"
                )
            prev = ev.round
        object.__setattr__(self, "events", events)

    @property
    def is_null(self) -> bool:
        """True when the plan schedules nothing."""
        return not self.events

    def n_joins(self) -> int:
        return sum(1 for ev in self.events if ev.kind == "join")

    def max_node(self) -> int:
        """Largest node id referenced by any event (-1 if none)."""
        return max((ev.node for ev in self.events), default=-1)

    # ---------------------------------------------------------------- JSON

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "scenario_plan",
            "events": [ev.to_row() for ev in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioPlan":
        if not isinstance(payload, dict):
            raise ExperimentError(f"scenario plan payload must be a dict, got {payload!r}")
        data = dict(payload)
        version = data.pop("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ExperimentError(f"unsupported scenario_plan schema_version {version!r}")
        kind = data.pop("kind", "scenario_plan")
        if kind != "scenario_plan":
            raise ExperimentError(f"expected kind 'scenario_plan', got {kind!r}")
        rows = data.pop("events", [])
        if data:
            raise ExperimentError(
                f"unknown scenario_plan fields: {sorted(data.keys())}"
            )
        if not isinstance(rows, (list, tuple)):
            raise ExperimentError("scenario_plan events must be a list of rows")
        return cls(events=tuple(ScenarioEvent.from_row(row) for row in rows))

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioPlan":
        return cls.from_dict(json.loads(text))


def scenarioplan_to_dict(plan: "ScenarioPlan | None") -> dict | None:
    """Serialize for embedding in a RunSpec payload (None passes through)."""
    if plan is None:
        return None
    return plan.to_dict()


def scenarioplan_from_dict(payload) -> "ScenarioPlan | None":
    """Inverse of :func:`scenarioplan_to_dict` (idempotent on plans/None)."""
    if payload is None or isinstance(payload, ScenarioPlan):
        return payload
    return ScenarioPlan.from_dict(payload)
