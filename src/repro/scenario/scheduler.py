"""Interpreter for :class:`~repro.scenario.plan.ScenarioPlan` schedules.

The scheduler owns the *world state* of a dynamic run — node positions
over the unit square, an alive mask, the current spanning structure and
a global round clock — and turns a declarative event schedule into a
sequence of **maintenance cycles**.  Between checkpoints events mutate
the world (crash/join/leave/move); at each ``repair``/``rebuild``
checkpoint a kernel is built over the compacted alive set and the GHS
machinery reconnects the surviving forest incrementally (``repair``) or
recomputes it from scratch (``rebuild``).

Determinism contract (what the scenario tests pin):

* World ids are **global**: the j-th join is node ``n0 + j`` forever;
  every cycle compacts the alive set densely and maps results back, so
  reports are invariant to backend choice and process placement.
* The global clock advances in lockstep with kernel rounds through the
  kernel's round hook (``set_round_hook``) — one global round per kernel
  round on every backend (fast/legacy/turbo), which is what makes event
  application a *round-boundary* notion on all kernel paths.
* Checkpoint rounds are minimums: the kernel idles (``tick``) until the
  clock reaches the scheduled round, so transient crash windows land at
  deterministic global rounds.
* Transient crashes become per-cycle :class:`~repro.sim.faults.
  FaultPlan` windows with *finite* ends — the node is radio-off when
  the cycle starts and recovers mid-cycle, engaging the reliable-retry
  layer + :class:`~repro.algorithms.ghs.driver.GHSRecovery` exactly as
  the fault plane does for one-shot runs.
* Per-cycle stats merge in cycle order (float sums included), so the
  merged :class:`~repro.sim.energy.SimStats` is bit-identical whenever
  every cycle is.

Fault-free cycles on the turbo backend satisfy the whole-round phase
engine's eligibility (the engine syncs pre-seeded fragment state in),
so clean repair cycles run vectorized and still trace-diff clean
against the scalar backends.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import AlgorithmResult, collect_tree_edges
from repro.algorithms.ghs.driver import GHSRecovery, hello_round, run_ghs_phases
from repro.algorithms.ghs.node import GHSNode
from repro.ds.unionfind import UnionFind
from repro.errors import ExperimentError
from repro.geometry.radius import PAPER_GHS_RADIUS_CONST, connectivity_radius
from repro.scenario.plan import CHECKPOINT_KINDS, ScenarioEvent, ScenarioPlan
from repro.sim.energy import SimStats
from repro.sim.faults import FaultPlan
from repro.sim.kernel import SynchronousKernel
from repro.sim.power import PathLossModel
from repro.trace import trace

__all__ = ["ScenarioScheduler"]

#: Odd 64-bit constant decorrelating per-cycle fault seeds.
_SEED_MIX = 0x9E3779B97F4A7C15
_M63 = (1 << 63) - 1


def _canonical_edges(edges: np.ndarray) -> np.ndarray:
    """Sort each row ``u < v``, then lexsort rows — one canonical order."""
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if not len(e):
        return e
    e = np.sort(e, axis=1)
    return e[np.lexsort((e[:, 1], e[:, 0]))]


class ScenarioScheduler:
    """Stateful interpreter: world mutations + maintenance cycles.

    Two usage modes share one engine:

    * :meth:`run_plan` consumes an embedded :class:`ScenarioPlan`
      (what the registered ``MAINT`` workload does);
    * the incremental API (:meth:`crash`/:meth:`join`/:meth:`leave`/
      :meth:`move`/:meth:`checkpoint`) lets the fuzz world drive several
      backends through the *same* event sequence in lockstep.
    """

    def __init__(
        self,
        points: np.ndarray,
        *,
        radius_const: float = PAPER_GHS_RADIUS_CONST,
        power: PathLossModel | None = None,
        rx_cost: float = 0.0,
        kernel_cls: type[SynchronousKernel] = SynchronousKernel,
        planes: bool = True,
        faults: FaultPlan | None = None,
        recover: bool = True,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ExperimentError(f"points must have shape (n, 2), got {pts.shape}")
        if faults is not None and (faults.crashes or faults.link_loss):
            raise ExperimentError(
                "scenario runs cannot compose with FaultPlan crashes/link_loss: "
                "node ids are re-compacted every cycle (schedule crashes as "
                "scenario events instead; drop/dup/seed compose fine)"
            )
        self.n0 = len(pts)
        self.positions = pts.copy()
        self.alive = np.ones(self.n0, dtype=bool)
        self.tree = np.empty((0, 2), dtype=np.int64)
        self.clock = 0
        self.cycle = 0
        self.radius_const = float(radius_const)
        self.power = power
        self.rx_cost = float(rx_cost)
        self.kernel_cls = kernel_cls
        self.planes = bool(planes)
        self.faults = faults
        self.recover = bool(recover)
        # Pending transient-crash windows for the next cycle: gid -> rounds.
        self._transients: dict[int, int] = {}
        # Merged-stats accumulators (cycle order — see module docstring).
        self._energy_total = 0.0
        self._messages_total = 0
        self._rx_energy_total = 0.0
        self._receptions_total = 0
        self._energy_by_kind: dict[str, float] = {}
        self._messages_by_kind: dict[str, int] = {}
        self._energy_by_stage: dict[str, float] = {}
        self._messages_by_stage: dict[str, int] = {}
        self._drops_by_kind: dict[str, int] = {}
        self._dups_by_kind: dict[str, int] = {}
        self._crash_drops_by_kind: dict[str, int] = {}
        self._energy_node: dict[int, float] = {}
        self._rx_energy_node: dict[int, float] = {}
        self._phases_total = 0
        self._cycles: list[dict] = []
        self._energy_by_cycle_kind: dict[str, float] = {}
        self._event_counts: dict[str, int] = {}

    # ------------------------------------------------------------ mutations

    def _require_alive(self, node: int, what: str) -> int:
        gid = int(node)
        if not 0 <= gid < len(self.positions) or not self.alive[gid]:
            raise ExperimentError(f"{what} targets node {gid}, which is not alive")
        return gid

    def _record(self, kind: str, **fields) -> None:
        self._event_counts[kind] = self._event_counts.get(kind, 0) + 1
        if trace.enabled:
            trace.emit(
                "scenario/event", event=kind, round=self.clock, cycle=self.cycle, **fields
            )

    def crash(self, node: int, duration: int | None = None) -> None:
        """Crash ``node``: permanently (``None``) or for ``duration`` rounds."""
        gid = self._require_alive(node, "crash")
        if duration is None:
            self.alive[gid] = False
            self._transients.pop(gid, None)
            self._record("crash", node=gid)
        else:
            d = int(duration)
            if d < 1:
                raise ExperimentError(f"transient crash duration must be >= 1, got {d}")
            self._transients[gid] = d
            self._record("crash", node=gid, duration=d)

    def join(self, x: float, y: float) -> int:
        """A new node appears at ``(x, y)``; returns its (global) id."""
        x, y = float(x), float(y)
        if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
            raise ExperimentError(f"join position ({x}, {y}) outside the unit square")
        gid = len(self.positions)
        self.positions = np.vstack([self.positions, [[x, y]]])
        self.alive = np.append(self.alive, True)
        self._record("join", node=gid, x=x, y=y)
        return gid

    def leave(self, node: int) -> None:
        """Node departs gracefully (ledgered separately from crashes)."""
        gid = self._require_alive(node, "leave")
        self.alive[gid] = False
        self._transients.pop(gid, None)
        self._record("leave", node=gid)

    def move(self, node: int, x: float, y: float) -> None:
        """Relocate ``node`` to ``(x, y)`` — one waypoint step."""
        gid = self._require_alive(node, "move")
        x, y = float(x), float(y)
        if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
            raise ExperimentError(f"move position ({x}, {y}) outside the unit square")
        self.positions[gid] = (x, y)
        self._record("move", node=gid, x=x, y=y)

    def apply_event(self, ev: ScenarioEvent) -> None:
        """Apply one non-checkpoint plan event to the world."""
        if ev.kind == "crash":
            self.crash(ev.node, ev.duration)
        elif ev.kind == "join":
            self.join(ev.x, ev.y)
        elif ev.kind == "leave":
            self.leave(ev.node)
        elif ev.kind == "move":
            self.move(ev.node, ev.x, ev.y)
        else:
            raise ExperimentError(f"{ev.kind} is a checkpoint, not a world event")

    # --------------------------------------------------------------- cycles

    def alive_ids(self) -> np.ndarray:
        """Global ids of currently-alive nodes (sorted)."""
        return np.flatnonzero(self.alive).astype(np.int64)

    def build(self) -> None:
        """Run the initial construction cycle (full MGHS, empty forest)."""
        if self.cycle != 0:
            raise ExperimentError("build() must be the first cycle")
        self._run_cycle("build", at_round=0)

    def checkpoint(self, kind: str, at_round: int | None = None) -> None:
        """Run a maintenance cycle of ``kind`` (``repair``/``rebuild``)."""
        if kind not in CHECKPOINT_KINDS:
            raise ExperimentError(f"unknown checkpoint kind {kind!r}")
        if self.cycle == 0:
            raise ExperimentError("call build() before the first checkpoint")
        self._run_cycle(kind, at_round=at_round)

    def _cycle_faults(self, g2l: dict[int, int], idle: int) -> FaultPlan | None:
        crashes = []
        for gid in sorted(self._transients):
            li = g2l.get(gid)
            if li is None:
                continue
            d = self._transients[gid]
            crashes.append((li, idle, idle + d))
        self._transients.clear()
        base = self.faults
        base_live = base is not None and not base.is_null
        if not crashes and not base_live:
            return None
        seed = base.seed if base is not None else 0
        return FaultPlan(
            seed=(seed ^ (self.cycle * _SEED_MIX)) & _M63,
            drop_rate=base.drop_rate if base is not None else 0.0,
            dup_rate=base.dup_rate if base is not None else 0.0,
            crashes=tuple(crashes),
        )

    def _run_cycle(self, kind: str, at_round: int | None) -> None:
        ids = self.alive_ids()
        m = int(ids.size)
        if m == 0:
            raise ExperimentError(f"{kind} checkpoint with no alive nodes")
        target = self.clock if at_round is None else max(int(at_round), self.clock)
        idle = target - self.clock
        g2l = {int(g): i for i, g in enumerate(ids)}
        sub_pts = self.positions[ids]
        # max(m, 2): the n=1 connectivity radius is 0, which is not a
        # legal kernel power cap; a singleton still needs a radio.
        r = connectivity_radius(max(m, 2), self.radius_const)

        plan = self._cycle_faults(g2l, idle)
        reliable = plan is not None and not plan.is_null and self.recover
        kwargs = {"faults": plan} if plan is not None else {}
        kernel = self.kernel_cls(
            sub_pts, max_radius=r, power=self.power, rx_cost=self.rx_cost, **kwargs
        )
        kernel.add_nodes(
            lambda i, ctx: GHSNode(
                i, ctx, use_tests=False, announce=True, reliable=reliable
            )
        )
        nodes = kernel.nodes

        # Seed the surviving forest (repair only): drop edges with a dead
        # endpoint or longer than the new operating radius, install the
        # remainder as fragment structure with max-id leaders — the same
        # conservative charging as repair_after_failures().
        fragments = m
        if kind == "repair" and len(self.tree):
            e = self.tree
            keep = self.alive[e[:, 0]] & self.alive[e[:, 1]]
            e = e[keep]
            if len(e):
                span = self.positions[e[:, 0]] - self.positions[e[:, 1]]
                e = e[np.hypot(span[:, 0], span[:, 1]) <= r]
            old_to_new = np.full(len(self.positions), -1, dtype=np.int64)
            old_to_new[ids] = np.arange(m)
            forest = old_to_new[e]
            uf = UnionFind(m)
            for u, v in forest:
                nodes[int(u)].tree_edges.add(int(v))
                nodes[int(v)].tree_edges.add(int(u))
                uf.union(int(u), int(v))
            leader_of: dict[int, int] = {}
            for i in range(m):
                root = uf.find(i)
                leader_of[root] = max(leader_of.get(root, -1), i)
            leaders = set(leader_of.values())
            for nd in nodes:
                nd.leader = nd.id in leaders
                nd.fid = leader_of[uf.find(nd.id)]
            fragments = len(leaders)

        recovery = (
            GHSRecovery(kernel, nodes, verify_fids=True) if reliable else None
        )
        kernel.start()
        clock0 = self.clock
        kernel.set_round_hook(lambda rounds: setattr(self, "clock", clock0 + rounds))
        for _ in range(idle):
            kernel.tick()
        kernel.set_stage(f"{kind}:hello")
        hello_round(kernel, r, planes=self.planes, recovery=recovery)
        kernel.set_stage(f"{kind}:ghs")
        phases = run_ghs_phases(kernel, nodes, recovery=recovery)
        kernel.set_round_hook(None)

        edges_local = collect_tree_edges((nd.id, nd.tree_edges) for nd in nodes)
        self.tree = _canonical_edges(ids[edges_local]) if len(edges_local) else (
            np.empty((0, 2), dtype=np.int64)
        )
        st = kernel.stats()
        self.clock = clock0 + st.rounds
        self._merge_stats(st, ids)
        self._phases_total += phases
        self._energy_by_cycle_kind[kind] = (
            self._energy_by_cycle_kind.get(kind, 0.0) + st.energy_total
        )
        row = {
            "cycle": self.cycle,
            "kind": kind,
            "round_start": clock0,
            "round_end": self.clock,
            "idle": idle,
            "alive": m,
            "radius": r,
            "initial_fragments": fragments,
            "phases": phases,
            "rounds": st.rounds,
            "energy": st.energy_total,
            "messages": st.messages_total,
            "tree_edges": int(len(self.tree)),
        }
        self._cycles.append(row)
        if trace.enabled:
            trace.emit("repair/summary", **row)
        self.cycle += 1

    def _merge_stats(self, st: SimStats, ids: np.ndarray) -> None:
        self._energy_total += st.energy_total
        self._messages_total += st.messages_total
        self._rx_energy_total += st.rx_energy_total
        self._receptions_total += st.receptions_total
        for merged, part in (
            (self._energy_by_kind, st.energy_by_kind),
            (self._messages_by_kind, st.messages_by_kind),
            (self._energy_by_stage, st.energy_by_stage),
            (self._messages_by_stage, st.messages_by_stage),
            (self._drops_by_kind, st.drops_by_kind),
            (self._dups_by_kind, st.dup_deliveries_by_kind),
            (self._crash_drops_by_kind, st.crash_drops_by_kind),
        ):
            for k, v in part.items():
                merged[k] = merged.get(k, type(v)(0)) + v
        for li, gid in enumerate(ids):
            gid = int(gid)
            self._energy_node[gid] = self._energy_node.get(gid, 0.0) + float(
                st.energy_by_node[li]
            )
            if st.rx_energy_by_node is not None and len(st.rx_energy_by_node):
                self._rx_energy_node[gid] = self._rx_energy_node.get(gid, 0.0) + float(
                    st.rx_energy_by_node[li]
                )

    # --------------------------------------------------------------- results

    def stats(self) -> SimStats:
        """Merged stats over all cycles, indexed by *global* node id."""
        n = len(self.positions)
        energy_by_node = np.zeros(n, dtype=float)
        for gid, e in self._energy_node.items():
            energy_by_node[gid] = e
        rx_by_node = np.zeros(n, dtype=float)
        for gid, e in self._rx_energy_node.items():
            rx_by_node[gid] = e
        return SimStats(
            energy_total=self._energy_total,
            messages_total=self._messages_total,
            rounds=self.clock,
            energy_by_kind=dict(self._energy_by_kind),
            messages_by_kind=dict(self._messages_by_kind),
            energy_by_stage=dict(self._energy_by_stage),
            messages_by_stage=dict(self._messages_by_stage),
            energy_by_node=energy_by_node,
            rx_energy_total=self._rx_energy_total,
            receptions_total=self._receptions_total,
            rx_energy_by_node=rx_by_node,
            drops_by_kind=dict(self._drops_by_kind),
            dup_deliveries_by_kind=dict(self._dups_by_kind),
            crash_drops_by_kind=dict(self._crash_drops_by_kind),
        )

    def result(self) -> AlgorithmResult:
        """Merged :class:`AlgorithmResult` over the whole scenario."""
        alive_ids = self.alive_ids()
        ledger = {
            f"{k}_energy": self._energy_by_cycle_kind.get(k, 0.0)
            for k in ("build", "repair", "rebuild")
        }
        return AlgorithmResult(
            name="MAINT",
            n=len(self.positions),
            tree_edges=self.tree,
            stats=self.stats(),
            phases=self._phases_total,
            extras={
                "n_initial": self.n0,
                "n_alive": int(alive_ids.size),
                "n_cycles": self.cycle,
                "survivor_ids": [int(g) for g in alive_ids],
                "events": dict(sorted(self._event_counts.items())),
                "cycles": list(self._cycles),
                **ledger,
            },
        )

    def run_plan(self, plan: ScenarioPlan | None) -> AlgorithmResult:
        """Interpret a full plan: build, apply events, checkpoint, merge."""
        self.build()
        dirty = False
        for ev in (plan.events if plan is not None else ()):
            if ev.kind in CHECKPOINT_KINDS:
                self.checkpoint(ev.kind, at_round=ev.round)
                dirty = False
            else:
                self.apply_event(ev)
                dirty = True
        if dirty:
            # Trailing events without a checkpoint get an implicit repair.
            self.checkpoint("repair")
        return self.result()
