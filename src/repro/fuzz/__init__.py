"""Stateful protocol fuzzing for the GHS family and its reliable layer.

The subsystem has two halves:

* hypothesis-free core — :mod:`~repro.fuzz.harness` (a resumable,
  step-at-a-time twin of the recovery driver), :mod:`~repro.fuzz.world`,
  :mod:`~repro.fuzz.retry_world` and :mod:`~repro.fuzz.connt_world`
  (rule targets with built-in
  invariants), :mod:`~repro.fuzz.recorder` (fate-determinism replay),
  :mod:`~repro.fuzz.corpus` (exact-replay scenario JSON).  These import
  with the base toolchain and power the tier-1 corpus regression tests.
* hypothesis layer — :mod:`~repro.fuzz.machine` (the state machines and
  :func:`~repro.fuzz.machine.run_fuzz`) and :mod:`~repro.fuzz.
  strategies`.  Imported lazily so environments without hypothesis can
  still replay the corpus.

Entry points: ``repro fuzz`` (CLI), ``make fuzz-smoke`` / ``fuzz-deep``.
See ``docs/fuzzing.md``.
"""

from repro.fuzz.corpus import (
    iter_corpus,
    load_scenario,
    replay_scenario,
    save_scenario,
)
from repro.fuzz.connt_world import ConntRetryWorld
from repro.fuzz.harness import StepHarness
from repro.fuzz.recorder import RecordingFaultPlane, verify_fate_determinism
from repro.fuzz.retry_world import RetryFuzzWorld
from repro.fuzz.world import GHSFuzzWorld, default_configs

__all__ = [
    "StepHarness",
    "GHSFuzzWorld",
    "RetryFuzzWorld",
    "ConntRetryWorld",
    "RecordingFaultPlane",
    "verify_fate_determinism",
    "default_configs",
    "iter_corpus",
    "load_scenario",
    "replay_scenario",
    "save_scenario",
]
