"""Co-NNT reliable-layer fuzzing world (ROADMAP item 4 headroom).

The retry world fuzzes :class:`~repro.sim.faults.RetryBuffer` bare; this
world fuzzes it *embedded* — the REPLY/CONNECTION traffic of a real
Co-NNT run, where the reliable layer carries protocol safety (a missed
REPLY strands a searcher, a missed CONNECTION leaves an asymmetric tree
edge).  The driver loop is re-cut into fuzz rules so adversarial crash
windows and retry bursts can land *between* probe phases, interleavings
the runner's fixed loop never produces.

Invariants at finish (``check_final``) are the retry world's contract
lifted to the protocol:

* drain termination — no live node holds unacked traffic;
* at-most-once — no receiver accepts the same ``(sender, seq)`` twice
  (observed through a recording RetryBuffer, not inferred);
* surviving-sender exactly-once — for every (sender, receiver) pair the
  receiver accepted exactly ``sender.next_seq[receiver]`` messages:
  every reliable REPLY/CONNECTION that was ever sent got through once;
* seen-watermark compaction — out-of-order sets empty, watermarks equal
  to stream lengths, for every surviving sender;
* protocol safety on top — recorded tree edges are symmetric, every
  connection is rank-monotone (to a strictly higher diagonal key), and
  every live non-top node ends connected;
* fate determinism — replaying the recorded fault queries against a
  fresh plane yields identical fates.

Mid-run *permanent* deaths are excluded by construction (as in the
retry world's plan normalization): Co-NNT retries reliable traffic to a
gone-forever peer until exhaustion, which is the documented out-of-scope
"participated then died" case.  Initial dead nodes (never started) and
finite transient windows are the supported fault envelope.
"""

from __future__ import annotations

import math

from repro.algorithms.connt.node import CoNNTNode, diagonal_key
from repro.algorithms.connt.runner import _reprobe_stranded
from repro.errors import ProtocolError
from repro.fuzz.recorder import RecordingFaultPlane, verify_fate_determinism
from repro.sim.faults import FaultPlan, RetryBuffer, drain_reliable
from repro.sim.kernel import SynchronousKernel

__all__ = ["ConntRetryWorld", "ConntFuzzNode", "RecordingRetryBuffer"]

#: Sentinel crash window forcing a null plan to compile (mid-run window
#: mutation needs a plane to exist); see retry_world._FAR.
_FAR = 1 << 40


class RecordingRetryBuffer(RetryBuffer):
    """A RetryBuffer that logs every *accepted* delivery.

    The at-most-once and exactly-once invariants must be observed, not
    inferred from protocol state — dedup could silently double-deliver
    and still leave a plausible-looking tree.  ``RetryBuffer`` has
    ``__slots__``, so recording is a subclass, not a monkey-patch.
    """

    __slots__ = ("accepted",)

    def __init__(self, ctx, **kwargs) -> None:
        super().__init__(ctx, **kwargs)
        #: Every (src, seq) this buffer's owner accepted, in order.
        self.accepted: list[tuple[int, int]] = []

    def accept(self, src: int, seq: int) -> bool:
        ok = super().accept(src, seq)
        if ok:
            self.accepted.append((src, seq))
        return ok


class ConntFuzzNode(CoNNTNode):
    """A reliable Co-NNT node whose retry layer records acceptances."""

    __slots__ = ()

    def __init__(self, node_id: int, ctx) -> None:
        super().__init__(node_id, ctx, reliable=True)

    def on_start(self) -> None:
        super().on_start()
        self.retry = RecordingRetryBuffer(self.ctx)


class ConntRetryWorld:
    """One Co-NNT instance driven phase-by-phase under fuzz rules."""

    def __init__(
        self,
        *,
        n: int = 6,
        seed: int = 0,
        fault_seed: int = 0,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        link_loss: tuple = (),
        crashes: tuple = (),
        record_fates: bool = True,
    ) -> None:
        from repro.experiments.instances import get_points

        self.n = int(n)
        self.seed = int(seed)
        self.fault_seed = int(fault_seed)
        self.drop_rate = float(drop_rate)
        self.dup_rate = float(dup_rate)
        self.link_loss = tuple(
            ((int(u), int(v)), float(p)) for (u, v), p in link_loss
        )
        norm = []
        for spec in crashes:
            node, start = int(spec[0]), int(spec[1])
            end = spec[2] if len(spec) > 2 else None
            if end is None and start > 0:
                raise ProtocolError(
                    "connt-world plans only allow end=None crashes at start=0"
                )
            norm.append((node, start, end if end is None else int(end)))
        self.initial_crashes = tuple(norm)
        plan_crashes = self.initial_crashes
        if not plan_crashes and not any(
            (self.drop_rate, self.dup_rate, self.link_loss)
        ):
            plan_crashes = ((0, _FAR, _FAR + 1),)
        self.plan = FaultPlan(
            seed=self.fault_seed,
            drop_rate=self.drop_rate,
            dup_rate=self.dup_rate,
            link_loss=self.link_loss,
            crashes=plan_crashes,
        )
        self.kernel = SynchronousKernel(
            get_points(self.n, self.seed),
            max_radius=math.sqrt(2.0),
            expose_coordinates=True,
            faults=self.plan,
        )
        self.kernel.add_nodes(ConntFuzzNode)
        self.kernel.start()
        if record_fates:
            self.kernel.faults = RecordingFaultPlane(self.kernel.faults)
        self.nodes = self.kernel.nodes
        self.max_phase = int(math.ceil(math.log2(2.0 * max(self.n, 2)))) + 1
        #: Generous progress bound: each node decides within its own
        #: ``max_phase + 2`` probes; window stalls burn one tick each
        #: (durations are bounded by the machine's strategy).
        self.max_steps = 4 * (self.max_phase + 2) + 12 * self.n
        self.phase = 0
        self.steps = 0
        self.windowed: set[int] = {c[0] for c in self.initial_crashes}
        self.ops: list[list] = []
        self.finished = False
        self.failed = False

    # -- state predicates --------------------------------------------------

    @property
    def _plane(self):
        fp = self.kernel.faults
        return fp.inner if isinstance(fp, RecordingFaultPlane) else fp

    def _gone(self, node: int) -> bool:
        return self._plane.gone_forever(node, self.kernel.rounds)

    def active_searchers(self) -> list[int]:
        """Nodes still searching and not gone forever."""
        return [
            nd.id for nd in self.nodes if not nd.done and not self._gone(nd.id)
        ]

    # -- rules -------------------------------------------------------------

    def probe_step(self) -> None:
        """One protocol phase: probe wave, settle, decide, settle.

        Mirrors the runner's loop body exactly (including per-node phase
        resumption for nodes that slept through wakes in crash windows),
        so rule interleavings explore real executions.
        """
        self.ops.append(["probe_step"])
        self.steps += 1
        if self.steps > self.max_steps:
            self.failed = True
            raise ProtocolError(
                f"Co-NNT world made no progress within {self.max_steps} steps"
            )
        active = self.active_searchers()
        if not active:
            return
        rnd = self.kernel.rounds
        alive = [i for i in active if not self._plane.crashed(i, rnd)]
        try:
            if not alive:
                # Every searcher is inside a transient window: idle the
                # clock one round instead of probing nobody.
                self.kernel.tick()
                return
            self.phase += 1
            groups: dict[int, list[int]] = {}
            for i in alive:
                groups.setdefault(
                    min(self.nodes[i]._phase + 1, self.phase), []
                ).append(i)
            for ph in sorted(groups):
                self.kernel.wake(groups[ph], "probe", (ph,))
            self.kernel.run_until_quiescent()
            drain_reliable(self.kernel, self.nodes)
            self.kernel.wake(alive, "decide")
            self.kernel.run_until_quiescent()
            drain_reliable(self.kernel, self.nodes)
        except Exception:
            self.failed = True
            raise

    def run_rounds(self, k: int) -> None:
        """Idle the clock (ages crash windows and retry backoffs)."""
        self.ops.append(["run_rounds", int(k)])
        for _ in range(int(k)):
            self.kernel.tick()

    def retry_tick(self) -> None:
        """Adversarial mid-schedule retry burst on every able node."""
        self.ops.append(["retry_tick"])
        rnd = self.kernel.rounds
        able = [
            nd.id
            for nd in self.nodes
            if nd.retry is not None
            and nd.retry.pending
            and not self._plane.crashed(nd.id, rnd)
        ]
        try:
            if able:
                self.kernel.wake(able, "retry_tick")
            self.kernel.tick()
        except Exception:
            self.failed = True
            raise

    def crash(
        self, node: int, duration: int, expect_start: int | None = None
    ) -> int:
        """Open a transient radio-off window for ``node`` right now."""
        node, duration = int(node), int(duration)
        if node in self.windowed:
            raise ProtocolError(f"node {node} already has a crash window")
        if duration < 1:
            raise ProtocolError(f"crash duration must be >= 1, got {duration}")
        start = self.kernel.rounds
        if expect_start is not None and start != int(expect_start):
            self.failed = True
            raise ProtocolError(
                f"scenario drift: crash({node}) expected round "
                f"{expect_start}, replay reached {start}"
            )
        fp = self._plane
        fp._cstart[node] = start
        fp._cend[node] = start + duration
        fp.has_crashes = True
        self.windowed.add(node)
        self.ops.append(["crash", node, duration, start])
        return start

    def finish(self) -> None:
        """Drive the protocol to termination, then check the contract."""
        self.ops.append(["finish"])
        try:
            while self.active_searchers():
                self.steps += 1
                if self.steps > self.max_steps:
                    raise ProtocolError(
                        f"Co-NNT world did not terminate within "
                        f"{self.max_steps} steps"
                    )
                rnd = self.kernel.rounds
                alive = [
                    i
                    for i in self.active_searchers()
                    if not self._plane.crashed(i, rnd)
                ]
                if not alive:
                    self.kernel.tick()
                    continue
                self.phase += 1
                groups: dict[int, list[int]] = {}
                for i in alive:
                    groups.setdefault(
                        min(self.nodes[i]._phase + 1, self.phase), []
                    ).append(i)
                for ph in sorted(groups):
                    self.kernel.wake(groups[ph], "probe", (ph,))
                self.kernel.run_until_quiescent()
                drain_reliable(self.kernel, self.nodes)
                self.kernel.wake(alive, "decide")
                self.kernel.run_until_quiescent()
                drain_reliable(self.kernel, self.nodes)
            _reprobe_stranded(self.kernel, self.nodes, self.max_phase)
            drain_reliable(self.kernel, self.nodes)
            self.finished = True
            self.check_final()
        except Exception:
            self.failed = True
            raise

    # -- invariants --------------------------------------------------------

    def check_final(self) -> None:
        rnd = self.kernel.rounds
        fp = self._plane
        gone = {nd.id for nd in self.nodes if fp.gone_forever(nd.id, rnd)}
        live = [nd for nd in self.nodes if nd.id not in gone]

        # Drain termination: live nodes hold no unacked traffic.
        for nd in live:
            if nd.retry is not None and nd.retry.pending:
                raise ProtocolError(
                    f"live node {nd.id} holds {len(nd.retry.pending)} "
                    "unacked messages after finish"
                )

        # At-most-once: no (sender, seq) accepted twice by one receiver.
        for nd in self.nodes:
            if nd.retry is None:
                continue
            log = nd.retry.accepted
            if len(log) != len(set(log)):
                dupes = sorted(
                    {entry for entry in log if log.count(entry) > 1}
                )
                raise ProtocolError(
                    f"node {nd.id} accepted duplicates {dupes}"
                )

        # Surviving-sender exactly-once: the receiver accepted exactly
        # the sender's stream length — every reliable REPLY/CONNECTION
        # sent by a survivor was delivered, once.
        for receiver in self.nodes:
            if receiver.retry is None:
                continue
            by_sender: dict[int, int] = {}
            for src, _seq in receiver.retry.accepted:
                by_sender[src] = by_sender.get(src, 0) + 1
            for sender in self.nodes:
                if sender.id == receiver.id or sender.id in gone:
                    continue
                stream = (
                    sender.retry.next_seq.get(receiver.id, 0)
                    if sender.retry is not None
                    else 0
                )
                got = by_sender.get(sender.id, 0)
                if got != stream:
                    raise ProtocolError(
                        f"node {receiver.id} accepted {got} messages from "
                        f"surviving sender {sender.id}, stream length is "
                        f"{stream}"
                    )

        # Compaction: dedup state for surviving senders fully folded.
        for nd in self.nodes:
            if nd.retry is None:
                continue
            for src, extra in nd.retry.seen.items():
                if src in gone:
                    continue
                if extra:
                    raise ProtocolError(
                        f"node {nd.id} parked out-of-order seqs "
                        f"{sorted(extra)} from surviving sender {src}"
                    )
                sender = self.nodes[src]
                stream = (
                    sender.retry.next_seq.get(nd.id, 0)
                    if sender.retry is not None
                    else 0
                )
                lo = nd.retry._seen_lo.get(src, 0)
                if lo != stream:
                    raise ProtocolError(
                        f"node {nd.id} watermark for sender {src} is {lo}, "
                        f"expected stream length {stream}"
                    )

        # Protocol safety: symmetric, rank-monotone, everyone (but the
        # top-ranked survivor) connected.
        if live:
            top = max(
                live, key=lambda nd: diagonal_key(nd.x, nd.y, nd.id)
            ).id
            for nd in live:
                if nd.id == top:
                    continue
                tgt = nd.connected_to
                if tgt is None:
                    raise ProtocolError(
                        f"live non-top node {nd.id} ended unconnected"
                    )
                if diagonal_key(
                    self.nodes[tgt].x, self.nodes[tgt].y, tgt
                ) <= diagonal_key(nd.x, nd.y, nd.id):
                    raise ProtocolError(
                        f"node {nd.id} connected downrank to {tgt}"
                    )
                if tgt not in nd.tree_edges or (
                    tgt not in gone
                    and nd.id not in self.nodes[tgt].tree_edges
                ):
                    raise ProtocolError(
                        f"tree edge {nd.id} -> {tgt} is not symmetric"
                    )

        fpr = self.kernel.faults
        if isinstance(fpr, RecordingFaultPlane):
            verify_fate_determinism(fpr)

    # -- artifacts ---------------------------------------------------------

    def to_scenario(self) -> dict:
        return {
            "schema_version": 1,
            "kind": "fuzz_scenario",
            "machine": "connt",
            "params": {
                "n": self.n,
                "seed": self.seed,
                "fault_seed": self.fault_seed,
                "drop_rate": self.drop_rate,
                "dup_rate": self.dup_rate,
                "link_loss": [[u, v, p] for (u, v), p in self.link_loss],
                "crashes": [
                    [node, start, end]
                    for node, start, end in self.initial_crashes
                ],
            },
            "ops": [list(op) for op in self.ops],
        }
