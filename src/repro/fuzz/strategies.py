"""Shared hypothesis strategies for the fuzz machines.

Kept separate from :mod:`repro.fuzz.machine` so the value distributions
— which double as documentation of the explored envelope — are in one
place.  Rates are drawn from small curated grids rather than continuous
floats: the fault model quantizes probabilities into 64-bit thresholds
anyway, and grid values shrink to readable scenarios.
"""

from __future__ import annotations

from hypothesis import strategies as st

__all__ = [
    "drop_rates",
    "dup_rates",
    "link_loss_entries",
    "ghs_instances",
    "retry_instances",
    "connt_instances",
]

#: Loss/duplication grids: off, light, heavy (p=1.0 only on single links —
#: a global drop_rate of 1.0 can never terminate).
drop_rates = st.sampled_from([0.0, 0.05, 0.15, 0.25])
dup_rates = st.sampled_from([0.0, 0.1, 0.2])


def link_loss_entries(n_max: int):
    """Up to two lossy pair entries.

    Capped at p=0.5 — fuzz invariants must be deterministic truths, and
    the reliable layer's guarantee over a lossy link is only
    probabilistic: link loss applies to both directions, so one
    DATA+ACK round trip succeeds with probability (1-p)^2 per retry.
    At p=0.5 that is >=0.25, and exhausting the retry budget has odds
    ~0.75^400 = 1e-50 — never observed.  At p=0.9 it is ~0.01, and a
    *legitimate* retry exhaustion fires roughly once per 50 examples
    (the fuzzer found exactly this); p=1.0 is a permanently dead link
    the recovery contract excludes outright.  The p=1.0 threshold
    quantization itself is pinned by the unit fate tests.
    """
    pair = st.tuples(
        st.integers(0, n_max - 1), st.integers(0, n_max - 1)
    ).filter(lambda uv: uv[0] != uv[1])
    entry = st.tuples(pair, st.sampled_from([0.3, 0.5]))
    return st.lists(entry, max_size=2, unique_by=lambda e: e[0])


#: GHS-world constructor draws.  n stays small: every example runs the
#: full protocol once per registered kernel configuration.
ghs_instances = st.fixed_dictionaries(
    {
        "n": st.integers(12, 28),
        "seed": st.integers(0, 5),
        "algorithm": st.sampled_from(["MGHS", "MGHS", "MGHS", "GHS"]),
        "fault_seed": st.integers(0, 99),
        "drop_rate": drop_rates,
        "dup_rate": dup_rates,
        "link_loss": link_loss_entries(8),
        "dead_nodes": st.lists(st.integers(0, 9), max_size=2, unique=True),
        "cap_slack": st.sampled_from([1.0, 1.25]),
    }
)

#: Co-NNT-world constructor draws: a small unit-square instance whose
#: REPLY/CONNECTION traffic rides the reliable layer.  Same crash
#: envelope as the retry world minus mid-run permanent deaths (reliable
#: traffic to a gone-forever peer exhausts its retry budget by design —
#: the documented out-of-scope case).
connt_instances = st.fixed_dictionaries(
    {
        "n": st.integers(5, 9),
        "seed": st.integers(0, 5),
        "fault_seed": st.integers(0, 99),
        "drop_rate": st.sampled_from([0.0, 0.1, 0.25]),
        "dup_rate": st.sampled_from([0.0, 0.2]),
        "link_loss": link_loss_entries(5),
        "dead_node": st.one_of(st.none(), st.integers(0, 4)),
        "window": st.one_of(
            st.none(),
            st.tuples(st.integers(0, 4), st.integers(0, 6), st.integers(1, 8)),
        ),
    }
)

#: Retry-world constructor draws: a short line of echo nodes.  Initial
#: crashes are either never-started (start=0, forever) or one finite
#: window; mid-run permanent deaths come from the crash_forever rule.
retry_instances = st.fixed_dictionaries(
    {
        "n": st.integers(4, 8),
        "fault_seed": st.integers(0, 99),
        "drop_rate": st.sampled_from([0.0, 0.15, 0.3]),
        "dup_rate": st.sampled_from([0.0, 0.2]),
        "link_loss": link_loss_entries(4),
        "dead_node": st.one_of(st.none(), st.integers(0, 3)),
        "window": st.one_of(
            st.none(),
            st.tuples(st.integers(0, 3), st.integers(0, 6), st.integers(1, 8)),
        ),
    }
)
