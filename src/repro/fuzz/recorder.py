"""Recording proxy over a compiled fault plane.

The fault model's central promise is *counter-free determinism*: the
scalar :meth:`~repro.sim.faults.FaultPlane.fate` and the vectorized
:meth:`~repro.sim.faults.FaultPlane.times` are the same pure function of
``(seed, src, dst, kind, round)``, bit for bit.  The unit tests pin that
on synthetic batches; the fuzzer pins it on the *exact* batches a real
run produced: :class:`RecordingFaultPlane` wraps the kernel's plane and
records both directions — every vectorized ``times()`` batch (emitted by
broadcast-carrying rounds) *and* every scalar ``fate()`` call (emitted
by unicast-only rounds and flat kernels) — and
:func:`verify_fate_determinism` replays each recorded element through
the *other* path afterwards.

The proxy delegates everything else via ``__getattr__``, so kernels,
recovery loops and audits see the inner plane unchanged.  Mutating code
(the fuzz worlds' mid-run crash windows) must write through ``.inner``
— writing an attribute on the proxy itself would shadow the delegation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError

__all__ = ["RecordingFaultPlane", "verify_fate_determinism"]


class RecordingFaultPlane:
    """Delegating wrapper that captures every vectorized fate batch."""

    def __init__(self, inner, *, max_rows: int = 250_000) -> None:
        self.inner = inner
        #: Recorded ``(src, dst, kindh, rnd, times)`` tuples (arrays copied).
        self.batches: list[tuple] = []
        #: Recorded scalar ``(src, dst, kind, rnd, fate)`` calls.
        self.scalar_calls: list[tuple] = []
        self.total_batches = 0
        self.total_rows = 0
        self.recorded_rows = 0
        self.max_rows = max_rows

    def times(self, src, dst, kindh, rnd):
        out = self.inner.times(src, dst, kindh, rnd)
        k = len(out[0])
        self.total_batches += 1
        self.total_rows += k
        if self.recorded_rows < self.max_rows:
            kh = (
                kindh.astype(np.uint64, copy=True)
                if isinstance(kindh, np.ndarray)
                else int(kindh)
            )
            self.batches.append(
                (
                    np.array(src, dtype=np.int64, copy=True),
                    np.array(dst, dtype=np.int64, copy=True),
                    kh,
                    int(rnd),
                    out[0].copy(),
                )
            )
            self.recorded_rows += k
        return out

    def fate(self, src, dst, kind, rnd):
        f = self.inner.fate(src, dst, kind, rnd)
        self.total_rows += 1
        if self.recorded_rows < self.max_rows:
            self.scalar_calls.append((int(src), int(dst), kind, int(rnd), int(f)))
            self.recorded_rows += 1
        return f

    def __getattr__(self, name):
        return getattr(self.inner, name)


def verify_fate_determinism(plane: RecordingFaultPlane) -> int:
    """Replay every recorded element through the *other* fate path.

    Vectorized batches replay through scalar :meth:`fate`; scalar calls
    replay through one-element :meth:`times` batches.  Returns the number
    of elements checked; raises :class:`~repro.errors.ProtocolError` on
    the first mismatch.  Valid as a *post-run* check as long as crash
    windows were only ever opened at or after the round current when they
    were written (no retroactive fates) — the invariant the fuzz worlds
    maintain.
    """
    inner = plane.inner
    rev = {h: k for k, h in inner._kind_hashes.items()}
    checked = 0
    for src, dst, kind, rnd, f in plane.scalar_calls:
        times, cm, dm, um = inner.times(
            np.array([src], dtype=np.int64),
            np.array([dst], dtype=np.int64),
            np.full(1, inner.kind_hash(kind), dtype=np.uint64),
            rnd,
        )
        expect_times = {-1: 0, 0: 0, 1: 1, 2: 2}[f]
        vec = (int(times[0]), bool(cm[0]), bool(dm[0]), bool(um[0]))
        want = (expect_times, f == -1, f == 0, f == 2)
        if vec != want:
            raise ProtocolError(
                f"fate determinism violation: scalar fate {f} but the "
                f"vectorized path gives (times, crash, drop, dup)={vec} "
                f"for ({src} -> {dst}, kind {kind!r}, round {rnd})"
            )
        checked += 1
    for src, dst, kindh, rnd, times in plane.batches:
        if isinstance(kindh, np.ndarray):
            kh = kindh
        else:
            kh = np.full(len(src), np.uint64(kindh), dtype=np.uint64)
        for i in range(len(src)):
            kind = rev.get(int(kh[i]))
            if kind is None:
                raise ProtocolError(
                    f"recorded kind hash {int(kh[i])} unknown to the plane"
                )
            f = inner.fate(int(src[i]), int(dst[i]), kind, rnd)
            expect = {-1: 0, 0: 0, 1: 1, 2: 2}[f]
            if int(times[i]) != expect:
                raise ProtocolError(
                    "fate determinism violation: scalar fate gives "
                    f"{expect} copies but the vectorized batch delivered "
                    f"{int(times[i])} for ({int(src[i])} -> {int(dst[i])}, "
                    f"kind {kind!r}, round {rnd})"
                )
            checked += 1
    return checked
