"""Multi-backend lockstep world for GHS-family fuzzing.

A :class:`GHSFuzzWorld` holds one :class:`~repro.fuzz.harness.
StepHarness` per registered kernel configuration (fast/legacy/turbo ×
planes on/off) over the *same* instance and fault plan, and applies
every fuzz rule — advance N rounds, open a transient crash window, move
the power cap — to all of them.  Because equivalent configurations are
bit-identical round for round (the kernel equivalence contract), the
harnesses stay aligned; :meth:`check_alignment` asserts it after every
rule, and :meth:`finish` asserts the full endgame: identical trees and
stats across backends, the oracle MST/forest of the surviving topology,
a final state audit, and scalar-vs-vectorized fate determinism on the
exact batches each run produced.

Every mutation is recorded in ``self.ops`` so a failing interleaving
replays exactly (:mod:`repro.fuzz.corpus`) and exports as a
:class:`~repro.runspec.spec.RunSpec` (:meth:`to_runspec`): mid-run
transient windows are representable as ordinary ``FaultPlan`` crash
entries because the world only ever opens them at the current round —
never retroactively — which is also what keeps post-run fate
verification sound.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.fuzz.harness import StepHarness
from repro.fuzz.recorder import RecordingFaultPlane, verify_fate_determinism
from repro.geometry.radius import connectivity_radius
from repro.experiments.instances import get_points
from repro.mst.kruskal import kruskal_mst
from repro.mst.quality import same_tree
from repro.rgg.build import build_rgg
from repro.sim.backends import kernel_names
from repro.sim.faults import FaultPlan

__all__ = ["GHSFuzzWorld", "default_configs"]


def default_configs() -> list[tuple[str, bool]]:
    """Every registered backend in its interesting plane modes."""
    registered = set(kernel_names())
    wanted = [("fast", True), ("fast", False), ("legacy", False), ("turbo", True)]
    return [(mode, planes) for mode, planes in wanted if mode in registered]


class GHSFuzzWorld:
    """One fuzz scenario driven across every kernel configuration."""

    def __init__(
        self,
        *,
        n: int,
        seed: int,
        algorithm: str = "MGHS",
        fault_seed: int = 0,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        link_loss: tuple = (),
        dead_nodes: tuple = (),
        cap_slack: float = 1.0,
        configs: list[tuple[str, bool]] | None = None,
        audit_barriers: bool = True,
        record_fates: bool = True,
    ) -> None:
        if algorithm not in ("GHS", "MGHS"):
            raise ProtocolError(f"unknown fuzz algorithm {algorithm!r}")
        self.n = int(n)
        self.seed = int(seed)
        self.algorithm = algorithm
        self.fault_seed = int(fault_seed)
        self.drop_rate = float(drop_rate)
        self.dup_rate = float(dup_rate)
        self.link_loss = tuple(((int(u), int(v)), float(p)) for (u, v), p in link_loss)
        self.dead_nodes = tuple(sorted(int(d) for d in dead_nodes))
        self.cap_slack = float(cap_slack)
        self.points = get_points(self.n, self.seed)
        self.radius = connectivity_radius(self.n)
        self.cap_max = self.radius * self.cap_slack
        crashes = tuple((d, 0, None) for d in self.dead_nodes)
        plan = FaultPlan(
            seed=self.fault_seed,
            drop_rate=self.drop_rate,
            dup_rate=self.dup_rate,
            link_loss=self.link_loss,
            crashes=crashes,
        )
        self.plan = None if plan.is_null else plan
        #: Grows as mid-run windows open; feeds to_runspec()/to_scenario().
        self.plan_crashes: list[tuple] = list(crashes)
        self.crashed_nodes: set[int] = set(self.dead_nodes)
        self.configs = list(configs) if configs is not None else default_configs()
        self.ops: list[list] = []
        self.finished = False
        self.failed = False
        self.harnesses = [
            StepHarness(
                self.points,
                radius=self.radius,
                kernel_mode=mode,
                planes=planes,
                use_tests=(algorithm == "GHS"),
                faults=self.plan,
                max_radius=self.cap_max,
                audit_barriers=audit_barriers,
            )
            for mode, planes in self.configs
        ]
        for h in self.harnesses:
            # Build the neighbor table at the widest cap now, so later cap
            # moves within [radius, cap_max] never invalidate it (an
            # invalidation mid-run would — correctly — fault plane-mode
            # runs with a stale-table error; that contract is EOPT's, and
            # re-helloing after every cap move is not what we fuzz here).
            h.kernel.neighbor_table()
            if record_fates and h.kernel.faults is not None:
                h.kernel.faults = RecordingFaultPlane(h.kernel.faults)

    # -- helpers -------------------------------------------------------------

    def _fail(self, exc: Exception) -> Exception:
        self.failed = True
        return exc

    def common_round(self) -> int:
        rounds = {h.kernel.rounds for h in self.harnesses}
        if len(rounds) != 1:
            raise self._fail(
                ProtocolError(
                    "backends lost lockstep: rounds "
                    + ", ".join(
                        f"{m}/planes={p}: {h.kernel.rounds}"
                        for (m, p), h in zip(self.configs, self.harnesses)
                    )
                )
            )
        return rounds.pop()

    def _inner_plane(self, harness: StepHarness):
        fp = harness.kernel.faults
        return fp.inner if isinstance(fp, RecordingFaultPlane) else fp

    def check_alignment(self) -> None:
        """Cross-backend lockstep: rounds, cumulative stats, barrier state."""
        self.common_round()
        ref = None
        for (mode, planes), h in zip(self.configs, self.harnesses):
            st = h.kernel.stats()
            key = (st.messages_total, st.energy_total, h.finished, h.at_barrier)
            if ref is None:
                ref = key
                ref_label = f"{mode}/planes={planes}"
            elif key != ref:
                raise self._fail(
                    ProtocolError(
                        f"backends diverged: {ref_label} has "
                        f"(messages, energy, finished, barrier)={ref} but "
                        f"{mode}/planes={planes} has {key}"
                    )
                )

    # -- rules (each records an op for exact replay) -------------------------

    def advance(self, steps: int) -> None:
        self.ops.append(["advance", int(steps)])
        try:
            for h in self.harnesses:
                h.advance(int(steps))
            self.check_alignment()
        except Exception as exc:
            raise self._fail(exc)

    def crash(self, node: int, duration: int, expect_start: int | None = None) -> int:
        """Open a transient crash window ``[now, now + duration)``.

        Windows always open at the current round — the fault hash is a
        pure function of the round, so an already-evaluated fate is never
        rewritten.  Returns the start round (recorded for replay drift
        detection).  One window per node, mirroring ``FaultPlan``.
        """
        node = int(node)
        duration = int(duration)
        if self.plan is None:
            raise ProtocolError("crash rule needs a non-null fault plan")
        if node in self.crashed_nodes:
            raise ProtocolError(f"node {node} already has a crash window")
        if duration < 1:
            raise ProtocolError(f"crash duration must be >= 1, got {duration}")
        start = self.common_round()
        if expect_start is not None and start != int(expect_start):
            raise self._fail(
                ProtocolError(
                    f"scenario drift: crash({node}) expected to open at round "
                    f"{expect_start} but the replay reached round {start}"
                )
            )
        for h in self.harnesses:
            fp = self._inner_plane(h)
            fp._cstart[node] = start
            fp._cend[node] = start + duration
            fp.has_crashes = True
        self.crashed_nodes.add(node)
        self.plan_crashes.append((node, start, start + duration))
        self.ops.append(["crash", node, duration, start])
        return start

    def set_cap(self, frac: float) -> None:
        """Move the power cap inside the legal band ``[radius, cap_max]``."""
        frac = min(1.0, max(0.0, float(frac)))
        cap = self.radius + frac * (self.cap_max - self.radius)
        self.ops.append(["set_cap", frac])
        try:
            for h in self.harnesses:
                h.set_cap(cap)
        except Exception as exc:
            raise self._fail(exc)

    def finish(self) -> None:
        """Run every backend to quiescence and check the full endgame."""
        if self.finished:
            return
        self.ops.append(["finish"])
        try:
            for h in self.harnesses:
                h.run_to_completion()
            self.finished = True
            self.check_alignment()
            self.check_final()
        except Exception as exc:
            raise self._fail(exc)

    # -- endgame invariants ---------------------------------------------------

    def oracle_forest(self) -> np.ndarray:
        """Kruskal MST/forest of the RGG minus never-started nodes."""
        g = build_rgg(self.points, self.radius)
        edges, lengths = g.edges, g.lengths
        if self.dead_nodes:
            dead = set(self.dead_nodes)
            keep = [
                i
                for i, (u, v) in enumerate(np.asarray(edges))
                if u not in dead and v not in dead
            ]
            edges, lengths = edges[keep], lengths[keep]
        return kruskal_mst(g.n, edges, lengths)[0]

    def check_final(self) -> None:
        results = [h.result() for h in self.harnesses]
        ref_edges, ref_stats = results[0]
        ref_label = f"{self.configs[0][0]}/planes={self.configs[0][1]}"
        for (mode, planes), (edges, stats) in zip(self.configs[1:], results[1:]):
            label = f"{mode}/planes={planes}"
            if not same_tree(edges, ref_edges):
                raise ProtocolError(
                    f"backends computed different trees: {ref_label} vs {label}"
                )
            mismatched = [
                name
                for name, a, b in (
                    ("energy_total", ref_stats.energy_total, stats.energy_total),
                    ("messages_total", ref_stats.messages_total, stats.messages_total),
                    ("rounds", ref_stats.rounds, stats.rounds),
                    (
                        "messages_by_kind",
                        ref_stats.messages_by_kind,
                        stats.messages_by_kind,
                    ),
                )
                if a != b
            ]
            if mismatched:
                raise ProtocolError(
                    f"backend stats diverged ({ref_label} vs {label}): "
                    + ", ".join(mismatched)
                )
        oracle = self.oracle_forest()
        if not same_tree(ref_edges, oracle):
            raise ProtocolError(
                "run did not recover the oracle MST of the surviving topology "
                f"({len(np.asarray(ref_edges))} vs {len(np.asarray(oracle))} edges)"
            )
        for (mode, planes), h in zip(self.configs, self.harnesses):
            fp = h.kernel.faults
            if isinstance(fp, RecordingFaultPlane):
                verify_fate_determinism(fp)

    # -- artifacts ------------------------------------------------------------

    def effective_plan(self) -> FaultPlan | None:
        """The fault plan including every window opened mid-run."""
        if self.plan is None and not self.plan_crashes:
            return None
        plan = FaultPlan(
            seed=self.fault_seed,
            drop_rate=self.drop_rate,
            dup_rate=self.dup_rate,
            link_loss=self.link_loss,
            crashes=tuple(self.plan_crashes),
        )
        return None if plan.is_null else plan

    def to_runspec(self):
        """The nearest declarative artifact: a replayable RunSpec.

        Captures instance, algorithm and the *effective* fault plan
        (initial plus mid-run windows, which are ordinary crash entries
        because they were only ever opened at the then-current round).
        Cap moves are omitted: the cap never drops below the protocol
        radius, so they are semantically result-neutral.
        """
        from repro.runspec.spec import RunSpec

        return RunSpec(
            algorithm=self.algorithm,
            n=self.n,
            seed=self.seed,
            kernel="fast",
            planes=True,
            recover=True,
            faults=self.effective_plan(),
        )

    def to_scenario(self) -> dict:
        """Exact-replay payload for the corpus (see repro.fuzz.corpus)."""
        return {
            "schema_version": 1,
            "kind": "fuzz_scenario",
            "machine": "ghs",
            "params": {
                "n": self.n,
                "seed": self.seed,
                "algorithm": self.algorithm,
                "fault_seed": self.fault_seed,
                "drop_rate": self.drop_rate,
                "dup_rate": self.dup_rate,
                "link_loss": [[u, v, p] for (u, v), p in self.link_loss],
                "dead_nodes": list(self.dead_nodes),
                "cap_slack": self.cap_slack,
            },
            "ops": [list(op) for op in self.ops],
        }
