"""Hypothesis state machines over the fuzz worlds, plus the entry point.

Four machines:

* :class:`GHSFuzzMachine` — one :class:`~repro.fuzz.world.GHSFuzzWorld`
  per example: advance by partial rounds, open transient crash windows,
  move the power cap, finish; the world checks backend lockstep after
  every rule and the full endgame (cross-backend trees/stats, oracle
  MST, state audit, fate determinism) at finish.
* :class:`RetryFuzzMachine` — one :class:`~repro.fuzz.retry_world.
  RetryFuzzWorld`: reliable sends, adversarial retry ticks, transient
  and permanent crashes, then a ``drain_reliable`` settle whose
  invariants are the reliable layer's contract.
* :class:`ConntFuzzMachine` — one :class:`~repro.fuzz.connt_world.
  ConntRetryWorld`: the same reliable layer embedded in real Co-NNT
  REPLY/CONNECTION traffic, phase steps interleaved with crash windows
  and retry bursts, finishing through the runner's stranded re-probe.
* :class:`MaintFuzzMachine` — one :class:`~repro.fuzz.maint_world.
  ScenarioFuzzWorld`: scenario-plane churn (crash/join/leave/move
  events punctuated by repair/rebuild checkpoints) driven across every
  backend; fault-free cycles run the turbo whole-round phase engine in
  lockstep with the scalar paths, closing the harness's deliberate
  scalar-only gap.

When a sequence fails, hypothesis shrinks it to a minimal rule list;
:func:`run_fuzz` then exports the shrunk world as a replayable scenario
+ RunSpec + trace-diff report via :mod:`repro.fuzz.repro_export`.

Determinism: profiles run with ``derandomize=True`` (CI never flakes);
``--seed`` varies the explored scenarios anyway because the machine's
``SEED_OFFSET`` is mixed into every drawn instance/fault seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
    run_state_machine_as_test,
)

from repro.fuzz import strategies as fst
from repro.fuzz.connt_world import ConntRetryWorld
from repro.fuzz.maint_world import ScenarioFuzzWorld
from repro.fuzz.retry_world import RetryFuzzWorld
from repro.fuzz.world import GHSFuzzWorld

__all__ = [
    "GHSFuzzMachine",
    "RetryFuzzMachine",
    "ConntFuzzMachine",
    "MaintFuzzMachine",
    "FuzzOutcome",
    "make_machine",
    "fuzz_settings",
    "run_fuzz",
]

#: The world of the most recently torn-down example — after a failing
#: run this is the *shrunk* counterexample, ready for export.
_LAST: dict = {"world": None}


def fuzz_settings(*, examples: int, steps: int, derandomize: bool = True) -> settings:
    """The fixed fuzz profile: bounded, deadline-free, deterministic."""
    return settings(
        max_examples=int(examples),
        stateful_step_count=int(steps),
        deadline=None,
        derandomize=derandomize,
        suppress_health_check=list(HealthCheck),
    )


class GHSFuzzMachine(RuleBasedStateMachine):
    SEED_OFFSET = 0
    CONFIGS = None  # None -> every registered backend configuration

    def __init__(self) -> None:
        super().__init__()
        self.world: GHSFuzzWorld | None = None

    def _running(self) -> bool:
        w = self.world
        return w is not None and not w.finished and not w.failed

    @initialize(params=fst.ghs_instances)
    def init(self, params):
        n = params["n"]
        kwargs = dict(
            n=n,
            seed=(params["seed"] + 10 * self.SEED_OFFSET) % 1000,
            algorithm=params["algorithm"],
            fault_seed=(params["fault_seed"] + 1000 * self.SEED_OFFSET) % 100_000,
            drop_rate=params["drop_rate"],
            dup_rate=params["dup_rate"],
            link_loss=tuple(
                ((u % n, v % n), p)
                for (u, v), p in params["link_loss"]
                if u % n != v % n
            ),
            dead_nodes=tuple({d % n for d in params["dead_nodes"]}),
            cap_slack=params["cap_slack"],
        )
        if self.CONFIGS is not None:
            kwargs["configs"] = self.CONFIGS
        self.world = GHSFuzzWorld(**kwargs)
        _LAST["world"] = self.world

    # No precondition beyond "example is alive": hypothesis needs at
    # least one enabled rule at every step, including after finish.
    @precondition(lambda self: self.world is not None and not self.world.failed)
    @rule(steps=st.integers(1, 40))
    def advance(self, steps):
        if not self.world.finished:
            self.world.advance(steps)

    @precondition(
        lambda self: self._running()
        and self.world.plan is not None
        and len(self.world.crashed_nodes) < self.world.n - 2
    )
    @rule(data=st.data(), duration=st.integers(1, 25))
    def crash(self, data, duration):
        candidates = [
            i for i in range(self.world.n) if i not in self.world.crashed_nodes
        ]
        node = data.draw(st.sampled_from(candidates), label="crash_node")
        self.world.crash(node, duration)

    @precondition(lambda self: self._running() and self.world.cap_slack > 1.0)
    @rule(frac=st.sampled_from([0.0, 0.3, 0.7, 1.0]))
    def set_cap(self, frac):
        self.world.set_cap(frac)

    @precondition(_running)
    @rule()
    def finish(self):
        self.world.finish()

    @invariant()
    def backends_aligned(self):
        w = getattr(self, "world", None)
        if w is not None and not w.finished and not w.failed:
            w.check_alignment()

    def teardown(self):
        w = self.world
        try:
            # Every passing example must reach the endgame invariants; a
            # failed one must not mask its error with a second failure.
            if w is not None and not w.failed and not w.finished:
                w.finish()
        finally:
            _LAST["world"] = w


class RetryFuzzMachine(RuleBasedStateMachine):
    SEED_OFFSET = 0

    def __init__(self) -> None:
        super().__init__()
        self.world: RetryFuzzWorld | None = None

    def _running(self) -> bool:
        w = self.world
        return w is not None and not w.failed

    @initialize(params=fst.retry_instances)
    def init(self, params):
        n = params["n"]
        crashes = []
        if params["dead_node"] is not None:
            crashes.append((params["dead_node"] % n, 0, None))
        if params["window"] is not None:
            node, start, dur = params["window"]
            node %= n
            if all(c[0] != node for c in crashes):
                crashes.append((node, start, start + dur))
        self.world = RetryFuzzWorld(
            n=n,
            fault_seed=(params["fault_seed"] + 1000 * self.SEED_OFFSET) % 100_000,
            drop_rate=params["drop_rate"],
            dup_rate=params["dup_rate"],
            link_loss=tuple(
                ((u % n, v % n), p)
                for (u, v), p in params["link_loss"]
                if u % n != v % n
            ),
            crashes=tuple(crashes),
        )
        _LAST["world"] = self.world

    @precondition(lambda self: self._running() and self.world.sendable_pairs())
    @rule(data=st.data())
    def send(self, data):
        pair = data.draw(
            st.sampled_from(self.world.sendable_pairs()), label="send_pair"
        )
        self.world.send(*pair)

    @precondition(_running)
    @rule(k=st.integers(1, 12))
    def run_rounds(self, k):
        self.world.run_rounds(k)

    @precondition(_running)
    @rule()
    def retry_tick(self):
        self.world.retry_tick()

    @precondition(
        lambda self: self._running()
        and len(self.world.windowed) < self.world.n - 1
    )
    @rule(data=st.data(), duration=st.integers(1, 10))
    def crash(self, data, duration):
        candidates = [
            i for i in range(self.world.n) if i not in self.world.windowed
        ]
        node = data.draw(st.sampled_from(candidates), label="crash_node")
        self.world.crash(node, duration)

    @precondition(lambda self: self._running() and self._killable())
    @rule(data=st.data())
    def crash_forever(self, data):
        node = data.draw(st.sampled_from(self._killable()), label="kill_node")
        self.world.crash_forever(node)

    def _killable(self) -> list[int]:
        w = self.world
        return [
            i
            for i in range(w.n)
            if i not in w.windowed
            and len(w.windowed) < w.n - 1
            and not w.pending_to(i)
        ]

    @precondition(_running)
    @rule()
    def drain(self):
        self.world.drain()

    def teardown(self):
        w = self.world
        try:
            if w is not None and not w.failed and not w.drained:
                w.drain()
        finally:
            _LAST["world"] = w


class ConntFuzzMachine(RuleBasedStateMachine):
    SEED_OFFSET = 0

    def __init__(self) -> None:
        super().__init__()
        self.world: ConntRetryWorld | None = None

    def _running(self) -> bool:
        w = self.world
        return w is not None and not w.failed and not w.finished

    @initialize(params=fst.connt_instances)
    def init(self, params):
        n = params["n"]
        crashes = []
        if params["dead_node"] is not None:
            crashes.append((params["dead_node"] % n, 0, None))
        if params["window"] is not None:
            node, start, dur = params["window"]
            node %= n
            if all(c[0] != node for c in crashes):
                crashes.append((node, start, start + dur))
        self.world = ConntRetryWorld(
            n=n,
            seed=(params["seed"] + 10 * self.SEED_OFFSET) % 1000,
            fault_seed=(params["fault_seed"] + 1000 * self.SEED_OFFSET)
            % 100_000,
            drop_rate=params["drop_rate"],
            dup_rate=params["dup_rate"],
            link_loss=tuple(
                ((u % n, v % n), p)
                for (u, v), p in params["link_loss"]
                if u % n != v % n
            ),
            crashes=tuple(crashes),
        )
        _LAST["world"] = self.world

    # No precondition beyond "example is alive": hypothesis needs at
    # least one enabled rule at every step, including after finish.
    @precondition(lambda self: self.world is not None and not self.world.failed)
    @rule()
    def probe_step(self):
        if not self.world.finished:
            self.world.probe_step()

    @precondition(_running)
    @rule(k=st.integers(1, 10))
    def run_rounds(self, k):
        self.world.run_rounds(k)

    @precondition(_running)
    @rule()
    def retry_tick(self):
        self.world.retry_tick()

    @precondition(
        lambda self: self._running()
        and len(self.world.windowed) < self.world.n - 1
    )
    @rule(data=st.data(), duration=st.integers(1, 8))
    def crash(self, data, duration):
        candidates = [
            i for i in range(self.world.n) if i not in self.world.windowed
        ]
        node = data.draw(st.sampled_from(candidates), label="crash_node")
        self.world.crash(node, duration)

    @precondition(_running)
    @rule()
    def finish(self):
        self.world.finish()

    def teardown(self):
        w = self.world
        try:
            if w is not None and not w.failed and not w.finished:
                w.finish()
        finally:
            _LAST["world"] = w


class MaintFuzzMachine(RuleBasedStateMachine):
    SEED_OFFSET = 0
    CONFIGS = None  # None -> every registered backend configuration

    #: Scenario worlds build their initial MST up front, so instances
    #: stay small; the interesting state space is the event schedule.
    _instances = st.fixed_dictionaries(
        {"n": st.integers(8, 18), "seed": st.integers(0, 99)}
    )

    def __init__(self) -> None:
        super().__init__()
        self.world: ScenarioFuzzWorld | None = None

    def _running(self) -> bool:
        w = self.world
        return w is not None and not w.finished and not w.failed

    @initialize(params=_instances)
    def init(self, params):
        kwargs = dict(
            n=params["n"],
            seed=(params["seed"] + 10 * self.SEED_OFFSET) % 1000,
        )
        if self.CONFIGS is not None:
            kwargs["configs"] = self.CONFIGS
        self.world = ScenarioFuzzWorld(**kwargs)
        _LAST["world"] = self.world

    def _mutable(self) -> list[int]:
        """Alive nodes, only while enough remain to stay interesting."""
        w = self.world
        alive = w.alive_nodes()
        return alive if len(alive) > 5 else []

    @precondition(lambda self: self._running() and self._mutable())
    @rule(data=st.data(), duration=st.one_of(st.none(), st.integers(2, 10)))
    def crash(self, data, duration):
        node = data.draw(st.sampled_from(self._mutable()), label="crash_node")
        self.world.crash(node, duration)

    @precondition(lambda self: self._running() and self._mutable())
    @rule(data=st.data())
    def leave(self, data):
        node = data.draw(st.sampled_from(self._mutable()), label="leave_node")
        self.world.leave(node)

    @precondition(
        lambda self: self._running()
        and len(self.world.ref.positions) < self.world.n + 8
    )
    @rule(x=st.floats(0.0, 1.0), y=st.floats(0.0, 1.0))
    def join(self, x, y):
        self.world.join(x, y)

    @precondition(lambda self: self._running() and self.world.alive_nodes())
    @rule(data=st.data(), x=st.floats(0.0, 1.0), y=st.floats(0.0, 1.0))
    def move(self, data, x, y):
        node = data.draw(
            st.sampled_from(self.world.alive_nodes()), label="move_node"
        )
        self.world.move(node, x, y)

    @precondition(_running)
    @rule(
        kind=st.sampled_from(["repair", "rebuild"]),
        delay=st.integers(0, 3),
    )
    def checkpoint(self, kind, delay):
        self.world.checkpoint(kind, delay)

    # No precondition beyond "example is alive": hypothesis needs at
    # least one enabled rule at every step, including after finish
    # (world.finish is an idempotent no-op once finished).
    @precondition(lambda self: self.world is not None and not self.world.failed)
    @rule()
    def finish(self):
        self.world.finish()

    @invariant()
    def backends_aligned(self):
        w = getattr(self, "world", None)
        if w is not None and not w.finished and not w.failed:
            w.check_alignment()

    def teardown(self):
        w = self.world
        try:
            if w is not None and not w.failed and not w.finished:
                w.finish()
        finally:
            _LAST["world"] = w


_MACHINES = {
    "ghs": GHSFuzzMachine,
    "retry": RetryFuzzMachine,
    "connt": ConntFuzzMachine,
    "maint": MaintFuzzMachine,
}


def make_machine(machine: str = "ghs", *, seed: int = 0, configs=None):
    """A machine subclass with the seed offset (and configs) baked in."""
    base = _MACHINES[machine]
    attrs: dict = {"SEED_OFFSET": int(seed)}
    if configs is not None and machine in ("ghs", "maint"):
        attrs["CONFIGS"] = list(configs)
    return type(f"{base.__name__}_seed{seed}", (base,), attrs)


@dataclass
class FuzzOutcome:
    """Result of one :func:`run_fuzz` campaign."""

    machine: str
    ok: bool
    error: str | None = None
    artifacts: dict = field(default_factory=dict)


def run_fuzz(
    machine: str = "ghs",
    *,
    examples: int = 20,
    steps: int = 30,
    seed: int = 0,
    export_dir=None,
) -> FuzzOutcome:
    """Run one fuzz campaign; on failure, export the shrunk scenario.

    Never raises for a found counterexample — the failure (with artifact
    paths, when ``export_dir`` is given) comes back in the outcome so
    the CLI can render it and exit nonzero.
    """
    if machine not in _MACHINES:
        raise ValueError(f"unknown fuzz machine {machine!r}")
    cls = make_machine(machine, seed=seed)
    _LAST["world"] = None
    try:
        run_state_machine_as_test(
            cls, settings=fuzz_settings(examples=examples, steps=steps)
        )
    except Exception as exc:  # the shrunk counterexample
        artifacts = {}
        world = _LAST.get("world")
        if export_dir is not None and world is not None:
            from repro.fuzz.repro_export import export_failure

            try:
                artifacts = export_failure(world, error=exc, outdir=export_dir)
            except Exception as export_exc:  # never mask the finding
                artifacts = {"export_error": str(export_exc)}
        return FuzzOutcome(
            machine=machine,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            artifacts=artifacts,
        )
    return FuzzOutcome(machine=machine, ok=True)
