"""Reliable-retry fuzzing world: RetryBuffer + drain_reliable in isolation.

The GHS world exercises the retry layer only through a full protocol;
this world strips it bare.  :class:`ReliableEchoNode` is the smallest
possible reliable protocol — send a token, ACK every copy, dedup — and
:class:`RetryFuzzWorld` drives a line of such nodes through adversarial
schedules: drops, duplicates, link loss, transient windows, permanent
deaths, interleaved retry ticks, then a :func:`~repro.sim.faults.
drain_reliable` settle.  The drain invariants are exactly the reliable
layer's contract:

* the drain terminates, and afterwards only gone-forever nodes still
  hold unacknowledged traffic (the pre-fix ``drain_reliable`` idled its
  full iteration budget here and raised);
* every token is delivered at most once (receiver dedup), and every
  token whose sender survives is delivered exactly once;
* dedup state is fully compacted: a receiver's out-of-order set for any
  surviving sender is empty, and its watermark equals that sender's
  stream length (the satellite-2 ``seen`` bound, observed end to end).

The checked-in corpus scenario for the pre-fix drain hang lives in
``tests/corpus/`` and replays through :mod:`repro.fuzz.corpus`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.fuzz.recorder import RecordingFaultPlane, verify_fate_determinism
from repro.sim.faults import FaultPlan, _NEVER, drain_reliable, RetryBuffer
from repro.sim.kernel import SynchronousKernel
from repro.sim.node import NodeProcess

__all__ = ["ReliableEchoNode", "RetryFuzzWorld"]

#: Start round of the sentinel crash window used to force a null plan to
#: compile (a FaultPlane must exist for mid-run window mutation); far
#: beyond any reachable round, far below the _NEVER sentinel.
_FAR = 1 << 40


class ReliableEchoNode(NodeProcess):
    """Minimal reliable protocol: DATA carries a token, every copy ACKed."""

    def __init__(self, node_id: int, ctx) -> None:
        super().__init__(node_id, ctx)
        self.retry = RetryBuffer(ctx)
        self.delivered: list[tuple[int, int]] = []

    def on_wake(self, signal: str, payload: tuple = ()) -> None:
        if signal == "send":
            dst, token = payload
            self.retry.send(dst, "DATA", (token,))
        elif signal == "retry_tick":
            self.retry.tick()
        else:
            raise ProtocolError(f"node {self.id}: unknown wake {signal!r}")

    def on_message(self, msg, distance: float) -> None:
        if msg.kind == "DATA":
            seq, token = msg.payload
            # ACK every copy: a duplicate means our previous ACK was lost.
            self.ctx.unicast(msg.src, "ACK", seq)
            if not self.retry.accept(msg.src, seq):
                return
            self.delivered.append((msg.src, token))
        elif msg.kind == "ACK":
            self.retry.on_ack(msg.src, msg.payload[0])
        else:
            raise ProtocolError(f"node {self.id}: unknown kind {msg.kind!r}")


class RetryFuzzWorld:
    """A line of echo nodes under an adversarial fault schedule."""

    SPACING = 0.05
    RADIUS = 0.12  # reaches one- and two-hop line neighbours

    def __init__(
        self,
        *,
        n: int = 6,
        fault_seed: int = 0,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        link_loss: tuple = (),
        crashes: tuple = (),
        record_fates: bool = True,
    ) -> None:
        self.n = int(n)
        self.fault_seed = int(fault_seed)
        self.drop_rate = float(drop_rate)
        self.dup_rate = float(dup_rate)
        self.link_loss = tuple(((int(u), int(v)), float(p)) for (u, v), p in link_loss)
        norm_crashes = []
        for spec in crashes:
            node, start = int(spec[0]), int(spec[1])
            end = spec[2] if len(spec) > 2 else None
            if end is None and start > 0:
                # A planned mid-run permanent death is indistinguishable
                # from the out-of-scope "participated then died" case the
                # rules' preconditions exist to avoid; use the
                # crash_forever rule instead, which checks them.
                raise ProtocolError(
                    "retry-world plans only allow end=None crashes at start=0"
                )
            norm_crashes.append((node, start, end if end is None else int(end)))
        self.initial_crashes = tuple(norm_crashes)
        plan_crashes = self.initial_crashes
        if not plan_crashes and not any(
            (self.drop_rate, self.dup_rate, self.link_loss)
        ):
            # Force the plan to compile: mid-run crash rules mutate the
            # plane, so one must exist even for an otherwise-null plan.
            plan_crashes = ((0, _FAR, _FAR + 1),)
        self.plan = FaultPlan(
            seed=self.fault_seed,
            drop_rate=self.drop_rate,
            dup_rate=self.dup_rate,
            link_loss=self.link_loss,
            crashes=plan_crashes,
        )
        points = np.column_stack(
            [np.arange(self.n) * self.SPACING, np.zeros(self.n)]
        )
        self.kernel = SynchronousKernel(
            points, max_radius=self.RADIUS, faults=self.plan
        )
        self.kernel.add_nodes(ReliableEchoNode)
        self.kernel.start()
        if record_fates:
            self.kernel.faults = RecordingFaultPlane(self.kernel.faults)
        self.nodes = self.kernel.nodes
        #: Nodes with a real (non-sentinel) crash window, ever.
        self.windowed: set[int] = {c[0] for c in self.initial_crashes}
        self.sent: list[tuple[int, int, int]] = []  # (src, dst, token)
        self.next_token = 0
        self.ops: list[list] = []
        self.drained = False
        self.failed = False

    # -- state predicates for rule preconditions ------------------------------

    @property
    def _plane(self):
        fp = self.kernel.faults
        return fp.inner if isinstance(fp, RecordingFaultPlane) else fp

    def alive_now(self, node: int) -> bool:
        return not self._plane.crashed(node, self.kernel.rounds)

    def gone_now(self, node: int) -> bool:
        return self._plane.gone_forever(node, self.kernel.rounds)

    def pending_to(self, node: int) -> list[int]:
        """Live nodes currently holding unacked traffic addressed to ``node``."""
        rnd = self.kernel.rounds
        return [
            nd.id
            for nd in self.nodes
            if nd.id != node
            and not self._plane.gone_forever(nd.id, rnd)
            and any(dst == node for dst, _seq in nd.retry.pending)
        ]

    def sendable_pairs(self) -> list[tuple[int, int]]:
        """(src, dst) pairs a send rule may legally draw."""
        rnd = self.kernel.rounds
        pairs = []
        for src in range(self.n):
            if self._plane.crashed(src, rnd):
                continue
            for dst in range(max(0, src - 2), min(self.n, src + 3)):
                if dst != src and not self.gone_now(dst):
                    pairs.append((src, dst))
        return pairs

    # -- rules ----------------------------------------------------------------

    def send(self, src: int, dst: int) -> int:
        src, dst = int(src), int(dst)
        if not self.alive_now(src):
            raise ProtocolError(f"send from crashed node {src}")
        if self.gone_now(dst):
            raise ProtocolError(f"send to permanently dead node {dst}")
        token = self.next_token
        self.next_token += 1
        self.kernel.wake([src], "send", (dst, token))
        self.sent.append((src, dst, token))
        self.ops.append(["send", src, dst])
        self.drained = False
        return token

    def run_rounds(self, k: int) -> None:
        self.ops.append(["run_rounds", int(k)])
        for _ in range(int(k)):
            self.kernel.tick()

    def retry_tick(self) -> None:
        """Adversarial mid-schedule retry burst on every able node."""
        self.ops.append(["retry_tick"])
        rnd = self.kernel.rounds
        able = [
            nd.id
            for nd in self.nodes
            if nd.retry.pending and not self._plane.crashed(nd.id, rnd)
        ]
        try:
            if able:
                self.kernel.wake(able, "retry_tick")
            self.kernel.tick()
        except Exception as exc:
            self.failed = True
            raise exc

    def crash(self, node: int, duration: int, expect_start: int | None = None) -> int:
        node, duration = int(node), int(duration)
        if node in self.windowed:
            raise ProtocolError(f"node {node} already has a crash window")
        if duration < 1:
            raise ProtocolError(f"crash duration must be >= 1, got {duration}")
        start = self.kernel.rounds
        if expect_start is not None and start != int(expect_start):
            self.failed = True
            raise ProtocolError(
                f"scenario drift: crash({node}) expected round {expect_start}, "
                f"replay reached {start}"
            )
        fp = self._plane
        fp._cstart[node] = start
        fp._cend[node] = start + duration
        fp.has_crashes = True
        self.windowed.add(node)
        self.ops.append(["crash", node, duration, start])
        return start

    def crash_forever(self, node: int, expect_start: int | None = None) -> int:
        """Permanently kill ``node`` — legal only when no *live* peer
        still holds unacked traffic addressed to it (that traffic could
        never drain and would exhaust the sender's retries)."""
        node = int(node)
        if node in self.windowed:
            raise ProtocolError(f"node {node} already has a crash window")
        holders = self.pending_to(node)
        if holders:
            raise ProtocolError(
                f"cannot kill node {node}: nodes {holders} hold unacked "
                "traffic addressed to it"
            )
        start = self.kernel.rounds
        if expect_start is not None and start != int(expect_start):
            self.failed = True
            raise ProtocolError(
                f"scenario drift: crash_forever({node}) expected round "
                f"{expect_start}, replay reached {start}"
            )
        fp = self._plane
        fp._cstart[node] = start
        fp._cend[node] = _NEVER
        fp.has_crashes = True
        self.windowed.add(node)
        self.ops.append(["crash_forever", node, start])
        return start

    def drain(self) -> None:
        """Settle and check the reliable layer's full contract."""
        self.ops.append(["drain"])
        try:
            drain_reliable(self.kernel, self.nodes, max_iters=5000)
            self.drained = True
            self.check_drained()
        except Exception as exc:
            self.failed = True
            raise exc

    # -- invariants ------------------------------------------------------------

    def check_drained(self) -> None:
        rnd = self.kernel.rounds
        fp = self._plane
        gone = {nd.id for nd in self.nodes if fp.gone_forever(nd.id, rnd)}
        for nd in self.nodes:
            if nd.retry.pending and nd.id not in gone:
                raise ProtocolError(
                    f"live node {nd.id} holds {len(nd.retry.pending)} "
                    "unacked messages after drain"
                )
        # Dedup: every token delivered at most once, globally.
        all_delivered: set[int] = set()
        for nd in self.nodes:
            for _src, token in nd.delivered:
                if token in all_delivered:
                    raise ProtocolError(f"token {token} delivered more than once")
                all_delivered.add(token)
        # Liveness: a surviving sender's every token arrived.
        for src, dst, token in self.sent:
            if src in gone:
                continue  # its unacked traffic is legitimately stuck
            if token not in all_delivered:
                raise ProtocolError(
                    f"token {token} ({src} -> {dst}) lost despite the "
                    "sender surviving"
                )
        # Compaction: dedup state for surviving senders is fully folded.
        for nd in self.nodes:
            for src, extra in nd.retry.seen.items():
                if src in gone:
                    continue  # a dead sender may leave a gap parked forever
                if extra:
                    raise ProtocolError(
                        f"node {nd.id} parked out-of-order seqs {sorted(extra)} "
                        f"from surviving sender {src} after drain"
                    )
                stream = self.nodes[src].retry.next_seq.get(nd.id, 0)
                lo = nd.retry._seen_lo.get(src, 0)
                if lo != stream:
                    raise ProtocolError(
                        f"node {nd.id} watermark for sender {src} is {lo}, "
                        f"expected the full stream length {stream}"
                    )
        fpr = self.kernel.faults
        if isinstance(fpr, RecordingFaultPlane):
            verify_fate_determinism(fpr)

    # -- artifacts --------------------------------------------------------------

    def to_scenario(self) -> dict:
        return {
            "schema_version": 1,
            "kind": "fuzz_scenario",
            "machine": "retry",
            "params": {
                "n": self.n,
                "fault_seed": self.fault_seed,
                "drop_rate": self.drop_rate,
                "dup_rate": self.dup_rate,
                "link_loss": [[u, v, p] for (u, v), p in self.link_loss],
                "crashes": [
                    [node, start, end] for node, start, end in self.initial_crashes
                ],
            },
            "ops": [list(op) for op in self.ops],
        }
