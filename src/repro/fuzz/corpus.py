"""Fuzz scenario corpus: exact-replay JSON for past counterexamples.

Every fuzz world records its rule applications as a flat op list; a
*scenario* is that list plus the world's constructor parameters.  Saved
scenarios replay deterministically — ops that depend on the current
round (crash windows) carry the round they originally fired at, and the
replay fails loudly on drift — so a shrunk counterexample checked into
``tests/corpus/`` is a permanent regression test, run by tier-1
(``tests/test_fuzz.py``) and by ``repro fuzz --corpus``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ExperimentError

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "load_scenario",
    "save_scenario",
    "replay_scenario",
    "iter_corpus",
]

SCENARIO_SCHEMA_VERSION = 1


def save_scenario(scenario: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(scenario, indent=1, sort_keys=True) + "\n")
    return path


def load_scenario(path: str | Path) -> dict:
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"unreadable fuzz scenario {path}: {exc}") from exc
    _validate(data, source=str(path))
    return data


def _validate(data: dict, *, source: str) -> None:
    if not isinstance(data, dict) or data.get("kind") != "fuzz_scenario":
        raise ExperimentError(f"{source}: not a fuzz_scenario payload")
    if data.get("schema_version") != SCENARIO_SCHEMA_VERSION:
        raise ExperimentError(
            f"{source}: unsupported scenario schema {data.get('schema_version')!r}"
        )
    if data.get("machine") not in ("ghs", "retry", "connt", "maint"):
        raise ExperimentError(f"{source}: unknown machine {data.get('machine')!r}")
    if not isinstance(data.get("params"), dict) or not isinstance(
        data.get("ops"), list
    ):
        raise ExperimentError(f"{source}: scenario needs 'params' and 'ops'")


def _build_world(data: dict, *, configs=None, record_fates: bool = True):
    params = data["params"]
    if data["machine"] == "ghs":
        from repro.fuzz.world import GHSFuzzWorld

        kwargs = dict(
            n=params["n"],
            seed=params["seed"],
            algorithm=params.get("algorithm", "MGHS"),
            fault_seed=params.get("fault_seed", 0),
            drop_rate=params.get("drop_rate", 0.0),
            dup_rate=params.get("dup_rate", 0.0),
            link_loss=tuple(
                ((u, v), p) for u, v, p in params.get("link_loss", ())
            ),
            dead_nodes=tuple(params.get("dead_nodes", ())),
            cap_slack=params.get("cap_slack", 1.0),
            record_fates=record_fates,
        )
        if configs is not None:
            kwargs["configs"] = configs
        return GHSFuzzWorld(**kwargs)
    if data["machine"] == "maint":
        from repro.fuzz.maint_world import ScenarioFuzzWorld

        kwargs = dict(n=params["n"], seed=params.get("seed", 0))
        if configs is not None:
            kwargs["configs"] = configs
        return ScenarioFuzzWorld(**kwargs)
    if data["machine"] == "connt":
        from repro.fuzz.connt_world import ConntRetryWorld

        return ConntRetryWorld(
            n=params["n"],
            seed=params.get("seed", 0),
            fault_seed=params.get("fault_seed", 0),
            drop_rate=params.get("drop_rate", 0.0),
            dup_rate=params.get("dup_rate", 0.0),
            link_loss=tuple(
                ((u, v), p) for u, v, p in params.get("link_loss", ())
            ),
            crashes=tuple(tuple(c) for c in params.get("crashes", ())),
            record_fates=record_fates,
        )
    from repro.fuzz.retry_world import RetryFuzzWorld

    return RetryFuzzWorld(
        n=params["n"],
        fault_seed=params.get("fault_seed", 0),
        drop_rate=params.get("drop_rate", 0.0),
        dup_rate=params.get("dup_rate", 0.0),
        link_loss=tuple(((u, v), p) for u, v, p in params.get("link_loss", ())),
        crashes=tuple(tuple(c) for c in params.get("crashes", ())),
        record_fates=record_fates,
    )


def replay_scenario(data: dict, *, configs=None, record_fates: bool = True):
    """Rebuild the world and re-apply every recorded op; returns the world.

    Raises whatever the original failure raised if the scenario still
    reproduces it; a clean return means the counterexample is fixed (the
    corpus test asserts exactly that).  ``configs`` narrows a GHS replay
    to a subset of kernel configurations (trace capture wants one).
    """
    _validate(data, source="scenario")
    world = _build_world(data, configs=configs, record_fates=record_fates)
    machine = data["machine"]
    for op in data["ops"]:
        name, args = op[0], op[1:]
        if name == "advance":
            world.advance(args[0])
        elif name == "probe_step":
            world.probe_step()
        elif name == "run_rounds":
            world.run_rounds(args[0])
        elif name == "retry_tick":
            world.retry_tick()
        elif name == "send":
            world.send(args[0], args[1])
        elif name == "crash":
            world.crash(args[0], args[1], expect_start=args[2] if len(args) > 2 else None)
        elif name == "crash_forever":
            world.crash_forever(args[0], expect_start=args[1] if len(args) > 1 else None)
        elif name == "join":
            world.join(args[0], args[1])
        elif name == "leave":
            world.leave(args[0])
        elif name == "move":
            world.move(args[0], args[1], args[2])
        elif name == "checkpoint":
            world.checkpoint(args[0], args[1] if len(args) > 1 else 0)
        elif name == "set_cap":
            world.set_cap(args[0])
        elif name == "drain":
            world.drain()
        elif name == "finish":
            world.finish()
        else:
            raise ExperimentError(f"scenario op {name!r} unknown")
    # Make every replay reach the endgame invariants, whether or not the
    # recorded sequence ended with an explicit finish/drain.
    if machine == "retry":
        if not world.drained:
            world.drain()
    elif not world.finished:
        world.finish()
    return world


def iter_corpus(dirpath: str | Path) -> list[Path]:
    """Sorted scenario files under ``dirpath`` (empty list if absent)."""
    root = Path(dirpath)
    if not root.is_dir():
        return []
    return sorted(p for p in root.glob("*.json") if p.is_file())
