"""Multi-backend lockstep world for scenario-plane (MAINT) fuzzing.

A :class:`ScenarioFuzzWorld` holds one :class:`~repro.scenario.scheduler.
ScenarioScheduler` per registered kernel configuration over the *same*
instance, and applies every fuzz rule — crash (permanent or transient),
join, leave, move, repair/rebuild checkpoints — to all of them.  This is
the headroom the step harness deliberately leaves on the table: the
harness drives only the scalar loop, while a fault-free maintenance
cycle on the turbo backend satisfies the whole-round phase engine's
eligibility, so every checkpoint here runs the turbo engine in lockstep
with the scalar fast/legacy paths (and the plane fast path on and off).

Endgame invariants (:meth:`check_final`):

* every configuration produced the identical tree, merged stats and
  global clock;
* the final tree is a spanning forest of the final alive RGG: every
  edge is a legal radio edge at the final operating radius, the edge
  count is ``m - #components``, and the tree's connectivity partition
  equals the RGG's.  (No global-MST oracle: incremental repair is
  *forest-constrained* — it keeps surviving tree edges a from-scratch
  MST might not, so exact-MST is deliberately not an invariant here;
  the quality gap is what ``bench_maintenance`` measures.)

Every mutation is recorded in ``self.ops`` so a failing interleaving
replays exactly through :mod:`repro.fuzz.corpus` (machine ``"maint"``),
and exports as a ``MAINT`` :class:`~repro.runspec.spec.RunSpec` whose
embedded :class:`~repro.scenario.plan.ScenarioPlan` carries the events
at the global rounds they actually fired at.
"""

from __future__ import annotations

import numpy as np

from repro.ds.unionfind import UnionFind
from repro.errors import ProtocolError
from repro.experiments.instances import get_points
from repro.fuzz.world import default_configs
from repro.geometry.radius import connectivity_radius
from repro.rgg.build import build_rgg
from repro.scenario.plan import CHECKPOINT_KINDS, ScenarioEvent
from repro.scenario.scheduler import ScenarioScheduler
from repro.sim.backends import kernel_class

__all__ = ["ScenarioFuzzWorld"]


class ScenarioFuzzWorld:
    """One scenario event sequence driven across every kernel config."""

    def __init__(
        self,
        *,
        n: int,
        seed: int,
        configs: list[tuple[str, bool]] | None = None,
    ) -> None:
        self.n = int(n)
        self.seed = int(seed)
        self.points = get_points(self.n, self.seed)
        self.configs = list(configs) if configs is not None else default_configs()
        self.scheds = [
            ScenarioScheduler(
                self.points, kernel_cls=kernel_class(mode), planes=planes
            )
            for mode, planes in self.configs
        ]
        self.ops: list[list] = []
        #: Events recorded at their global firing round -> to_runspec().
        self.events: list[ScenarioEvent] = []
        self.finished = False
        self.failed = False
        self.dirty = False
        try:
            for s in self.scheds:
                s.build()
            self.check_alignment()
        except Exception as exc:
            raise self._fail(exc)

    # -- helpers -------------------------------------------------------------

    @property
    def ref(self) -> ScenarioScheduler:
        return self.scheds[0]

    def _fail(self, exc: Exception) -> Exception:
        self.failed = True
        return exc

    def _label(self, i: int) -> str:
        mode, planes = self.configs[i]
        return f"{mode}/planes={planes}"

    def alive_nodes(self) -> list[int]:
        return [int(g) for g in self.ref.alive_ids()]

    def common_clock(self) -> int:
        clocks = {s.clock for s in self.scheds}
        if len(clocks) != 1:
            raise self._fail(
                ProtocolError(
                    "backends lost lockstep: clocks "
                    + ", ".join(
                        f"{self._label(i)}: {s.clock}"
                        for i, s in enumerate(self.scheds)
                    )
                )
            )
        return clocks.pop()

    def check_alignment(self) -> None:
        """Cross-backend lockstep: clock, cumulative stats, current tree."""
        self.common_clock()
        ref = self.ref
        for i, s in enumerate(self.scheds[1:], start=1):
            key = (s._energy_total, s._messages_total, s.cycle, len(s.tree))
            ref_key = (ref._energy_total, ref._messages_total, ref.cycle, len(ref.tree))
            if key != ref_key:
                raise self._fail(
                    ProtocolError(
                        f"backends diverged: {self._label(0)} has "
                        f"(energy, messages, cycles, tree)={ref_key} but "
                        f"{self._label(i)} has {key}"
                    )
                )
            if not np.array_equal(s.tree, ref.tree):
                raise self._fail(
                    ProtocolError(
                        f"backends computed different trees: "
                        f"{self._label(0)} vs {self._label(i)}"
                    )
                )

    def _apply(self, op: list, fn) -> None:
        self.ops.append(op)
        try:
            for s in self.scheds:
                fn(s)
            self.check_alignment()
        except Exception as exc:
            raise self._fail(exc)

    # -- rules (each records an op for exact replay) -------------------------

    def crash(
        self, node: int, duration: int | None = None, expect_start=None
    ) -> None:
        """Crash ``node`` everywhere (``expect_start`` ignored: events
        fire between cycles, so there is no round drift to detect)."""
        node = int(node)
        duration = None if duration is None else int(duration)
        clock = self.common_clock()
        self._apply(["crash", node, duration], lambda s: s.crash(node, duration))
        self.events.append(
            ScenarioEvent(round=clock, kind="crash", node=node, duration=duration)
        )
        self.dirty = True

    def join(self, x: float, y: float) -> None:
        x, y = float(x), float(y)
        clock = self.common_clock()
        self._apply(["join", x, y], lambda s: s.join(x, y))
        self.events.append(ScenarioEvent(round=clock, kind="join", x=x, y=y))
        self.dirty = True

    def leave(self, node: int) -> None:
        node = int(node)
        clock = self.common_clock()
        self._apply(["leave", node], lambda s: s.leave(node))
        self.events.append(ScenarioEvent(round=clock, kind="leave", node=node))
        self.dirty = True

    def move(self, node: int, x: float, y: float) -> None:
        node = int(node)
        x, y = float(x), float(y)
        clock = self.common_clock()
        self._apply(["move", node, x, y], lambda s: s.move(node, x, y))
        self.events.append(
            ScenarioEvent(round=clock, kind="move", node=node, x=x, y=y)
        )
        self.dirty = True

    def checkpoint(self, kind: str, delay: int = 0) -> None:
        """Run a maintenance cycle on every backend.

        ``delay > 0`` schedules the checkpoint ``delay`` rounds past the
        current clock, exercising the idle-to-round path (the kernel
        ticks to the target on every backend before repairing).
        """
        if kind not in CHECKPOINT_KINDS:
            raise ProtocolError(f"unknown checkpoint kind {kind!r}")
        delay = int(delay)
        if delay < 0:
            raise ProtocolError(f"checkpoint delay must be >= 0, got {delay}")
        at = self.common_clock() + delay
        self._apply(
            ["checkpoint", kind, delay], lambda s: s.checkpoint(kind, at_round=at)
        )
        self.events.append(ScenarioEvent(round=at, kind=kind))
        self.dirty = False

    def finish(self) -> None:
        """Flush pending events through a final repair, then check."""
        if self.finished:
            return
        self.ops.append(["finish"])
        try:
            if self.dirty:
                at = self.common_clock()
                for s in self.scheds:
                    s.checkpoint("repair", at_round=at)
                self.events.append(ScenarioEvent(round=at, kind="repair"))
                self.dirty = False
            self.finished = True
            self.check_alignment()
            self.check_final()
        except Exception as exc:
            raise self._fail(exc)

    # -- endgame invariants ---------------------------------------------------

    def check_final(self) -> None:
        ref = self.ref
        for i, s in enumerate(self.scheds[1:], start=1):
            a, b = ref.stats(), s.stats()
            mismatched = [
                name
                for name, x, y in (
                    ("energy_total", a.energy_total, b.energy_total),
                    ("messages_total", a.messages_total, b.messages_total),
                    ("rounds", a.rounds, b.rounds),
                    ("messages_by_kind", a.messages_by_kind, b.messages_by_kind),
                )
                if x != y
            ]
            if mismatched:
                raise ProtocolError(
                    f"backend stats diverged ({self._label(0)} vs "
                    f"{self._label(i)}): " + ", ".join(mismatched)
                )
        self._check_spanning_forest()

    def _check_spanning_forest(self) -> None:
        """The final tree spans each component of the final alive RGG."""
        ref = self.ref
        ids = ref.alive_ids()
        m = int(ids.size)
        g2l = {int(g): i for i, g in enumerate(ids)}
        r = connectivity_radius(max(m, 2), ref.radius_const)
        tree = ref.tree
        pos = ref.positions
        for u, v in tree:
            u, v = int(u), int(v)
            if u not in g2l or v not in g2l:
                raise ProtocolError(f"tree edge ({u}, {v}) touches a dead node")
            if float(np.hypot(*(pos[u] - pos[v]))) > r * (1 + 1e-12):
                raise ProtocolError(
                    f"tree edge ({u}, {v}) is longer than the operating radius"
                )
        g = build_rgg(pos[ids], r)
        uf_rgg = UnionFind(m)
        for u, v in np.asarray(g.edges):
            uf_rgg.union(int(u), int(v))
        uf_tree = UnionFind(m)
        for u, v in tree:
            uf_tree.union(g2l[int(u)], g2l[int(v)])
        components = len({uf_rgg.find(i) for i in range(m)})
        if len(tree) != m - components:
            raise ProtocolError(
                f"tree has {len(tree)} edges over {m} alive nodes but the "
                f"RGG has {components} component(s): not a spanning forest"
            )
        parts_rgg = {}
        parts_tree = {}
        for i in range(m):
            parts_rgg.setdefault(uf_rgg.find(i), set()).add(i)
            parts_tree.setdefault(uf_tree.find(i), set()).add(i)
        if sorted(map(sorted, parts_rgg.values())) != sorted(
            map(sorted, parts_tree.values())
        ):
            raise ProtocolError(
                "tree connectivity partition differs from the RGG's "
                "(some component is split or bridged)"
            )

    # -- artifacts ------------------------------------------------------------

    def to_runspec(self):
        """The declarative artifact: a MAINT spec with the recorded plan.

        Event rounds are the common global clock at firing time, which is
        monotone, so the recorded list is a valid (non-decreasing) plan;
        replaying it through ``run_plan`` applies the same mutations at
        the same checkpoints.
        """
        from repro.runspec.spec import RunSpec
        from repro.scenario.plan import ScenarioPlan

        return RunSpec(
            algorithm="MAINT",
            n=self.n,
            seed=self.seed,
            kernel="fast",
            planes=True,
            scenario=ScenarioPlan(events=tuple(self.events)),
        )

    def to_scenario(self) -> dict:
        """Exact-replay payload for the corpus (see repro.fuzz.corpus)."""
        return {
            "schema_version": 1,
            "kind": "fuzz_scenario",
            "machine": "maint",
            "params": {"n": self.n, "seed": self.seed},
            "ops": [list(op) for op in self.ops],
        }
