"""Counterexample export: shrunk fuzz failure -> replayable artifacts.

When a fuzz campaign fails, hypothesis hands us the *shrunk* world (the
minimal rule sequence that still fails).  :func:`export_failure` turns it
into a directory of artifacts:

``scenario.json``
    Exact-replay payload for :func:`repro.fuzz.corpus.replay_scenario` —
    check it into ``tests/corpus/`` once fixed and it becomes a
    regression test.
``spec.json``
    The nearest declarative :class:`~repro.runspec.spec.RunSpec` (GHS
    worlds only): instance + algorithm + the effective fault plan, so the
    failure is also approachable through ``repro run``.
``error.txt``
    The exception that ended the run.
``trace_diff.txt`` / ``trace_diff.json``
    First-divergence report between two traced replays of the scenario:
    fast/planes vs legacy/flat for GHS worlds (where did the backends
    split?), replay-vs-replay for retry worlds (is the failure even
    deterministic?).  Replays are expected to fail again — the traces
    captured up to the failure are exactly the interesting part.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.trace import trace
from repro.trace.diff import diff_traces, format_divergence

__all__ = ["export_failure"]


def _traced_replay(scenario: dict, *, configs=None) -> list[dict]:
    """Replay a scenario with tracing on; tolerate the expected failure."""
    from repro.fuzz.corpus import replay_scenario

    was_enabled = trace.enabled
    saved = trace.snapshot()
    trace.reset()
    trace.enable()
    try:
        replay_scenario(scenario, configs=configs, record_fates=False)
    except Exception:
        pass  # the counterexample still reproduces — that's the point
    finally:
        events = trace.snapshot()
        trace.reset()
        trace.merge(saved)
        if not was_enabled:
            trace.disable()
    return events


def _trace_report(world) -> tuple[str, dict | None]:
    """(human report, divergence payload) for the failing scenario."""
    scenario = world.to_scenario()
    if scenario["machine"] == "ghs":
        label_a, label_b = "fast/planes", "legacy/flat"
        a = _traced_replay(scenario, configs=[("fast", True)])
        b = _traced_replay(scenario, configs=[("legacy", False)])
    else:
        # One machine, two replays: a non-empty diff here means the
        # failure itself is nondeterministic — the worst kind of bug.
        label_a, label_b = "replay-1", "replay-2"
        a = _traced_replay(scenario)
        b = _traced_replay(scenario)
    d = diff_traces(a, b)
    report = format_divergence(d, label_a, label_b)
    return report, (d.to_dict() if d is not None else None)


def export_failure(world, *, error: Exception, outdir: str | Path) -> dict:
    """Write every artifact for a failing world; returns {name: path}."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    artifacts: dict[str, str] = {}

    from repro.fuzz.corpus import save_scenario

    scenario = world.to_scenario()
    path = save_scenario(scenario, outdir / "scenario.json")
    artifacts["scenario"] = str(path)

    if hasattr(world, "to_runspec"):
        spec_path = outdir / "spec.json"
        spec_path.write_text(world.to_runspec().to_json() + "\n")
        artifacts["spec"] = str(spec_path)

    err_path = outdir / "error.txt"
    err_path.write_text(f"{type(error).__name__}: {error}\n")
    artifacts["error"] = str(err_path)

    try:
        report, payload = _trace_report(world)
    except Exception as exc:  # diagnostics must never mask the finding
        report, payload = f"trace diff unavailable: {exc}", None
    txt_path = outdir / "trace_diff.txt"
    txt_path.write_text(report + "\n")
    artifacts["trace_diff"] = str(txt_path)
    if payload is not None:
        json_path = outdir / "trace_diff.json"
        json_path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        artifacts["trace_diff_json"] = str(json_path)
    return artifacts
