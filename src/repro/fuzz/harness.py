"""Step-wise GHS-family execution for the fuzzing worlds.

The production drivers (:mod:`repro.algorithms.ghs.driver`) run each
stage to quiescence inside one call — correct for runners, useless for a
fuzzer that wants to interleave fault mutations *between* kernel rounds.
:class:`StepHarness` re-expresses the exact driver loop (hello round,
Borůvka phases, fault-recovery settle barriers) as a generator that
yields after every ``kernel.step()`` / ``kernel.tick()``, so one yield
== one advanced round.  Because equivalent configurations advance their
rounds bit-identically (the kernel equivalence contract pinned by
``tests/test_hotpath_equivalence.py``), several harnesses driven with
the same yield counts stay in lockstep — which is what lets
:class:`repro.fuzz.world.GHSFuzzWorld` cross-check every registered
backend against every other after every rule.

The loop body deliberately mirrors :func:`~repro.algorithms.ghs.driver.
hello_round`, :func:`~repro.algorithms.ghs.driver.run_ghs_phases` and
:meth:`~repro.algorithms.ghs.driver.GHSRecovery.settle` statement for
statement (reusing the recovery repair primitives rather than copying
them); ``tests/test_fuzz.py`` pins the harness against the production
runner bit-for-bit, with and without faults.  The turbo whole-round
phase engine is intentionally bypassed: the harness always drives the
scalar loop, which every kernel backend supports.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import collect_tree_edges
from repro.algorithms.ghs.audit import audit_ghs_state, audit_recovery
from repro.algorithms.ghs.driver import GHSRecovery, active_leaders
from repro.algorithms.ghs.node import GHSNode
from repro.algorithms.ghs.plane import FloodCache
from repro.errors import ProtocolError
from repro.sim.backends import kernel_class
from repro.trace import trace

__all__ = ["StepHarness"]


class StepHarness:
    """One GHS-family run, advanced round by round from the outside.

    Parameters mirror the runner (:func:`~repro.algorithms.ghs.runner.
    run_modified_ghs`): ``use_tests`` selects original GHS over modified,
    ``faults`` engages the reliable/recovery layer exactly like the
    runner does, ``max_radius`` sets the kernel power cap (the protocol
    still floods at ``radius``; a larger cap gives the fuzzer legal room
    to shrink/grow the cap mid-run without invalidating the neighbor
    table).  ``audit_barriers`` runs the state auditor at every settle
    barrier the run crosses.
    """

    def __init__(
        self,
        points,
        *,
        radius: float,
        kernel_mode: str = "fast",
        planes: bool = True,
        use_tests: bool = False,
        faults=None,
        rx_cost: float = 0.0,
        max_radius: float | None = None,
        audit_barriers: bool = True,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        kwargs = {}
        if faults is not None:
            kwargs["faults"] = faults
        self.kernel = kernel_class(kernel_mode)(
            pts, max_radius=float(max_radius or radius), rx_cost=rx_cost, **kwargs
        )
        self.kernel_mode = kernel_mode
        self.planes = planes
        self.radius = float(radius)
        self.use_tests = use_tests
        # Same engagement rule as the runner: recovery only when faults
        # are actually injected.
        reliable = faults is not None and not faults.is_null
        self.reliable = reliable
        self.kernel.add_nodes(
            lambda i, ctx: GHSNode(
                i, ctx, use_tests=use_tests, announce=not use_tests, reliable=reliable
            )
        )
        self.nodes = self.kernel.nodes
        self.recovery = (
            GHSRecovery(self.kernel, self.nodes, verify_fids=not use_tests)
            if reliable
            else None
        )
        self.audit_barriers = audit_barriers
        self.phases = 0
        self.barriers = 0
        self.finished = False
        self.at_barrier = False
        self.kernel.start()
        self._gen = self._drive()

    # -- outside controls ---------------------------------------------------

    @property
    def rounds(self) -> int:
        return self.kernel.rounds

    def set_cap(self, cap: float) -> None:
        """Move the kernel power cap (must stay >= the protocol radius)."""
        if cap < self.radius:
            raise ProtocolError(
                f"power cap {cap} below the protocol radius {self.radius}"
            )
        self.kernel.set_max_radius(float(cap))

    def advance(self, steps: int = 1) -> int:
        """Advance up to ``steps`` rounds; returns how many actually ran
        (fewer only when the run finishes mid-way)."""
        done = 0
        for _ in range(int(steps)):
            if self.finished:
                break
            try:
                next(self._gen)
            except StopIteration:
                self.finished = True
                break
            done += 1
        return done

    def run_to_completion(self, max_steps: int = 500_000) -> None:
        for _ in range(max_steps):
            if self.finished:
                return
            self.advance(1024)
        raise ProtocolError(f"run did not finish within {max_steps} windows")

    def result(self):
        """``(tree_edges, stats)`` after the run finished."""
        if not self.finished:
            raise ProtocolError("result() before the run finished")
        edges = collect_tree_edges((nd.id, nd.tree_edges) for nd in self.nodes)
        return edges, self.kernel.stats()

    # -- the driver loop, one yield per round --------------------------------

    def _drive(self):
        kernel, nodes = self.kernel, self.nodes
        r = self.radius
        fp = kernel.faults

        # --- hello round (mirrors driver.hello_round) ---
        kernel.set_stage("hello")
        if trace.enabled:
            trace.emit("hello", round=kernel.rounds, radius=r)
        cache = None
        if self.planes and nodes:
            cache = FloodCache.ensure(kernel)
        if cache is not None:
            kernel.set_plane_handler(cache.on_plane)
            for nd in nodes:
                nd.attach_cache(cache)
            for nd in nodes:
                nd.radio_radius = r
            senders = np.arange(kernel.n, dtype=np.intp)
            if fp is not None and fp.has_crashes:
                senders = senders[~fp.crashed_mask(senders, kernel.rounds)]
            fids = np.fromiter(
                (nodes[i].fid for i in senders), dtype=np.int64, count=len(senders)
            )
            if len(senders) and not kernel.broadcast_plane(senders, r, "HELLO", fids):
                cache = None
        if cache is None:
            kernel.set_plane_handler(None)
            for nd in nodes:
                nd.attach_cache(None)
                nd.radio_radius = r
            kernel.wake(range(kernel.n), "hello", (r,))
        if self.recovery is not None:
            self.recovery._radius = r
        yield from self._settle(None)

        # --- Borůvka phases (mirrors driver.run_ghs_phases, scalar loop) ---
        kernel.set_stage("phases")
        n = max(len(nodes), 2)
        max_phases = 2 * int(math.log2(n)) + 20
        phase = 0
        while True:
            leaders = yield from self._live_leaders()
            if not leaders:
                return
            phase += 1
            self.phases += 1
            if self.phases > max_phases:
                raise ProtocolError(
                    f"GHS did not terminate within {max_phases} phases "
                    f"({len(leaders)} active fragments remain)"
                )
            if trace.enabled:
                trace.emit(
                    "phase_start", phase=phase, round=kernel.rounds, active=len(leaders)
                )
            kernel.wake(leaders, "initiate", (phase,))
            yield from self._settle(None)
            participants = [
                nd.id for nd in nodes if nd.cur_phase == phase and not nd.passive
            ]
            if fp is not None and fp.has_crashes:
                rnd = kernel.rounds
                participants = [i for i in participants if not fp.crashed(i, rnd)]
            cache_now = nodes[0].cache if nodes else None
            if participants and cache_now is not None and not self.use_tests:
                pids = np.asarray(participants, dtype=np.intp)
                fids = np.fromiter(
                    (nodes[i].fid for i in participants),
                    dtype=np.int64,
                    count=len(participants),
                )
                cand, kdist, klo, khi = cache_now.moe_batch(pids, fids)
                cand_l = cand.tolist()
                kd_l = kdist.tolist()
                klo_l = klo.tolist()
                khi_l = khi.tolist()
                for idx, i in enumerate(participants):
                    nd = nodes[i]
                    if nd.cur_phase == phase and not nd.passive:
                        nd.apply_moe(cand_l[idx], kd_l[idx], klo_l[idx], khi_l[idx])
            else:
                kernel.wake(participants, "find_moe", (phase,))
            yield from self._settle(phase)

    def _live_leaders(self):
        """Generator twin of ``driver._live_leaders`` (ticks yield)."""
        kernel, nodes = self.kernel, self.nodes
        leaders = active_leaders(nodes)
        fp = kernel.faults
        if fp is None or not fp.has_crashes or not leaders:
            return leaders
        rnd = kernel.rounds
        alive = []
        for i in leaders:
            if fp.gone_forever(i, rnd):
                if fp.crash_start(i) > 0:
                    raise ProtocolError(
                        f"fragment leader {i} crashed permanently at round "
                        f"{fp.crash_start(i)} after participating; recovery "
                        "only covers transient crashes and never-started nodes"
                    )
                continue
            alive.append(i)
        waited = 0
        while any(fp.crashed(i, kernel.rounds) for i in alive):
            kernel.tick()
            yield
            waited += 1
            if waited > 1_000_000:
                raise ProtocolError(
                    "a fragment leader's crash window did not expire within "
                    "1000000 rounds"
                )
        return alive

    def _settle(self, phase):
        """Generator twin of ``GHSRecovery.settle`` (steps/ticks yield)."""
        kernel = self.kernel
        self.at_barrier = False
        recovery = self.recovery
        if recovery is None:
            while kernel.in_flight:
                kernel.step()
                yield
        else:
            fp = kernel.faults
            nodes = self.nodes
            for _ in range(recovery.max_iters):
                while kernel.in_flight:
                    kernel.step()
                    yield
                rnd = kernel.rounds
                holders = [
                    nd.id for nd in nodes if nd.retry is not None and nd.retry.pending
                ]
                if holders:
                    live = [i for i in holders if not fp.gone_forever(i, rnd)]
                    if not live:
                        raise ProtocolError(
                            f"nodes {holders} hold unacknowledged reliable "
                            "traffic but crashed permanently; recovery only "
                            "covers transient crashes and never-started nodes"
                        )
                    alive = [i for i in live if not fp.crashed(i, rnd)]
                    if alive:
                        if trace.enabled:
                            trace.emit("retry", round=rnd, nodes=len(alive))
                        kernel.wake(alive, "retry_tick")
                        if not kernel.in_flight:
                            kernel.tick()
                            yield
                    else:
                        kernel.tick()
                        yield
                    continue
                ready, blocked = recovery._stale_floods(rnd)
                if ready:
                    if trace.enabled:
                        trace.emit("rehello", round=rnd, nodes=len(ready))
                    kernel.wake(ready, "rehello")
                    if not kernel.in_flight:
                        blocked = True
                    else:
                        continue
                if blocked:
                    kernel.tick()
                    yield
                    continue
                if phase is not None:
                    todo, waiting = recovery._unsearched(phase, rnd)
                    if todo:
                        if trace.enabled:
                            trace.emit(
                                "rewake", round=rnd, phase=phase, nodes=len(todo)
                            )
                        kernel.wake(todo, "find_moe", (phase,))
                        continue
                    if waiting:
                        kernel.tick()
                        yield
                        continue
                break
            else:
                raise ProtocolError(
                    f"fault recovery did not settle in {recovery.max_iters} "
                    "iterations (permanently crashed peer mid-protocol?)"
                )
            if trace.enabled:
                trace.emit("settle", round=kernel.rounds)
        self.at_barrier = True
        self.barriers += 1
        if self.audit_barriers:
            if self.recovery is not None:
                audit_recovery(self.nodes, kernel=kernel)
            else:
                audit_ghs_state(self.nodes, strict_fids=False)
