"""MST-style topology control: the Local-MST (LMST) backbone.

The paper cites topology-control algorithms that "use MSTs to construct
well connected subgraphs with provable cost relative to the optimum"
(Sec. I, [24]).  The canonical such construction is Li–Hou–Sha LMST:
every node computes the MST of its 1-hop neighbourhood (itself included)
and keeps only the edges incident to it in that local MST.  The
symmetrised result is known to

* preserve connectivity whenever the input RGG is connected,
* have maximum degree at most 6,
* contain the (global) Euclidean MST restricted to the radius.

:func:`local_mst_topology` implements the construction;
:func:`topology_stats` measures edge/degree/energy-cost reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.mst.kruskal import kruskal_mst
from repro.rgg.build import GeometricGraph, _assemble


def local_mst_topology(graph: GeometricGraph, *, symmetric: bool = True) -> GeometricGraph:
    """The LMST backbone of ``graph``.

    Parameters
    ----------
    graph:
        Input RGG (each node sees its 1-hop neighbourhood).
    symmetric:
        ``True`` keeps an edge iff *both* endpoints selected it (LMST's
        usual symmetrised variant G0-); ``False`` keeps it if either did.

    Returns a new :class:`GeometricGraph` over the same points.
    """
    n = graph.n
    pts = graph.points
    selected: set[tuple[int, int]] = set()
    votes: dict[tuple[int, int], int] = {}
    for u in range(n):
        nbrs = graph.neighbors(u)
        if len(nbrs) == 0:
            continue
        local = np.concatenate(([u], nbrs))
        index_of = {int(v): k for k, v in enumerate(local)}
        # All edges of graph among the local node set (1-hop neighbourhood).
        rows: list[tuple[int, int]] = []
        weights: list[float] = []
        for a in local:
            a = int(a)
            for b in graph.neighbors(a):
                b = int(b)
                if b in index_of and a < b:
                    rows.append((index_of[a], index_of[b]))
                    d = pts[a] - pts[b]
                    weights.append(float(d @ d))
        if not rows:
            continue
        tree_edges, _ = kruskal_mst(
            len(local), np.array(rows, dtype=np.int64), np.array(weights)
        )
        u_local = index_of[u]
        for a, b in tree_edges:
            if a == u_local or b == u_local:
                other = int(local[b]) if a == u_local else int(local[a])
                key = (u, other) if u < other else (other, u)
                votes[key] = votes.get(key, 0) + 1
    need = 2 if symmetric else 1
    selected = {k for k, v in votes.items() if v >= need}
    if not selected:
        edges = np.zeros((0, 2), dtype=np.int64)
        lengths = np.zeros(0)
    else:
        edges = np.array(sorted(selected), dtype=np.int64)
        d = pts[edges[:, 0]] - pts[edges[:, 1]]
        lengths = np.sqrt(np.sum(d * d, axis=1))
    return _assemble(pts, graph.radius, edges, lengths)


@dataclass(frozen=True)
class TopologyStats:
    """Before/after comparison of a topology-control pass."""

    n: int
    edges_before: int
    edges_after: int
    max_degree_before: int
    max_degree_after: int
    energy_cost_before: float  # sum of d^2 over kept links
    energy_cost_after: float

    @property
    def edge_reduction(self) -> float:
        """Fraction of edges removed by the control pass."""
        if self.edges_before == 0:
            return 0.0
        return 1.0 - self.edges_after / self.edges_before


def topology_stats(before: GeometricGraph, after: GeometricGraph) -> TopologyStats:
    """Summarise what a topology-control pass changed."""
    if before.n != after.n:
        raise GraphError("graphs have different node counts")
    return TopologyStats(
        n=before.n,
        edges_before=before.m,
        edges_after=after.m,
        max_degree_before=int(before.degrees().max()) if before.n else 0,
        max_degree_after=int(after.degrees().max()) if after.n else 0,
        energy_cost_before=float(np.sum(before.lengths**2)),
        energy_cost_after=float(np.sum(after.lengths**2)),
    )
