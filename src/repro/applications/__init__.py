"""Applications the paper motivates MST construction with (Secs. I-II).

* :mod:`~repro.applications.aggregation` — convergecast data aggregation
  over a tree ("MST is the optimal data aggregation tree", Sec. II), with
  a direct-to-sink baseline;
* :mod:`~repro.applications.broadcast` — tree-based energy-efficient
  broadcast (MST broadcast is within a constant of optimal [5, 27])
  against naive flooding;
* :mod:`~repro.applications.topology` — MST-style topology control: the
  local-MST construction that keeps a sparse connected backbone;
* :mod:`~repro.applications.maintenance` — incremental MST repair after
  node failures (the intro's mobility/failure motivation).
"""

from repro.applications.aggregation import simulate_aggregation, direct_to_sink_energy
from repro.applications.broadcast import simulate_tree_broadcast, simulate_flooding
from repro.applications.topology import local_mst_topology, topology_stats
from repro.applications.maintenance import repair_after_failures, surviving_forest

__all__ = [
    "simulate_aggregation",
    "direct_to_sink_energy",
    "simulate_tree_broadcast",
    "simulate_flooding",
    "local_mst_topology",
    "topology_stats",
    "repair_after_failures",
    "surviving_forest",
]
