"""Convergecast data aggregation over a spanning tree.

The paper's Sec. II motivation: "one popular paradigm for computing such
aggregates is to construct a (directed) tree rooted at the sink where each
node forwards its (locally) aggregated data collected from its subtree to
its parent.  For such cases, MST is the optimal data aggregation tree."

:func:`simulate_aggregation` runs that convergecast on the simulator
(one unicast per tree edge, energy ``d^2`` each), so aggregating over the
MST costs exactly ``L_MST(V) = sum d^2`` — the paper's trivial lower
bound.  :func:`direct_to_sink_energy` is the no-aggregation baseline
(every node transmits straight to the sink).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.errors import GraphError, ProtocolError
from repro.mst.quality import verify_spanning_tree
from repro.sim.energy import SimStats
from repro.sim.kernel import SynchronousKernel
from repro.sim.message import Message
from repro.sim.node import NodeProcess
from repro.sim.power import PathLossModel

#: Supported aggregate operators (paper: "minimum, maximum, average, etc").
AGGREGATE_OPS: dict[str, Callable[[float, float], float]] = {
    "sum": lambda a, b: a + b,
    "min": min,
    "max": max,
}


def orient_tree(n: int, edges: np.ndarray, root: int) -> tuple[np.ndarray, list[list[int]]]:
    """Orient an undirected tree towards ``root``.

    Returns ``(parent, children)``: ``parent[root] = -1``; ``children[u]``
    lists ``u``'s children.  BFS from the root, so depth order is natural.
    """
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in e:
        adj[int(u)].append(int(v))
        adj[int(v)].append(int(u))
    parent = np.full(n, -2, dtype=np.int64)
    parent[root] = -1
    children: list[list[int]] = [[] for _ in range(n)]
    queue = [root]
    while queue:
        u = queue.pop(0)
        for v in adj[u]:
            if parent[v] == -2:
                parent[v] = u
                children[u].append(v)
                queue.append(v)
    if np.any(parent == -2):
        raise GraphError("edge set does not span all nodes from the root")
    return parent, children


class _AggNode(NodeProcess):
    """Convergecast node: aggregate children's values, forward to parent."""

    __slots__ = ("value", "parent", "n_children", "_received", "_acc", "_count", "op", "result", "result_count")

    def configure(self, value: float, parent: int, n_children: int, op: str) -> None:
        self.value = value
        self.parent = parent
        self.n_children = n_children
        self._received = 0
        self._acc = value
        self._count = 1
        self.op = op
        self.result: float | None = None
        self.result_count: int | None = None

    def on_wake(self, signal: str, payload: tuple = ()) -> None:
        if signal != "go":
            raise ProtocolError(f"unknown wake signal {signal!r}")
        if self.n_children == 0:
            self._forward()

    def _forward(self) -> None:
        if self.parent < 0:  # the sink
            self.result = self._acc
            self.result_count = self._count
            return
        self.ctx.unicast(self.parent, "AGG", self._acc, self._count)

    def on_message(self, msg: Message, distance: float) -> None:
        if msg.kind != "AGG":
            raise ProtocolError(f"unknown message kind {msg.kind!r}")
        val, cnt = msg.payload
        self._acc = AGGREGATE_OPS[self.op](self._acc, val)
        self._count += cnt
        self._received += 1
        if self._received == self.n_children:
            self._forward()


def simulate_aggregation(
    points: np.ndarray,
    tree_edges: np.ndarray,
    sink: int,
    values: np.ndarray,
    op: str = "sum",
    *,
    power: PathLossModel | None = None,
) -> tuple[float, SimStats]:
    """Aggregate ``values`` at ``sink`` over ``tree_edges``; return (result, stats).

    ``op`` is one of ``"sum"``, ``"min"``, ``"max"``, ``"avg"`` (average is
    computed as a (sum, count) pair, the standard decomposable form).
    Exactly one unicast crosses each tree edge, so the energy equals
    ``sum over tree edges of d^2``.
    """
    pts = np.asarray(points, dtype=float)
    vals = np.asarray(values, dtype=float)
    n = len(pts)
    if len(vals) != n:
        raise GraphError(f"{len(vals)} values for {n} nodes")
    if not (0 <= sink < n):
        raise GraphError(f"sink {sink} out of range")
    verify_spanning_tree(n, tree_edges)
    want_avg = op == "avg"
    inner_op = "sum" if want_avg else op
    if inner_op not in AGGREGATE_OPS:
        raise GraphError(f"unsupported op {op!r}")
    parent, children = orient_tree(n, tree_edges, sink)

    kernel = SynchronousKernel(pts, max_radius=math.sqrt(2.0), power=power)
    kernel.add_nodes(_AggNode)
    for i, node in enumerate(kernel.nodes):
        node.configure(float(vals[i]), int(parent[i]), len(children[i]), inner_op)
    kernel.start()
    kernel.wake(range(n), "go")
    kernel.run_until_quiescent()
    sink_node = kernel.nodes[sink]
    if sink_node.result is None:
        raise ProtocolError("aggregation did not reach the sink")
    result = sink_node.result
    if want_avg:
        result /= sink_node.result_count
    return float(result), kernel.stats()


def direct_to_sink_energy(
    points: np.ndarray, sink: int, power: PathLossModel | None = None
) -> float:
    """Energy if every node transmits its reading straight to the sink.

    The no-aggregation baseline: ``sum over v != sink of w(v, sink)`` —
    Θ(n) for uniform points versus the MST convergecast's Θ(1).
    """
    pts = np.asarray(points, dtype=float)
    if not (0 <= sink < len(pts)):
        raise GraphError(f"sink {sink} out of range")
    model = power or PathLossModel()
    d = pts - pts[sink]
    dist = np.sqrt(np.sum(d * d, axis=1))
    return float(sum(model.energy(x) for i, x in enumerate(dist) if i != sink))
