"""Energy-efficient broadcast over a tree vs naive flooding.

Broadcasting along an MST consumes energy within a constant factor of the
optimal broadcast ([5, 27] in the paper).  Here:

* :func:`simulate_tree_broadcast` — the source local-broadcasts with just
  enough power to reach its farthest tree child; every internal node
  relays the same way.  One transmission per internal node.
* :func:`simulate_flooding` — every node re-broadcasts the first copy it
  hears at the full radius ``r`` (classic flooding): n transmissions of
  energy ``r^2`` each.
"""

from __future__ import annotations

import math

import numpy as np

from repro.applications.aggregation import orient_tree
from repro.errors import GraphError, ProtocolError
from repro.mst.quality import verify_spanning_tree
from repro.sim.energy import SimStats
from repro.sim.kernel import SynchronousKernel
from repro.sim.message import Message
from repro.sim.node import NodeProcess
from repro.sim.power import PathLossModel


class _TreeBroadcastNode(NodeProcess):
    """Relay the payload to all children with one ranged broadcast."""

    __slots__ = ("forward_radius", "received")

    def configure(self, forward_radius: float) -> None:
        self.forward_radius = forward_radius
        self.received = False

    def on_wake(self, signal: str, payload: tuple = ()) -> None:
        if signal != "source":
            raise ProtocolError(f"unknown wake signal {signal!r}")
        self.received = True
        if self.forward_radius > 0.0:
            self.ctx.local_broadcast(self.forward_radius, "DATA", *payload)

    def on_message(self, msg: Message, distance: float) -> None:
        if msg.kind != "DATA":
            raise ProtocolError(f"unknown message kind {msg.kind!r}")
        if self.received:
            return
        self.received = True
        if self.forward_radius > 0.0:
            self.ctx.local_broadcast(self.forward_radius, "DATA", *msg.payload)


class _FloodNode(NodeProcess):
    """Re-broadcast the first copy heard, at the fixed flood radius."""

    __slots__ = ("radius", "received")

    def configure(self, radius: float) -> None:
        self.radius = radius
        self.received = False

    def on_wake(self, signal: str, payload: tuple = ()) -> None:
        if signal != "source":
            raise ProtocolError(f"unknown wake signal {signal!r}")
        self.received = True
        self.ctx.local_broadcast(self.radius, "DATA", *payload)

    def on_message(self, msg: Message, distance: float) -> None:
        if self.received:
            return
        self.received = True
        self.ctx.local_broadcast(self.radius, "DATA", *msg.payload)


def simulate_tree_broadcast(
    points: np.ndarray,
    tree_edges: np.ndarray,
    source: int,
    *,
    power: PathLossModel | None = None,
) -> tuple[int, SimStats]:
    """Broadcast from ``source`` along the tree; returns (nodes reached, stats).

    Each node's transmit radius is the distance to its *farthest child* in
    the source-rooted orientation (one ranged local broadcast covers all
    children at once — the wireless multicast advantage).
    """
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    if not (0 <= source < n):
        raise GraphError(f"source {source} out of range")
    verify_spanning_tree(n, tree_edges)
    _, children = orient_tree(n, tree_edges, source)

    kernel = SynchronousKernel(pts, max_radius=math.sqrt(2.0), power=power)
    kernel.add_nodes(_TreeBroadcastNode)
    for u, node in enumerate(kernel.nodes):
        if children[u]:
            d = pts[children[u]] - pts[u]
            # One-ulp inflation: the kernel's ball query recomputes this
            # distance through a different float expression, and a radius
            # equal to the farthest-child distance can otherwise exclude
            # that child.
            radius = float(np.sqrt(np.max(np.sum(d * d, axis=1)))) * (1 + 1e-9)
        else:
            radius = 0.0
        node.configure(radius)
    kernel.start()
    kernel.wake([source], "source", (42,))
    kernel.run_until_quiescent()
    reached = sum(1 for nd in kernel.nodes if nd.received)
    return reached, kernel.stats()


def simulate_flooding(
    points: np.ndarray,
    radius: float,
    source: int,
    *,
    power: PathLossModel | None = None,
) -> tuple[int, SimStats]:
    """Flood from ``source`` at fixed ``radius``; returns (nodes reached, stats).

    Every node transmits exactly once (on first reception), so the energy
    is ``(#reached) * radius^2`` — the baseline the MST broadcast beats.
    """
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    if not (0 <= source < n):
        raise GraphError(f"source {source} out of range")
    if radius <= 0:
        raise GraphError(f"flood radius must be positive, got {radius}")

    kernel = SynchronousKernel(pts, max_radius=max(radius, 1e-12), power=power)
    kernel.add_nodes(_FloodNode)
    for node in kernel.nodes:
        node.configure(float(radius))
    kernel.start()
    kernel.wake([source], "source", (42,))
    kernel.run_until_quiescent()
    reached = sum(1 for nd in kernel.nodes if nd.received)
    return reached, kernel.stats()
