"""Incremental MST maintenance under node churn.

The paper's introduction motivates energy-efficiency with dynamics: "the
topology of these networks can change frequently due to mobility or node
failures".  Once EOPT has paid O(log n) to build the MST, a handful of
node failures should not force a full rebuild — the surviving forest is
almost the new MST already.

:func:`repair_after_failures` reuses the GHS machinery for exactly this:

1. failed nodes vanish (their tree edges die with them), leaving a
   spanning forest of the survivors;
2. each surviving fragment elects its maximum-id member as leader (one
   broadcast/convergecast over the fragment — charged like the size
   census);
3. the modified GHS resumes from that forest at the connectivity radius:
   only the Borůvka phases needed to reconnect the few fragments run.

The result is the exact MST of the survivor RGG *restricted to keeping
the surviving forest edges* — which differs from the from-scratch MST
only in the rare case where a failure un-blocks a cheaper edge elsewhere
(the repair is a 1-competitive reconnection of the given forest; the
quality gap is measured by the MAINT bench and is typically < 1%).

:func:`run_maintenance` is the registry-registered ``MAINT`` workload on
top of the same machinery: it hands an entire
:class:`~repro.scenario.plan.ScenarioPlan` (crash/join/leave/move events
punctuated by repair/rebuild checkpoints) to the
:class:`~repro.scenario.scheduler.ScenarioScheduler` and returns one
merged result with a repair-vs-rebuild energy ledger.  Dynamic runs are
therefore ordinary specs: hashable, cacheable, servable.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import AlgorithmResult, collect_tree_edges
from repro.algorithms.ghs.driver import hello_round, run_ghs_phases
from repro.algorithms.ghs.node import GHSNode
from repro.ds.unionfind import UnionFind
from repro.errors import ExperimentError, GraphError
from repro.geometry.radius import PAPER_GHS_RADIUS_CONST, connectivity_radius
from repro.runspec.registry import register_algorithm
from repro.scenario.plan import ScenarioPlan
from repro.sim.faults import FaultPlan
from repro.sim.kernel import SynchronousKernel
from repro.sim.power import PathLossModel


def surviving_forest(
    n: int, tree_edges: np.ndarray, failed: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Remove ``failed`` nodes from a tree; relabel survivors densely.

    Returns ``(survivor_ids, old_to_new, forest_edges_new_labels)`` where
    ``old_to_new[v] = -1`` for failed nodes.
    """
    failed = np.asarray(failed, dtype=np.int64)
    if failed.size and (failed.min() < 0 or failed.max() >= n):
        raise GraphError("failed node id out of range")
    alive_mask = np.ones(n, dtype=bool)
    alive_mask[failed] = False
    survivors = np.nonzero(alive_mask)[0]
    old_to_new = np.full(n, -1, dtype=np.int64)
    old_to_new[survivors] = np.arange(len(survivors))
    e = np.asarray(tree_edges, dtype=np.int64).reshape(-1, 2)
    keep = alive_mask[e[:, 0]] & alive_mask[e[:, 1]]
    forest = old_to_new[e[keep]]
    return survivors, old_to_new, forest


def repair_after_failures(
    points: np.ndarray,
    tree_edges: np.ndarray,
    failed: np.ndarray,
    *,
    radius: float | None = None,
    radius_const: float = PAPER_GHS_RADIUS_CONST,
    power: PathLossModel | None = None,
) -> AlgorithmResult:
    """Reconnect the surviving forest after ``failed`` nodes die.

    Parameters
    ----------
    points:
        Original ``(n, 2)`` coordinates (all nodes, including failed).
    tree_edges:
        The spanning tree/forest built before the failures.
    failed:
        Ids of nodes that died.
    radius / radius_const / power:
        Operating radius for the repair (default: the survivor count's
        connectivity radius) and energy model.

    Returns an :class:`AlgorithmResult` over the *survivors*.  Node ids
    in the result are re-labelled densely; ``extras["survivor_ids"]`` is
    the explicit mapping back (``survivor_ids[new_id] = original_id``),
    with ``extras["survivors"]`` kept as its historical alias.
    """
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    survivors, _, forest = surviving_forest(n, tree_edges, failed)
    m = len(survivors)
    sub_pts = pts[survivors]
    r = connectivity_radius(m, radius_const) if radius is None else float(radius)

    kernel = SynchronousKernel(sub_pts, max_radius=r, power=power)
    kernel.add_nodes(lambda i, ctx: GHSNode(i, ctx, use_tests=False, announce=True))
    kernel.start()
    nodes = kernel.nodes

    # Install the surviving forest as pre-existing fragment structure.
    uf = UnionFind(m)
    for u, v in forest:
        nodes[int(u)].tree_edges.add(int(v))
        nodes[int(v)].tree_edges.add(int(u))
        uf.union(int(u), int(v))
    # Leader = max id per fragment (locally electable by a fragment-wide
    # max-convergecast; we charge nothing here, conservatively favouring
    # the *rebuild* side of the comparison).
    leader_of: dict[int, int] = {}
    for i in range(m):
        root = uf.find(i)
        leader_of[root] = max(leader_of.get(root, -1), i)
    leaders = set(leader_of.values())
    for nd in nodes:
        nd.leader = nd.id in leaders
        nd.fid = leader_of[uf.find(nd.id)]

    kernel.set_stage("repair:hello")
    hello_round(kernel, r)
    kernel.set_stage("repair:ghs")
    phases = run_ghs_phases(kernel, nodes)

    edges = collect_tree_edges((nd.id, nd.tree_edges) for nd in nodes)
    stats = kernel.stats()
    return AlgorithmResult(
        name="MGHS-repair",
        n=m,
        tree_edges=edges,
        stats=stats,
        phases=phases,
        extras={
            "radius": r,
            "survivors": survivors,
            "survivor_ids": survivors.copy(),
            "n_failed": n - m,
            "initial_fragments": len(leaders),
        },
    )


def run_maintenance(
    points: np.ndarray,
    *,
    scenario: ScenarioPlan | None = None,
    radius_const: float = PAPER_GHS_RADIUS_CONST,
    power: PathLossModel | None = None,
    rx_cost: float = 0.0,
    kernel_cls: type[SynchronousKernel] = SynchronousKernel,
    planes: bool = True,
    faults: FaultPlan | None = None,
    recover: bool = True,
) -> AlgorithmResult:
    """Run the ``MAINT`` workload: build the MST, then live the scenario.

    The scheduler builds the initial MST over ``points`` (one full MGHS
    cycle), applies the plan's events between checkpoints, and runs one
    incremental ``repair`` (or from-scratch ``rebuild``) cycle per
    checkpoint.  A ``None``/empty scenario degenerates to the build
    cycle alone.  See :mod:`repro.scenario` and ``docs/scenarios.md``.

    ``faults`` may carry drop/dup noise (it composes with the schedule's
    own transient-crash windows every cycle); fault-plan *crashes* and
    per-link loss are rejected — node ids are re-compacted every cycle,
    so those must be scheduled as scenario events instead.
    """
    from repro.scenario.scheduler import ScenarioScheduler

    sched = ScenarioScheduler(
        points,
        radius_const=radius_const,
        power=power,
        rx_cost=rx_cost,
        kernel_cls=kernel_cls,
        planes=planes,
        faults=faults,
        recover=recover,
    )
    return sched.run_plan(scenario)


# -- runspec registration -----------------------------------------------------

def _maint_adapter(points, spec):
    from repro.runspec.spec import kernel_class

    if spec.faults is not None and (spec.faults.crashes or spec.faults.link_loss):
        raise ExperimentError(
            "MAINT composes with drop/dup fault noise only; schedule "
            "crashes as scenario events (fault-plan crash windows and "
            "link_loss name node ids that re-compact every cycle)"
        )
    return run_maintenance(
        points,
        scenario=spec.scenario,
        radius_const=spec.ghs_radius_const,
        rx_cost=spec.rx_cost,
        kernel_cls=kernel_class(spec.kernel),
        planes=spec.planes,
        faults=spec.faults,
        recover=spec.recover,
    )


register_algorithm(
    "MAINT",
    runner=run_maintenance,
    adapter=_maint_adapter,
    order=10,
    summary="incremental MST maintenance under a scenario plan (churn/mobility)",
    supports_faults=True,
    supports_kernel_mode=True,
    supports_scenario=True,
)
