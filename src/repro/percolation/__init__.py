"""Site-percolation analytics behind Theorem 5.2.

The paper proves the giant-component property by reducing the RGG at
radius ``r = sqrt(c1/n)`` to site percolation on a grid of ``r/2``-side
cells: a cell is *good* when it holds at least ``c1/8`` nodes; any two
nodes in 4-adjacent cells are within ``r`` (Chebyshev), so a cluster of
good cells is one connected component of nodes.  In the supercritical
phase there is one giant cluster whose complement splits into small
regions of O(log^2 n) sites.

This subpackage measures all of that empirically: good-cell masks, cluster
labelings, giant fraction, and the small-region node counts that EOPT's
step 2 relies on (FIG1 / THM52 benches).
"""

from repro.percolation.cells import occupancy_grid, good_cell_mask, expected_cell_count
from repro.percolation.giant import (
    PercolationReport,
    analyze_percolation,
    giant_fraction,
    small_region_node_counts,
)

__all__ = [
    "occupancy_grid",
    "good_cell_mask",
    "expected_cell_count",
    "PercolationReport",
    "analyze_percolation",
    "giant_fraction",
    "small_region_node_counts",
]
