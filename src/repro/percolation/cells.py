"""Cell-grid reduction of an RGG instance (paper Sec. V-B).

With transmission radius ``r`` the unit square is subdivided into square
cells of side ``r/2``.  Under the Chebyshev metric used by the proof, any
two nodes in the same or 4-adjacent cells are within ``r`` of each other,
so occupied-cell clusters translate directly into connected node sets.
"""

from __future__ import annotations

import numpy as np

from repro.ds.grid import CellGrid
from repro.errors import GeometryError


def occupancy_grid(points: np.ndarray, radius: float) -> CellGrid:
    """Bucket ``points`` into the ``r/2``-side percolation grid."""
    if radius <= 0:
        raise GeometryError(f"radius must be positive, got {radius}")
    side = min(radius / 2.0, 1.0)
    return CellGrid(side, points)


def expected_cell_count(n: int, radius: float) -> float:
    """Expected number of nodes per cell: ``n (r/2)^2``.

    With ``r = sqrt(c/n)`` this is ``c/4``, the quantity the paper's
    good-cell threshold ``c/8`` is half of.
    """
    if radius <= 0:
        raise GeometryError(f"radius must be positive, got {radius}")
    return n * (radius / 2.0) ** 2


def good_cell_mask(
    grid: CellGrid,
    threshold: float | None = None,
) -> np.ndarray:
    """Boolean mask of *good* cells.

    Parameters
    ----------
    grid:
        An occupancy grid with points assigned.
    threshold:
        Minimum node count for a cell to be good.  Defaults to the paper's
        ``c/8`` — i.e. half the expected cell occupancy — but never below 1
        (an empty cell is never good).
    """
    counts = grid.counts
    if threshold is None:
        n = int(counts.sum())
        expected = n * grid.side**2  # side = r/2, so this is n (r/2)^2 = c/4
        threshold = expected / 2.0
    threshold = max(float(threshold), 1.0)
    # Integer counts against a float threshold: absorb float noise so a
    # cell holding exactly the threshold count (e.g. expected/2 computed as
    # 2.0000000000000004) is classified as good.
    return counts >= threshold - 1e-9
