"""Giant-component and small-region statistics (Thm 5.2 empirics).

Two complementary views are measured:

* the **graph view** — actual connected components of the RGG at radius
  ``r``: size of the largest, sizes of the rest;
* the **cell view** — clusters of good cells; the complement of the
  largest good cluster splits into *small regions*, and every non-giant
  node component is trapped inside one (Fig. 1(b)).

Theorem 5.2 predicts giant size Θ(n) and max small-region node count
``<= beta log^2 n``; :class:`PercolationReport` carries everything the
THM52 bench needs to check both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ds.grid import CellGrid
from repro.percolation.cells import good_cell_mask, occupancy_grid
from repro.rgg.build import build_rgg
from repro.rgg.components import component_sizes


@dataclass(frozen=True)
class PercolationReport:
    """Everything measured about one (points, radius) percolation instance."""

    n: int
    radius: float
    #: side of the percolation cells (= radius / 2, clipped to 1)
    cell_side: float
    #: fraction of nodes inside the largest RGG component
    giant_fraction: float
    #: sizes of all RGG components, descending
    component_sizes: np.ndarray = field(repr=False)
    #: fraction of cells that are good
    good_cell_fraction: float
    #: number of good-cell clusters
    n_good_clusters: int
    #: size in cells of the largest good cluster
    largest_good_cluster_cells: int
    #: node counts of the small regions (complement clusters), descending
    small_region_nodes: np.ndarray = field(repr=False)

    @property
    def max_small_region_nodes(self) -> int:
        """Largest node population among the cell-view small regions.

        Note: at the paper's experimental constant (c1 = 1.4) the r/2-cell
        lattice is *subcritical* (mean cell occupancy c1^2/4 < 1 while the
        site-percolation threshold needs p > 0.593), so this cell-view
        quantity is only meaningful for larger c — the regime the proof of
        Thm 5.2 actually operates in.  For the paper's constants use
        :attr:`max_non_giant_component` instead.
        """
        if len(self.small_region_nodes) == 0:
            return 0
        return int(self.small_region_nodes[0])

    @property
    def max_non_giant_component(self) -> int:
        """Largest component other than the giant (graph view; 0 if none).

        Thm 5.2's observable consequence: this is O(log^2 n).
        """
        if len(self.component_sizes) < 2:
            return 0
        return int(self.component_sizes[1])

    def small_region_bound_constant(self) -> float:
        """Empirical ``beta`` such that the largest non-giant component has
        ``beta log^2 n`` nodes.  Thm 5.2 asserts this stays bounded."""
        if self.n < 3:
            return 0.0
        return self.max_non_giant_component / (np.log(self.n) ** 2)


def giant_fraction(points: np.ndarray, radius: float) -> float:
    """Fraction of nodes in the largest RGG component at ``radius``."""
    pts = np.asarray(points, dtype=float)
    if len(pts) == 0:
        return 0.0
    sizes = component_sizes(build_rgg(pts, radius))
    return float(sizes[0]) / len(pts)


def small_region_node_counts(
    grid: CellGrid, good: np.ndarray
) -> tuple[np.ndarray, int, int]:
    """Node counts of complement regions of the largest good cluster.

    Returns ``(region_node_counts_desc, n_good_clusters, largest_cluster_cells)``.

    A *small region* is a maximal 8-connected cluster of cells outside the
    largest good-cell cluster (8-connectivity for the complement is the
    standard matching-lattice convention for 4-connected site percolation —
    it guarantees complement regions are bounded by good-cell circuits).
    """
    labels = grid.label_clusters(good, connectivity=4)
    sizes = grid.cluster_sizes(labels)
    if len(sizes) == 0:
        # No good cells: the whole square is one small region.
        total_nodes = int(grid.counts.sum())
        return np.array([total_nodes], dtype=np.int64), 0, 0
    largest_label = int(np.argmax(sizes)) + 1
    complement = labels != largest_label
    comp_labels = grid.label_clusters(complement, connectivity=8)
    k = int(comp_labels.max())
    counts = grid.counts
    region_nodes = np.zeros(k, dtype=np.int64)
    for lab in range(1, k + 1):
        region_nodes[lab - 1] = int(counts[comp_labels == lab].sum())
    region_nodes = np.sort(region_nodes)[::-1]
    return region_nodes, len(sizes), int(sizes.max())


def analyze_percolation(
    points: np.ndarray,
    radius: float,
    good_threshold: float | None = None,
) -> PercolationReport:
    """Full percolation report for one instance (graph + cell views)."""
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    grid = occupancy_grid(pts, radius)
    good = good_cell_mask(grid, good_threshold)
    region_nodes, n_clusters, largest_cells = small_region_node_counts(grid, good)
    sizes = component_sizes(build_rgg(pts, radius))
    gf = float(sizes[0]) / n if n else 0.0
    return PercolationReport(
        n=n,
        radius=float(radius),
        cell_side=grid.side,
        giant_fraction=gf,
        component_sizes=sizes,
        good_cell_fraction=float(good.mean()) if good.size else 0.0,
        n_good_clusters=n_clusters,
        largest_good_cluster_cells=largest_cells,
        small_region_nodes=region_nodes,
    )
