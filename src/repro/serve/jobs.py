"""Job objects for the serve layer.

A :class:`Job` is one submitted :class:`~repro.runspec.spec.RunSpec` on
its way through the broker.  Its identity is the spec's full
``spec_hash()`` — submitting the same spec twice addresses the same job,
which is what makes broker-level dedupe and the store short-circuit
line up with the engine's own singleflight.

Jobs carry an append-only event log (the NDJSON stream behind
``GET /runs/{id}/events``).  All mutation happens on the event loop
thread — the broker awaits the compute thread and emits lifecycle
events before and after, never from inside it — so the log needs no
locking, only an :class:`asyncio.Event` to wake streaming readers.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any

from repro.runspec.spec import RunSpec

__all__ = ["Job", "QUEUED", "RUNNING", "DONE", "FAILED", "CANCELLED", "STATES"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Every state a job can report; the last three are terminal.
STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
_TERMINAL = frozenset((DONE, FAILED, CANCELLED))

#: Cap on trace events copied into a job's stream — bounds broker memory
#: for traced million-event runs; a truncation marker event records the
#: cut so clients know the stream is partial (the full trace is still in
#: the report payload).
MAX_TRACE_EVENTS = 5000


class Job:
    """One spec moving through the broker (identity = ``spec_hash``)."""

    __slots__ = (
        "id",
        "spec",
        "state",
        "source",
        "payload",
        "error",
        "created",
        "finished",
        "events",
        "_changed",
    )

    def __init__(self, spec: RunSpec) -> None:
        self.id = spec.spec_hash()
        self.spec = spec
        self.state = QUEUED
        #: ``"store"`` | ``"computed"`` | ``None`` while unresolved.
        self.source: str | None = None
        #: The canonical report JSON (``RunReport.to_json(indent=None)``)
        #: — stored and served as the exact bytes, never re-encoded.
        self.payload: str | None = None
        self.error: str | None = None
        self.created = time.time()
        self.finished: float | None = None
        self.events: list[dict] = []
        self._changed = asyncio.Event()
        self.add_event("queued")

    # -- state transitions (event-loop thread only) -----------------------

    def add_event(self, kind: str, **fields: Any) -> None:
        """Append one event and wake streaming readers."""
        event = {"event": kind, "t": time.time(), **fields}
        self.events.append(event)
        self._changed.set()

    def mark_running(self) -> None:
        self.state = RUNNING
        self.add_event("running")

    def finish(self, payload: str, *, source: str) -> None:
        self.state = DONE
        self.source = source
        self.payload = payload
        self.finished = time.time()
        self.add_event("done", source=source, nbytes=len(payload))

    def fail(self, error: str) -> None:
        self.state = FAILED
        self.error = error
        self.finished = time.time()
        self.add_event("failed", error=error)

    def cancel(self) -> None:
        self.state = CANCELLED
        self.finished = time.time()
        self.add_event("cancelled")

    def attach_report_events(self, report_data: dict) -> None:
        """Copy a report's trace events / perf counters into the stream.

        ``report_data`` is the parsed report payload; works identically
        for computed and store-served jobs, so a warm replay streams the
        same instrumentation the original run did.
        """
        tsnap = report_data.get("trace")
        if isinstance(tsnap, (list, tuple)):
            for event in tsnap[:MAX_TRACE_EVENTS]:
                if isinstance(event, dict):
                    self.add_event("trace", **event)
            if len(tsnap) > MAX_TRACE_EVENTS:
                self.add_event(
                    "trace_truncated",
                    streamed=MAX_TRACE_EVENTS,
                    total=len(tsnap),
                )
        psnap = report_data.get("perf")
        if isinstance(psnap, dict) and psnap:
            self.add_event("perf", counters=psnap)

    # -- queries ----------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    def status(self, *, include_report: bool = True) -> dict:
        """The ``GET /runs/{id}`` body (parsed-report field included).

        Byte-exact payload consumers use ``GET /runs/{id}/report``,
        which returns ``self.payload`` verbatim; embedding the parsed
        object here would otherwise force a re-encode on every poll.
        """
        body: dict[str, Any] = {
            "id": self.id,
            "spec_hash": self.id,
            "state": self.state,
            "source": self.source,
            "created": self.created,
            "finished": self.finished,
            "error": self.error,
            "events": len(self.events),
            "algorithm": self.spec.algorithm,
            "n": self.spec.n,
        }
        if include_report and self.payload is not None:
            body["report"] = json.loads(self.payload)
        return body

    async def stream_events(self):
        """Async-iterate the event log, following until terminal.

        Yields every event exactly once in order; returns once the job
        is terminal and the log is drained.
        """
        idx = 0
        while True:
            while idx < len(self.events):
                yield self.events[idx]
                idx += 1
            if self.terminal:
                return
            self._changed.clear()
            # Re-check under the cleared flag: a transition between the
            # drain above and the clear would otherwise be missed.
            if idx < len(self.events) or self.terminal:
                continue
            await self._changed.wait()
