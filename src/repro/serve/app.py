"""The serve application: routes → broker → engine → store.

``ServeApp`` owns the route table and the broker/store pair;
:func:`create_app` and :func:`serve` are the two entry points (the CLI
calls :func:`serve`, tests call :func:`create_app` and talk to the
returned server's real socket).

API surface (all JSON unless noted):

====== ========================== =======================================
POST   ``/runs``                  submit a RunSpec JSON; 201 with the
                                  job id (= ``spec_hash``) on first
                                  submission, 200 on dedupe/replay
GET    ``/runs/{id}``             job status + parsed report when done
GET    ``/runs/{id}/report``      the report payload **verbatim** —
                                  byte-identical to what the engine
                                  serialized (the serve-smoke gate)
GET    ``/runs/{id}/events``      NDJSON stream of lifecycle + trace +
                                  perf events, follows until terminal
DELETE ``/runs/{id}``             cancel a queued job
GET    ``/healthz``               liveness probe
GET    ``/stats``                 store hit/miss + queue depth + pool
====== ========================== =======================================
"""

from __future__ import annotations

import json

from repro.errors import ExperimentError
from repro.runspec import engine as engine_mod
from repro.runspec.spec import RunSpec
from repro.serve.broker import Broker, InMemoryBroker
from repro.serve.jobs import CANCELLED
from repro.serve.http import (
    HttpError,
    Request,
    Response,
    run_http_server,
)

__all__ = ["ServeApp", "create_app", "serve"]


class ServeApp:
    """Route dispatch over one :class:`~repro.serve.broker.Broker`."""

    def __init__(self, broker: Broker, *, store=None) -> None:
        self.broker = broker
        self.store = store

    # -- dispatch ----------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "use GET")
            return Response.json({"ok": True})
        if path == "/stats":
            if method != "GET":
                raise HttpError(405, "use GET")
            return Response.json(self._stats())
        if path == "/runs" or path == "/runs/":
            if method != "POST":
                raise HttpError(405, "use POST to submit a RunSpec")
            return self._submit(request)
        if path.startswith("/runs/"):
            rest = path[len("/runs/"):].strip("/")
            job_id, _, sub = rest.partition("/")
            if not job_id:
                raise HttpError(404, "missing job id")
            if sub == "" and method == "GET":
                return self._status(job_id)
            if sub == "" and method == "DELETE":
                return self._cancel(job_id)
            if sub == "report" and method == "GET":
                return self._report(job_id)
            if sub == "events" and method == "GET":
                return self._events(job_id)
            raise HttpError(
                405 if sub in ("", "report", "events") else 404,
                f"no route for {method} {path}",
            )
        raise HttpError(404, f"no route for {method} {path}")

    # -- handlers ----------------------------------------------------------

    def _submit(self, request: Request) -> Response:
        data = request.json()
        if not isinstance(data, dict):
            raise HttpError(400, "RunSpec body must be a JSON object")
        try:
            spec = RunSpec.from_dict(data)
        except (ExperimentError, TypeError, ValueError, KeyError) as exc:
            raise HttpError(400, f"invalid RunSpec: {exc}")
        job, created = self.broker.submit(spec)
        body = {
            "id": job.id,
            "spec_hash": job.id,
            "state": job.state,
            "source": job.source,
            "created": created,
        }
        return Response.json(body, status=201 if created else 200)

    def _job(self, job_id: str):
        job = self.broker.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job: {job_id}")
        return job

    def _status(self, job_id: str) -> Response:
        return Response.json(self._job(job_id).status())

    def _cancel(self, job_id: str) -> Response:
        job = self._job(job_id)
        cancelled = self.broker.cancel(job_id)
        if not cancelled and job.state != CANCELLED:
            # RUNNING can't be interrupted; DONE/FAILED are settled.
            raise HttpError(409, f"job is {job.state}; cannot cancel")
        return Response.json({"id": job.id, "state": job.state})

    def _report(self, job_id: str) -> Response:
        job = self._job(job_id)
        if job.payload is None:
            raise HttpError(
                409, f"job is {job.state}; report not available yet"
            )
        # The payload string is served verbatim — the byte-identity
        # guarantee callers diff against the engine's own serialization.
        return Response(200, body=job.payload.encode("utf-8"))

    def _events(self, job_id: str) -> Response:
        job = self._job(job_id)

        async def ndjson():
            async for event in job.stream_events():
                yield (json.dumps(event) + "\n").encode("utf-8")

        return Response(
            200, content_type="application/x-ndjson", stream=ndjson()
        )

    def _stats(self) -> dict:
        return {
            "store": self.store.stats() if self.store is not None else None,
            "broker": self.broker.stats(),
            "pool": engine_mod.pool_state(),
        }


async def create_app(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    store=None,
    backend: str = "process",
    workers: int | None = None,
):
    """Build broker + app and start listening; returns ``(server, app)``.

    ``port=0`` binds an ephemeral port (tests); read the bound address
    off ``server.sockets[0].getsockname()``.
    """
    broker = InMemoryBroker(store=store, backend=backend, workers=workers)
    await broker.start()
    app = ServeApp(broker, store=store)
    server = await run_http_server(app.handle, host, port)
    return server, app


async def serve(
    host: str,
    port: int,
    *,
    store=None,
    backend: str = "process",
    workers: int | None = None,
    ready=None,
) -> None:
    """Run the server until cancelled (the CLI entry point).

    ``ready`` is an optional callable invoked with the bound
    ``(host, port)`` once listening — the serve-smoke harness uses it
    instead of polling.
    """
    server, app = await create_app(
        host, port, store=store, backend=backend, workers=workers
    )
    bound = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound)
    try:
        async with server:
            await server.serve_forever()
    finally:
        await app.broker.close()
