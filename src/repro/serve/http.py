"""A minimal asyncio HTTP/1.1 layer (stdlib only).

The container deliberately carries no web framework — ``aiohttp`` is
optional per the roadmap and absent here — so this module implements
the slice of HTTP/1.1 the serve API needs and nothing more: request
line + headers, ``Content-Length`` bodies, fixed responses, and
close-delimited streaming responses for the NDJSON event feed.  Every
response carries ``Connection: close``; correctness over connection
reuse (the warm path is store-bound, not connection-bound — see
``benchmarks/bench_serve_smoke.py`` for the measured latencies).

Kept free of any knowledge of jobs/brokers: :class:`Request` in,
:class:`Response` out, and an app callable between them.  That is the
router/transport split the FastAPI-style layout in ROADMAP item 1 asks
for, minus the framework.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Awaitable, Callable
from urllib.parse import parse_qs, urlsplit

__all__ = ["Request", "Response", "HttpError", "run_http_server"]

#: Request-size guards: a RunSpec JSON is a few KB; anything bigger is
#: not a spec submission.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """Raise from a handler to produce a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """One parsed request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        parts = urlsplit(target)
        self.path = parts.path
        self.query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        """The body parsed as JSON (400 on garbage)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")


class Response:
    """One response: fixed ``body`` bytes, or a ``stream`` of chunks."""

    __slots__ = ("status", "body", "content_type", "stream")

    def __init__(
        self,
        status: int = 200,
        *,
        body: bytes = b"",
        content_type: str = "application/json",
        stream: AsyncIterator[bytes] | None = None,
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.stream = stream

    @classmethod
    def json(cls, data: Any, status: int = 200) -> "Response":
        return cls(status, body=(json.dumps(data) + "\n").encode("utf-8"))

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        return cls.json({"error": message, "status": status}, status=status)


Handler = Callable[[Request], Awaitable[Response]]


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the wire; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client connected and went away: not an error
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, version = lines[0].split(" ", 2)
    except ValueError:
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(400, "chunked request bodies are not supported")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "malformed Content-Length")
    if length < 0:
        raise HttpError(400, "malformed Content-Length")
    if length > MAX_BODY_BYTES:
        # Drain and discard (bounded) so the client finishes its upload
        # and reads the 413 instead of dying on EPIPE mid-write.
        remaining = min(length, 16 * MAX_BODY_BYTES)
        while remaining > 0:
            chunk = await reader.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)
        raise HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return Request(method.upper(), target, headers, body)


def _head(status: int, content_type: str, length: int | None) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def _write_response(
    writer: asyncio.StreamWriter, response: Response
) -> None:
    if response.stream is None:
        writer.write(
            _head(response.status, response.content_type, len(response.body))
        )
        writer.write(response.body)
        await writer.drain()
        return
    # Streaming: close-delimited body (no Content-Length) — the sole
    # HTTP/1.1-legal framing that costs nothing, and we close anyway.
    writer.write(_head(response.status, response.content_type, None))
    await writer.drain()
    async for chunk in response.stream:
        writer.write(chunk)
        await writer.drain()


async def _handle_connection(
    handler: Handler,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            response = await handler(request)
        except HttpError as exc:
            response = Response.error(exc.status, exc.message)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            response = Response.error(500, f"{type(exc).__name__}: {exc}")
        await _write_response(writer, response)
    except (ConnectionError, asyncio.IncompleteReadError):
        pass  # client went away mid-exchange; nothing to salvage
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_http_server(
    handler: Handler, host: str, port: int
) -> asyncio.base_events.Server:
    """Start serving ``handler``; returns the listening server object."""
    return await asyncio.start_server(
        lambda r, w: _handle_connection(handler, r, w),
        host,
        port,
        limit=MAX_HEADER_BYTES,
    )
