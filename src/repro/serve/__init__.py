"""``repro.serve`` — the HTTP run service over broker, engine and store.

The service front from ROADMAP item 1: specs arrive as JSON over HTTP,
dedupe against in-flight jobs by ``spec_hash``, short-circuit through
the :class:`~repro.store.ResultStore`, and fan onto the shared process
pool via ``execute_batch(store=...)``.  Results are served as the
engine's canonical report bytes — byte-identical whether computed or
replayed from the store.

Layering (stdlib asyncio throughout; no web framework in the image):

- :mod:`repro.serve.http` — transport: parse requests, write fixed or
  close-delimited streaming responses;
- :mod:`repro.serve.jobs` — :class:`Job` state machine + event log;
- :mod:`repro.serve.broker` — :class:`Broker` interface and the
  :class:`InMemoryBroker` (queue semantics isolated so a redis/NATS
  backend can drop in);
- :mod:`repro.serve.app` — the route table and entry points.

Run it: ``repro serve --port 8080`` then ``POST /runs`` a RunSpec JSON
(see README quickstart for the curl round trip).
"""

from repro.serve.app import ServeApp, create_app, serve
from repro.serve.broker import Broker, InMemoryBroker
from repro.serve.http import HttpError, Request, Response
from repro.serve.jobs import Job

__all__ = [
    "Broker",
    "HttpError",
    "InMemoryBroker",
    "Job",
    "Request",
    "Response",
    "ServeApp",
    "create_app",
    "serve",
]
