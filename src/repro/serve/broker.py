"""The job broker: dedupe, store consult, fan-out onto the engine.

:class:`InMemoryBroker` is the whole queue story today, kept behind the
small :class:`Broker` interface named in ROADMAP item 1 so a redis/NATS
backend can drop in later without touching the HTTP layer: the router
only ever calls ``submit`` / ``get`` / ``cancel`` / ``stats``.

Three layers of "never compute twice" stack up, cheapest first:

1. **broker dedupe** — an in-flight or finished job with the same
   ``spec_hash`` is returned as-is (no second enqueue);
2. **store consult** — a :class:`~repro.store.ResultStore` hit resolves
   the job synchronously at submit time, before it ever touches the
   queue;
3. **engine singleflight** — identical specs racing past 1 and 2 (e.g.
   a FAILED job resubmitted while its retry is mid-compute) collapse
   inside :func:`~repro.runspec.engine.execute_batch`.

The dedupe-and-probe section of :meth:`InMemoryBroker.submit` runs with
**no awaits** — on a single-threaded event loop that makes
check-and-insert atomic, which is the whole concurrency argument for
"concurrent submissions of one spec singleflight to one execution".
The store probe is a blocking sqlite read on the loop thread; it is a
point lookup (milliseconds) and keeping it inside the atomic section is
exactly what prevents the probe/enqueue race.

Compute runs in a worker thread (``loop.run_in_executor``) so the loop
stays responsive; the thread fans onto the shared process pool via
``execute_batch(store=...)``.  One consumer task drains the queue —
parallelism lives *inside* the engine (the process pool), and a single
consumer also serializes the perf/trace registry surgery
:func:`~repro.runspec.engine.execute` performs around each run.
"""

from __future__ import annotations

import asyncio
from functools import partial

from repro.runspec import execute_batch
from repro.runspec.spec import RunSpec
from repro.serve.jobs import CANCELLED, FAILED, QUEUED, Job

__all__ = ["Broker", "InMemoryBroker"]


class Broker:
    """Queue-backend interface the HTTP layer programs against."""

    async def start(self) -> None:
        raise NotImplementedError

    async def close(self) -> None:
        raise NotImplementedError

    def submit(self, spec: RunSpec) -> tuple[Job, bool]:
        """Route one spec; returns ``(job, created)``."""
        raise NotImplementedError

    def get(self, job_id: str) -> Job | None:
        raise NotImplementedError

    def cancel(self, job_id: str) -> bool:
        raise NotImplementedError

    def stats(self) -> dict:
        raise NotImplementedError


class InMemoryBroker(Broker):
    """Asyncio in-process broker over the shared engine and store.

    Parameters
    ----------
    store:
        Optional :class:`~repro.store.ResultStore`; consulted before
        enqueue and passed to the engine for write-back.  An unopenable
        store arrives here already degraded to inert — every probe
        misses and the broker just computes (the degradation matrix in
        docs/architecture.md).
    backend / workers / chunk_align:
        Forwarded to :func:`~repro.runspec.engine.execute_batch`.  The
        default ``"process"`` fans onto the shared pool; hosts that
        cannot spawn one degrade to serial inside the engine (warn-once
        — ``/stats`` surfaces the flag via ``pool_state``).
    """

    def __init__(
        self,
        *,
        store=None,
        backend: str = "process",
        workers: int | None = None,
        chunk_align: int = 1,
    ) -> None:
        self.store = store
        self.backend = backend
        self.workers = workers
        self.chunk_align = chunk_align
        self._jobs: dict[str, Job] = {}
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._consumer: asyncio.Task | None = None
        self._counters = {
            "submitted": 0,
            "deduped": 0,
            "store_resolved": 0,
            "computed": 0,
            "failed": 0,
            "cancelled": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._consumer is None:
            self._consumer = asyncio.ensure_future(self._consume())

    async def close(self) -> None:
        if self._consumer is not None:
            self._consumer.cancel()
            try:
                await self._consumer
            except (asyncio.CancelledError, Exception):
                pass
            self._consumer = None

    # -- submission (atomic: no awaits between check and insert) -----------

    def submit(self, spec: RunSpec) -> tuple[Job, bool]:
        """Route one spec; returns ``(job, created)``.

        ``created`` is ``False`` when an existing job absorbed the
        submission (dedupe).  FAILED and CANCELLED jobs do *not* absorb
        — a resubmit after failure is a fresh attempt.
        """
        self._counters["submitted"] += 1
        job_id = spec.spec_hash()
        job = self._jobs.get(job_id)
        if job is not None and job.state not in (FAILED, CANCELLED):
            self._counters["deduped"] += 1
            return job, False

        if self.store is not None:
            cached = self.store.get_report(spec)
            if cached is not None:
                job = Job(spec)
                payload = cached.to_json(indent=None)
                job.attach_report_events(
                    {"trace": cached.trace, "perf": cached.perf}
                )
                job.finish(payload, source="store")
                self._jobs[job_id] = job
                self._counters["store_resolved"] += 1
                return job, True

        job = Job(spec)
        self._jobs[job_id] = job
        self._queue.put_nowait(job)
        return job, True

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a QUEUED job.  Running compute cannot be interrupted
        (it lives in a thread over a process pool); terminal jobs are
        already settled.  Returns whether a cancellation happened."""
        job = self._jobs.get(job_id)
        if job is None or job.state != QUEUED:
            return False
        job.cancel()
        self._counters["cancelled"] += 1
        return True

    # -- the consumer ------------------------------------------------------

    async def _consume(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            job = await self._queue.get()
            if job.state != QUEUED:  # cancelled while waiting in queue
                continue
            job.mark_running()
            try:
                reports = await loop.run_in_executor(
                    None,
                    partial(
                        execute_batch,
                        [job.spec],
                        backend=self.backend,
                        workers=self.workers,
                        chunk_align=self.chunk_align,
                        store=self.store,
                    ),
                )
            except asyncio.CancelledError:
                # Broker shutdown mid-compute: leave the job RUNNING —
                # the report may still land in the store for next boot.
                raise
            except Exception as exc:  # noqa: BLE001 - job-scoped failure
                self._counters["failed"] += 1
                job.fail(f"{type(exc).__name__}: {exc}")
                continue
            report = reports[0]
            job.attach_report_events(
                {"trace": report.trace, "perf": report.perf}
            )
            job.finish(report.to_json(indent=None), source="computed")
            self._counters["computed"] += 1

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        by_state: dict[str, int] = {}
        for job in self._jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "kind": "in-memory",
            "queue_depth": self._queue.qsize(),
            "jobs": len(self._jobs),
            "jobs_by_state": by_state,
            **self._counters,
        }
