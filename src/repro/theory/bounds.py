"""Lower-bound quantities from Secs. III-IV of the paper.

* ``L_MST(V) = sum over MST edges of d^2`` — the trivial Omega(1) energy
  lower bound (any algorithm must cross the MST edges at least once).
* Lemma 4.1 — talking to your ``k`` nearest neighbours costs at least
  ``k/(b n)`` energy, because whp fewer than ``k`` nodes sit within
  ``sqrt(k/(b n))``.  :func:`knn_energy_need` measures the actual k-NN
  distances so the bench can exhibit the constant.
* Korach–Moran–Zaks — any spanning-tree algorithm on a complete network
  must use ``Omega(n log n)`` distinct edges; combined with Lemma 4.1 this
  yields the ``Omega(log n)`` energy bound of Thm 4.1.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeometryError
from repro.mst.delaunay import euclidean_mst
from repro.rgg.connectivity import kth_nearest_distances


def mst_energy_lower_bound(points: np.ndarray, alpha: float = 2.0) -> float:
    """``L_MST(V) = sum over EMST edges of d^alpha`` (paper Sec. III).

    For uniform points this is Theta(1) when ``alpha = 2`` — the trivial
    lower bound every algorithm pays just to touch the tree edges once.
    """
    pts = np.asarray(points, dtype=float)
    if len(pts) <= 1:
        return 0.0
    _, lengths = euclidean_mst(pts)
    return float(np.sum(lengths**alpha))


def knn_energy_need(points: np.ndarray, k: int) -> np.ndarray:
    """Per-node energy needed to reach the ``k``-th nearest neighbour.

    Lemma 4.1 says this is at least ``k/(b n)`` whp for every node; the
    returned array is ``d_k(v)^2`` for each node ``v`` so callers can
    measure the empirical constant ``b`` via ``k / (n * min(result))``.
    """
    d = kth_nearest_distances(points, k)
    return d * d


def korach_message_bound(n: int) -> float:
    """The KMZ Omega(n log n) edge-usage bound (reference curve, a = 1).

    The theorem states ``>= a n log n`` distinct edges for some fixed
    constant ``a``; we return ``n ln n`` as the unit-constant curve.
    """
    if n < 1:
        raise GeometryError(f"n must be >= 1, got {n}")
    if n == 1:
        return 0.0
    return n * math.log(n)


def spanning_tree_energy_lower_bound(n: int, b: float = math.pi) -> float:
    """The Omega(log n) energy curve of Thm 4.1 (unit-constant form).

    Derivation (paper Sec. IV): the KMZ bound forces Omega(n log n) edge
    uses; a node communicating with its ``k > a1 log n`` closest
    neighbours pays ``>= k/(b n)``; summing over the relevant nodes gives
    total energy ``>= (1/(b n)) * n log n = log n / b``.  With uniform
    points the natural ``b`` is about ``pi`` (the k-NN ball area), which
    is the default constant here.
    """
    if n < 1:
        raise GeometryError(f"n must be >= 1, got {n}")
    if n == 1:
        return 0.0
    return math.log(n) / b
