"""Scaling-law fits for the Fig. 3(b) analysis.

The paper's trick: if the energy law is ``W = c (log n)^b``, then
``log W = log c + b log log n`` — so regressing ``log W`` on
``log log n`` recovers the *power of the logarithm* as the slope.  The
paper reads slopes of about 2 (GHS), 1 (EOPT), 0 (Co-NNT) off that plot;
:func:`fit_loglog_slope` reproduces the fit numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError, ExperimentError


@dataclass(frozen=True)
class FitResult:
    """Least-squares line fit ``y = intercept + slope * x``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted line."""
        return self.intercept + self.slope * np.asarray(x, dtype=float)


def _linfit(x: np.ndarray, y: np.ndarray) -> FitResult:
    if len(x) != len(y):
        raise ExperimentError(f"x and y lengths differ: {len(x)} vs {len(y)}")
    if len(x) < 2:
        raise ExperimentError("need at least 2 points to fit a line")
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise ConvergenceError("non-finite values in fit input")
    slope, intercept = np.polyfit(x, y, 1)
    resid = y - (intercept + slope * x)
    ss_res = float(np.sum(resid**2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return FitResult(slope=float(slope), intercept=float(intercept), r_squared=r2)


def fit_loglog_slope(ns: np.ndarray, energies: np.ndarray) -> FitResult:
    """Fit ``log W`` against ``log log n`` (paper Fig. 3(b)).

    The returned slope estimates ``b`` in ``W = c (log n)^b``.  All ``n``
    must exceed ``e`` so ``log log n > 0``, and energies must be positive.
    """
    ns = np.asarray(ns, dtype=float)
    energies = np.asarray(energies, dtype=float)
    if np.any(ns <= np.e):
        raise ExperimentError("all n must exceed e for log log n to be positive")
    if np.any(energies <= 0):
        raise ExperimentError("energies must be positive for the log fit")
    return _linfit(np.log(np.log(ns)), np.log(energies))


def fit_power_law(ns: np.ndarray, values: np.ndarray) -> FitResult:
    """Fit ``log y`` against ``log n`` — slope is the polynomial exponent.

    Used to check e.g. that Co-NNT's total *message* count grows linearly
    (slope ≈ 1) while its energy stays flat.
    """
    ns = np.asarray(ns, dtype=float)
    values = np.asarray(values, dtype=float)
    if np.any(ns <= 0) or np.any(values <= 0):
        raise ExperimentError("power-law fit needs positive inputs")
    return _linfit(np.log(ns), np.log(values))
