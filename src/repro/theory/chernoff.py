"""Chernoff / Poisson tail bounds used in the paper's probabilistic lemmas.

Lemma 4.1 bounds ``Pr[X >= k]`` for ``X`` the number of points in a ball
of measure ``k/(b n)`` via the multiplicative Chernoff bound
``Pr[X >= (1+delta) mu] <= (e^delta / (1+delta)^(1+delta))^mu``.  These
helpers compute the standard forms so tests can check the lemma's
arithmetic (and that the empirical tail sits below the bound).
"""

from __future__ import annotations

import math

from repro.errors import GeometryError


def chernoff_upper_tail(mu: float, k: float) -> float:
    """Multiplicative Chernoff bound on ``Pr[X >= k]`` for ``E[X] = mu``.

    Valid for sums of independent 0/1 variables (and Poisson); returns 1
    when ``k <= mu`` (the bound is vacuous there).
    """
    if mu < 0 or k < 0:
        raise GeometryError("mu and k must be non-negative")
    if mu == 0:
        return 0.0 if k > 0 else 1.0
    if k <= mu:
        return 1.0
    delta = k / mu - 1.0
    # exp(delta mu) / (1+delta)^((1+delta) mu), computed in log space.
    log_bound = mu * (delta - (1.0 + delta) * math.log1p(delta))
    return math.exp(log_bound)


def poisson_upper_tail(mu: float, k: float) -> float:
    """The equivalent tail bound written in the Poisson large-deviation
    form ``exp(-mu) (e mu / k)^k`` (the ``(e/b)^k`` shape of Lemma 4.1)."""
    if mu < 0 or k < 0:
        raise GeometryError("mu and k must be non-negative")
    if k == 0:
        return 1.0
    if mu == 0:
        return 0.0
    log_bound = -mu + k * (1.0 + math.log(mu / k))
    return min(1.0, math.exp(log_bound))
