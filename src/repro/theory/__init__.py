"""Analytic toolkit: lower bounds, tail bounds, scaling-law fits.

Backs the LB bench (Thm 4.1 / Lemma 4.1 constants), the FIG3b slope
extraction, and several property tests.
"""

from repro.theory.bounds import (
    mst_energy_lower_bound,
    knn_energy_need,
    korach_message_bound,
    spanning_tree_energy_lower_bound,
)
from repro.theory.chernoff import chernoff_upper_tail, poisson_upper_tail
from repro.theory.scaling import fit_loglog_slope, fit_power_law, FitResult

__all__ = [
    "mst_energy_lower_bound",
    "knn_energy_need",
    "korach_message_bound",
    "spanning_tree_energy_lower_bound",
    "chernoff_upper_tail",
    "poisson_upper_tail",
    "fit_loglog_slope",
    "fit_power_law",
    "FitResult",
]
