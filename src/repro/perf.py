"""Opt-in performance instrumentation: phase timers and counters.

The simulation kernel and the experiment runners are sprinkled with
*cheap* hooks (one ``if perf.enabled`` branch per phase or per round,
never per message) that record wall-clock timers and event counters into
a process-global registry.  Disabled by default, the hooks cost a single
attribute check; enabled, they feed ``benchmarks/bench_kernel_hotpath.py``
and any ad-hoc profiling session:

>>> from repro.perf import perf
>>> perf.enable()
>>> ...  # run a simulation
>>> print(perf.report())

The registry is deliberately process-local (no locks): parallel sweep
workers each accumulate into their own registry, and
:mod:`repro.experiments.parallel` ships each worker's :meth:`snapshot`
back with the results and folds it in with :meth:`PerfRegistry.merge`,
so ``--perf`` on a parallel sweep reports the whole sweep.
"""

from __future__ import annotations

import resource
import sys
import time
from typing import Any

#: Counter holding the high-water-mark resident set size in bytes.
#: It is a *level*, not an event count: :meth:`PerfRegistry.sample_rss`
#: and :meth:`PerfRegistry.merge` combine it with ``max``, never ``+``.
PEAK_RSS_COUNTER = "mem.peak_rss_bytes"

#: ``ru_maxrss`` unit: kilobytes on Linux, bytes on macOS.
_RU_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024


def peak_rss_bytes() -> int:
    """The process's peak resident set size, in bytes."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_SCALE


class _Timed:
    """Context manager accumulating one timer entry (re-entrant-safe)."""

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "PerfRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Timed":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._registry._record(self._name, time.perf_counter() - self._t0)


class _NullTimed:
    """No-op context manager returned while instrumentation is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimed":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_TIMED = _NullTimed()


class PerfRegistry:
    """Process-global accumulator of named timers and counters.

    Attributes
    ----------
    enabled:
        Master switch.  Call sites guard with ``if perf.enabled`` so the
        disabled cost is one attribute read.
    timers:
        ``name -> [total_seconds, calls]``.
    counters:
        ``name -> count``.
    """

    __slots__ = ("enabled", "timers", "counters")

    def __init__(self) -> None:
        self.enabled = False
        self.timers: dict[str, list] = {}
        self.counters: dict[str, int] = {}

    # -- switches -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded data (the enabled flag is untouched)."""
        self.timers.clear()
        self.counters.clear()

    # -- recording ----------------------------------------------------------

    def timed(self, name: str) -> _Timed | _NullTimed:
        """``with perf.timed("phase"):`` — accumulate elapsed wall-clock."""
        if not self.enabled:
            return _NULL_TIMED
        return _Timed(self, name)

    def _record(self, name: str, elapsed: float) -> None:
        cell = self.timers.get(name)
        if cell is None:
            self.timers[name] = [elapsed, 1]
        else:
            cell[0] += elapsed
            cell[1] += 1

    def add(self, name: str, value: int = 1) -> None:
        """Bump counter ``name`` by ``value`` (no-op while disabled).

        Call sites still guard with ``if perf.enabled`` for speed; the
        internal check is a backstop so an unguarded call site cannot
        leak counts into a disabled registry.
        """
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def sample_rss(self) -> None:
        """Record the current peak RSS under :data:`PEAK_RSS_COUNTER`.

        Sampled at round boundaries by the kernels (one ``getrusage``
        call per round, behind the same ``if perf.enabled`` guard as the
        round counters — the zero-cost-when-off contract holds).  The
        counter keeps the maximum seen, so sampling is idempotent and
        order-free.
        """
        if not self.enabled:
            return
        rss = peak_rss_bytes()
        if rss > self.counters.get(PEAK_RSS_COUNTER, 0):
            self.counters[PEAK_RSS_COUNTER] = rss

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from elsewhere (a worker process) into
        this registry.

        Addition is unconditional — the snapshot was recorded under the
        worker's own enabled flag, and merging is bookkeeping, not a new
        measurement.  Merging N disjoint worker snapshots equals having
        recorded all N workloads in one process.
        """
        for name, cell in snapshot.get("timers", {}).items():
            mine = self.timers.get(name)
            if mine is None:
                self.timers[name] = [cell["total_s"], cell["calls"]]
            else:
                mine[0] += cell["total_s"]
                mine[1] += cell["calls"]
        for name, count in snapshot.get("counters", {}).items():
            if name == PEAK_RSS_COUNTER:
                # A high-water mark, not an event count: the merged peak
                # is the max across processes, not their sum.
                if count > self.counters.get(name, 0):
                    self.counters[name] = count
                continue
            self.counters[name] = self.counters.get(name, 0) + count

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Machine-readable copy: ``{"timers": {...}, "counters": {...}}``."""
        return {
            "timers": {
                name: {"total_s": total, "calls": calls}
                for name, (total, calls) in sorted(self.timers.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def report(self) -> str:
        """Human-readable table of everything recorded so far."""
        return format_snapshot(self.snapshot())


def format_snapshot(snapshot: dict[str, Any]) -> str:
    """Render a :meth:`PerfRegistry.snapshot` as the ``report()`` table.

    Works on any snapshot dict — the live registry's, one shipped back
    from a worker, or one reloaded from a serialized
    :class:`~repro.runspec.report.RunReport`.
    """
    lines = []
    timers = snapshot.get("timers", {})
    counters = snapshot.get("counters", {})
    if timers:
        lines.append("timers:")
        for name, cell in sorted(timers.items()):
            lines.append(
                f"  {name:<32} {cell['total_s'] * 1e3:10.2f} ms  x{cell['calls']}"
            )
    if counters:
        lines.append("counters:")
        for name, count in sorted(counters.items()):
            lines.append(f"  {name:<32} {count}")
    return "\n".join(lines) if lines else "(no perf data recorded)"


#: The process-global registry every hook writes to.
perf = PerfRegistry()
