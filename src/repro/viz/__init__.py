"""Dependency-free SVG rendering of instances, trees and percolation grids.

No matplotlib in the dependency set, so figures are emitted as SVG
documents built by hand — enough to *look at* what the algorithms build
(examples write these next to their console reports).
"""

from repro.viz.svg import SvgCanvas, render_instance, render_percolation

__all__ = ["SvgCanvas", "render_instance", "render_percolation"]
