"""A minimal SVG writer and instance renderers.

:class:`SvgCanvas` maps the unit square to pixel space (y flipped so the
square's origin is bottom-left, as in the paper's figures) and collects
shapes; renderers compose it into pictures of point sets + trees and of
percolation cell grids.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape, quoteattr

import numpy as np

from repro.errors import GeometryError


class SvgCanvas:
    """Accumulates SVG shapes over the unit square.

    Parameters
    ----------
    size:
        Pixel width/height of the (square) canvas.
    margin:
        Pixel margin around the unit square.
    """

    def __init__(self, size: int = 600, margin: int = 20) -> None:
        if size <= 0 or margin < 0 or 2 * margin >= size:
            raise GeometryError(f"bad canvas geometry: size={size}, margin={margin}")
        self.size = size
        self.margin = margin
        self._shapes: list[str] = []

    # -- coordinate mapping ---------------------------------------------------

    def px(self, x: float, y: float) -> tuple[float, float]:
        """Unit-square coordinates -> pixel coordinates (y flipped)."""
        span = self.size - 2 * self.margin
        return (
            self.margin + x * span,
            self.size - self.margin - y * span,
        )

    # -- shapes -----------------------------------------------------------------

    def circle(self, x: float, y: float, r_px: float, fill: str = "#1f77b4") -> None:
        """A dot at unit-square position (x, y)."""
        cx, cy = self.px(x, y)
        self._shapes.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r_px:.2f}" '
            f"fill={quoteattr(fill)}/>"
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "#888888",
        width: float = 1.0,
    ) -> None:
        """A segment between two unit-square positions."""
        a = self.px(x1, y1)
        b = self.px(x2, y2)
        self._shapes.append(
            f'<line x1="{a[0]:.2f}" y1="{a[1]:.2f}" x2="{b[0]:.2f}" '
            f'y2="{b[1]:.2f}" stroke={quoteattr(stroke)} '
            f'stroke-width="{width:.2f}"/>'
        )

    def rect(
        self,
        x: float,
        y: float,
        w: float,
        h: float,
        fill: str = "#dddddd",
    ) -> None:
        """An axis-aligned rectangle given in unit-square coordinates."""
        x0, y0 = self.px(x, y + h)  # top-left in pixel space
        span = self.size - 2 * self.margin
        self._shapes.append(
            f'<rect x="{x0:.2f}" y="{y0:.2f}" width="{w * span:.2f}" '
            f'height="{h * span:.2f}" fill={quoteattr(fill)}/>'
        )

    def text(self, x: float, y: float, s: str, size_px: int = 12) -> None:
        """A text label at a unit-square position."""
        cx, cy = self.px(x, y)
        self._shapes.append(
            f'<text x="{cx:.2f}" y="{cy:.2f}" font-size="{size_px}" '
            f'font-family="sans-serif">{escape(s)}</text>'
        )

    # -- output -----------------------------------------------------------------

    def to_string(self) -> str:
        """The complete SVG document."""
        body = "\n".join(self._shapes)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.size}" '
            f'height="{self.size}" viewBox="0 0 {self.size} {self.size}">\n'
            f'<rect width="{self.size}" height="{self.size}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: str | Path) -> Path:
        """Write the document to ``path``; returns the path."""
        path = Path(path)
        path.write_text(self.to_string())
        return path


def render_instance(
    points: np.ndarray,
    edge_sets: dict[str, np.ndarray] | None = None,
    *,
    size: int = 600,
    colors: tuple[str, ...] = ("#d62728", "#2ca02c", "#9467bd", "#ff7f0e"),
    title: str = "",
) -> SvgCanvas:
    """Render a point set with zero or more named edge sets (trees).

    Each edge set gets its own color; a legend is drawn top-left.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
    canvas = SvgCanvas(size=size)
    for k, (name, edges) in enumerate((edge_sets or {}).items()):
        color = colors[k % len(colors)]
        for u, v in np.asarray(edges, dtype=np.int64).reshape(-1, 2):
            canvas.line(*pts[u], *pts[v], stroke=color, width=1.2)
        canvas.text(0.02, 0.97 - 0.035 * k, f"— {name}", size_px=12)
    for x, y in pts:
        canvas.circle(x, y, 2.0, fill="#1f77b4")
    if title:
        canvas.text(0.02, 0.02, title, size_px=13)
    return canvas


def render_percolation(
    counts: np.ndarray,
    good: np.ndarray,
    giant_labels: np.ndarray | None = None,
    *,
    size: int = 600,
) -> SvgCanvas:
    """Render a percolation cell grid (the Fig. 1 picture).

    Good cells are light gray; cells of the largest cluster (``label != 0``
    in ``giant_labels``) dark; empty cells white.
    """
    counts = np.asarray(counts)
    if counts.shape != np.asarray(good).shape:
        raise GeometryError("counts and good masks must have the same shape")
    m = counts.shape[0]
    side = 1.0 / m
    canvas = SvgCanvas(size=size)
    for i in range(m):
        for j in range(counts.shape[1]):
            if giant_labels is not None and giant_labels[i, j]:
                fill = "#444444"
            elif good[i, j]:
                fill = "#bbbbbb"
            elif counts[i, j] > 0:
                fill = "#eeeeee"
            else:
                continue
            canvas.rect(i * side, j * side, side, side, fill=fill)
    return canvas
