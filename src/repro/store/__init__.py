"""Persistent run-result storage: the content-addressed result cache.

A sweep cell is deterministic data — a
:class:`~repro.runspec.spec.RunSpec` maps to exactly one
:class:`~repro.runspec.report.RunReport` — so identical specs must never
recompute.  :class:`ResultStore` is the durable half of that contract: a
sqlite-backed (WAL) table of full report JSON payloads keyed by
:meth:`~repro.runspec.spec.RunSpec.result_key`, consulted by
:func:`repro.runspec.engine.execute` and before every
:func:`~repro.runspec.engine.execute_batch` fan-out.

The store is an accelerator, never a dependency: every failure mode —
corrupted or truncated database files, concurrent writers, unreadable
payloads — degrades to a cold cache instead of crashing a run.
"""

from repro.store.results import DEFAULT_MAX_BYTES, ResultStore, default_store_path

__all__ = ["DEFAULT_MAX_BYTES", "ResultStore", "default_store_path"]
