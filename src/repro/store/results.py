"""The sqlite-backed :class:`ResultStore` (see package docstring).

Layout
------

One database file holds two tables:

``meta``
    Key/value pairs: the store schema version (``store_schema``) and the
    cumulative ``hits`` / ``misses`` counters, so cache effectiveness is
    observable across processes (``repro cache stats``).
``results``
    One row per result key: the payload schema version, the spec's
    algorithm and ``n`` (for human-readable listings), creation and
    last-use stamps, the payload size and the full
    :class:`~repro.runspec.report.RunReport` JSON text.

WAL journaling keeps concurrent readers (parallel sweeps consulting one
store) away from writer locks.  Pruning is LRU by ``last_used`` with a
monotonic insert sequence as the tiebreak, bounded by ``max_bytes`` of
payload text.

Concurrency: one instance may be shared across threads (the serve
broker's job workers and a sweep thread hammering one store).  A single
connection is opened with ``check_same_thread=False`` and every
operation is serialized behind an instance lock — sqlite sees one caller
at a time, so in-process writers can never race each other.  Writers in
*other processes* are handled by a ``busy_timeout``: instead of raising
``database is locked`` the moment a cross-process writer holds the WAL
write lock, sqlite retries for up to :data:`BUSY_TIMEOUT_MS`.  Without
both, a second thread tripped ``ProgrammingError`` (cross-thread use of
the connection), which the corruption-recovery path misread as a broken
database — deleting the file and degrading the store to inert.

Failure policy: the store must *never* crash a run.  A corrupted or
truncated database file is deleted and recreated cold; any sqlite error
during an operation first rolls back and retries on the live connection
(transient lock contention), then reopens once, after which the store
degrades to a permanent miss (``get`` returns ``None``, ``put`` drops
the payload) for the rest of the process.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from pathlib import Path

from repro.runspec.report import RunReport
from repro.runspec.spec import SCHEMA_VERSION, RunSpec

__all__ = ["DEFAULT_MAX_BYTES", "ResultStore", "default_store_path"]

#: Version stamp of the store's own table layout; a mismatch recreates
#: the database (the payloads additionally carry the runspec
#: ``schema_version``, checked per row on read).
STORE_SCHEMA = 1

#: Default payload-size bound (sum of stored JSON bytes) before LRU rows
#: are pruned.
DEFAULT_MAX_BYTES = 256 << 20

#: How long sqlite retries against a cross-process writer before
#: surfacing ``database is locked`` (milliseconds).
BUSY_TIMEOUT_MS = 10_000


def default_store_path() -> Path:
    """The default store location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    root = os.environ.get("REPRO_CACHE_DIR")
    base = Path(root) if root else Path.home() / ".cache" / "repro"
    return base / "results.sqlite"


class ResultStore:
    """Content-addressed, size-bounded cache of executed run reports.

    Parameters
    ----------
    path:
        Database file (parent directories are created).  ``":memory:"``
        gives an ephemeral per-instance store (tests).
    max_bytes:
        Payload-size bound enforced after every write (LRU pruning).
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.path = str(default_store_path() if path is None else path)
        self.max_bytes = int(max_bytes)
        self._conn: sqlite3.Connection | None = None
        self._lock = threading.RLock()
        self._open(allow_recreate=True)

    # -- lifecycle ---------------------------------------------------------

    def _open(self, *, allow_recreate: bool) -> None:
        """Connect and validate; on corruption, recreate cold (once)."""
        try:
            self._conn = self._connect()
        except sqlite3.Error:
            self._conn = None
            if allow_recreate and self._remove_files():
                try:
                    self._conn = self._connect()
                except sqlite3.Error:
                    self._conn = None

    def _connect(self) -> sqlite3.Connection:
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        # check_same_thread=False: the connection is shared across the
        # serve broker's worker threads; the instance lock serializes
        # every use, so sqlite never sees concurrent calls on it.
        conn = sqlite3.connect(
            self.path, timeout=BUSY_TIMEOUT_MS / 1000.0, check_same_thread=False
        )
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            # Touching the schema forces sqlite to actually read the file,
            # so truncation/corruption surfaces here, not mid-run.
            row = conn.execute(
                "SELECT v FROM meta WHERE k = 'store_schema'"
            ).fetchone() if self._has_tables(conn) else None
            if row is None or int(row[0]) != STORE_SCHEMA:
                self._create_tables(conn)
            conn.commit()
        except sqlite3.Error:
            conn.close()
            raise
        return conn

    @staticmethod
    def _has_tables(conn: sqlite3.Connection) -> bool:
        row = conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='meta'"
        ).fetchone()
        return row is not None

    @staticmethod
    def _create_tables(conn: sqlite3.Connection) -> None:
        conn.execute("DROP TABLE IF EXISTS results")
        conn.execute("DROP TABLE IF EXISTS meta")
        conn.execute("CREATE TABLE meta (k TEXT PRIMARY KEY, v TEXT)")
        conn.execute(
            "CREATE TABLE results ("
            " key TEXT PRIMARY KEY,"
            " schema_version INTEGER NOT NULL,"
            " algorithm TEXT NOT NULL,"
            " n INTEGER NOT NULL,"
            " created REAL NOT NULL,"
            " last_used REAL NOT NULL,"
            " seq INTEGER NOT NULL,"
            " nbytes INTEGER NOT NULL,"
            " payload TEXT NOT NULL)"
        )
        conn.execute(
            "INSERT INTO meta (k, v) VALUES ('store_schema', ?), "
            "('hits', '0'), ('misses', '0'), ('seq', '0')",
            (str(STORE_SCHEMA),),
        )

    def _remove_files(self) -> bool:
        """Delete the database (and WAL sidecars); True if removable."""
        if self.path == ":memory:":
            return False
        ok = True
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(self.path + suffix)
            except FileNotFoundError:
                pass
            except OSError:
                ok = False
        return ok

    def close(self) -> None:
        """Close the connection (idempotent; the store becomes inert)."""
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- guarded execution -------------------------------------------------

    def _run(self, op, default):
        """Run ``op(conn)`` under the instance lock; degrade on failure.

        Recovery ladder: a sqlite failure first rolls back and retries
        the op on the live connection (transient contention — a
        cross-process writer outlasting the busy timeout — must not cost
        the database), then reopens cold and retries once.  A failure at
        the last rung degrades the store to inert (every later call
        returns its miss-shaped ``default``) — a broken cache must cost
        wall-clock, never correctness.
        """
        with self._lock:
            if self._conn is None:
                return default
            try:
                return op(self._conn)
            except sqlite3.Error:
                try:
                    self._conn.rollback()
                    return op(self._conn)
                except sqlite3.Error:
                    pass
                self.close()
                self._remove_files()
                self._open(allow_recreate=False)
                if self._conn is None:
                    return default
                try:
                    return op(self._conn)
                except sqlite3.Error:
                    self.close()
                    return default

    def _bump(self, conn: sqlite3.Connection, counter: str, by: int = 1) -> None:
        conn.execute(
            "UPDATE meta SET v = CAST(CAST(v AS INTEGER) + ? AS TEXT) WHERE k = ?",
            (by, counter),
        )

    # -- raw payload API ---------------------------------------------------

    def get(self, key: str) -> str | None:
        """The stored payload text for ``key``, or ``None``.

        Touches the row's LRU stamp on a find; hit/miss accounting lives
        in :meth:`get_report` (a found row can still be a semantic miss
        when the requested instrumentation was never recorded).
        """

        def op(conn: sqlite3.Connection):
            row = conn.execute(
                "SELECT payload, schema_version FROM results WHERE key = ?", (key,)
            ).fetchone()
            if row is None or int(row[1]) != SCHEMA_VERSION:
                if row is not None:  # stale payload schema: drop the row
                    conn.execute("DELETE FROM results WHERE key = ?", (key,))
                    conn.commit()
                return None
            conn.execute(
                "UPDATE results SET last_used = ? WHERE key = ?", (time.time(), key)
            )
            conn.commit()
            return row[0]

        return self._run(op, None)

    def _record(self, hit: bool) -> None:
        """Advance the persistent hit/miss counters."""

        def op(conn: sqlite3.Connection):
            self._bump(conn, "hits" if hit else "misses")
            conn.commit()

        self._run(op, None)

    def put(self, key: str, payload: str, *, algorithm: str = "", n: int = 0) -> None:
        """Store ``payload`` under ``key`` (upsert), then enforce the bound."""

        def op(conn: sqlite3.Connection):
            now = time.time()
            seq = int(
                conn.execute("SELECT v FROM meta WHERE k = 'seq'").fetchone()[0]
            ) + 1
            conn.execute("UPDATE meta SET v = ? WHERE k = 'seq'", (str(seq),))
            conn.execute(
                "INSERT INTO results "
                " (key, schema_version, algorithm, n, created, last_used, seq,"
                "  nbytes, payload)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)"
                " ON CONFLICT(key) DO UPDATE SET"
                "  schema_version=excluded.schema_version,"
                "  algorithm=excluded.algorithm, n=excluded.n,"
                "  last_used=excluded.last_used, seq=excluded.seq,"
                "  nbytes=excluded.nbytes, payload=excluded.payload",
                (
                    key, SCHEMA_VERSION, algorithm, int(n), now, now, seq,
                    len(payload.encode("utf-8")), payload,
                ),
            )
            self._prune_locked(conn, self.max_bytes)
            conn.commit()

        self._run(op, None)

    def delete(self, key: str) -> None:
        """Drop one entry (missing keys are a no-op)."""

        def op(conn: sqlite3.Connection):
            conn.execute("DELETE FROM results WHERE key = ?", (key,))
            conn.commit()

        self._run(op, None)

    # -- report API --------------------------------------------------------

    def get_report(self, spec: RunSpec) -> RunReport | None:
        """The memoized report for ``spec``, or ``None``.

        The lookup key is :meth:`~repro.runspec.spec.RunSpec.result_key`
        (instrumentation switches excluded), so a bare run reuses the
        result of an instrumented one and vice versa.  A hit is rebuilt
        *for the requested spec*: perf/trace snapshots are attached only
        when the spec asks for them, and a spec asking for a snapshot
        the stored payload never recorded is a miss (the run must
        actually record).  Unreadable payloads are dropped and count as
        misses — a corrupt row can never crash the caller.
        """
        key = spec.result_key()
        payload = self.get(key)
        if payload is not None:
            try:
                stored = RunReport.from_json(payload)
            except Exception:
                self.delete(key)
                stored = None
            if stored is not None and not (
                (spec.perf and stored.perf is None)
                or (spec.trace and stored.trace is None)
            ):
                self._record(hit=True)
                return RunReport(
                    spec=spec,
                    result=stored.result,
                    perf=stored.perf if spec.perf else None,
                    trace=stored.trace if spec.trace else None,
                )
        self._record(hit=False)
        return None

    def put_report(self, report: RunReport) -> None:
        """Persist one executed report under its spec's result key."""
        spec = report.spec
        self.put(
            spec.result_key(),
            report.to_json(indent=None),
            algorithm=spec.algorithm,
            n=spec.n,
        )

    # -- maintenance -------------------------------------------------------

    @staticmethod
    def _prune_locked(conn: sqlite3.Connection, max_bytes: int) -> int:
        """Evict LRU rows until total payload bytes fit; returns #evicted.

        Runs inside the caller's transaction.  The LRU ordering is a
        snapshot, and a reader *in another process* may touch a row
        between the snapshot and our DELETE — evicting it anyway would
        throw away the entry whose ``get_report`` hit was just counted
        (the hit stands, the payload vanishes: pure counter drift).
        Every DELETE is therefore conditional on the row's
        ``(last_used, seq)`` being exactly what the snapshot saw; a
        concurrently-touched row no longer matches, survives, and the
        outer loop re-snapshots to pick the next genuine LRU victim.
        ``evicted``/``total`` advance only on ``rowcount`` — a skipped
        row is never double-counted as freed bytes.
        """
        evicted = 0
        while True:
            total = conn.execute(
                "SELECT COALESCE(SUM(nbytes), 0) FROM results"
            ).fetchone()[0]
            if total <= max_bytes:
                return evicted
            progressed = False
            for key, nbytes, last_used, seq in conn.execute(
                "SELECT key, nbytes, last_used, seq FROM results"
                " ORDER BY last_used ASC, seq ASC"
            ).fetchall():
                if total <= max_bytes:
                    break
                cur = conn.execute(
                    "DELETE FROM results"
                    " WHERE key = ? AND last_used = ? AND seq = ?",
                    (key, last_used, seq),
                )
                if cur.rowcount:
                    total -= nbytes
                    evicted += 1
                    progressed = True
            if total <= max_bytes or not progressed:
                # Nothing deletable moved us under the bound (every
                # candidate was concurrently refreshed): stop rather
                # than livelock — pruning is advisory, not a guarantee.
                return evicted

    def prune(self, max_bytes: int | None = None) -> int:
        """Evict least-recently-used entries down to the byte bound."""
        bound = self.max_bytes if max_bytes is None else int(max_bytes)

        def op(conn: sqlite3.Connection):
            evicted = self._prune_locked(conn, bound)
            conn.commit()
            return evicted

        return self._run(op, 0)

    def clear(self) -> int:
        """Drop every entry (counters survive); returns #entries dropped."""

        def op(conn: sqlite3.Connection):
            count = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
            conn.execute("DELETE FROM results")
            conn.commit()
            return int(count)

        return self._run(op, 0)

    def stats(self) -> dict:
        """Entry/byte totals plus the cumulative hit/miss counters."""

        def op(conn: sqlite3.Connection):
            entries, nbytes = conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM results"
            ).fetchone()
            meta = dict(
                conn.execute(
                    "SELECT k, v FROM meta WHERE k IN ('hits', 'misses')"
                ).fetchall()
            )
            return {
                "path": self.path,
                "entries": int(entries),
                "total_bytes": int(nbytes),
                "max_bytes": self.max_bytes,
                "hits": int(meta.get("hits", 0)),
                "misses": int(meta.get("misses", 0)),
                "store_schema": STORE_SCHEMA,
                "payload_schema": SCHEMA_VERSION,
            }

        return self._run(
            op,
            {
                "path": self.path,
                "entries": 0,
                "total_bytes": 0,
                "max_bytes": self.max_bytes,
                "hits": 0,
                "misses": 0,
                "store_schema": STORE_SCHEMA,
                "payload_schema": SCHEMA_VERSION,
                "degraded": True,
            },
        )

    def entry_rows(self, limit: int = 20) -> list[tuple]:
        """The newest entries as ``(key, algorithm, n, nbytes)`` rows."""

        def op(conn: sqlite3.Connection):
            return conn.execute(
                "SELECT key, algorithm, n, nbytes FROM results"
                " ORDER BY last_used DESC, seq DESC LIMIT ?",
                (int(limit),),
            ).fetchall()

        return self._run(op, [])
