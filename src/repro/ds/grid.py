"""A uniform 2-D bucket grid over the unit square.

Two users inside the library:

* the percolation analytics subdivide the unit square into cells of side
  ``r/2`` and reason about occupied / *good* cells (paper Sec. V-B);
* spatial queries (which points fall in a cell, neighbours of a cell) when a
  KD-tree is overkill.

Cell ``(i, j)`` covers ``[i*side, (i+1)*side) x [j*side, (j+1)*side)``; the
last row/column absorbs the ``x == 1`` / ``y == 1`` boundary.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np
from scipy import ndimage

from repro.errors import GeometryError

#: Connectivity structures for :meth:`CellGrid.label_clusters`.
#: 4-connectivity is scipy's default cross structure; 8-connectivity is
#: the full 3x3 block.
_STRUCTURE = {
    4: ndimage.generate_binary_structure(2, 1),
    8: np.ones((3, 3), dtype=bool),
}


class CellGrid:
    """Partition of the unit square into ``m x m`` square cells.

    Parameters
    ----------
    side:
        Cell side length.  The grid has ``m = ceil(1/side)`` cells per axis;
        cells in the last row/column may be truncated by the square boundary.
    points:
        Optional ``(n, 2)`` array of points in ``[0, 1]^2`` to bucket
        immediately (equivalent to calling :meth:`assign`).
    """

    def __init__(self, side: float, points: np.ndarray | None = None) -> None:
        if not (0 < side <= 1):
            raise GeometryError(f"cell side must be in (0, 1], got {side}")
        self.side = float(side)
        self.m = int(np.ceil(1.0 / self.side))
        self._counts: np.ndarray | None = None
        self._cell_of: np.ndarray | None = None
        self._points: np.ndarray | None = None
        self._bucket_order: np.ndarray | None = None
        self._bucket_indptr: np.ndarray | None = None
        if points is not None:
            self.assign(points)

    # -- population ---------------------------------------------------------

    def assign(self, points: np.ndarray) -> None:
        """Bucket ``points`` (shape ``(n, 2)``, inside the unit square)."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
        if pts.size and (pts.min() < 0.0 or pts.max() > 1.0):
            raise GeometryError("points must lie inside the unit square")
        idx = np.minimum((pts / self.side).astype(np.int64), self.m - 1)
        self._cell_of = idx
        self._points = pts
        # Flattened-cell bucket index: a stable argsort groups the point
        # indices of each cell contiguously, and an indptr built from the
        # per-cell counts makes points_in_cell an O(1) slice.
        flat = idx[:, 0] * self.m + idx[:, 1]
        self._bucket_order = np.argsort(flat, kind="stable")
        flat_counts = np.bincount(flat, minlength=self.m * self.m)
        self._bucket_indptr = np.concatenate(
            [[0], np.cumsum(flat_counts)]
        )
        self._counts = flat_counts.reshape(self.m, self.m).astype(np.int64)

    # -- queries ------------------------------------------------------------

    @property
    def counts(self) -> np.ndarray:
        """``(m, m)`` array of point counts per cell."""
        if self._counts is None:
            raise GeometryError("grid has no points assigned; call assign()")
        return self._counts

    @property
    def n_cells(self) -> int:
        """Total number of cells ``m*m``."""
        return self.m * self.m

    def cell_of(self, point_index: int) -> tuple[int, int]:
        """Cell ``(i, j)`` containing the ``point_index``-th assigned point."""
        if self._cell_of is None:
            raise GeometryError("grid has no points assigned; call assign()")
        i, j = self._cell_of[point_index]
        return int(i), int(j)

    def points_in_cell(self, i: int, j: int) -> np.ndarray:
        """Indices of assigned points inside cell ``(i, j)``.

        O(size of the answer): a slice of the precomputed per-cell bucket
        index (ascending point indices, as a stable grouping preserves).
        """
        if self._cell_of is None:
            raise GeometryError("grid has no points assigned; call assign()")
        if not (0 <= i < self.m and 0 <= j < self.m):
            return np.zeros(0, dtype=np.intp)
        flat = i * self.m + j
        s, e = self._bucket_indptr[flat], self._bucket_indptr[flat + 1]
        return self._bucket_order[s:e]

    def occupied_mask(self, threshold: int = 1) -> np.ndarray:
        """Boolean ``(m, m)`` mask of cells with ``count >= threshold``."""
        return self.counts >= threshold

    def neighbors4(self, i: int, j: int) -> Iterator[tuple[int, int]]:
        """Von-Neumann (4-) neighbours of cell ``(i, j)`` inside the grid."""
        for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            ni, nj = i + di, j + dj
            if 0 <= ni < self.m and 0 <= nj < self.m:
                yield ni, nj

    def neighbors8(self, i: int, j: int) -> Iterator[tuple[int, int]]:
        """Moore (8-) neighbours of cell ``(i, j)`` inside the grid."""
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if di == dj == 0:
                    continue
                ni, nj = i + di, j + dj
                if 0 <= ni < self.m and 0 <= nj < self.m:
                    yield ni, nj

    def label_clusters(self, mask: np.ndarray, connectivity: int = 4) -> np.ndarray:
        """Label connected clusters of ``True`` cells.

        Returns an ``(m, m)`` int array where ``0`` marks ``False`` cells and
        clusters are numbered ``1..k`` in raster-scan order of their first
        cell — the numbering the old pure-Python flood fill produced, which
        ``scipy.ndimage.label`` matches (both scan row-major and assign the
        next label at each unseen foreground cell).

        Parameters
        ----------
        mask:
            Boolean ``(m, m)`` array.
        connectivity:
            4 (edge-adjacency, the site-percolation convention) or 8.
        """
        if mask.shape != (self.m, self.m):
            raise GeometryError(
                f"mask shape {mask.shape} does not match grid ({self.m}, {self.m})"
            )
        if connectivity not in (4, 8):
            raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")
        labels, _ = ndimage.label(mask, structure=_STRUCTURE[connectivity])
        return labels.astype(np.int64)

    def cluster_sizes(self, labels: np.ndarray) -> np.ndarray:
        """Sizes (in cells) of clusters ``1..k`` given a label array."""
        k = int(labels.max())
        if k == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(labels.ravel(), minlength=k + 1)[1:]
