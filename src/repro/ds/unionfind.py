"""Disjoint-set (union-find) with union by rank and path compression.

Used by Kruskal's algorithm, by the GHS fragment-merge bookkeeping on the
simulator side, and by the percolation cluster labeler.  Amortised cost per
operation is O(alpha(n)) (inverse Ackermann), effectively constant.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class UnionFind:
    """Disjoint sets over the integers ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of elements.  Each starts in its own singleton set.

    Examples
    --------
    >>> uf = UnionFind(4)
    >>> uf.union(0, 1)
    True
    >>> uf.connected(0, 1)
    True
    >>> uf.n_components
    3
    """

    __slots__ = ("_parent", "_rank", "_size", "_n_components")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._parent = list(range(n))
        self._rank = [0] * n
        self._size = [1] * n
        self._n_components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint sets currently present."""
        return self._n_components

    def find(self, x: int) -> int:
        """Return the canonical representative of ``x``'s set."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        # Path compression: point every node on the path at the root.
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns ``True`` if a merge happened, ``False`` if they were already
        in the same set.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        rank = self._rank
        if rank[ra] < rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        if rank[ra] == rank[rb]:
            rank[ra] += 1
        self._n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """``True`` iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def component_size(self, x: int) -> int:
        """Size of the set containing ``x``."""
        return self._size[self.find(x)]

    def roots(self) -> Iterator[int]:
        """Iterate over the canonical representative of every set."""
        for i in range(len(self._parent)):
            if self.find(i) == i:
                yield i

    def components(self) -> dict[int, list[int]]:
        """Return ``{root: sorted list of members}`` for every set."""
        groups: dict[int, list[int]] = {}
        for i in range(len(self._parent)):
            groups.setdefault(self.find(i), []).append(i)
        return groups

    def largest_component(self) -> list[int]:
        """Members of the largest set (ties broken by smallest root)."""
        if not self._parent:
            return []
        comps = self.components()
        best_root = max(sorted(comps), key=lambda r: len(comps[r]))
        return comps[best_root]

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "UnionFind":
        """Build a union-find with all ``edges`` already merged."""
        uf = cls(n)
        for u, v in edges:
            uf.union(u, v)
        return uf
