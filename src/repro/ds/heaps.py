"""An indexed binary min-heap with decrease-key.

Python's :mod:`heapq` has no decrease-key, which Prim's algorithm wants for
its O(E log V) bound.  This heap maps integer keys (vertex ids) to float
priorities and supports ``push``, ``pop_min``, ``decrease`` and membership
tests, all O(log n) or better.
"""

from __future__ import annotations


class IndexedMinHeap:
    """Binary min-heap over integer items with float priorities.

    Items are arbitrary hashable objects (vertex ids in practice); each item
    may appear at most once.

    Examples
    --------
    >>> h = IndexedMinHeap()
    >>> h.push('a', 3.0); h.push('b', 1.0)
    >>> h.pop_min()
    ('b', 1.0)
    >>> h.decrease('a', 0.5)
    >>> h.pop_min()
    ('a', 0.5)
    """

    __slots__ = ("_items", "_prios", "_pos")

    def __init__(self) -> None:
        self._items: list = []       # heap-ordered items
        self._prios: list[float] = []  # parallel priorities
        self._pos: dict = {}         # item -> index in _items

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item) -> bool:
        return item in self._pos

    def priority(self, item) -> float:
        """Current priority of ``item`` (KeyError if absent)."""
        return self._prios[self._pos[item]]

    def push(self, item, priority: float) -> None:
        """Insert ``item``; raises ``ValueError`` if already present."""
        if item in self._pos:
            raise ValueError(f"item {item!r} already in heap")
        self._items.append(item)
        self._prios.append(priority)
        self._pos[item] = len(self._items) - 1
        self._sift_up(len(self._items) - 1)

    def push_or_decrease(self, item, priority: float) -> bool:
        """Insert ``item``, or lower its priority if it would decrease.

        Returns ``True`` if the heap changed.
        """
        if item not in self._pos:
            self.push(item, priority)
            return True
        if priority < self._prios[self._pos[item]]:
            self.decrease(item, priority)
            return True
        return False

    def decrease(self, item, priority: float) -> None:
        """Lower ``item``'s priority; raises if it would increase."""
        i = self._pos[item]
        if priority > self._prios[i]:
            raise ValueError(
                f"decrease-key would increase priority of {item!r}: "
                f"{self._prios[i]} -> {priority}"
            )
        self._prios[i] = priority
        self._sift_up(i)

    def peek_min(self):
        """Return ``(item, priority)`` of the minimum without removing it."""
        if not self._items:
            raise IndexError("peek on empty heap")
        return self._items[0], self._prios[0]

    def pop_min(self):
        """Remove and return ``(item, priority)`` of the minimum."""
        if not self._items:
            raise IndexError("pop on empty heap")
        item, prio = self._items[0], self._prios[0]
        last_item, last_prio = self._items.pop(), self._prios.pop()
        del self._pos[item]
        if self._items:
            self._items[0], self._prios[0] = last_item, last_prio
            self._pos[last_item] = 0
            self._sift_down(0)
        return item, prio

    # -- internal sifting ---------------------------------------------------

    def _swap(self, i: int, j: int) -> None:
        items, prios, pos = self._items, self._prios, self._pos
        items[i], items[j] = items[j], items[i]
        prios[i], prios[j] = prios[j], prios[i]
        pos[items[i]], pos[items[j]] = i, j

    def _sift_up(self, i: int) -> None:
        prios = self._prios
        while i > 0:
            parent = (i - 1) >> 1
            if prios[i] < prios[parent]:
                self._swap(i, parent)
                i = parent
            else:
                break

    def _sift_down(self, i: int) -> None:
        prios = self._prios
        n = len(prios)
        while True:
            left, right = 2 * i + 1, 2 * i + 2
            smallest = i
            if left < n and prios[left] < prios[smallest]:
                smallest = left
            if right < n and prios[right] < prios[smallest]:
                smallest = right
            if smallest == i:
                return
            self._swap(i, smallest)
            i = smallest
