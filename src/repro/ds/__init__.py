"""Core data structures shared across the library.

This subpackage is dependency-free (NumPy only) and hosts the classic
building blocks used by the MST algorithms, the percolation analytics and
the simulator:

* :class:`~repro.ds.unionfind.UnionFind` — disjoint sets with union by rank
  and path compression (Kruskal, fragment merging, cluster labeling).
* :class:`~repro.ds.heaps.IndexedMinHeap` — a binary min-heap with
  decrease-key (Prim, event scheduling).
* :class:`~repro.ds.grid.CellGrid` — a uniform 2-D bucket grid over the unit
  square (percolation cells, neighbour queries without scipy).
"""

from repro.ds.unionfind import UnionFind
from repro.ds.heaps import IndexedMinHeap
from repro.ds.grid import CellGrid

__all__ = ["UnionFind", "IndexedMinHeap", "CellGrid"]
