"""Geometric substrate: point processes, metrics, rankings, potential regions.

The paper's model (Sec. II) places ``n`` nodes uniformly at random in the
unit square.  This subpackage provides:

* :mod:`~repro.geometry.points` — point-set generators (uniform, Poisson,
  perturbed grid, clustered) with seeded reproducibility;
* :mod:`~repro.geometry.distance` — vectorised Euclidean / Chebyshev
  distance kernels;
* :mod:`~repro.geometry.ranks` — the diagonal ranking of Sec. VI and the
  lexicographic ranking of Khan et al. used as an ablation baseline;
* :mod:`~repro.geometry.potential` — potential region/distance/area/angle
  analytics for a node (Fig. 2, Lemmas 6.1-6.3);
* :mod:`~repro.geometry.radius` — the radius laws ``r1 = sqrt(c1/n)`` and
  ``r2 = sqrt(c2 log n / n)`` used by the algorithms.
"""

from repro.geometry.points import (
    uniform_points,
    poisson_points,
    perturbed_grid_points,
    clustered_points,
)
from repro.geometry.distance import (
    euclidean,
    chebyshev,
    pairwise_euclidean,
    pairwise_sq_euclidean,
    edge_lengths,
)
from repro.geometry.ranks import diagonal_ranks, lexicographic_ranks, rank_permutation
from repro.geometry.potential import (
    potential_distance,
    potential_area,
    potential_angle,
    nearest_higher_rank_distance,
)
from repro.geometry.radius import (
    connectivity_radius,
    giant_radius,
    PAPER_GHS_RADIUS_CONST,
    PAPER_EOPT_STEP1_CONST,
)

__all__ = [
    "uniform_points",
    "poisson_points",
    "perturbed_grid_points",
    "clustered_points",
    "euclidean",
    "chebyshev",
    "pairwise_euclidean",
    "pairwise_sq_euclidean",
    "edge_lengths",
    "diagonal_ranks",
    "lexicographic_ranks",
    "rank_permutation",
    "potential_distance",
    "potential_area",
    "potential_angle",
    "nearest_higher_rank_distance",
    "connectivity_radius",
    "giant_radius",
    "PAPER_GHS_RADIUS_CONST",
    "PAPER_EOPT_STEP1_CONST",
]
