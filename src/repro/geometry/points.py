"""Point-process generators over the unit square.

All generators accept either an integer seed or a ready-made
:class:`numpy.random.Generator` and return an ``(n, 2)`` float64 array.
The uniform process is the paper's workload; the Poisson process backs the
percolation analysis (Sec. V-B replaces the uniform distribution by a
Poisson one for its independence property); the perturbed-grid and
clustered processes are stress workloads for the algorithms and tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a Generator (fresh entropy when ``None``)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform_points(n: int, seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """``n`` i.i.d. uniform points in the unit square.

    This is the node distribution assumed throughout the paper.
    """
    if n < 0:
        raise GeometryError(f"n must be non-negative, got {n}")
    return _rng(seed).random((n, 2))


def poisson_points(
    intensity: float, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """A homogeneous Poisson point process of the given ``intensity``.

    The number of points is ``Poisson(intensity)`` and, conditioned on the
    count, points are uniform — the standard equivalence the paper's
    percolation proof leans on (processes ``P0``/``Pt`` in Sec. V-B).
    """
    if intensity < 0:
        raise GeometryError(f"intensity must be non-negative, got {intensity}")
    rng = _rng(seed)
    count = int(rng.poisson(intensity))
    return rng.random((count, 2))


def perturbed_grid_points(
    n: int, jitter: float = 0.25, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Roughly ``n`` points on a jittered square lattice.

    A low-discrepancy workload: node density is near-deterministic, so the
    RGG has no small components once ``r`` exceeds the lattice pitch.  Used
    to exercise the algorithms away from the uniform assumption.

    Parameters
    ----------
    jitter:
        Perturbation amplitude as a fraction of the lattice pitch, in
        ``[0, 0.5)`` so points cannot leave their cell.
    """
    if n < 0:
        raise GeometryError(f"n must be non-negative, got {n}")
    if not (0 <= jitter < 0.5):
        raise GeometryError(f"jitter must be in [0, 0.5), got {jitter}")
    if n == 0:
        return np.zeros((0, 2))
    rng = _rng(seed)
    m = int(np.ceil(np.sqrt(n)))
    pitch = 1.0 / m
    ii, jj = np.meshgrid(np.arange(m), np.arange(m), indexing="ij")
    centers = (np.stack([ii, jj], axis=-1).reshape(-1, 2) + 0.5) * pitch
    noise = rng.uniform(-jitter * pitch, jitter * pitch, size=centers.shape)
    pts = np.clip(centers + noise, 0.0, 1.0)
    idx = rng.permutation(len(pts))[:n]
    return pts[idx]


def clustered_points(
    n: int,
    n_clusters: int = 5,
    spread: float = 0.05,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """``n`` points in Gaussian clusters, clipped to the unit square.

    A worst-case-ish workload for the giant-component step: density is very
    non-uniform, so a radius tuned for uniform points can leave many small
    components.  Used in robustness tests and ablations.
    """
    if n < 0:
        raise GeometryError(f"n must be non-negative, got {n}")
    if n_clusters < 1:
        raise GeometryError(f"n_clusters must be >= 1, got {n_clusters}")
    if spread <= 0:
        raise GeometryError(f"spread must be positive, got {spread}")
    rng = _rng(seed)
    centers = rng.random((n_clusters, 2))
    assignment = rng.integers(0, n_clusters, size=n)
    pts = centers[assignment] + rng.normal(0.0, spread, size=(n, 2))
    return np.clip(pts, 0.0, 1.0)
