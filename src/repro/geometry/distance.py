"""Distance kernels.

The simulator and the MST objective use the Euclidean metric; the
percolation proof of the paper simplifies to the Chebyshev
(max-coordinate) metric, which "affects energy bounds only up to a constant
factor" (Sec. V-B).  Both are provided, fully vectorised.
"""

from __future__ import annotations

import numpy as np


def euclidean(p: np.ndarray, q: np.ndarray) -> float | np.ndarray:
    """Euclidean distance between points (or broadcastable arrays of points)."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    d = p - q
    return np.sqrt(np.sum(d * d, axis=-1))


def chebyshev(p: np.ndarray, q: np.ndarray) -> float | np.ndarray:
    """Chebyshev (L-infinity) distance, as used in the percolation reduction."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    return np.max(np.abs(p - q), axis=-1)


def pairwise_sq_euclidean(points: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` matrix of squared Euclidean distances.

    Memory is O(n^2); intended for n up to a few thousand (brute-force MST
    cross-checks, lower-bound computations).  Uses the
    ``|p|^2 + |q|^2 - 2 p.q`` expansion with clipping for numerical safety.
    """
    pts = np.asarray(points, dtype=float)
    sq = np.sum(pts * pts, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (pts @ pts.T)
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)
    return d2


def pairwise_euclidean(points: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` matrix of Euclidean distances (see memory note above)."""
    return np.sqrt(pairwise_sq_euclidean(points))


def edge_lengths(points: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Euclidean lengths of an ``(m, 2)`` integer edge list over ``points``."""
    pts = np.asarray(points, dtype=float)
    e = np.asarray(edges, dtype=np.int64)
    if e.size == 0:
        return np.zeros(0)
    d = pts[e[:, 0]] - pts[e[:, 1]]
    return np.sqrt(np.sum(d * d, axis=1))
