"""Transmission-radius laws from the paper.

Two regimes matter:

* the **giant-component radius** ``r1 = c * sqrt(1/n)`` (Thm 5.2): below the
  connectivity threshold but above the percolation threshold, so whp a
  unique giant component exists and all other components sit in small
  regions of O(log^2 n) nodes;
* the **connectivity radius** ``r2 = c * sqrt(log n / n)`` (Thm 5.1, after
  Gupta-Kumar): for ``c^2 > 4`` (Euclidean: constant absorbed) the RGG is
  connected whp.

The experimental section fixes the constants to ``1.4`` and ``1.6``
respectively; we expose those as module constants so benches and examples
share them.
"""

from __future__ import annotations

import math

from repro.errors import GeometryError

#: Radius multiplier used for GHS and for EOPT's step 2 in the paper's
#: experiments (Sec. VII): ``r = 1.6 sqrt(ln n / n)``.
PAPER_GHS_RADIUS_CONST: float = 1.6

#: Radius multiplier for EOPT's step 1 in the paper's experiments:
#: ``r = 1.4 sqrt(1/n)`` — enough for a giant component to appear.
PAPER_EOPT_STEP1_CONST: float = 1.4


def connectivity_radius(n: int, c: float = PAPER_GHS_RADIUS_CONST) -> float:
    """``c * sqrt(ln n / n)`` — the connectivity-regime radius.

    For ``n <= 1`` there is nothing to connect; returns the unit-square
    diameter so a degenerate graph is trivially "connected".
    """
    if n < 0:
        raise GeometryError(f"n must be non-negative, got {n}")
    if c <= 0:
        raise GeometryError(f"radius constant must be positive, got {c}")
    if n <= 1:
        return math.sqrt(2.0)
    return min(c * math.sqrt(math.log(n) / n), math.sqrt(2.0))


def giant_radius(n: int, c: float = PAPER_EOPT_STEP1_CONST) -> float:
    """``c * sqrt(1/n)`` — the giant-component-regime radius."""
    if n < 0:
        raise GeometryError(f"n must be non-negative, got {n}")
    if c <= 0:
        raise GeometryError(f"radius constant must be positive, got {c}")
    if n == 0:
        return math.sqrt(2.0)
    return min(c * math.sqrt(1.0 / n), math.sqrt(2.0))
