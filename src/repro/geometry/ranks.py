"""Node rankings for nearest-neighbour trees.

Section VI of the paper orders nodes by the *diagonal* rule::

    rank(u) < rank(v)  iff  (x_u + y_u, y_u) < (x_v + y_v, y_v)   (lexicographic)

so the "potential region" of every node — where it must find a
higher-ranked node — is the half-plane above the diagonal through it, whose
potential angle is at least 1/2 radian (Lemma 6.1).  The earlier paper of
Khan et al. ordered lexicographically by ``(x, y)``, which strands a few
nodes far from any higher-ranked node; we implement both so the ablation
bench (ABL-K in DESIGN.md) can compare them.

Ranks are returned as a dense permutation: ``ranks[i]`` is the rank of node
``i``, with 0 the lowest and ``n-1`` the highest.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError


def _dense_ranks_from_order(order: np.ndarray) -> np.ndarray:
    """Invert an argsort: ranks[order[k]] = k."""
    ranks = np.empty(len(order), dtype=np.int64)
    ranks[order] = np.arange(len(order))
    return ranks


def diagonal_ranks(points: np.ndarray) -> np.ndarray:
    """Ranks under the paper's diagonal ordering (Sec. VI).

    ``rank(u) < rank(v)`` iff ``x_u+y_u < x_v+y_v``, ties broken by smaller
    ``y`` (and, for robustness on degenerate inputs, by node index — the
    paper assumes no two nodes share coordinates, which holds a.s.).
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
    s = pts[:, 0] + pts[:, 1]
    order = np.lexsort((np.arange(len(pts)), pts[:, 1], s))
    return _dense_ranks_from_order(order)


def lexicographic_ranks(points: np.ndarray) -> np.ndarray:
    """Ranks under the Khan-et-al. ``(x, y)`` lexicographic ordering."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
    order = np.lexsort((np.arange(len(pts)), pts[:, 1], pts[:, 0]))
    return _dense_ranks_from_order(order)


def rank_permutation(ranks: np.ndarray) -> np.ndarray:
    """Return ``order`` such that ``order[k]`` is the node with rank ``k``.

    The inverse of the dense-rank arrays produced by the functions above.
    """
    ranks = np.asarray(ranks, dtype=np.int64)
    n = len(ranks)
    if n and (ranks.min() != 0 or ranks.max() != n - 1 or len(np.unique(ranks)) != n):
        raise GeometryError("ranks must be a permutation of 0..n-1")
    order = np.empty(n, dtype=np.int64)
    order[ranks] = np.arange(n)
    return order
