"""Potential-region analytics for the diagonal ranking (paper Fig. 2).

For a node ``u`` with ``s = x_u + y_u``, the *potential region* ``R_u`` is
the part of the unit square strictly above the diagonal ``x + y = s`` —
every node there outranks ``u``.  The paper defines:

* the **potential area**   ``A_u = area(R_u)``,
* the **potential distance** ``L_u = max distance from u to a point of R_u``,
* the **potential angle**  ``alpha_u = 2 A_u / L_u^2`` — the angle of a pie
  slice of radius ``L_u`` with the same area as ``R_u``.

Lemma 6.1 proves ``alpha_u >= 1/2`` for every node; Lemma 6.2 bounds the
expected squared distance to the nearest higher-ranked node by
``2/(n alpha_u)``.  These functions compute all three quantities exactly
(closed form) and measure ``d_u`` empirically, so the FIG2 bench can verify
the lemmas numerically.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import GeometryError
from repro.geometry.ranks import diagonal_ranks


def _check_points(points: np.ndarray) -> np.ndarray:
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
    if pts.size and (pts.min() < 0.0 or pts.max() > 1.0):
        raise GeometryError("points must lie inside the unit square")
    return pts


def _region_vertices(s: float) -> np.ndarray:
    """Vertices of the potential region ``{x + y > s}`` within the square."""
    if s <= 1.0:
        # Pentagon: (s,0)-(1,0)-(1,1)-(0,1)-(0,s).
        return np.array([[s, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0], [0.0, s]])
    # Triangle: (1, s-1)-(1,1)-(s-1, 1).
    return np.array([[1.0, s - 1.0], [1.0, 1.0], [s - 1.0, 1.0]])


def potential_area(points: np.ndarray) -> np.ndarray:
    """Exact area ``A_u`` of every node's potential region.

    For ``s = x+y <= 1`` the excluded region is the triangle below the
    diagonal with area ``s^2/2``; for ``s > 1`` the potential region itself
    is a triangle with legs ``2 - s``.
    """
    pts = _check_points(points)
    s = pts[:, 0] + pts[:, 1]
    return np.where(s <= 1.0, 1.0 - 0.5 * s * s, 0.5 * (2.0 - s) ** 2)


def potential_distance(points: np.ndarray) -> np.ndarray:
    """Exact potential distance ``L_u`` for every node.

    The potential region is convex, so the farthest point from ``u`` is one
    of its vertices; we take the max over the (at most 5) vertices.
    """
    pts = _check_points(points)
    out = np.empty(len(pts))
    for i, (x, y) in enumerate(pts):
        verts = _region_vertices(x + y)
        d = verts - np.array([x, y])
        out[i] = float(np.sqrt(np.max(np.sum(d * d, axis=1))))
    return out


def potential_angle(points: np.ndarray) -> np.ndarray:
    """Potential angle ``alpha_u = 2 A_u / L_u^2`` (radians) for every node.

    Lemma 6.1: every entry is ``>= 1/2``.  For the single highest-ranked
    node (whose potential region may be arbitrarily small but whose ``L_u``
    shrinks along with it) the ratio stays well-defined; a node exactly at
    the corner ``(1, 1)`` has empty region and gets ``alpha = 0``.
    """
    pts = _check_points(points)
    area = potential_area(pts)
    dist = potential_distance(pts)
    with np.errstate(divide="ignore", invalid="ignore"):
        alpha = np.where(dist > 0.0, 2.0 * area / (dist * dist), 0.0)
    return alpha


def nearest_higher_rank_distance(
    points: np.ndarray,
    ranks: np.ndarray | None = None,
    *,
    initial_k: int = 16,
) -> np.ndarray:
    """Distance ``d_u`` from each node to its nearest higher-ranked node.

    The highest-ranked node gets ``inf``.  Uses a KD-tree with an expanding
    ``k``-nearest query: for uniform points the nearest higher-ranked node is
    among the first few neighbours with overwhelming probability, so the
    expected cost is O(n log n).

    Parameters
    ----------
    points:
        ``(n, 2)`` coordinates.
    ranks:
        Dense rank permutation; defaults to the paper's diagonal ranking.
    initial_k:
        First batch size for the expanding neighbour query.
    """
    pts = _check_points(points)
    n = len(pts)
    if n == 0:
        return np.zeros(0)
    r = diagonal_ranks(pts) if ranks is None else np.asarray(ranks, dtype=np.int64)
    if len(r) != n:
        raise GeometryError("ranks length does not match points")
    tree = cKDTree(pts)
    out = np.full(n, np.inf)
    unresolved = np.arange(n)
    k = min(initial_k, n)
    while len(unresolved) and k <= n:
        # Query k nearest (includes self at distance 0).
        dists, idxs = tree.query(pts[unresolved], k=k)
        if k == 1:
            dists = dists[:, None]
            idxs = idxs[:, None]
        higher = r[idxs] > r[unresolved][:, None]
        found = higher.any(axis=1)
        first = np.argmax(higher[found], axis=1)
        out[unresolved[found]] = dists[found, first]
        unresolved = unresolved[~found]
        if k == n:
            break
        k = min(2 * k, n)
    # Whatever is left has no higher-ranked node at all (the global maximum).
    return out
