"""Distributed algorithms from the paper, implemented on :mod:`repro.sim`.

* :func:`~repro.algorithms.ghs.run_ghs` — the classical
  Gallager–Humblet–Spira algorithm (phase-synchronous Borůvka form, with
  TEST/ACCEPT/REJECT edge probing).  The paper's baseline: Θ(log² n)
  expected energy on RGGs.
* :func:`~repro.algorithms.ghs.run_modified_ghs` — GHS with per-neighbour
  fragment-id caches maintained by ANNOUNCE broadcasts (Sec. V-A); MOE
  search becomes a free local lookup.
* :func:`~repro.algorithms.eopt.run_eopt` — the paper's headline
  energy-optimal algorithm: modified GHS at the giant-component radius,
  size census, then modified GHS at the connectivity radius with the giant
  fragment passive.  O(log n) expected energy.
* :func:`~repro.algorithms.connt.run_connt` — the coordinate-based
  nearest-neighbour-tree protocol (Sec. VI): O(1) expected energy, O(n)
  messages, constant-factor MST approximation.
"""

from repro.algorithms.base import AlgorithmResult, collect_tree_edges
from repro.algorithms.ghs import run_ghs, run_modified_ghs
from repro.algorithms.eopt import run_eopt
from repro.algorithms.connt import run_connt
from repro.algorithms.randnnt import run_randnnt

__all__ = [
    "AlgorithmResult",
    "collect_tree_edges",
    "run_ghs",
    "run_modified_ghs",
    "run_eopt",
    "run_connt",
    "run_randnnt",
]
