"""The two-step energy-optimal MST algorithm (paper Sec. V).

Step 1 — every node limits its radius to ``r1 = c1 sqrt(1/n)`` and the
modified GHS runs to completion.  By Thm 5.2 this leaves, whp, one giant
fragment of Θ(n) nodes plus small fragments trapped in regions of at most
``beta log^2 n`` nodes.

Interlude — every fragment counts itself (broadcast + convergecast over
its tree); a fragment larger than ``beta log^2 n`` declares itself the
giant and goes passive.

Step 2 — radii rise to ``r2 = c2 sqrt(log n / n)`` (the connectivity
regime), everyone re-runs HELLO discovery at the new radius, and the
modified GHS resumes over the remaining fragments only.  The giant accepts
CONNECTs by absorbing the connecting fragment under its own id, so its
Θ(n) members never announce id changes — the two tricks that bring the
expected energy down to O(log n) (Sec. V-C).

Robustness beyond the paper (both events are whp-impossible but reachable
at small ``n``; the result records them in ``extras``):

* **no giant** — if no fragment clears the threshold, step 2 simply runs
  with every fragment active: correctness is unaffected, only the energy
  bound degrades toward plain modified GHS.
* **multiple giants** — if several fragments clear the threshold, only the
  largest stays passive; the rest are demoted to active (two passive
  fragments could otherwise never join).  This arbitration is the one
  place the harness, not the protocol, decides; see DESIGN.md.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import AlgorithmResult, collect_tree_edges
from repro.algorithms.ghs.driver import (
    GHSRecovery,
    active_leaders,
    fragment_histogram,
    hello_round,
    run_ghs_phases,
)
from repro.algorithms.ghs.node import GHSNode
from repro.errors import ProtocolError
from repro.geometry.radius import (
    PAPER_EOPT_STEP1_CONST,
    PAPER_GHS_RADIUS_CONST,
    connectivity_radius,
    giant_radius,
)
from repro.perf import perf
from repro.runspec.registry import register_algorithm
from repro.sim.faults import FaultPlan
from repro.sim.kernel import SynchronousKernel
from repro.sim.power import PathLossModel
from repro.trace import trace


def giant_size_threshold(n: int, beta: float = 1.0) -> float:
    """The ``beta log^2 n`` size bar above which a fragment is the giant."""
    if n < 2:
        return 1.0
    return beta * math.log(n) ** 2


def run_eopt(
    points: np.ndarray,
    *,
    c1: float = PAPER_EOPT_STEP1_CONST,
    c2: float = PAPER_GHS_RADIUS_CONST,
    beta: float = 1.0,
    power: PathLossModel | None = None,
    rx_cost: float = 0.0,
    kernel_cls: type[SynchronousKernel] = SynchronousKernel,
    planes: bool = True,
    faults: FaultPlan | None = None,
    recover: bool = True,
    audit: bool = False,
) -> AlgorithmResult:
    """Run EOPT on ``points``; returns the exact MST of the radius-``r2`` RGG.

    Parameters
    ----------
    points:
        ``(n, 2)`` node coordinates in the unit square.
    c1:
        Step-1 radius constant: ``r1 = c1 sqrt(1/n)`` (paper: 1.4).
    c2:
        Step-2 radius constant: ``r2 = c2 sqrt(ln n / n)`` (paper: 1.6).
    beta:
        Giant-declaration threshold multiplier for ``beta log^2 n``.
    power:
        Path-loss model; defaults to ``a=1, alpha=2``.
    kernel_cls:
        Kernel implementation (benchmarks pass
        :class:`~repro.sim.legacy.LegacyKernel` for the pre-PR baseline).
    planes:
        Use the flood-plane fast path for HELLO/ANNOUNCE when the kernel
        supports it (``False`` forces per-message delivery; results are
        bit-identical either way).
    faults:
        Optional :class:`~repro.sim.faults.FaultPlan`; see
        :func:`repro.algorithms.ghs.runner.run_ghs` for the matching
        ``recover``/``audit`` knobs.
    """
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    r1 = giant_radius(n, c1)
    r2 = connectivity_radius(n, c2)
    if r1 > r2:
        # Tiny n: the "sub-connectivity" radius isn't sub anything; clamp so
        # step 2 still raises power rather than lowering it.
        r1 = r2

    kwargs = {}
    if faults is not None:
        kwargs["faults"] = faults
    kernel = kernel_cls(pts, max_radius=r1, power=power, rx_cost=rx_cost, **kwargs)
    reliable = faults is not None and not faults.is_null and recover
    kernel.add_nodes(
        lambda i, ctx: GHSNode(
            i, ctx, use_tests=False, announce=True, reliable=reliable
        )
    )
    kernel.start()
    nodes = kernel.nodes
    recovery = (
        GHSRecovery(kernel, nodes, verify_fids=True, audit=audit)
        if reliable
        else None
    )
    fp = kernel.faults
    if trace.enabled:
        trace.emit("run_start", alg="EOPT", n=n, r1=r1, r2=r2)

    # ---- Step 1: modified GHS at the giant-component radius -----------------
    kernel.set_stage("step1:hello")
    with perf.timed("eopt.step1.hello"):
        hello_round(kernel, r1, planes=planes, recovery=recovery)
    kernel.set_stage("step1:ghs")
    with perf.timed("eopt.step1.phases"):
        phases1 = run_ghs_phases(kernel, nodes, recovery=recovery)

    # ---- Interlude: fragment size census + giant declaration ----------------
    kernel.set_stage("step2:size")
    with perf.timed("eopt.census"):
        if recovery is None:
            leaders = [nd.id for nd in nodes if nd.leader]
            kernel.wake(leaders, "size")
            kernel.run_until_quiescent()
        else:
            # Census under faults: SIZE traffic is reliable, so one
            # settled wake per leader suffices — but a leader inside a
            # crash window can't hear the wake yet.  Loop until every
            # surviving leader has a size (never-started nodes and
            # permanently dead leaders are not counted; their fragments
            # aren't part of the surviving topology).
            for _ in range(recovery.max_iters):
                rnd = kernel.rounds
                todo = [
                    nd.id
                    for nd in nodes
                    if nd.leader
                    and nd.fragment_size is None
                    and not fp.gone_forever(nd.id, rnd)
                ]
                if not todo:
                    break
                alive = [i for i in todo if not fp.crashed(i, rnd)]
                if alive:
                    kernel.wake(alive, "size")
                    recovery.settle()
                else:
                    kernel.tick()
            else:
                raise ProtocolError(
                    "EOPT census did not complete under fault recovery"
                )
    threshold = giant_size_threshold(n, beta)
    giant_leaders = [
        nd
        for nd in nodes
        if nd.leader and nd.fragment_size is not None and nd.fragment_size > threshold
    ]
    demoted = 0
    if len(giant_leaders) > 1:
        giant_leaders.sort(key=lambda nd: (-nd.fragment_size, nd.id))
        demoted = len(giant_leaders) - 1
        giant_leaders = giant_leaders[:1]
    giant_size = 0
    if giant_leaders:
        g = giant_leaders[0]
        giant_size = int(g.fragment_size)
        if recovery is None:
            kernel.wake([g.id], "declare_giant")
            kernel.run_until_quiescent()
        else:
            waited = 0
            while fp.crashed(g.id, kernel.rounds):
                kernel.tick()
                waited += 1
                if waited > recovery.max_iters:
                    raise ProtocolError(
                        "giant leader's crash window did not expire"
                    )
            kernel.wake([g.id], "declare_giant")
            recovery.settle()
    if trace.enabled:
        # The Thm 5.2 observable: after step 1 the size histogram must
        # show one giant entry above the threshold and small ones below.
        fragments, sizes = fragment_histogram(nodes)
        trace.emit(
            "census",
            round=kernel.rounds,
            threshold=threshold,
            fragments=fragments,
            sizes=sizes,
            giant_size=giant_size,
            demoted=demoted,
        )

    # ---- Step 2: raise power, rediscover, resume over small fragments -------
    kernel.set_max_radius(r2)
    kernel.set_stage("step2:hello")
    with perf.timed("eopt.step2.hello"):
        hello_round(kernel, r2, planes=planes, recovery=recovery)
    kernel.set_stage("step2:ghs")
    if recovery is None:
        small_leaders = [nd.id for nd in nodes if nd.leader and not nd.passive]
        kernel.wake(small_leaders, "activate")
    else:
        # ``activate`` is a local flag flip; just outlast crash windows.
        for _ in range(recovery.max_iters):
            rnd = kernel.rounds
            todo = [
                nd.id
                for nd in nodes
                if nd.leader
                and not nd.passive
                and nd.halted
                and not fp.gone_forever(nd.id, rnd)
            ]
            if not todo:
                break
            alive = [i for i in todo if not fp.crashed(i, rnd)]
            if alive:
                kernel.wake(alive, "activate")
            else:
                kernel.tick()
        else:
            raise ProtocolError(
                "EOPT step-2 activation did not complete under fault recovery"
            )
    with perf.timed("eopt.step2.phases"):
        phases2 = run_ghs_phases(
            kernel, nodes, start_phase=phases1 + 1, recovery=recovery
        )

    remaining = active_leaders(nodes)
    if remaining and fp is not None and fp.has_crashes:
        rnd = kernel.rounds
        remaining = [i for i in remaining if not fp.gone_forever(i, rnd)]
    if remaining:  # pragma: no cover - defensive
        raise ProtocolError("EOPT finished with active fragments remaining")

    edges = collect_tree_edges((nd.id, nd.tree_edges) for nd in nodes)
    stats = kernel.stats()
    fragments = {nd.fid for nd in nodes}
    if trace.enabled:
        trace.emit(
            "run_end",
            alg="EOPT",
            round=kernel.rounds,
            phases=phases1 + phases2,
            fragments=len(fragments),
        )
    step1_energy = sum(
        e for s, e in stats.energy_by_stage.items() if s.startswith("step1")
    )
    step2_energy = sum(
        e for s, e in stats.energy_by_stage.items() if s.startswith("step2")
    )
    return AlgorithmResult(
        name="EOPT",
        n=n,
        tree_edges=edges,
        stats=stats,
        phases=phases1 + phases2,
        extras={
            "r1": r1,
            "r2": r2,
            "phases_step1": phases1,
            "phases_step2": phases2,
            "giant_size": giant_size,
            "giant_found": bool(giant_leaders),
            "giants_demoted": demoted,
            "size_threshold": threshold,
            "n_fragments_final": len(fragments),
            "step1_energy": step1_energy,
            "step2_energy": step2_energy,
        },
    )


# -- runspec registration -----------------------------------------------------

def _eopt_adapter(points, spec):
    from repro.runspec.spec import kernel_class

    kwargs = {
        "c1": spec.eopt_c1,
        "c2": spec.eopt_c2,
        "beta": spec.eopt_beta,
        "rx_cost": spec.rx_cost,
        "kernel_cls": kernel_class(spec.kernel),
        "planes": spec.planes,
        "recover": spec.recover,
    }
    if spec.faults is not None:
        kwargs["faults"] = spec.faults
    return run_eopt(points, **kwargs)


register_algorithm(
    "EOPT",
    runner=run_eopt,
    adapter=_eopt_adapter,
    order=2,
    summary="two-step energy-optimal MST - exact MST, O(log n) expected energy",
)
