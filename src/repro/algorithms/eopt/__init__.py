"""EOPT — the paper's energy-optimal distributed MST algorithm (Sec. V)."""

from repro.algorithms.eopt.runner import run_eopt, giant_size_threshold

__all__ = ["run_eopt", "giant_size_threshold"]
