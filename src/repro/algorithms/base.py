"""Shared result type and helpers for the distributed algorithms.

Every runner returns an :class:`AlgorithmResult` bundling the tree the
protocol built with the full energy/message statistics of the run, so
benches and tests consume one uniform object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.sim.energy import SimStats


@dataclass(frozen=True)
class AlgorithmResult:
    """Outcome of one distributed-algorithm run.

    Attributes
    ----------
    name:
        Algorithm label (``"GHS"``, ``"MGHS"``, ``"EOPT"``, ``"Co-NNT"``).
    n:
        Number of nodes simulated.
    tree_edges:
        ``(k, 2)`` undirected edges (``u < v``) the protocol established.
        ``k = n - #components`` of the operating graph.
    stats:
        Full simulation statistics (energy, messages, rounds, breakdowns).
    phases:
        Number of protocol phases executed (GHS-family: Borůvka phases;
        Co-NNT: doubling-radius probe phases).
    extras:
        Algorithm-specific details (giant size, step split, radii used...).
    """

    name: str
    n: int
    tree_edges: np.ndarray
    stats: SimStats
    phases: int
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def energy(self) -> float:
        """Total energy complexity of the run (the paper's metric)."""
        return self.stats.energy_total

    @property
    def messages(self) -> int:
        """Total messages transmitted."""
        return self.stats.messages_total

    @property
    def rounds(self) -> int:
        """Synchronous rounds consumed."""
        return self.stats.rounds

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: n={self.n} edges={len(self.tree_edges)} "
            f"energy={self.energy:.3f} messages={self.messages} "
            f"rounds={self.rounds} phases={self.phases}"
        )


def collect_tree_edges(edge_sets: Iterable[tuple[int, Iterable[int]]]) -> np.ndarray:
    """Union of per-node tree-edge sets into a canonical ``(k, 2)`` array.

    Parameters
    ----------
    edge_sets:
        Iterable of ``(node_id, neighbours_in_tree)`` pairs; each undirected
        edge may appear from both endpoints and is deduplicated.
    """
    seen: set[tuple[int, int]] = set()
    for u, nbs in edge_sets:
        for v in nbs:
            seen.add((u, v) if u < v else (v, u))
    if not seen:
        return np.zeros((0, 2), dtype=np.int64)
    return np.array(sorted(seen), dtype=np.int64)
