"""Index-aligned flood cache for the GHS family's plane fast path.

The kernel's flood planes (see ``repro.sim.kernel`` — "Flood planes")
deliver HELLO/ANNOUNCE floods as arrays of CSR edge indices instead of
per-recipient :class:`~repro.sim.message.Message` dispatch.  This module
holds the receiving side: one :class:`FloodCache` shared by every node,
aligned slot-for-slot with the kernel's neighbor table.

Layout: the neighbor table's CSR row for node ``i`` lists ``i``'s
neighbors sorted by distance; slot ``j`` in that row is the edge
``(i, ids[j])``.  The cache keeps, per slot,

* ``fid[j]``   — the fragment id ``i`` last heard from ``ids[j]``
  (``-1`` = never heard, the numpy stand-in for "absent from the dict");
* ``known[j]`` — whether ``i`` has heard from ``ids[j]`` at all (the
  dict-membership bit: a HELLO at radius ``r < max_radius`` only reaches
  a prefix of each row);
* ``lo[j]`` / ``hi[j]`` — ``min``/``max`` of the edge's endpoint ids,
  precomputed so the globally consistent edge key
  ``(distance, lo, hi)`` is a gather away.

Delivery (:meth:`FloodCache.on_plane`) maps the plane's sender-major edge
indices through the table's reverse permutation to recipient-side slots
and overwrites ``fid``/``known`` in bulk — planes are order-free because
that overwrite is all a HELLO/ANNOUNCE receiver ever does.  Modified-mode
MOE search (:meth:`FloodCache.moe_batch`) becomes one masked segment-min
over the participants' rows instead of a per-node Python scan.

This module deliberately does not import ``repro.algorithms.ghs.node``
(nodes hold cache views by duck-typing), so either side can be loaded
without the other.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sim.kernel import concat_ranges

#: Plane kinds this cache accepts — the pure cache-refresh floods.
PLANE_KINDS = ("HELLO", "ANNOUNCE")


class FloodCache:
    """Shared, table-aligned neighbour/fragment cache for all nodes."""

    __slots__ = ("table", "indptr", "ids", "dists", "lo", "hi", "fid", "known")

    def __init__(self, table) -> None:
        self.table = table
        self.indptr = table.indptr_arr
        self.ids = table.ids
        self.dists = table.dists
        m = len(self.ids)
        n = len(self.indptr) - 1
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        ids64 = self.ids.astype(np.int64, copy=False)
        self.lo = np.minimum(src, ids64)
        self.hi = np.maximum(src, ids64)
        self.fid = np.full(m, -1, dtype=np.int64)
        self.known = np.zeros(m, dtype=bool)

    @classmethod
    def ensure(cls, kernel) -> "FloodCache | None":
        """A fresh cache over ``kernel``'s current table, or ``None``.

        ``None`` means the plane fast path is unavailable: flat-delivery
        kernels (legacy reference, contention) must keep the bit-exact
        per-message order, and the density gate may have rejected the
        table outright.  Callers fall back to per-message HELLOs.
        """
        if kernel._flat_pending or kernel.n == 0:
            return None
        tbl = kernel.neighbor_table()
        if tbl is None:
            return None
        return cls(tbl)

    def attach(self, node) -> None:
        """Bind ``node``'s cache views to its CSR row (zero-copy slices)."""
        s = int(self.indptr[node.id])
        e = int(self.indptr[node.id + 1])
        node.cache = self
        node.nb_ids = self.ids[s:e]
        node.nb_dist = self.dists[s:e]
        node.nb_fid = self.fid[s:e]
        node.nb_known = self.known[s:e]
        node.nb_lo = self.lo[s:e]
        node.nb_hi = self.hi[s:e]

    # -- plane delivery ---------------------------------------------------------

    def on_plane(self, kind, table, senders, payloads, counts, edge_idx) -> None:
        """Kernel plane handler: bulk-apply one round's HELLO/ANNOUNCE flood.

        ``edge_idx`` indexes sender-major (sender, recipient) edges; the
        recipient's cache slot for the sender is the reverse permutation
        of the same edge.  Fancy assignment applies in registration
        order, so a slot written twice in one round keeps the last
        sender's value — exactly the dict-overwrite semantics.
        """
        if table is not self.table:
            raise SimulationError(
                "flood plane delivered against a stale neighbor table; "
                "rebuild the cache (hello round) after raising the power cap"
            )
        if kind not in PLANE_KINDS:
            raise SimulationError(f"flood cache cannot apply plane kind {kind!r}")
        slots = table.rev[edge_idx]
        self.fid[slots] = np.repeat(payloads, counts)
        self.known[slots] = True

    # -- modified-mode MOE search ----------------------------------------------

    def moe_batch(
        self, node_ids: np.ndarray, fids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Minimum outgoing edge for many nodes in one masked segment-min.

        For each ``node_ids[i]`` (current fragment id ``fids[i]``), finds
        the cache entry minimizing the edge key ``(distance, lo, hi)``
        among known neighbours in a *different* fragment — the modified
        GHS local MOE rule.  Returns parallel arrays
        ``(cand, dist, lo, hi)`` where ``cand[i] = -1`` (and
        ``dist[i] = inf``) means no outgoing edge.

        Distances are compared first and tie-broken by ``(lo, hi)``;
        distance ties are measure-zero for random instances but the
        tie-break keeps the key globally consistent regardless.
        """
        node_ids = np.asarray(node_ids, dtype=np.intp)
        fids = np.asarray(fids, dtype=np.int64)
        k = len(node_ids)
        cand = np.full(k, -1, dtype=np.int64)
        kdist = np.full(k, np.inf)
        klo = np.full(k, -1, dtype=np.int64)
        khi = np.full(k, -1, dtype=np.int64)
        if k == 0:
            return cand, kdist, klo, khi
        starts = self.indptr[node_ids]
        ends = self.indptr[node_ids + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            return cand, kdist, klo, khi
        edge_idx = concat_ranges(starts, ends)
        seg = np.repeat(np.arange(k, dtype=np.intp), counts)
        mask = self.known[edge_idx] & (self.fid[edge_idx] != fids[seg])
        d = np.where(mask, self.dists[edge_idx], np.inf)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        # reduceat treats repeated/trailing offsets as 1-element segments;
        # clamp into range and overwrite empty segments with inf after.
        minima = np.minimum.reduceat(d, np.minimum(offsets, total - 1))
        minima[counts == 0] = np.inf
        hit = mask & (d == minima[seg])
        pos = np.flatnonzero(hit)
        if len(pos) == 0:
            return cand, kdist, klo, khi
        seg_hits = seg[pos]
        uniq, first = np.unique(seg_hits, return_index=True)
        chosen = pos[first]
        if len(pos) > len(uniq):
            # Distance tie inside some segment: re-pick by (lo, hi).
            left = np.searchsorted(seg_hits, uniq, side="left")
            right = np.searchsorted(seg_hits, uniq, side="right")
            for ui in np.flatnonzero(right - left > 1):
                tied = pos[left[ui] : right[ui]]
                ei = edge_idx[tied]
                best = int(np.lexsort((self.hi[ei], self.lo[ei]))[0])
                chosen[ui] = tied[best]
        ce = edge_idx[chosen]
        cand[uniq] = self.ids[ce]
        kdist[uniq] = d[chosen]
        klo[uniq] = self.lo[ce]
        khi[uniq] = self.hi[ce]
        return cand, kdist, klo, khi
