"""Whole-round array programs for the GHS family's Borůvka phases.

This is the algorithm half of the turbo backend (the kernel half is
:class:`repro.sim.turbo.TurboKernel`): when a run is *eligible* —
modified-mode GHS/EOPT on a turbo kernel with flood planes live, no
fault plan, no reliable transport, no reception cost — the driver's
per-message phase loop is replaced by :class:`TurboPhaseEngine`, which
executes every round as a handful of numpy array operations instead of
thousands of per-node handler calls.

The engine is an *observational clone* of the per-message path, not an
approximation of it.  The contract (checked by the hot-path equivalence
suite and ``trace/diff.py`` triage) is:

* ``energy_total`` is bit-identical: every transmission is charged in
  the exact order the per-message kernel would charge it — deliveries
  ascending by ``(recipient, seq)``, each handler's sends in code
  order — through one ``np.add.accumulate`` chain seeded with the
  running total (sequential, not pairwise, summation);
* ``rounds``, ``messages_total``, per-kind/per-stage message counts and
  per-round trace events (``round``/``dm``/``de``/``kinds``) are exact;
* per-kind/per-stage energy breakdowns reassociate float sums (the
  ledger contract already allows that); ``energy_by_node`` likewise;
* node objects are synced back on exit, so census/giant-declaration
  stages and result collection see the same state the per-message loop
  would have left.

To make send order a pure function of protocol state,
:mod:`repro.algorithms.ghs.node` iterates tree edges in sorted order —
the engine reproduces those loops with sorted CSR rows.

Design notes
------------

Stage A (the INITIATE flood) is a vectorized BFS over the fragment-tree
CSR: one frontier array per round, announce + child-INITIATE emissions
interleaved per node by construction.  Stage B vectorizes the two bulk
kinds — the ``find_moe`` wake (one ``FloodCache.moe_batch`` segment-min
for all participants) and the REPORT converge-cast (segment counts and
lexicographic segment-min per recipient).  CONNECT / CHANGEROOT /
ABSORB are low-volume (O(fragments) per phase) and deliberately stay
scalar, processed in ``(recipient, seq)`` order, which sidesteps the
same-round state interleavings a vectorized merge would have to prove
commutative.  Every emission carries its trigger key ``(recipient id,
trigger seq, intra-handler index)``; one lexsort per round recovers the
global charge order.

ANNOUNCE floods reuse the flood-plane semantics directly: an announce
emission is charged like any other send and its cache-row overwrite is
applied at the next round boundary (planes deliver before unicasts, and
slot sets of distinct senders are disjoint, so bulk assignment is
order-free).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.algorithms.ghs.node import GHSNode
from repro.perf import perf
from repro.sim.kernel import concat_ranges as _concat_ranges
from repro.sim.turbo import seq_energy_accumulate
from repro.trace import trace

__all__ = ["turbo_phase_engine", "run_phases_turbo", "TurboPhaseEngine"]

# Emission kind codes (column values in the per-round emission table).
_INITIATE, _ANNOUNCE, _REPORT, _CHANGEROOT, _CONNECT, _ABSORB = range(6)
_KIND_NAMES = ("INITIATE", "ANNOUNCE", "REPORT", "CHANGEROOT", "CONNECT", "ABSORB")

_INF = math.inf


def turbo_phase_engine(kernel, nodes: Sequence[GHSNode]) -> "TurboPhaseEngine | None":
    """Engine for this run, or ``None`` when ineligible.

    Eligibility is deliberately conservative — anything the array
    programs do not model bit-exactly falls back to the per-message
    path (which a turbo kernel inherits unchanged from the fast one):

    * kernel opts in via the ``turbo_rounds`` capability flag;
    * no fault plan, no reception cost, nothing in flight;
    * flood planes live: neighbor table built (density gate passed),
      every node bound to one :class:`FloodCache` over that table, and
      the cache registered as the kernel's plane handler;
    * modified-mode protocol on plain :class:`GHSNode` instances
      (no TEST probes, no reliable-transport envelopes, ANNOUNCE on);
    * one uniform radio radius within the table's power cap.
    """
    if not getattr(kernel, "turbo_rounds", False):
        return None
    if kernel.faults is not None or kernel.rx_cost:
        return None
    if not nodes or kernel.in_flight:
        return None
    tbl = kernel.neighbor_table()
    if tbl is None:
        return None
    nd0 = nodes[0]
    cache = getattr(nd0, "cache", None)
    if cache is None or cache.table is not tbl:
        return None
    # The registered plane handler must be *this* cache's on_plane
    # (bound methods are recreated per access, so compare the receiver).
    handler = kernel._plane_handler
    if getattr(handler, "__self__", None) is not cache or getattr(
        handler, "__func__", None
    ) is not type(cache).on_plane:
        return None
    r = nd0.radio_radius
    if not (0.0 < r <= tbl.max_radius):
        return None
    for nd in nodes:
        if type(nd) is not GHSNode:
            return None
        if nd.use_tests or nd.reliable or not nd.announce or nd.retry is not None:
            return None
        if nd.cache is not cache or nd.radio_radius != r:
            return None
    return TurboPhaseEngine(kernel, nodes, cache, tbl)


class _Emits:
    """One round's emission table, accumulated then lexsorted once.

    Columns: trigger key ``(k1, k2, k3)`` = (recipient id / wake rank,
    trigger seq, intra-handler index), sender ``node``, ``kind`` code,
    transmission distance ``dist`` (the announce radius for ANNOUNCE),
    recipient ``dst`` (-1 for ANNOUNCE), and payload columns ``pf``
    (REPORT distance), ``p1`` (REPORT lo), ``p2`` (REPORT hi / fragment
    id for ANNOUNCE, CONNECT and ABSORB).
    """

    __slots__ = ("chunks", "k1", "k2", "k3", "node", "kind", "dist", "dst", "pf", "p1", "p2")

    def __init__(self) -> None:
        self.chunks: list[tuple] = []
        self.k1: list[int] = []
        self.k2: list[int] = []
        self.k3: list[int] = []
        self.node: list[int] = []
        self.kind: list[int] = []
        self.dist: list[float] = []
        self.dst: list[int] = []
        self.pf: list[float] = []
        self.p1: list[int] = []
        self.p2: list[int] = []

    def add_chunk(self, k1, k2, k3, node, kind, dist, dst, pf=None, p1=None, p2=None) -> None:
        """Append parallel emission arrays (already per-column numpy)."""
        k = len(node)
        if k == 0:
            return
        zf = np.zeros(k)
        zi = np.zeros(k, dtype=np.int64)
        self.chunks.append(
            (
                np.asarray(k1, dtype=np.int64),
                np.asarray(k2, dtype=np.int64),
                np.asarray(k3, dtype=np.int64),
                np.asarray(node, dtype=np.int64),
                np.asarray(kind, dtype=np.int64),
                np.asarray(dist, dtype=np.float64),
                np.asarray(dst, dtype=np.int64),
                zf if pf is None else np.asarray(pf, dtype=np.float64),
                zi if p1 is None else np.asarray(p1, dtype=np.int64),
                zi if p2 is None else np.asarray(p2, dtype=np.int64),
            )
        )

    def add(self, k1, k2, k3, node, kind, dist, dst, pf=0.0, p1=0, p2=0) -> None:
        """Append one scalar emission row."""
        self.k1.append(k1)
        self.k2.append(k2)
        self.k3.append(k3)
        self.node.append(node)
        self.kind.append(kind)
        self.dist.append(dist)
        self.dst.append(dst)
        self.pf.append(pf)
        self.p1.append(p1)
        self.p2.append(p2)

    def __len__(self) -> int:
        return len(self.node) + sum(len(c[3]) for c in self.chunks)

    def columns(self) -> tuple | None:
        """All emissions in global trigger order, or ``None`` if empty."""
        chunks = self.chunks
        if self.node:
            self.add_chunk(
                self.k1, self.k2, self.k3, self.node, self.kind,
                self.dist, self.dst, self.pf, self.p1, self.p2,
            )
        if not chunks:
            return None
        if len(chunks) == 1:
            cols = chunks[0]
        else:
            cols = tuple(np.concatenate([c[i] for c in chunks]) for i in range(10))
        order = np.lexsort(cols[2::-1])  # (k3, k2, k1) -> sort by k1, k2, k3
        return tuple(col[order] for col in cols)


class TurboPhaseEngine:
    """Array-program replacement for ``run_ghs_phases`` (one run)."""

    def __init__(self, kernel, nodes: Sequence[GHSNode], cache, tbl) -> None:
        self.k = kernel
        self.nodes = nodes
        self.cache = cache
        self.tbl = tbl
        self.n = n = kernel.n
        self.pw = kernel.power
        self.r = r = nodes[0].radio_radius
        self.acost = self.pw.energy(r)
        pts = kernel.points
        self.px = np.ascontiguousarray(pts[:, 0])
        self.py = np.ascontiguousarray(pts[:, 1])
        # Announce rows: per-sender cache-slot prefix covered by radius r
        # (== the full row when r is the table's power cap).  Same closed
        # ball the kernel's searchsorted(..., side="right") cutoff keeps.
        ip = cache.indptr
        if r >= tbl.max_radius:
            self.ann_ends = ip[1:]
        else:
            within = np.concatenate(([0], np.cumsum(cache.dists <= r)))
            self.ann_ends = ip[:-1] + (within[ip[1:]] - within[ip[:-1]])
        # -- protocol state, synced in from the node objects ----------------
        self.fid = np.fromiter((nd.fid for nd in nodes), dtype=np.int64, count=n)
        self.leader = np.fromiter((nd.leader for nd in nodes), dtype=bool, count=n)
        self.halted = np.fromiter((nd.halted for nd in nodes), dtype=bool, count=n)
        self.passive = np.fromiter((nd.passive for nd in nodes), dtype=bool, count=n)
        self.cur_phase = np.fromiter((nd.cur_phase for nd in nodes), dtype=np.int64, count=n)
        self.parent = np.fromiter(
            (-1 if nd.parent is None else nd.parent for nd in nodes),
            dtype=np.int64,
            count=n,
        )
        eu: list[int] = []
        ev: list[int] = []
        for nd in nodes:
            for e in nd.tree_edges:
                eu.append(nd.id)
                ev.append(e)
        #: Directed tree-edge chunks (deduped at each CSR build).
        self.edge_chunks: list[np.ndarray] = []
        if eu:
            self.edge_chunks.append(
                np.stack([np.array(eu, dtype=np.int64), np.array(ev, dtype=np.int64)])
            )
        self.edge_u: list[int] = []
        self.edge_v: list[int] = []
        # -- per-phase scratch ---------------------------------------------
        self.n_children = np.zeros(n, dtype=np.int64)
        self.parent_dist = np.zeros(n)
        self.reports_recv = np.zeros(n, dtype=np.int64)
        self.reported = np.zeros(n, dtype=bool)
        self.best_d = np.full(n, _INF)
        self.best_lo = np.full(n, -1, dtype=np.int64)
        self.best_hi = np.full(n, -1, dtype=np.int64)
        self.best_child = np.full(n, -1, dtype=np.int64)
        self.cand_nb = np.full(n, -1, dtype=np.int64)
        self.cand_d = np.full(n, _INF)
        self.cand_lo = np.full(n, -1, dtype=np.int64)
        self.cand_hi = np.full(n, -1, dtype=np.int64)
        self.final_d = np.full(n, _INF)
        self.final_lo = np.full(n, -1, dtype=np.int64)
        self.final_hi = np.full(n, -1, dtype=np.int64)
        self.final_from = np.full(n, -1, dtype=np.int64)
        self.sent_connect_to = np.full(n, -1, dtype=np.int64)
        self.connects_in: dict[int, set[int]] = {}
        #: This-phase tree adds per node, maintained only while a passive
        #: node exists (= an ABSORB flood is possible; EOPT step 2).
        self.extras: dict[int, list[int]] | None = None
        # -- per-phase fragment-tree CSR -----------------------------------
        self.t_indptr: np.ndarray | None = None
        self.t_adj: np.ndarray | None = None
        # -- pending deliveries / cache writes for the next round ----------
        self.pend_report: tuple | None = None
        self.pend_misc: tuple | None = None
        self.pend_ann: tuple | None = None
        self._seq = 0

    # -- geometry ----------------------------------------------------------

    def _dist(self, u, v) -> np.ndarray:
        """Pairwise distances, bit-identical to the kernel's expression."""
        dx = self.px[u] - self.px[v]
        dy = self.py[u] - self.py[v]
        return np.sqrt(dx * dx + dy * dy)

    def _dist1(self, u: int, v: int) -> float:
        dx = self.px[u] - self.px[v]
        dy = self.py[u] - self.py[v]
        return math.sqrt(dx * dx + dy * dy)

    # -- fragment-tree CSR -------------------------------------------------

    def _flush_edges(self) -> None:
        if self.edge_u:
            self.edge_chunks.append(
                np.stack(
                    [
                        np.array(self.edge_u, dtype=np.int64),
                        np.array(self.edge_v, dtype=np.int64),
                    ]
                )
            )
            self.edge_u = []
            self.edge_v = []

    def _build_tree_csr(self) -> None:
        """(Re)build the sorted fragment-tree adjacency for this phase."""
        self._flush_edges()
        n = self.n
        if not self.edge_chunks:
            self.t_indptr = np.zeros(n + 1, dtype=np.int64)
            self.t_adj = np.empty(0, dtype=np.int64)
            return
        if len(self.edge_chunks) > 1:
            allc = np.concatenate(self.edge_chunks, axis=1)
            self.edge_chunks = [allc]
        else:
            allc = self.edge_chunks[0]
        # Dedup (protocol adds each direction at its own endpoint; the
        # reciprocal-CONNECT core adds one direction twice) and sort so
        # each row enumerates neighbours ascending.
        keys = np.unique(allc[0] * n + allc[1])
        u = keys // n
        self.t_adj = keys % n
        self.t_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(u, minlength=n), out=self.t_indptr[1:])

    def _tree_row(self, u: int) -> list[int]:
        """Node ``u``'s current tree neighbours, ascending (CSR + this-phase adds)."""
        s, e = self.t_indptr[u], self.t_indptr[u + 1]
        row = self.t_adj[s:e].tolist()
        extra = self.extras.get(u) if self.extras is not None else None
        if extra:
            row = sorted(set(row).union(extra))
        return row

    def _add_edge(self, u: int, v: int) -> None:
        self.edge_u.append(u)
        self.edge_v.append(v)
        if self.extras is not None:
            self.extras.setdefault(u, []).append(v)

    # -- charging / round boundary -----------------------------------------

    def _finalize(self, em: _Emits) -> int:
        """Charge this block's emissions in trigger order; queue deliveries.

        Returns the number of messages charged.  Mirrors what the
        per-message handlers would have done: ``energy_total`` advances
        through the exact per-message partial sums, per-kind/per-stage
        counters take the same integer counts, and each send lands in
        next round's pending set keyed ``(recipient, seq)``.
        """
        if not em.chunks and len(em.node) <= 64:
            return self._finalize_scalar(em)
        cols = em.columns()
        led = self.k._ledger
        if cols is None:
            self.pend_report = None
            self.pend_misc = None
            self.pend_ann = None
            return 0
        _, _, _, node, kind, dist, dst, pf, p1, p2 = cols
        k = len(node)
        energies = self.pw.energy_array(dist)
        led.energy_total = seq_energy_accumulate(led.energy_total, energies)
        led.messages_total += k
        np.add.at(led.energy_by_node, node, energies)
        counts = np.bincount(kind, minlength=6)
        esums = np.bincount(kind, weights=energies, minlength=6)
        stage = self.k.stage
        led.energy_by_stage[stage] += float(energies.sum())
        led.messages_by_stage[stage] += k
        for code in np.flatnonzero(counts).tolist():
            name = _KIND_NAMES[code]
            led.energy_by_kind[name] += float(esums[code])
            led.messages_by_kind[name] += int(counts[code])
        seqs = np.arange(self._seq, self._seq + k, dtype=np.int64)
        self._seq += k
        # Split into next round's pending sets.
        m = kind == _ANNOUNCE
        self.pend_ann = (node[m], p2[m]) if counts[_ANNOUNCE] else None
        # Deliveries are processed ascending (recipient, seq), exactly
        # like the per-message kernel's delivery sort.  Seqs ascend with
        # emission order, so a stable sort by recipient suffices.
        m = kind == _REPORT
        if counts[_REPORT]:
            o = np.argsort(dst[m], kind="stable")
            self.pend_report = (
                dst[m][o], seqs[m][o], node[m][o], pf[m][o], p1[m][o], p2[m][o]
            )
        else:
            self.pend_report = None
        m = (kind == _CONNECT) | (kind == _CHANGEROOT) | (kind == _ABSORB)
        if m.any():
            o = np.argsort(dst[m], kind="stable")
            self.pend_misc = (
                dst[m][o], seqs[m][o], node[m][o], kind[m][o], p2[m][o]
            )
        else:
            self.pend_misc = None
        if perf.enabled and counts[_ANNOUNCE]:
            perf.add("kernel.plane_sends", int(counts[_ANNOUNCE]))
        return k

    def _finalize_scalar(self, em: _Emits) -> int:
        """Plain-Python ``_finalize`` for small rounds (most of stage B).

        Bit-identical to the array path: Python's stable sort applies
        the same (k1, k2, k3) order as the lexsort, ``energy`` matches
        ``energy_array`` per element, and sequential ``+=`` is exactly
        the seeded ``np.add.accumulate`` chain.  Pending sets are kept
        as plain column tuples; the consumers dispatch on the type.
        """
        self.pend_report = None
        self.pend_misc = None
        self.pend_ann = None
        k = len(em.node)
        if k == 0:
            return 0
        order = sorted(range(k), key=lambda i: (em.k1[i], em.k2[i], em.k3[i]))
        led = self.k._ledger
        energy = self.pw.energy
        by_node = led.energy_by_node
        e_kind = led.energy_by_kind
        m_kind = led.messages_by_kind
        total = led.energy_total
        stage_e = 0.0
        base = self._seq
        self._seq += k
        rep_rows: list[tuple] = []
        misc_rows: list[tuple] = []
        ann_w: list[int] = []
        ann_f: list[int] = []
        for j, i in enumerate(order):
            kd = em.kind[i]
            u = em.node[i]
            e = energy(em.dist[i])
            total += e
            stage_e += e
            by_node[u] += e
            name = _KIND_NAMES[kd]
            e_kind[name] += e
            m_kind[name] += 1
            if kd == _ANNOUNCE:
                ann_w.append(u)
                ann_f.append(em.p2[i])
            elif kd == _REPORT:
                rep_rows.append((em.dst[i], base + j, u, em.pf[i], em.p1[i], em.p2[i]))
            elif kd != _INITIATE:
                misc_rows.append((em.dst[i], base + j, u, kd, em.p2[i]))
        led.energy_total = total
        led.messages_total += k
        stage = self.k.stage
        led.energy_by_stage[stage] += stage_e
        led.messages_by_stage[stage] += k
        if ann_w:
            self.pend_ann = (ann_w, ann_f)
            if perf.enabled:
                perf.add("kernel.plane_sends", len(ann_w))
        if rep_rows:
            rep_rows.sort(key=lambda t: t[0])  # stable: seq ascends per dst
            self.pend_report = tuple(zip(*rep_rows))
        if misc_rows:
            misc_rows.sort(key=lambda t: t[0])
            self.pend_misc = tuple(zip(*misc_rows))
        return k

    def _apply_announces(self) -> int:
        """Plane delivery: bulk cache-row overwrite for pending ANNOUNCEs."""
        pend = self.pend_ann
        if pend is None:
            return 0
        writers, fids = pend
        self.pend_ann = None
        if not isinstance(writers, np.ndarray):  # scalar-finalize rows
            ip = self.cache.indptr
            rev = self.tbl.rev
            cfid = self.cache.fid
            known = self.cache.known
            delivered = 0
            for w, f in zip(writers, fids):
                s, e = ip[w], self.ann_ends[w]
                slots = rev[s:e]
                cfid[slots] = f
                known[slots] = True
                delivered += int(e - s)
            if perf.enabled:
                perf.add("kernel.plane_batches")
                perf.add("kernel.plane_deliveries", delivered)
            return delivered
        starts = self.cache.indptr[writers]
        ends = self.ann_ends[writers]
        cnt = ends - starts
        idx = _concat_ranges(starts, ends)
        slots = self.tbl.rev[idx]
        self.cache.fid[slots] = np.repeat(fids, cnt)
        self.cache.known[slots] = True
        if perf.enabled:
            perf.add("kernel.plane_batches")
            perf.add("kernel.plane_deliveries", len(slots))
        return len(slots)

    def _end_round(self, delivered: int) -> None:
        k = self.k
        k.rounds += 1
        if perf.enabled:
            perf.add("kernel.rounds")
            perf.add("kernel.deliveries", delivered)
            perf.add("kernel.turbo_engine_rounds")
            perf.sample_rss()
        if trace.enabled:
            k._trace_round()
        k._round_advanced()

    @property
    def _pending(self) -> bool:
        return (
            self.pend_report is not None
            or self.pend_misc is not None
            or self.pend_ann is not None
        )

    # -- stage A: the INITIATE/ANNOUNCE flood ------------------------------

    def _initiate_block(
        self, em: _Emits, ids: np.ndarray, srcs: np.ndarray | None, fids: np.ndarray, phase: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Process one flood front (``srcs is None`` = the leader wake).

        Applies ``_wake_initiate``/``_on_initiate`` state transitions for
        every node in ``ids`` (ascending, each visited once per phase),
        emits its ANNOUNCE (on fragment-id change) followed by one
        INITIATE per child in ascending order, and returns the next
        front ``(child ids, their parents, propagated fids)``.
        """
        changed = self.fid[ids] != fids
        self.fid[ids] = fids
        self.cur_phase[ids] = phase
        if srcs is None:
            self.parent[ids] = -1
        else:
            self.leader[ids] = False
            self.parent[ids] = srcs
            self.parent_dist[ids] = self._dist(ids, srcs)
        # Children: the sorted tree row minus the parent edge.
        starts = self.t_indptr[ids]
        ends = self.t_indptr[ids + 1]
        cnt = ends - starts
        idx = _concat_ranges(starts, ends)
        nbr = self.t_adj[idx]
        seg = np.repeat(np.arange(len(ids), dtype=np.int64), cnt)
        if srcs is None:
            childmask = np.ones(len(nbr), dtype=bool)
            self.n_children[ids] = cnt
        else:
            childmask = nbr != srcs[seg]
            self.n_children[ids] = cnt - 1
        ch = nbr[childmask]
        chseg = seg[childmask]
        # Emissions: per node, ANNOUNCE (intra 0) then INITIATEs in row
        # order (intra 1 + position in row — gaps where the parent sat
        # do not disturb the ordering).
        aids = ids[changed]
        em.add_chunk(
            aids,
            np.zeros(len(aids), dtype=np.int64),
            np.zeros(len(aids), dtype=np.int64),
            aids,
            np.full(len(aids), _ANNOUNCE, dtype=np.int64),
            np.full(len(aids), self.r),
            np.full(len(aids), -1, dtype=np.int64),
            p2=fids[changed],
        )
        pos = idx - np.repeat(starts, cnt)  # position within the CSR row
        snd = ids[chseg]
        em.add_chunk(
            snd,
            np.zeros(len(snd), dtype=np.int64),
            1 + pos[childmask],
            snd,
            np.full(len(snd), _INITIATE, dtype=np.int64),
            self._dist(snd, ch),
            ch,
        )
        return ch, snd, fids[chseg]

    def _stage_a(self, phase: int, leaders: np.ndarray) -> np.ndarray:
        """Wake the leaders, run the flood to quiescence; returns participants."""
        em = _Emits()
        front = self._initiate_block(em, leaders, None, leaders, phase)
        self._finalize(em)  # wake block: charged now, delivered next round
        parts = [leaders]
        while True:
            dsts, srcs, fids = front
            if len(dsts) == 0 and self.pend_ann is None:
                break
            delivered = self._apply_announces()
            em = _Emits()
            if len(dsts):
                delivered += len(dsts)
                order = np.argsort(dsts)
                dsts, srcs, fids = dsts[order], srcs[order], fids[order]
                parts.append(dsts)
                front = self._initiate_block(em, dsts, srcs, fids, phase)
            else:
                front = dsts, srcs, fids
            self._finalize(em)
            self._end_round(delivered)
        if len(parts) == 1:
            return leaders
        return np.sort(np.concatenate(parts))

    # -- stage B: MOE search, converge-cast, merging -----------------------

    def _complete(self, em: _Emits, ids: np.ndarray, k1, k2) -> None:
        """``_try_report`` firing for ``ids``: decide final key, report or act.

        ``k1``/``k2`` are the trigger-key columns (wake rank / recipient
        and triggering seq) for any emissions.  Leaders are handled
        scalar (they route CONNECT/CHANGEROOT and may halt).
        """
        if len(ids) <= 16:
            k1a = np.asarray(k1)
            k2a = np.asarray(k2)
            for i, u in enumerate(np.asarray(ids).tolist()):
                self._complete_one(em, u, int(k1a[i]), int(k2a[i]))
            return
        self.reported[ids] = True
        cd, bd = self.cand_d[ids], self.best_d[ids]
        clo, blo = self.cand_lo[ids], self.best_lo[ids]
        chi, bhi = self.cand_hi[ids], self.best_hi[ids]
        le = (cd < bd) | (
            (cd == bd) & ((clo < blo) | ((clo == blo) & (chi <= bhi)))
        )
        self.final_d[ids] = np.where(le, cd, bd)
        self.final_lo[ids] = np.where(le, clo, blo)
        self.final_hi[ids] = np.where(le, chi, bhi)
        self.final_from[ids] = np.where(le, -1, self.best_child[ids])
        pmask = self.parent[ids] >= 0
        rep = ids[pmask]
        em.add_chunk(
            np.asarray(k1)[pmask],
            np.asarray(k2)[pmask],
            np.zeros(len(rep), dtype=np.int64),
            rep,
            np.full(len(rep), _REPORT, dtype=np.int64),
            self.parent_dist[rep],
            self.parent[rep],
            pf=self.final_d[rep],
            p1=self.final_lo[rep],
            p2=self.final_hi[rep],
        )
        lead = ids[~pmask]
        if len(lead):
            lk1 = np.asarray(k1)[~pmask].tolist()
            lk2 = np.asarray(k2)[~pmask].tolist()
            for i, u in enumerate(lead.tolist()):
                if self.final_d[u] == _INF:
                    self.halted[u] = True  # no outgoing edge: fragment final
                    continue
                self.leader[u] = False  # re-established at the core
                self._route(em, u, lk1[i], lk2[i])

    def _complete_one(self, em: _Emits, u: int, k1: int, k2: int) -> None:
        """Scalar ``_complete`` for one node — same decision, no arrays."""
        self.reported[u] = True
        cd, bd = float(self.cand_d[u]), float(self.best_d[u])
        clo, blo = int(self.cand_lo[u]), int(self.best_lo[u])
        chi, bhi = int(self.cand_hi[u]), int(self.best_hi[u])
        if cd < bd or (cd == bd and (clo < blo or (clo == blo and chi <= bhi))):
            fd, flo, fhi, ffrom = cd, clo, chi, -1
        else:
            fd, flo, fhi, ffrom = bd, blo, bhi, int(self.best_child[u])
        self.final_d[u] = fd
        self.final_lo[u] = flo
        self.final_hi[u] = fhi
        self.final_from[u] = ffrom
        p = int(self.parent[u])
        if p >= 0:
            em.add(
                k1, k2, 0, u, _REPORT, float(self.parent_dist[u]), p,
                pf=fd, p1=flo, p2=fhi,
            )
        elif fd == _INF:
            self.halted[u] = True  # no outgoing edge: fragment final
        else:
            self.leader[u] = False  # re-established at the core
            self._route(em, u, k1, k2)

    def _route(self, em: _Emits, u: int, k1: int, k2: int) -> None:
        """``_route_connect``: connect over the candidate or pass the baton."""
        fr = int(self.final_from[u])
        if fr < 0:
            nb = int(self.cand_nb[u])
            if nb < 0:
                raise ProtocolError(f"node {u}: CHANGEROOT with no candidate")
            self.sent_connect_to[u] = nb
            self._add_edge(u, nb)
            em.add(k1, k2, 0, u, _CONNECT, float(self.cand_d[u]), nb, p2=int(self.fid[u]))
            # The reciprocal CONNECT may already have arrived this phase.
            if u > nb and nb in self.connects_in.get(u, ()):
                self.leader[u] = True
        else:
            em.add(k1, k2, 0, u, _CHANGEROOT, self._dist1(u, fr), fr)

    def _stage_b_wake(self, phase: int, parts: np.ndarray) -> None:
        """Batched MOE search + ``apply_moe`` for every participant."""
        cand, kdist, klo, khi = self.cache.moe_batch(parts, self.fid[parts])
        self.cand_nb[parts] = cand
        self.cand_d[parts] = kdist
        self.cand_lo[parts] = klo
        self.cand_hi[parts] = khi
        em = _Emits()
        # Childless participants complete immediately, in wake order
        # (ascending ids — the same order the driver applies MOEs).
        ready = parts[self.n_children[parts] == 0]
        self._complete(em, ready, ready, np.zeros(len(ready), dtype=np.int64))
        self._finalize(em)

    def _proc_reports(self, em: _Emits, pend: tuple) -> int:
        """One round's REPORT deliveries: segment counts + segment-min."""
        dst, seq, src, d, lo, hi = pend
        if not isinstance(dst, np.ndarray) or len(dst) <= 16:
            return self._proc_reports_scalar(em, pend)
        uds, first = np.unique(dst, return_index=True)
        cnt = np.diff(np.append(first, len(dst)))
        self.reports_recv[uds] += cnt
        # Per-recipient lexicographic min over (d, lo, hi): sort by
        # (dst, d, lo, hi) and take each group's first row.
        ord3 = np.lexsort((hi, lo, d, dst))
        ds = dst[ord3]
        lead_row = np.empty(len(ds), dtype=bool)
        lead_row[0] = True
        lead_row[1:] = ds[1:] != ds[:-1]
        mi = ord3[lead_row]  # one per unique dst, ascending
        nd_d, nd_lo, nd_hi = d[mi], lo[mi], hi[mi]
        bd, blo, bhi = self.best_d[uds], self.best_lo[uds], self.best_hi[uds]
        lt = (nd_d < bd) | (
            (nd_d == bd) & ((nd_lo < blo) | ((nd_lo == blo) & (nd_hi < bhi)))
        )
        upd = uds[lt]
        self.best_d[upd] = nd_d[lt]
        self.best_lo[upd] = nd_lo[lt]
        self.best_hi[upd] = nd_hi[lt]
        self.best_child[upd] = src[mi[lt]]
        # Completions fire on the last report (children report exactly
        # once per phase, so the count reaches len(children) on this
        # round's final delivery — deliveries are (dst, seq)-sorted).
        comp = (~self.reported[uds]) & (
            self.reports_recv[uds] >= self.n_children[uds]
        )
        ids = uds[comp]
        last_seq = seq[first + cnt - 1]
        self._complete(em, ids, ids, last_seq[comp])
        return len(dst)

    def _proc_reports_scalar(self, em: _Emits, pend: tuple) -> int:
        """Per-delivery REPORT processing, already (recipient, seq)-sorted.

        Sequential strict-less-than updates pick the same best as the
        array path's stable segment-min (first row among equal keys),
        and a node's count fills exactly at its last delivery — children
        report once per phase — so the completion trigger seq matches
        the array path's ``last_seq``.
        """
        dst, seq, src, d, lo, hi = pend
        recv = self.reports_recv
        for i in range(len(dst)):
            u = int(dst[i])
            recv[u] += 1
            nd_d, nd_lo, nd_hi = float(d[i]), int(lo[i]), int(hi[i])
            bd, blo = float(self.best_d[u]), int(self.best_lo[u])
            bhi = int(self.best_hi[u])
            if nd_d < bd or (
                nd_d == bd and (nd_lo < blo or (nd_lo == blo and nd_hi < bhi))
            ):
                self.best_d[u] = nd_d
                self.best_lo[u] = nd_lo
                self.best_hi[u] = nd_hi
                self.best_child[u] = int(src[i])
            if not self.reported[u] and recv[u] >= self.n_children[u]:
                self._complete_one(em, u, u, int(seq[i]))
        return len(dst)

    def _proc_misc(self, em: _Emits, pend: tuple) -> int:
        """One round's CONNECT/CHANGEROOT/ABSORB deliveries, scalar.

        These kinds are O(fragments) per phase; processing them one by
        one in ``(recipient, seq)`` order reproduces the per-message
        kernel's same-round interleavings (a CONNECT and an ABSORB
        reaching one node in the same round are order-sensitive: the
        ABSORB's forward set depends on whether the CONNECT's tree edge
        landed first).
        """
        dst, seq, src, kind, p2 = pend
        fid = self.fid
        for i in range(len(dst)):
            u, s, kd = int(dst[i]), int(src[i]), int(kind[i])
            q = int(seq[i])
            if kd == _CONNECT:
                self._add_edge(u, s)
                if self.passive[u]:
                    # Giant (or already-absorbed) side: accept and absorb.
                    em.add(u, q, 0, u, _ABSORB, self._dist1(u, s), s, p2=int(fid[u]))
                    continue
                self.connects_in.setdefault(u, set()).add(s)
                if self.sent_connect_to[u] == s and u > s:
                    self.leader[u] = True  # core edge; higher id leads
            elif kd == _CHANGEROOT:
                self._route(em, u, u, q)
            else:  # ABSORB
                pfid = int(p2[i])
                if self.passive[u] and fid[u] == pfid:
                    continue  # already absorbed into this giant
                fid[u] = pfid
                self.passive[u] = True
                self.leader[u] = False
                self.halted[u] = True
                em.add(u, q, 0, u, _ANNOUNCE, self.r, -1, p2=pfid)
                row = self._tree_row(u)
                for j, e in enumerate(row):
                    if e != s:
                        em.add(u, q, 1 + j, u, _ABSORB, self._dist1(u, e), e, p2=pfid)
        return len(dst)

    def _stage_b_rounds(self) -> None:
        while self._pending:
            rep, misc = self.pend_report, self.pend_misc
            self.pend_report = self.pend_misc = None
            delivered = self._apply_announces()
            em = _Emits()
            if rep is not None:
                delivered += self._proc_reports(em, rep)
            if misc is not None:
                delivered += self._proc_misc(em, misc)
            self._finalize(em)
            self._end_round(delivered)

    # -- the phase loop ----------------------------------------------------

    def _reset_phase_arrays(self) -> None:
        self.reports_recv.fill(0)
        self.reported.fill(False)
        self.best_d.fill(_INF)
        self.best_lo.fill(-1)
        self.best_hi.fill(-1)
        self.best_child.fill(-1)
        self.cand_nb.fill(-1)
        self.cand_d.fill(_INF)
        self.cand_lo.fill(-1)
        self.cand_hi.fill(-1)
        self.final_d.fill(_INF)
        self.final_lo.fill(-1)
        self.final_hi.fill(-1)
        self.final_from.fill(-1)
        self.sent_connect_to.fill(-1)
        self.connects_in = {}
        self.extras = {} if bool(self.passive.any()) else None

    def run(self, start_phase: int, max_phases: int) -> int:
        """The ``run_ghs_phases`` loop as array programs; returns phases run."""
        self.k._flush_charges()
        phase = start_phase - 1
        executed = 0
        try:
            while True:
                leaders = np.flatnonzero(self.leader & ~self.halted & ~self.passive)
                if len(leaders) == 0:
                    return executed
                phase += 1
                executed += 1
                if executed > max_phases:
                    raise ProtocolError(
                        f"GHS did not terminate within {max_phases} phases "
                        f"({len(leaders)} active fragments remain)"
                    )
                if trace.enabled:
                    trace.emit(
                        "phase_start",
                        phase=phase,
                        round=self.k.rounds,
                        active=len(leaders),
                    )
                self._build_tree_csr()
                self._reset_phase_arrays()
                parts = self._stage_a(phase, leaders)
                self._stage_b_wake(phase, parts)
                self._stage_b_rounds()
                if trace.enabled:
                    uniq, sizes = np.unique(self.fid, return_counts=True)
                    hist: dict[int, int] = {}
                    for s in sizes.tolist():
                        hist[s] = hist.get(s, 0) + 1
                    trace.emit(
                        "phase_end",
                        phase=phase,
                        round=self.k.rounds,
                        fragments=len(uniq),
                        sizes=[[s, c] for s, c in sorted(hist.items())],
                    )
        finally:
            self._sync_out()

    def _sync_out(self) -> None:
        """Write protocol state back to the node objects.

        ``children`` comes from the final tree: a fragment halts in a
        phase whose INITIATE flood covered its whole (final) tree, so
        each non-passive node's last-set children are exactly its sorted
        tree row minus its parent.  Passive nodes keep their pre-engine
        ``children`` — nothing downstream reads them (the EOPT census
        runs between steps, when no node is passive yet).
        """
        self._build_tree_csr()
        fid = self.fid.tolist()
        leader = self.leader.tolist()
        halted = self.halted.tolist()
        passive = self.passive.tolist()
        parent = self.parent.tolist()
        cur_phase = self.cur_phase.tolist()
        indptr = self.t_indptr.tolist()
        adj = self.t_adj.tolist()
        for i, nd in enumerate(self.nodes):
            nd.fid = fid[i]
            nd.leader = leader[i]
            nd.halted = halted[i]
            nd.passive = passive[i]
            nd.cur_phase = cur_phase[i]
            p = parent[i]
            nd.parent = None if p < 0 else p
            row = adj[indptr[i] : indptr[i + 1]]
            nd.tree_edges = set(row)
            if not passive[i]:
                nd.children = tuple(e for e in row if e != p)


def run_phases_turbo(
    kernel,
    nodes: Sequence[GHSNode],
    *,
    start_phase: int,
    max_phases: int,
) -> int | None:
    """Run the phase loop on the turbo engine if eligible, else ``None``."""
    eng = turbo_phase_engine(kernel, nodes)
    if eng is None:
        return None
    return eng.run(start_phase, max_phases)
