"""The GHS-family node state machine.

One phase of the (synchronous, Borůvka-style) algorithm, as described in
Sec. V-A of the paper:

1. **INITIATE** — the fragment leader floods ``INITIATE(fid, phase)`` down
   the fragment tree; every member (re)learns the fragment id, its parent
   and children.  In modified mode, a member whose id changed broadcasts
   ``ANNOUNCE(fid)`` so neighbours refresh their caches.
2. **MOE search** — each member finds its minimum outgoing edge:
   *original* mode probes incident edges in increasing weight order with
   ``TEST``/``ACCEPT``/``REJECT`` (a rejected edge — same fragment — is
   marked dead on both sides forever); *modified* mode just scans its
   neighbour cache.
3. **REPORT** — candidates converge up the tree; each node forwards the
   minimum of its own candidate and its children's reports.
4. **CHANGEROOT / CONNECT** — the leader routes authority to the node
   adjacent to the fragment MOE, which sends ``CONNECT`` over it.  Both
   endpoints add the edge to their tree.
5. **Merge** — fragments linked by CONNECTs merge.  With distinct edge
   weights every merge cluster contains exactly one reciprocal CONNECT
   pair (the *core*); the core endpoint with the larger id becomes the new
   leader and starts the next phase.

EOPT's step 2 adds the **passive giant** (Sec. V): a passive node answers a
``CONNECT`` with ``ABSORB(fid)``, and the absorbed fragment floods the
giant's id through its tree (its members change ids and, in modified mode,
announce — "small fragments change their ids" so the giant never does).

Edge weights are compared by the globally consistent key
``(distance, min_id, max_id)``, so every fragment has a *unique* MOE and
Borůvka merging is well-defined even under (measure-zero) distance ties.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ProtocolError
from repro.sim.faults import RetryBuffer
from repro.sim.message import Message
from repro.sim.node import NodeProcess

#: Sentinel edge key meaning "no outgoing edge".
NO_EDGE: tuple[float, int, int] = (math.inf, -1, -1)

#: Kinds that bypass the reliable layer: floods are repaired by
#: re-flooding (driver ``rehello``), and ACKs acknowledging ACKs would
#: never terminate.
_UNRELIABLE_KINDS = frozenset(("HELLO", "ANNOUNCE", "ACK"))


class GHSNode(NodeProcess):
    """One processor running the GHS-family protocol."""

    __slots__ = (
        # configuration
        "use_tests",
        "announce",
        "radio_radius",
        "reliable",
        "retry",
        # durable knowledge
        "neighbors",      # id -> distance (learned from HELLO/ANNOUNCE deliveries)
        "nb_fragment",    # id -> fragment id (modified mode caches)
        # flood-cache views (plane fast path; None = dict mode)
        "cache",          # shared FloodCache, or None
        "nb_ids",         # this node's CSR row: neighbor ids (by distance)
        "nb_dist",        # ... their distances
        "nb_fid",         # ... last-heard fragment ids (-1 = never)
        "nb_known",       # ... heard-from bits (dict membership)
        "nb_lo",          # ... min(self.id, nb) per slot
        "nb_hi",          # ... max(self.id, nb) per slot
        "fid",
        "leader",
        "halted",
        "passive",
        "is_giant",
        "parent",
        "children",
        "tree_edges",
        "rejected",
        "cur_phase",
        "fragment_size",
        # per-phase scratch
        "_reports_recv",
        "_search_done",
        "_reported",
        "_cand_nb",
        "_cand_key",
        "_best_key",
        "_best_child",
        "_final_key",
        "_final_from",
        "_test_queue",
        "_test_idx",
        "_sent_connect_to",
        "_connects_in",
        "_phase_tree",
        # size census scratch
        "_size_pending",
        "_size_acc",
    )

    def __init__(
        self, node_id, ctx, *, use_tests: bool, announce: bool, reliable: bool = False
    ) -> None:
        super().__init__(node_id, ctx)
        self.use_tests = use_tests
        self.announce = announce
        # Reliable mode wraps every protocol unicast in the RetryBuffer's
        # seq/ACK/dedup envelope (fault recovery); off by default so the
        # fault-free message trace stays bit-identical to the paper model.
        self.reliable = reliable
        self.retry = RetryBuffer(ctx) if reliable else None
        self.radio_radius = 0.0
        self.neighbors: dict[int, float] = {}
        self.nb_fragment: dict[int, int] = {}
        self.cache = None
        self.nb_ids = self.nb_dist = self.nb_fid = None
        self.nb_known = self.nb_lo = self.nb_hi = None
        self.fid = node_id
        self.leader = True
        self.halted = False
        self.passive = False
        self.is_giant = False
        self.parent: int | None = None
        self.children: tuple[int, ...] = ()
        self.tree_edges: set[int] = set()
        self.rejected: set[int] = set()
        self.cur_phase = 0
        self.fragment_size: int | None = None
        self._reset_phase(0)
        self._size_pending = 0
        self._size_acc = 0

    # ------------------------------------------------------------------ utils

    def _edge_key(self, nb: int, dist: float) -> tuple[float, int, int]:
        """Globally consistent comparison key for the edge (self, nb)."""
        if self.id < nb:
            return (dist, self.id, nb)
        return (dist, nb, self.id)

    def _reset_phase(self, phase: int) -> None:
        self.cur_phase = phase
        self._reports_recv = 0
        self._search_done = False
        self._reported = False
        self._cand_nb: int | None = None
        self._cand_key = NO_EDGE
        self._best_key = NO_EDGE
        self._best_child: int | None = None
        self._final_key = NO_EDGE
        self._final_from: int | None = None
        self._test_queue: list[int] = []
        self._test_idx = 0
        self._sent_connect_to: int | None = None
        self._connects_in: set[int] = set()
        # Snapshot of the fragment tree at phase start.  Edge probing must
        # exclude *these* (known intra-fragment) edges, not the live
        # ``tree_edges``: a CONNECT arriving mid-phase adds an edge that is
        # still outgoing w.r.t. the phase-start partition, and skipping it
        # would make this node under-report its minimum outgoing edge
        # (two fragments could then join over two different edges — a cycle).
        self._phase_tree: frozenset[int] = frozenset(self.tree_edges)

    def attach_cache(self, cache) -> None:
        """Bind (or clear, with ``None``) the shared flood cache's views.

        In cache mode the ``neighbors``/``nb_fragment`` dicts go unused:
        neighbour knowledge lives in the table-aligned numpy views and is
        refreshed by the next HELLO flood.  Rebinding at every hello
        round is equivalent to keeping the dicts because the power cap
        never *lowers* and a full hello refreshes every in-range entry.
        """
        self.cache = cache
        if cache is None:
            self.nb_ids = self.nb_dist = self.nb_fid = None
            self.nb_known = self.nb_lo = self.nb_hi = None
        else:
            cache.attach(self)

    def _cache_slot(self, nb: int) -> int:
        slots = np.flatnonzero(self.nb_ids == nb)
        if len(slots) == 0:
            raise ProtocolError(
                f"node {self.id}: flood cache has no slot for neighbor {nb} "
                "(stale cache after a power-cap change?)"
            )
        return int(slots[0])

    def _cache_learn(self, src: int, fid: int) -> None:
        """Per-message HELLO/ANNOUNCE in cache mode (plane fallback path)."""
        j = self._cache_slot(src)
        self.nb_fid[j] = fid
        self.nb_known[j] = True

    def _dist_to(self, nb: int) -> float:
        """Distance to a heard-from neighbour, whichever cache is live."""
        if self.cache is None:
            return self.neighbors[nb]
        return float(self.nb_dist[self._cache_slot(nb)])

    def fragment_cache_items(self):
        """(neighbor id, cached fragment id) pairs, mode-agnostic (audit)."""
        if self.cache is None:
            return self.nb_fragment.items()
        k = self.nb_known
        return zip(self.nb_ids[k].tolist(), self.nb_fid[k].tolist())

    def _maybe_announce(self, changed: bool) -> None:
        if changed and self.announce:
            r = self.radio_radius
            if self.cache is None or not self.ctx.plane_broadcast(r, "ANNOUNCE", self.fid):
                self.ctx.local_broadcast(r, "ANNOUNCE", self.fid)

    def _send(self, dst: int, kind: str, *payload) -> None:
        """Protocol unicast, routed through the reliable layer if enabled."""
        if self.reliable and kind not in _UNRELIABLE_KINDS:
            self.retry.send(dst, kind, payload)
        else:
            self.ctx.unicast(dst, kind, *payload)

    # ------------------------------------------------------------- wake hooks

    def on_wake(self, signal: str, payload: tuple = ()) -> None:
        if signal == "hello":
            (radius,) = payload
            self.radio_radius = float(radius)
            r = self.radio_radius
            if self.cache is None or not self.ctx.plane_broadcast(r, "HELLO", self.fid):
                self.ctx.local_broadcast(r, "HELLO", self.fid)
        elif signal == "initiate":
            (phase,) = payload
            self._wake_initiate(int(phase))
        elif signal == "find_moe":
            (phase,) = payload
            if self.cur_phase == phase and not self.passive:
                self._start_search()
        elif signal == "size":
            self._wake_size()
        elif signal == "declare_giant":
            self._wake_declare_giant()
        elif signal == "activate":
            self.halted = False
        elif signal == "retry_tick":
            if self.retry is not None:
                self.retry.tick()
        elif signal == "rehello":
            # Recovery re-flood: same HELLO the node would send on "hello",
            # at the radius the driver already assigned.
            r = self.radio_radius
            if self.cache is None or not self.ctx.plane_broadcast(r, "HELLO", self.fid):
                self.ctx.local_broadcast(r, "HELLO", self.fid)
        else:
            raise ProtocolError(f"unknown wake signal {signal!r}")

    def _wake_initiate(self, phase: int) -> None:
        if not self.leader or self.halted or self.passive:
            raise ProtocolError(f"node {self.id} woken to initiate but not an active leader")
        changed = self.fid != self.id
        self.fid = self.id  # a fragment is identified by its leader's id
        self._reset_phase(phase)
        self.parent = None
        # Sorted, not set order: the send sequence must be a pure function
        # of protocol state so the turbo engine's array programs can
        # reproduce it (set iteration order is an implementation detail).
        self.children = tuple(sorted(self.tree_edges))
        self._maybe_announce(changed)
        for c in self.children:
            self._send(c, "INITIATE", self.fid, phase)

    def _wake_size(self) -> None:
        if not self.leader:
            raise ProtocolError(f"node {self.id} woken for size census but not a leader")
        self._size_pending = len(self.children)
        self._size_acc = 1
        if self._size_pending == 0:
            self.fragment_size = 1
        else:
            for c in self.children:
                self._send(c, "SIZE_REQ")

    def _wake_declare_giant(self) -> None:
        self.passive = True
        self.is_giant = True
        self.halted = True
        for e in sorted(self.tree_edges):
            self._send(e, "GIANT")

    # --------------------------------------------------------- message hooks

    def on_message(self, msg: Message, distance: float) -> None:
        kind = msg.kind
        src = msg.src
        payload = msg.payload
        if self.reliable and kind not in _UNRELIABLE_KINDS:
            # Reliable envelope: payload[0] is the sender's sequence
            # number.  ACK every copy (the sender may be retransmitting
            # because our previous ACK was lost), process only the first.
            seq = payload[0]
            self.ctx.unicast(src, "ACK", seq)
            if not self.retry.accept(src, seq):
                return
            payload = payload[1:]
        elif kind == "ACK":
            if self.retry is None:
                raise ProtocolError(f"node {self.id}: ACK received in unreliable mode")
            self.retry.on_ack(src, payload[0])
            return
        self._dispatch(kind, src, payload, distance)

    def _dispatch(self, kind: str, src: int, payload: tuple, distance: float) -> None:
        if kind == "HELLO":
            if self.cache is not None:
                self._cache_learn(src, payload[0])
            else:
                self.neighbors[src] = distance
                self.nb_fragment[src] = payload[0]
        elif kind == "ANNOUNCE":
            if self.cache is not None:
                self._cache_learn(src, payload[0])
            else:
                self.neighbors.setdefault(src, distance)
                self.nb_fragment[src] = payload[0]
        elif kind == "INITIATE":
            fid, phase = payload
            self._on_initiate(src, fid, phase)
        elif kind == "TEST":
            (fid,) = payload
            if fid != self.fid:
                self._send(src, "ACCEPT")
            else:
                self.rejected.add(src)  # same fragment forever
                self._send(src, "REJECT")
        elif kind == "ACCEPT":
            self._cand_nb = src
            self._cand_key = self._edge_key(src, self._dist_to(src))
            self._search_done = True
            self._try_report()
        elif kind == "REJECT":
            self.rejected.add(src)
            self._continue_tests()
        elif kind == "REPORT":
            d, lo, hi = payload
            self._reports_recv += 1
            key = (d, lo, hi)
            if key < self._best_key:
                self._best_key = key
                self._best_child = src
            self._try_report()
        elif kind == "CHANGEROOT":
            self._route_connect()
        elif kind == "CONNECT":
            self._on_connect(src)
        elif kind == "ABSORB":
            (fid,) = payload
            self._on_absorb(src, fid)
        elif kind == "SIZE_REQ":
            self._on_size_req(src)
        elif kind == "SIZE_RESP":
            (count,) = payload
            self._on_size_resp(count)
        elif kind == "GIANT":
            self._on_giant(src)
        else:
            raise ProtocolError(f"node {self.id}: unknown message kind {kind!r}")

    # -- phase stage A: initiate flood ---------------------------------------

    def _on_initiate(self, src: int, fid: int, phase: int) -> None:
        self.leader = False
        changed = fid != self.fid
        self.fid = fid
        self._reset_phase(phase)
        self.parent = src
        # Sorted for the same reason as _wake_initiate: deterministic
        # send order independent of set iteration order.
        self.children = tuple(sorted(e for e in self.tree_edges if e != src))
        self._maybe_announce(changed)
        for c in self.children:
            self._send(c, "INITIATE", fid, phase)

    # -- phase stage B: MOE search -------------------------------------------

    def _start_search(self) -> None:
        if self.use_tests:
            if self.cache is not None:
                k = self.nb_known
                pairs = zip(self.nb_ids[k].tolist(), self.nb_dist[k].tolist())
                # Edge keys are unique, so sorting (key, nb) pairs gives
                # the same queue order as the dict path's stable sort.
                keyed = [
                    (self._edge_key(nb, d), nb)
                    for nb, d in pairs
                    if nb not in self._phase_tree and nb not in self.rejected
                ]
                keyed.sort()
                cands = [nb for _, nb in keyed]
            else:
                cands = [
                    nb
                    for nb in self.neighbors
                    if nb not in self._phase_tree and nb not in self.rejected
                ]
                cands.sort(key=lambda nb: self._edge_key(nb, self.neighbors[nb]))
            self._test_queue = cands
            self._test_idx = 0
            self._continue_tests()
        elif self.cache is not None:
            # Masked argmin over the CSR row (driver-batched runs go
            # through FloodCache.moe_batch + apply_moe instead).
            self._cand_nb, self._cand_key = self._search_cache()
            self._search_done = True
            self._try_report()
        else:
            best_nb, best_key = None, NO_EDGE
            fid = self.fid
            me = self.id
            neighbors = self.neighbors
            for nb, nb_fid in self.nb_fragment.items():
                if nb_fid == fid:
                    continue
                # Inlined _edge_key: this scan runs once per node per phase
                # over the whole neighbour cache — the algorithm-side hot loop.
                d = neighbors[nb]
                key = (d, me, nb) if me < nb else (d, nb, me)
                if key < best_key:
                    best_key, best_nb = key, nb
            self._cand_nb = best_nb
            self._cand_key = best_key
            self._search_done = True
            self._try_report()

    def _search_cache(self) -> tuple[int | None, tuple[float, int, int]]:
        """Modified-mode MOE from the flood-cache views (one node)."""
        mask = self.nb_known & (self.nb_fid != self.fid)
        if not mask.any():
            return None, NO_EDGE
        d = np.where(mask, self.nb_dist, math.inf)
        j = int(np.argmin(d))
        ties = np.flatnonzero(d == d[j])
        if len(ties) > 1:
            # Measure-zero distance tie: the (lo, hi) key decides.
            j = int(ties[np.lexsort((self.nb_hi[ties], self.nb_lo[ties]))[0]])
        return int(self.nb_ids[j]), (
            float(d[j]),
            int(self.nb_lo[j]),
            int(self.nb_hi[j]),
        )

    def apply_moe(self, nb: int, dist: float, lo: int, hi: int) -> None:
        """Accept a driver-computed MOE (batched modified-mode search).

        ``nb < 0`` means no outgoing edge.  Equivalent to what
        ``find_moe`` + ``_search_cache`` would conclude locally, applied
        in the driver's wake order so report traffic is identical.
        """
        if nb < 0:
            self._cand_nb, self._cand_key = None, NO_EDGE
        else:
            self._cand_nb, self._cand_key = int(nb), (dist, int(lo), int(hi))
        self._search_done = True
        self._try_report()

    def _continue_tests(self) -> None:
        while self._test_idx < len(self._test_queue):
            nb = self._test_queue[self._test_idx]
            self._test_idx += 1
            if nb in self.rejected or nb in self._phase_tree:
                continue
            self._send(nb, "TEST", self.fid)
            return
        self._search_done = True
        self._try_report()

    # -- phase stage B: report convergecast ------------------------------------

    def _try_report(self) -> None:
        if self._reported or not self._search_done:
            return
        if self._reports_recv < len(self.children):
            return
        self._reported = True
        if self._cand_key <= self._best_key:
            self._final_key, self._final_from = self._cand_key, None
        else:
            self._final_key, self._final_from = self._best_key, self._best_child
        if self.parent is not None:
            d, lo, hi = self._final_key
            self._send(self.parent, "REPORT", d, lo, hi)
        else:
            # Leader decides for the fragment.
            if self._final_key == NO_EDGE:
                self.halted = True  # no outgoing edge: fragment is final
                return
            self.leader = False  # leadership is re-established at the core
            self._route_connect()

    def _route_connect(self) -> None:
        if self._final_from is None:
            nb = self._cand_nb
            if nb is None:
                raise ProtocolError(f"node {self.id}: CHANGEROOT with no candidate")
            self._sent_connect_to = nb
            self.tree_edges.add(nb)
            self._send(nb, "CONNECT", self.fid)
            # The reciprocal CONNECT may already have arrived this phase.
            if nb in self._connects_in and self.id > nb:
                self.leader = True
        else:
            self._send(self._final_from, "CHANGEROOT")

    # -- phase stage B: merging -------------------------------------------------

    def _on_connect(self, src: int) -> None:
        self.tree_edges.add(src)
        if self.passive:
            # Giant (or already-absorbed) side: accept and absorb (Sec. V).
            self._send(src, "ABSORB", self.fid)
            return
        self._connects_in.add(src)
        if self._sent_connect_to == src and self.id > src:
            self.leader = True  # this edge is the core; higher id leads

    def _on_absorb(self, src: int, fid: int) -> None:
        if self.passive and self.fid == fid:
            return  # already absorbed into this giant
        self.fid = fid
        self.passive = True
        self.leader = False
        self.halted = True
        self._maybe_announce(True)  # "small fragments change their ids"
        for e in sorted(self.tree_edges):
            if e != src:
                self._send(e, "ABSORB", fid)

    # -- size census (EOPT step 2 preamble) ---------------------------------------

    def _on_size_req(self, src: int) -> None:
        if not self.children:
            self._send(src, "SIZE_RESP", 1)
            return
        self._size_pending = len(self.children)
        self._size_acc = 1
        for c in self.children:
            self._send(c, "SIZE_REQ")

    def _on_size_resp(self, count: int) -> None:
        self._size_acc += count
        self._size_pending -= 1
        if self._size_pending == 0:
            if self.parent is None:
                self.fragment_size = self._size_acc
            else:
                self._send(self.parent, "SIZE_RESP", self._size_acc)

    def _on_giant(self, src: int) -> None:
        if self.passive:
            return
        self.passive = True
        self.is_giant = True
        self.leader = False
        for e in sorted(self.tree_edges):
            if e != src:
                self._send(e, "GIANT")
