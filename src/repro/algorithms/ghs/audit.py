"""Post-run consistency audit of GHS-family node states.

Tree equality against the centralized oracle proves the *output* right;
this auditor proves the *distributed state* right — the invariants that a
correct protocol must leave behind at quiescence:

* tree edges are symmetric (u lists v iff v lists u) and acyclic;
* every fragment (maximal tree-connected node set) has a uniform
  fragment id, and that id belongs to a member of the fragment;
* exactly one leader-or-passive root per fragment, and leaders are not
  simultaneously absorbed;
* parent/children orientation is internally consistent within the last
  initiated fragment tree;
* neighbour caches never hold a *wrong* "same fragment" claim (a cached
  fid equal to the node's own fid implies genuinely same fragment —
  staleness may hide merges, but must never invent them).

Tests run this after every protocol scenario; it is also handy when
developing protocol variants.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.ghs.node import GHSNode
from repro.ds.unionfind import UnionFind
from repro.errors import ProtocolError


def audit_ghs_state(nodes: Sequence[GHSNode], *, strict_fids: bool = True) -> dict:
    """Validate all invariants; returns summary stats, raises on violation.

    ``strict_fids=False`` relaxes the fragment-id uniformity checks for
    *mid-run* settle points (fault recovery audits between phases): right
    after a stage-B merge the members of a just-merged cluster still hold
    their pre-merge ids until the next INITIATE flood — by design, not by
    fault.  The safety-critical invariants (tree symmetry, acyclicity,
    leader uniqueness, orientation, no invented same-fragment claims)
    are checked in both modes.
    """
    n = len(nodes)

    # -- tree-edge symmetry and acyclicity ---------------------------------
    for nd in nodes:
        for v in nd.tree_edges:
            if nd.id not in nodes[v].tree_edges:
                raise ProtocolError(
                    f"asymmetric tree edge: {nd.id} lists {v} but not back"
                )
    uf = UnionFind(n)
    for nd in nodes:
        for v in nd.tree_edges:
            if nd.id < v:
                if not uf.union(nd.id, v):
                    raise ProtocolError(
                        f"cycle in tree edges at ({nd.id}, {v})"
                    )

    # -- fragment-id uniformity (final quiescence only) ---------------------
    if strict_fids:
        frag_fid: dict[int, int] = {}
        for nd in nodes:
            root = uf.find(nd.id)
            if root in frag_fid:
                if frag_fid[root] != nd.fid:
                    raise ProtocolError(
                        f"fragment of node {nd.id} has mixed ids "
                        f"{frag_fid[root]} and {nd.fid}"
                    )
            else:
                frag_fid[root] = nd.fid
        for root, fid in frag_fid.items():
            if not (0 <= fid < n) or uf.find(fid) != root:
                raise ProtocolError(
                    f"fragment id {fid} does not belong to its own fragment"
                )

    # -- leadership ------------------------------------------------------------
    leaders_per_fragment: dict[int, list[int]] = {}
    for nd in nodes:
        if nd.leader:
            leaders_per_fragment.setdefault(uf.find(nd.id), []).append(nd.id)
    for root, leaders in leaders_per_fragment.items():
        if len(leaders) > 1:
            raise ProtocolError(
                f"fragment {root} has multiple leaders: {leaders}"
            )

    # -- parent/children consistency (within current orientation) -----------
    for nd in nodes:
        for c in nd.children:
            child = nodes[c]
            if child.cur_phase == nd.cur_phase and child.parent != nd.id:
                raise ProtocolError(
                    f"node {c} is a child of {nd.id} but points at "
                    f"{child.parent}"
                )
        if nd.parent is not None and nd.parent not in nd.tree_edges:
            raise ProtocolError(
                f"node {nd.id} has parent {nd.parent} outside its tree edges"
            )

    # -- neighbour caches never invent same-fragment claims ------------------
    for nd in nodes:
        for v, cached_fid in nd.fragment_cache_items():
            if cached_fid == nd.fid and uf.find(v) != uf.find(nd.id):
                raise ProtocolError(
                    f"node {nd.id} cache claims {v} shares fragment id "
                    f"{cached_fid} but they are in different fragments"
                )

    fragments = {uf.find(i) for i in range(n)}
    return {
        "n_fragments": len(fragments),
        "n_leaders": sum(1 for nd in nodes if nd.leader),
        "n_passive": sum(1 for nd in nodes if nd.passive),
        "n_tree_edges": sum(len(nd.tree_edges) for nd in nodes) // 2,
    }


def audit_pending_retry(nodes: Sequence, *, kernel) -> int:
    """No node that could still act holds unacknowledged reliable traffic.

    The settle loops' postcondition, shared by :func:`audit_recovery` and
    the fuzzing worlds (``repro.fuzz``): at a settled barrier the only
    tolerated holders of pending :class:`~repro.sim.faults.RetryBuffer`
    entries are nodes that are gone forever — their traffic can never
    move again and is excluded from the drain condition by design.
    Returns the number of tolerated (gone-forever) pending messages.
    """
    fp = kernel.faults
    rnd = kernel.rounds
    tolerated = 0
    for nd in nodes:
        retry = getattr(nd, "retry", None)
        if retry is not None and retry.pending:
            if fp is None or not fp.gone_forever(nd.id, rnd):
                raise ProtocolError(
                    f"node {nd.id} still holds {len(retry.pending)} "
                    "unacknowledged reliable messages at a settle point"
                )
            tolerated += len(retry.pending)
    return tolerated


def audit_recovery(nodes: Sequence[GHSNode], *, kernel) -> dict:
    """Fragment-invariant safety check at a fault-recovery settle point.

    Runs the full :func:`audit_ghs_state` sweep plus the recovery-layer
    invariants a settled barrier must satisfy:

    * no node that could still act holds unacknowledged reliable traffic
      (:func:`audit_pending_retry` — the settle loop's job is to drain it);
    * a node that crashed at round 0 and never restarts took part in
      nothing: it holds no tree edges and no surviving node holds a tree
      edge to it (it was never heard, so it was never connected to).
    """
    summary = audit_ghs_state(nodes, strict_fids=False)
    fp = kernel.faults
    rnd = kernel.rounds
    audit_pending_retry(nodes, kernel=kernel)
    if fp is not None and fp.has_crashes:
        for nd in nodes:
            if fp.gone_forever(nd.id, rnd) and fp.crash_start(nd.id) == 0:
                if nd.tree_edges:
                    raise ProtocolError(
                        f"never-started node {nd.id} holds tree edges "
                        f"{sorted(nd.tree_edges)}"
                    )
                holders = [
                    o.id for o in nodes if nd.id in o.tree_edges
                ]
                if holders:
                    raise ProtocolError(
                        f"nodes {holders} hold tree edges to never-started "
                        f"node {nd.id}"
                    )
    return summary
