"""The GHS family: original GHS and the paper's modified GHS.

Both share one node state machine (:class:`~repro.algorithms.ghs.node.GHSNode`)
configured by two switches:

* ``use_tests`` — original GHS probes candidate edges with
  TEST/ACCEPT/REJECT exchanges (2 unicasts per probe, each edge rejected at
  most once over the whole run);
* ``announce`` — modified GHS instead maintains per-neighbour fragment-id
  caches via ANNOUNCE local broadcasts, making MOE search free (Sec. V-A).

The phase driver (:func:`~repro.algorithms.ghs.driver.run_ghs_phases`)
implements the synchronous Borůvka phase loop with quiescence barriers;
see DESIGN.md ("Substitutions") for why the barriers do not perturb the
energy/message accounting.
"""

from repro.algorithms.ghs.node import GHSNode, NO_EDGE
from repro.algorithms.ghs.driver import run_ghs_phases, active_leaders
from repro.algorithms.ghs.runner import run_ghs, run_modified_ghs
from repro.algorithms.ghs.audit import audit_ghs_state

__all__ = [
    "GHSNode",
    "NO_EDGE",
    "run_ghs_phases",
    "active_leaders",
    "run_ghs",
    "run_modified_ghs",
    "audit_ghs_state",
]
