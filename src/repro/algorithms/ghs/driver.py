"""The synchronous Borůvka phase driver for the GHS family.

A phase has two quiescence-separated stages (see DESIGN.md —
"Substitutions" — for why the barriers are accounting-neutral):

* **stage A** — active fragment leaders are woken with ``initiate``; the
  INITIATE floods (and, in modified mode, the ANNOUNCE refreshes) run to
  quiescence, so every node holds its current fragment id before anyone
  evaluates an edge;
* **stage B** — every node that joined this phase is woken with
  ``find_moe``; tests, reports, changeroot, connects and (step 2) absorb
  floods run to quiescence.

The loop ends when no active leader remains: every fragment either halted
(no outgoing edge — it spans its whole component) or was absorbed into the
passive giant.

**Fault recovery.**  Under an injected fault plane (``repro.sim.faults``)
the same barriers become *recovery* points: :class:`GHSRecovery` replaces
each ``run_until_quiescent`` with a settle loop that (1) drives the
nodes' reliable-unicast retransmissions (``retry_tick`` wakes, capped
exponential backoff), (2) re-floods HELLO/ANNOUNCE slots that a receiver
is missing or holds stale (``rehello`` wakes — floods carry no sequence
numbers, so re-flooding *is* their retransmission), (3) re-wakes
``find_moe`` for participants whose wake was swallowed by a crash
window, and (4) idles the round clock (``kernel.tick``) while every
remaining repair waits on a crash window to expire.  Transient crashes
(pause/restart) and never-started nodes (crashed from round 0, forever)
recover to the exact MST of the surviving topology; a node that
participates and *then* crashes forever is reported as a
:class:`~repro.errors.ProtocolError` (by retry exhaustion, settle
non-convergence, or the explicit leader check) — never as a silently
wrong tree.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.algorithms.ghs.node import GHSNode
from repro.algorithms.ghs.plane import FloodCache
from repro.sim.kernel import SynchronousKernel
from repro.trace import trace


def active_leaders(nodes: Sequence[GHSNode]) -> list[int]:
    """Ids of leaders of fragments that still participate in phases."""
    return [nd.id for nd in nodes if nd.leader and not nd.halted and not nd.passive]


def fragment_histogram(nodes: Sequence[GHSNode]) -> tuple[int, list[list[int]]]:
    """``(fragment count, [[size, fragments of that size], ...])``.

    The size histogram is sorted ascending by size — the per-phase series
    the paper's Thm 5.2 argument reasons about (after EOPT's step 1 it
    must show one giant entry plus only small ones).  Lists, not tuples,
    so a recorded event is bit-equal to its own JSONL round trip.
    """
    by_fid = Counter(nd.fid for nd in nodes)
    sizes = Counter(by_fid.values())
    return len(by_fid), [[s, c] for s, c in sorted(sizes.items())]


class GHSRecovery:
    """Driver-side settle/repair loop for GHS-family runs under faults.

    One instance is shared by :func:`hello_round` and
    :func:`run_ghs_phases` for a run; it owns no protocol state, only
    repair bookkeeping (the current flood radius and a per-radius
    neighbour-pair cache for dict-mode repair).

    ``verify_fids`` selects the staleness criterion for flood repair:
    modified-mode runs (no TEST probes) require every in-range cache
    entry to hold the sender's *current* fragment id — a stale id could
    invent an outgoing edge inside a fragment, and two fragments joining
    over two different edges is a cycle.  Original GHS only needs
    *existence* (id + distance); fragment membership is established by
    TEST/ACCEPT at probe time.
    """

    __slots__ = ("kernel", "nodes", "verify_fids", "audit_every", "max_iters", "_radius", "_pairs")

    def __init__(
        self,
        kernel: SynchronousKernel,
        nodes: Sequence[GHSNode],
        *,
        verify_fids: bool,
        audit: bool = False,
        max_iters: int = 200_000,
    ) -> None:
        self.kernel = kernel
        self.nodes = nodes
        self.verify_fids = verify_fids
        self.audit_every = audit
        self.max_iters = max_iters
        self._radius = 0.0
        self._pairs: dict[float, np.ndarray] = {}

    # -- repair primitives -------------------------------------------------

    def _pair_array(self, radius: float) -> np.ndarray:
        """All (u, v) node pairs within ``radius`` (dict-mode repair)."""
        pairs = self._pairs.get(radius)
        if pairs is None:
            tree = self.kernel._tree
            if tree is None:
                pairs = np.empty((0, 2), dtype=np.intp)
            else:
                pairs = tree.query_pairs(radius, output_type="ndarray")
            self._pairs[radius] = pairs
        return pairs

    def _stale_floods(self, rnd: int) -> tuple[list[int], bool]:
        """Senders whose HELLO/ANNOUNCE some receiver is missing.

        Returns ``(ready, blocked)``: ``ready`` are alive senders to
        re-wake with ``rehello`` now; ``blocked`` is True when at least
        one stale pair waits on a transient crash window (sender or
        receiver down) and the caller should idle a round.  Pairs with a
        permanently dead endpoint are unrepairable by design and are
        excluded: a never-heard dead neighbour simply isn't part of the
        surviving topology.
        """
        radius = self._radius
        if radius <= 0.0 or not self.nodes:
            return [], False
        kernel = self.kernel
        fp = kernel.faults
        nodes = self.nodes
        n = len(nodes)
        cache = nodes[0].cache
        if cache is not None:
            # Plane/cache mode: one vectorized scan over the CSR slots.
            senders_all = cache.ids
            recv_all = np.repeat(
                np.arange(n, dtype=np.intp), np.diff(cache.indptr)
            )
            bad = ~cache.known
            if self.verify_fids:
                fids = np.fromiter(
                    (nd.fid for nd in nodes), dtype=np.int64, count=n
                )
                bad |= cache.fid != fids[senders_all]
            bad &= cache.dists <= radius * (1.0 + 1e-12)
            idx = np.flatnonzero(bad)
            if len(idx) == 0:
                return [], False
            s_ids = senders_all[idx].astype(np.intp, copy=False)
            r_ids = recv_all[idx]
            keep = ~(fp.gone_mask(s_ids, rnd) | fp.gone_mask(r_ids, rnd))
            s_ids, r_ids = s_ids[keep], r_ids[keep]
            if len(s_ids) == 0:
                return [], False
            waiting = fp.crashed_mask(s_ids, rnd) | fp.crashed_mask(r_ids, rnd)
            ready = np.unique(s_ids[~waiting])
            return ready.tolist(), bool(waiting.any())
        # Dict mode: walk the geometric pair list.
        ready: set[int] = set()
        blocked = False
        verify = self.verify_fids
        for u, v in self._pair_array(radius):
            for s, r in ((int(u), int(v)), (int(v), int(u))):
                nd = nodes[r]
                cached = nd.nb_fragment.get(s)
                if cached is not None and not (verify and cached != nodes[s].fid):
                    continue
                if fp.gone_forever(s, rnd) or fp.gone_forever(r, rnd):
                    continue
                if fp.crashed(s, rnd) or fp.crashed(r, rnd):
                    blocked = True
                else:
                    ready.add(s)
        return sorted(ready), blocked

    def _unsearched(self, phase: int, rnd: int) -> tuple[list[int], bool]:
        """Phase participants whose ``find_moe`` wake a crash swallowed.

        Safe to re-wake only because the settle loop calls this with no
        reliable traffic pending anywhere: a node mid-TEST has either an
        unacked TEST in flight or a probe outstanding with
        ``_test_idx > 0``, so ``_test_idx == 0`` + ``not _search_done``
        means the search genuinely never started.
        """
        fp = self.kernel.faults
        todo: list[int] = []
        waiting = False
        for nd in self.nodes:
            if (
                nd.cur_phase == phase
                and not nd.passive
                and not nd._search_done
                and nd._test_idx == 0
            ):
                if fp.gone_forever(nd.id, rnd):
                    continue
                if fp.crashed(nd.id, rnd):
                    waiting = True
                else:
                    todo.append(nd.id)
        return todo, waiting

    # -- the settle loop ---------------------------------------------------

    def settle(self, phase: int | None = None) -> None:
        """Run to quiescence *and* repaired: retries drained, floods
        fresh, (stage B) every participant searched.

        ``phase`` enables the stage-B straggler re-wake; ``None`` (hello
        rounds, stage A) skips it.
        """
        kernel = self.kernel
        nodes = self.nodes
        fp = kernel.faults
        if fp is None:
            kernel.run_until_quiescent()
        else:
            for _ in range(self.max_iters):
                kernel.run_until_quiescent()
                rnd = kernel.rounds
                holders = [
                    nd.id
                    for nd in nodes
                    if nd.retry is not None and nd.retry.pending
                ]
                if holders:
                    live = [i for i in holders if not fp.gone_forever(i, rnd)]
                    if not live:
                        # Waiting on a restart that never comes would idle
                        # the clock for max_iters rounds before failing;
                        # a participant that died forever mid-protocol is
                        # out of recovery scope, so fail promptly instead.
                        raise ProtocolError(
                            f"nodes {holders} hold unacknowledged reliable "
                            "traffic but crashed permanently; recovery only "
                            "covers transient crashes and never-started nodes"
                        )
                    alive = [i for i in live if not fp.crashed(i, rnd)]
                    if alive:
                        if trace.enabled:
                            trace.emit("retry", round=rnd, nodes=len(alive))
                        kernel.wake(alive, "retry_tick")
                        if not kernel.in_flight:
                            kernel.tick()  # backoff armed: let a round pass
                    else:
                        kernel.tick()  # every live holder is down: wait
                    continue
                ready, blocked = self._stale_floods(rnd)
                if ready:
                    if trace.enabled:
                        trace.emit("rehello", round=rnd, nodes=len(ready))
                    kernel.wake(ready, "rehello")
                    if not kernel.in_flight:
                        blocked = True  # crashed between check and wake
                    else:
                        continue
                if blocked:
                    kernel.tick()
                    continue
                if phase is not None:
                    todo, waiting = self._unsearched(phase, rnd)
                    if todo:
                        if trace.enabled:
                            trace.emit(
                                "rewake", round=rnd, phase=phase, nodes=len(todo)
                            )
                        kernel.wake(todo, "find_moe", (phase,))
                        continue
                    if waiting:
                        kernel.tick()
                        continue
                break
            else:
                raise ProtocolError(
                    f"fault recovery did not settle in {self.max_iters} "
                    "iterations (permanently crashed peer mid-protocol?)"
                )
            if trace.enabled:
                trace.emit("settle", round=kernel.rounds)
        if self.audit_every:
            from repro.algorithms.ghs.audit import audit_recovery

            audit_recovery(nodes, kernel=kernel)


def _live_leaders(
    kernel: SynchronousKernel, nodes: Sequence[GHSNode]
) -> list[int]:
    """Active leaders, fault-aware: waits out transient crash windows,
    drops never-started nodes, rejects mid-run permanent leader deaths.

    A node crashed from round 0 forever is still in its initial
    ``leader=True`` state but can never act — its (singleton) fragment
    simply isn't part of the surviving topology, so it is dropped from
    the phase loop.  A leader that *participated* and then died forever
    would leave its whole fragment silently orphaned; that is out of
    recovery scope and raised as an error instead.  Transiently crashed
    leaders gate the phase barrier: the clock idles until every surviving
    leader can hear its ``initiate`` wake.
    """
    leaders = active_leaders(nodes)
    fp = kernel.faults
    if fp is None or not fp.has_crashes or not leaders:
        return leaders
    rnd = kernel.rounds
    alive = []
    for i in leaders:
        if fp.gone_forever(i, rnd):
            if fp.crash_start(i) > 0:
                raise ProtocolError(
                    f"fragment leader {i} crashed permanently at round "
                    f"{fp.crash_start(i)} after participating; recovery "
                    "only covers transient crashes and never-started nodes"
                )
            continue  # crashed from round 0: never part of the run
        alive.append(i)
    waited = 0
    while any(fp.crashed(i, kernel.rounds) for i in alive):
        kernel.tick()
        waited += 1
        if waited > 1_000_000:
            raise ProtocolError(
                "a fragment leader's crash window did not expire within "
                "1000000 rounds"
            )
    return alive


def run_ghs_phases(
    kernel: SynchronousKernel,
    nodes: Sequence[GHSNode],
    *,
    start_phase: int = 1,
    max_phases: int | None = None,
    recovery: GHSRecovery | None = None,
) -> int:
    """Run Borůvka phases until no active fragment remains.

    Returns the number of phases executed.  ``start_phase`` offsets the
    phase counter so EOPT's step 2 continues the numbering of step 1
    (phase numbers only need to be fresh, never dense).  ``recovery``
    (fault runs) replaces each stage barrier with a settle/repair loop.
    """
    n = max(len(nodes), 2)
    if max_phases is None:
        # Fragments at least halve every phase; the slack covers step-2
        # restarts and absorb-only phases.
        max_phases = 2 * int(math.log2(n)) + 20
    if recovery is None:
        # Turbo kernels run eligible configurations (modified mode, flood
        # planes live, no faults) as whole-round array programs — an
        # observational clone of the loop below (see ghs/turbo.py).
        from repro.algorithms.ghs.turbo import run_phases_turbo

        ran = run_phases_turbo(
            kernel, nodes, start_phase=start_phase, max_phases=max_phases
        )
        if ran is not None:
            return ran
    phase = start_phase - 1
    executed = 0
    fp = kernel.faults
    while True:
        leaders = _live_leaders(kernel, nodes)
        if not leaders:
            return executed
        phase += 1
        executed += 1
        if executed > max_phases:
            raise ProtocolError(
                f"GHS did not terminate within {max_phases} phases "
                f"({len(leaders)} active fragments remain)"
            )
        if trace.enabled:
            trace.emit(
                "phase_start",
                phase=phase,
                round=kernel.rounds,
                active=len(leaders),
            )
        kernel.wake(leaders, "initiate", (phase,))
        if recovery is not None:
            recovery.settle()
        else:
            kernel.run_until_quiescent()
        participants = [
            nd.id for nd in nodes if nd.cur_phase == phase and not nd.passive
        ]
        if fp is not None and fp.has_crashes:
            # A crashed participant can't be woken (and must not be fed a
            # driver-computed MOE — it is radio-off); the stage-B settle
            # re-wakes it once its window expires.
            rnd = kernel.rounds
            participants = [i for i in participants if not fp.crashed(i, rnd)]
        cache = nodes[0].cache if nodes else None
        if participants and cache is not None and not nodes[0].use_tests:
            # Modified-mode MOE over the flood cache: one masked
            # segment-min for all participants, applied in the same order
            # ``wake`` would visit them so report traffic is identical.
            pids = np.asarray(participants, dtype=np.intp)
            fids = np.fromiter(
                (nodes[i].fid for i in participants),
                dtype=np.int64,
                count=len(participants),
            )
            cand, kdist, klo, khi = cache.moe_batch(pids, fids)
            cand_l = cand.tolist()
            kd_l = kdist.tolist()
            klo_l = klo.tolist()
            khi_l = khi.tolist()
            for idx, i in enumerate(participants):
                nd = nodes[i]
                if nd.cur_phase == phase and not nd.passive:
                    nd.apply_moe(cand_l[idx], kd_l[idx], klo_l[idx], khi_l[idx])
        else:
            kernel.wake(participants, "find_moe", (phase,))
        if recovery is not None:
            recovery.settle(phase=phase)
        else:
            kernel.run_until_quiescent()
        if trace.enabled:
            fragments, sizes = fragment_histogram(nodes)
            trace.emit(
                "phase_end",
                phase=phase,
                round=kernel.rounds,
                fragments=fragments,
                sizes=sizes,
            )


def hello_round(
    kernel: SynchronousKernel,
    radius: float,
    *,
    planes: bool = True,
    recovery: GHSRecovery | None = None,
) -> None:
    """Make every node broadcast HELLO(fid) at ``radius`` and settle.

    This is the neighbour-discovery step: receivers learn (id, distance,
    fragment id) for everyone in range.  One local broadcast per node.

    When ``planes`` is true and the kernel supports it (non-flat kernel,
    neighbor table built), the whole round runs as one flood plane: a
    fresh :class:`FloodCache` is attached to every node, one
    ``broadcast_plane`` call registers all n HELLOs (charged in node-id
    order, exactly like the per-node wake), and delivery is a single
    vectorized cache update.  Otherwise — legacy/contention kernels,
    density-gated tables, or ``planes=False`` — the classic per-node
    wake path runs and nodes fall back to their dict caches.
    """
    nodes = kernel.nodes
    fp = kernel.faults
    r = float(radius)
    # No plane/cache-mode field here: whether the flood plane engages
    # depends on the kernel flavor, and equivalent legacy/fast runs must
    # emit identical traces.
    if trace.enabled:
        trace.emit("hello", round=kernel.rounds, radius=r)
    cache = None
    if planes and nodes and all(isinstance(nd, GHSNode) for nd in nodes):
        cache = FloodCache.ensure(kernel)
    if cache is not None:
        kernel.set_plane_handler(cache.on_plane)
        for nd in nodes:
            nd.attach_cache(cache)
        for nd in nodes:
            nd.radio_radius = r
        senders = np.arange(kernel.n, dtype=np.intp)
        if fp is not None and fp.has_crashes:
            # Crashed nodes transmit nothing (matches the wake path,
            # which skips them); recovery re-floods them on restart.
            senders = senders[~fp.crashed_mask(senders, kernel.rounds)]
        fids = np.fromiter(
            (nodes[i].fid for i in senders), dtype=np.int64, count=len(senders)
        )
        if len(senders) and not kernel.broadcast_plane(senders, r, "HELLO", fids):
            cache = None  # table vanished between ensure() and send
    if cache is None:
        kernel.set_plane_handler(None)
        for nd in nodes:
            if isinstance(nd, GHSNode):
                nd.attach_cache(None)
                # Pre-assign the radius: a node crashed through this
                # wake still needs it for recovery re-floods.
                nd.radio_radius = r
        kernel.wake(range(kernel.n), "hello", (radius,))
    if recovery is not None:
        recovery._radius = r
        recovery.settle()
    else:
        kernel.run_until_quiescent()
