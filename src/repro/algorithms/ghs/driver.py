"""The synchronous Borůvka phase driver for the GHS family.

A phase has two quiescence-separated stages (see DESIGN.md —
"Substitutions" — for why the barriers are accounting-neutral):

* **stage A** — active fragment leaders are woken with ``initiate``; the
  INITIATE floods (and, in modified mode, the ANNOUNCE refreshes) run to
  quiescence, so every node holds its current fragment id before anyone
  evaluates an edge;
* **stage B** — every node that joined this phase is woken with
  ``find_moe``; tests, reports, changeroot, connects and (step 2) absorb
  floods run to quiescence.

The loop ends when no active leader remains: every fragment either halted
(no outgoing edge — it spans its whole component) or was absorbed into the
passive giant.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.algorithms.ghs.node import GHSNode
from repro.algorithms.ghs.plane import FloodCache
from repro.sim.kernel import SynchronousKernel


def active_leaders(nodes: Sequence[GHSNode]) -> list[int]:
    """Ids of leaders of fragments that still participate in phases."""
    return [nd.id for nd in nodes if nd.leader and not nd.halted and not nd.passive]


def run_ghs_phases(
    kernel: SynchronousKernel,
    nodes: Sequence[GHSNode],
    *,
    start_phase: int = 1,
    max_phases: int | None = None,
) -> int:
    """Run Borůvka phases until no active fragment remains.

    Returns the number of phases executed.  ``start_phase`` offsets the
    phase counter so EOPT's step 2 continues the numbering of step 1
    (phase numbers only need to be fresh, never dense).
    """
    n = max(len(nodes), 2)
    if max_phases is None:
        # Fragments at least halve every phase; the slack covers step-2
        # restarts and absorb-only phases.
        max_phases = 2 * int(math.log2(n)) + 20
    phase = start_phase - 1
    executed = 0
    while True:
        leaders = active_leaders(nodes)
        if not leaders:
            return executed
        phase += 1
        executed += 1
        if executed > max_phases:
            raise ProtocolError(
                f"GHS did not terminate within {max_phases} phases "
                f"({len(leaders)} active fragments remain)"
            )
        kernel.wake(leaders, "initiate", (phase,))
        kernel.run_until_quiescent()
        participants = [
            nd.id for nd in nodes if nd.cur_phase == phase and not nd.passive
        ]
        cache = nodes[0].cache if nodes else None
        if participants and cache is not None and not nodes[0].use_tests:
            # Modified-mode MOE over the flood cache: one masked
            # segment-min for all participants, applied in the same order
            # ``wake`` would visit them so report traffic is identical.
            pids = np.asarray(participants, dtype=np.intp)
            fids = np.fromiter(
                (nodes[i].fid for i in participants),
                dtype=np.int64,
                count=len(participants),
            )
            cand, kdist, klo, khi = cache.moe_batch(pids, fids)
            cand_l = cand.tolist()
            kd_l = kdist.tolist()
            klo_l = klo.tolist()
            khi_l = khi.tolist()
            for idx, i in enumerate(participants):
                nd = nodes[i]
                if nd.cur_phase == phase and not nd.passive:
                    nd.apply_moe(cand_l[idx], kd_l[idx], klo_l[idx], khi_l[idx])
        else:
            kernel.wake(participants, "find_moe", (phase,))
        kernel.run_until_quiescent()


def hello_round(
    kernel: SynchronousKernel, radius: float, *, planes: bool = True
) -> None:
    """Make every node broadcast HELLO(fid) at ``radius`` and settle.

    This is the neighbour-discovery step: receivers learn (id, distance,
    fragment id) for everyone in range.  One local broadcast per node.

    When ``planes`` is true and the kernel supports it (non-flat kernel,
    neighbor table built), the whole round runs as one flood plane: a
    fresh :class:`FloodCache` is attached to every node, one
    ``broadcast_plane`` call registers all n HELLOs (charged in node-id
    order, exactly like the per-node wake), and delivery is a single
    vectorized cache update.  Otherwise — legacy/contention kernels,
    density-gated tables, or ``planes=False`` — the classic per-node
    wake path runs and nodes fall back to their dict caches.
    """
    nodes = kernel.nodes
    cache = None
    if planes and nodes and all(isinstance(nd, GHSNode) for nd in nodes):
        cache = FloodCache.ensure(kernel)
    if cache is not None:
        kernel.set_plane_handler(cache.on_plane)
        for nd in nodes:
            nd.attach_cache(cache)
        r = float(radius)
        for nd in nodes:
            nd.radio_radius = r
        fids = np.fromiter((nd.fid for nd in nodes), dtype=np.int64, count=kernel.n)
        senders = np.arange(kernel.n, dtype=np.intp)
        if not kernel.broadcast_plane(senders, r, "HELLO", fids):
            cache = None  # table vanished between ensure() and send
    if cache is None:
        kernel.set_plane_handler(None)
        for nd in nodes:
            if isinstance(nd, GHSNode):
                nd.attach_cache(None)
        kernel.wake(range(kernel.n), "hello", (radius,))
    kernel.run_until_quiescent()
