"""Top-level runners for plain GHS and modified GHS.

Both operate at the connectivity radius ``r = c sqrt(ln n / n)`` (paper
Sec. VII uses ``c = 1.6``) and produce the exact MST of the RGG at that
radius — a spanning forest if the RGG happens to be disconnected.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import AlgorithmResult, collect_tree_edges
from repro.algorithms.ghs.driver import GHSRecovery, hello_round, run_ghs_phases
from repro.algorithms.ghs.node import GHSNode
from repro.geometry.radius import PAPER_GHS_RADIUS_CONST, connectivity_radius
from repro.perf import perf
from repro.runspec.registry import register_algorithm
from repro.sim.faults import FaultPlan
from repro.trace import trace
from repro.sim.kernel import SynchronousKernel
from repro.sim.power import PathLossModel


def _run_family(
    points: np.ndarray,
    *,
    name: str,
    use_tests: bool,
    announce: bool,
    radius: float | None,
    radius_const: float,
    power: PathLossModel | None,
    rx_cost: float = 0.0,
    kernel_cls: type[SynchronousKernel] = SynchronousKernel,
    planes: bool = True,
    faults: FaultPlan | None = None,
    recover: bool = True,
    audit: bool = False,
) -> AlgorithmResult:
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    r = connectivity_radius(n, radius_const) if radius is None else float(radius)
    kwargs = {}
    if faults is not None:
        kwargs["faults"] = faults
    kernel = kernel_cls(pts, max_radius=r, power=power, rx_cost=rx_cost, **kwargs)
    # Recovery (reliable unicasts + settle/repair barriers) engages only
    # when faults are actually injected: the fault-free message trace
    # must stay bit-identical to the paper model.
    reliable = faults is not None and not faults.is_null and recover
    kernel.add_nodes(
        lambda i, ctx: GHSNode(
            i, ctx, use_tests=use_tests, announce=announce, reliable=reliable
        )
    )
    recovery = (
        GHSRecovery(kernel, kernel.nodes, verify_fids=not use_tests, audit=audit)
        if reliable
        else None
    )
    kernel.start()
    if trace.enabled:
        trace.emit("run_start", alg=name, n=n, radius=r)
    kernel.set_stage("hello")
    with perf.timed(f"{name.lower()}.hello"):
        hello_round(kernel, r, planes=planes, recovery=recovery)
    kernel.set_stage("phases")
    with perf.timed(f"{name.lower()}.phases"):
        phases = run_ghs_phases(kernel, kernel.nodes, recovery=recovery)
    edges = collect_tree_edges((nd.id, nd.tree_edges) for nd in kernel.nodes)
    stats = kernel.stats()
    fragments = {nd.fid for nd in kernel.nodes}
    if trace.enabled:
        trace.emit(
            "run_end",
            alg=name,
            round=kernel.rounds,
            phases=phases,
            fragments=len(fragments),
        )
    return AlgorithmResult(
        name=name,
        n=n,
        tree_edges=edges,
        stats=stats,
        phases=phases,
        extras={
            "radius": r,
            "n_fragments_final": len(fragments),
            "rejected_probes": stats.messages_by_kind.get("REJECT", 0),
        },
    )


def run_ghs(
    points: np.ndarray,
    *,
    radius: float | None = None,
    radius_const: float = PAPER_GHS_RADIUS_CONST,
    power: PathLossModel | None = None,
    rx_cost: float = 0.0,
    kernel_cls: type[SynchronousKernel] = SynchronousKernel,
    planes: bool = True,
    faults: FaultPlan | None = None,
    recover: bool = True,
    audit: bool = False,
) -> AlgorithmResult:
    """Run the original GHS algorithm (with TEST probing) on ``points``.

    This is the paper's baseline: message-optimal but energy-suboptimal —
    Θ(log² n) expected energy on uniform points at the connectivity radius,
    dominated by the Θ(|E|) TEST/REJECT probes at distance ≈ r.

    Parameters
    ----------
    points:
        ``(n, 2)`` node coordinates in the unit square.
    radius:
        Transmission radius; defaults to
        ``radius_const * sqrt(ln n / n)``.
    radius_const:
        Multiplier for the default radius (paper experiments: 1.6).
    power:
        Path-loss model; defaults to ``a=1, alpha=2``.
    kernel_cls:
        Kernel implementation (benchmarks pass
        :class:`~repro.sim.legacy.LegacyKernel` for the pre-PR baseline).
    planes:
        Use the flood-plane fast path for HELLO/ANNOUNCE when the kernel
        supports it (``False`` forces per-message delivery; results are
        bit-identical either way).
    faults:
        Optional :class:`~repro.sim.faults.FaultPlan` injecting message
        loss, duplication and crash windows.
    recover:
        Enable the reliable-unicast + settle/repair recovery layer when
        faults are injected (default).  ``False`` runs the unprotected
        protocol against the faults — useful only for demonstrating why
        recovery is needed.
    audit:
        Assert fragment-invariant safety (``audit_recovery``) after
        every recovery settle point.
    """
    return _run_family(
        points,
        name="GHS",
        use_tests=True,
        announce=False,
        radius=radius,
        radius_const=radius_const,
        power=power,
        rx_cost=rx_cost,
        kernel_cls=kernel_cls,
        planes=planes,
        faults=faults,
        recover=recover,
        audit=audit,
    )


def run_modified_ghs(
    points: np.ndarray,
    *,
    radius: float | None = None,
    radius_const: float = PAPER_GHS_RADIUS_CONST,
    power: PathLossModel | None = None,
    rx_cost: float = 0.0,
    kernel_cls: type[SynchronousKernel] = SynchronousKernel,
    planes: bool = True,
    faults: FaultPlan | None = None,
    recover: bool = True,
    audit: bool = False,
) -> AlgorithmResult:
    """Run the modified GHS (neighbour caches + ANNOUNCE) on ``points``.

    Same MST as :func:`run_ghs`, but MOE search is a local lookup: total
    messages drop to O(n·phases).  Used standalone for the ABL-G ablation
    and as the engine inside both EOPT steps.
    """
    return _run_family(
        points,
        name="MGHS",
        use_tests=False,
        announce=True,
        radius=radius,
        radius_const=radius_const,
        power=power,
        rx_cost=rx_cost,
        kernel_cls=kernel_cls,
        planes=planes,
        faults=faults,
        recover=recover,
        audit=audit,
    )


# -- runspec registration -----------------------------------------------------

def _spec_kwargs(spec) -> dict:
    """Shared RunSpec -> GHS-family runner kwargs mapping."""
    from repro.runspec.spec import kernel_class

    kwargs = {
        "radius_const": spec.ghs_radius_const,
        "rx_cost": spec.rx_cost,
        "kernel_cls": kernel_class(spec.kernel),
        "planes": spec.planes,
        "recover": spec.recover,
    }
    if spec.faults is not None:
        kwargs["faults"] = spec.faults
    return kwargs


def _ghs_adapter(points, spec):
    return run_ghs(points, **_spec_kwargs(spec))


def _mghs_adapter(points, spec):
    return run_modified_ghs(points, **_spec_kwargs(spec))


register_algorithm(
    "GHS",
    runner=run_ghs,
    adapter=_ghs_adapter,
    order=0,
    summary="classical GHS with TEST probing - exact MST, Theta(log^2 n) energy",
)
register_algorithm(
    "MGHS",
    runner=run_modified_ghs,
    adapter=_mghs_adapter,
    order=1,
    summary="modified GHS (neighbour caches + ANNOUNCE) - exact MST, fewer messages",
)
