"""Rand-NNT — the Khan–Pandurangan baseline ([14, 15] in the paper)."""

from repro.algorithms.randnnt.protocol import RandNNTNode, run_randnnt

__all__ = ["RandNNTNode", "run_randnnt"]
