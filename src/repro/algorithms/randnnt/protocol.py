"""Rand-NNT: nearest-neighbour tree under *random* ranks, no coordinates.

This is the predecessor scheme of Khan–Pandurangan(–Kumar) ([14, 15] in
the paper's reference list) that the paper's Related Work positions
itself against: it needs only O(log n) energy but returns an
O(log n)-*approximate* MST, whereas EOPT gets the exact MST for the same
energy order and Co-NNT gets a constant-factor tree with coordinates.

Protocol (coordinate-free — note ``expose_coordinates`` stays False):

* every node's rank is its unique id (ids are assigned independently of
  geometry, so they are exchangeable with the random ranks of [15]);
* in phase ``i`` every unfinished node broadcasts ``REQUEST(rank)`` to
  radius ``r_i = sqrt(2^i / n)``; higher-ranked listeners reply; the
  requester connects to the nearest replier (distance read off the
  radio) and stops;
* the single highest-ranked node runs out of radius (``r_i`` reaches the
  unit-square diameter) and terminates unconnected.

The result is a spanning tree: edges point strictly uphill in rank.
Unlike Co-NNT there is no potential-distance cutoff — without
coordinates a node cannot bound where its higher-ranked nodes live, which
is precisely why a few unlucky high-ranked nodes must pay long edges and
the tree is only O(log n)-approximate.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import AlgorithmResult, collect_tree_edges
from repro.errors import ProtocolError
from repro.runspec.registry import register_algorithm
from repro.sim.kernel import SynchronousKernel
from repro.sim.message import Message
from repro.sim.node import NodeProcess
from repro.sim.power import PathLossModel


class RandNNTNode(NodeProcess):
    """One processor running the random-rank doubling-radius search."""

    __slots__ = ("done", "connected_to", "tree_edges", "last_radius", "_replies")

    def on_start(self) -> None:
        self.done = False
        self.connected_to: int | None = None
        self.tree_edges: set[int] = set()
        self.last_radius = 0.0
        self._replies: list[tuple[float, int]] = []

    def on_wake(self, signal: str, payload: tuple = ()) -> None:
        if signal == "probe":
            if self.done:
                return
            (i,) = payload
            radius = min(
                math.sqrt(2.0**i / max(self.ctx.n_nodes, 1)), math.sqrt(2.0)
            )
            self.last_radius = radius
            self._replies = []
            self.ctx.local_broadcast(radius, "REQUEST", self.id)
        elif signal == "decide":
            if self.done:
                return
            if self._replies:
                _, target = min(self._replies)
                self.connected_to = target
                self.tree_edges.add(target)
                self.ctx.unicast(target, "CONNECTION")
                self.done = True
            elif self.last_radius >= math.sqrt(2.0):
                # Searched the whole square: nobody outranks this node.
                self.done = True
        else:
            raise ProtocolError(f"unknown wake signal {signal!r}")

    def on_message(self, msg: Message, distance: float) -> None:
        kind = msg.kind
        if kind == "REQUEST":
            (rank,) = msg.payload
            if self.id > rank:
                self.ctx.unicast(msg.src, "REPLY")
        elif kind == "REPLY":
            self._replies.append((distance, msg.src))
        elif kind == "CONNECTION":
            self.tree_edges.add(msg.src)
        else:
            raise ProtocolError(f"node {self.id}: unknown message kind {kind!r}")


def run_randnnt(
    points: np.ndarray,
    *,
    power: PathLossModel | None = None,
    rx_cost: float = 0.0,
) -> AlgorithmResult:
    """Run Rand-NNT on ``points``; returns the random-rank NNT.

    O(log n) expected energy, O(log n)-approximate tree — the paper's
    Related-Work baseline between GHS (exact, log² n energy) and EOPT
    (exact, log n energy).
    """
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    kernel = SynchronousKernel(
        pts, max_radius=math.sqrt(2.0), power=power, rx_cost=rx_cost
    )
    kernel.add_nodes(RandNNTNode)
    kernel.start()
    nodes = kernel.nodes

    max_phase = int(math.ceil(math.log2(2.0 * max(n, 2)))) + 1
    phase = 0
    while True:
        active = [nd.id for nd in nodes if not nd.done]
        if not active:
            break
        phase += 1
        if phase > max_phase + 1:
            raise ProtocolError(
                f"Rand-NNT did not terminate within {max_phase} probe phases"
            )
        kernel.wake(active, "probe", (phase,))
        kernel.run_until_quiescent()
        kernel.wake(active, "decide")
        kernel.run_until_quiescent()

    edges = collect_tree_edges((nd.id, nd.tree_edges) for nd in nodes)
    unconnected = [nd.id for nd in nodes if nd.connected_to is None]
    return AlgorithmResult(
        name="Rand-NNT",
        n=n,
        tree_edges=edges,
        stats=kernel.stats(),
        phases=phase,
        extras={
            "unconnected_nodes": unconnected,
            "max_probe_radius": max((nd.last_radius for nd in nodes), default=0.0),
        },
    )


# -- runspec registration -----------------------------------------------------

def _randnnt_adapter(points, spec):
    return run_randnnt(points, rx_cost=spec.rx_cost)


register_algorithm(
    "Rand-NNT",
    runner=run_randnnt,
    adapter=_randnnt_adapter,
    order=4,
    summary="random-rank NNT baseline [15] - O(log n) energy, no recovery layer",
    supports_faults=False,
    supports_kernel_mode=False,
)
