"""Driver for the Co-NNT protocol.

All still-searching nodes probe in lock-step: phase ``i`` is one
``probe`` wake (REQUEST broadcast, REPLY unicasts) followed by a
``decide`` wake (CONNECTION or continue).  The phase cap
``ceil(log2(2 n)) + 1`` guarantees the final probe radius reaches the
unit-square diameter, so termination is unconditional.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import AlgorithmResult, collect_tree_edges
from repro.algorithms.connt.node import CoNNTNode
from repro.errors import ProtocolError
from repro.sim.kernel import SynchronousKernel
from repro.sim.power import PathLossModel


def run_connt(
    points: np.ndarray,
    *,
    power: PathLossModel | None = None,
    rx_cost: float = 0.0,
) -> AlgorithmResult:
    """Run Co-NNT on ``points``; returns the diagonal-ranking NNT.

    Energy is O(1) in expectation and messages O(n) (paper Thm 6.2); the
    tree is a constant-factor approximation to the MST (Thm 6.1).

    Parameters
    ----------
    points:
        ``(n, 2)`` node coordinates in the unit square.
    power:
        Path-loss model; defaults to ``a=1, alpha=2``.
    """
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    kernel = SynchronousKernel(
        pts,
        max_radius=math.sqrt(2.0),
        power=power,
        expose_coordinates=True,
        rx_cost=rx_cost,
    )
    kernel.add_nodes(CoNNTNode)
    kernel.start()
    nodes = kernel.nodes

    max_phase = int(math.ceil(math.log2(2.0 * max(n, 2)))) + 1
    phase = 0
    max_probe_radius = 0.0
    while True:
        active = [nd.id for nd in nodes if not nd.done]
        if not active:
            break
        phase += 1
        if phase > max_phase + 1:
            raise ProtocolError(
                f"Co-NNT did not terminate within {max_phase} probe phases"
            )
        kernel.wake(active, "probe", (phase,))
        kernel.run_until_quiescent()
        kernel.wake(active, "decide")
        kernel.run_until_quiescent()
        max_probe_radius = max(
            max_probe_radius,
            max((nodes[i].last_radius for i in active), default=0.0),
        )

    edges = collect_tree_edges((nd.id, nd.tree_edges) for nd in nodes)
    unconnected = [nd.id for nd in nodes if nd.connected_to is None]
    return AlgorithmResult(
        name="Co-NNT",
        n=n,
        tree_edges=edges,
        stats=kernel.stats(),
        phases=phase,
        extras={
            "max_probe_radius": max_probe_radius,
            # Whp exactly one: the globally highest-ranked node.
            "unconnected_nodes": unconnected,
        },
    )
