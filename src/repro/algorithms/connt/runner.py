"""Driver for the Co-NNT protocol.

All still-searching nodes probe in lock-step: phase ``i`` is one
``probe`` wake (REQUEST broadcast, REPLY unicasts) followed by a
``decide`` wake (CONNECTION or continue).  The phase cap
``ceil(log2(2 n)) + 1`` guarantees the final probe radius reaches the
unit-square diameter, so termination is unconditional.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import AlgorithmResult, collect_tree_edges
from repro.algorithms.connt.node import CoNNTNode, diagonal_key
from repro.errors import ProtocolError
from repro.runspec.registry import register_algorithm
from repro.sim.faults import FaultPlan, drain_reliable
from repro.sim.kernel import SynchronousKernel
from repro.sim.power import PathLossModel
from repro.trace import trace


def run_connt(
    points: np.ndarray,
    *,
    power: PathLossModel | None = None,
    rx_cost: float = 0.0,
    faults: FaultPlan | None = None,
    recover: bool = True,
) -> AlgorithmResult:
    """Run Co-NNT on ``points``; returns the diagonal-ranking NNT.

    Energy is O(1) in expectation and messages O(n) (paper Thm 6.2); the
    tree is a constant-factor approximation to the MST (Thm 6.1).

    Parameters
    ----------
    points:
        ``(n, 2)`` node coordinates in the unit square.
    power:
        Path-loss model; defaults to ``a=1, alpha=2``.
    faults:
        Optional seeded :class:`FaultPlan`.  With ``recover=True`` the
        REPLY/CONNECTION unicasts turn reliable (ACK/retry) and the
        driver re-probes nodes stranded by lost REQUEST floods, so the
        run terminates with a symmetric spanning structure over the
        surviving nodes.  Lost REQUEST copies may still redirect a node
        to a farther (still higher-ranked) neighbour — the output stays
        a valid rank-monotone NNT, not necessarily the fault-free one.
    """
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    kwargs = {}
    if faults is not None:
        kwargs["faults"] = faults
    reliable = faults is not None and not faults.is_null and recover
    kernel = SynchronousKernel(
        pts,
        max_radius=math.sqrt(2.0),
        power=power,
        expose_coordinates=True,
        rx_cost=rx_cost,
        **kwargs,
    )
    kernel.add_nodes(lambda i, ctx: CoNNTNode(i, ctx, reliable=reliable))
    kernel.start()
    nodes = kernel.nodes
    fp = kernel.faults
    if trace.enabled:
        trace.emit("run_start", alg="Co-NNT", n=n)

    max_phase = int(math.ceil(math.log2(2.0 * max(n, 2)))) + 1
    phase = 0
    waited = 0
    max_probe_radius = 0.0
    while True:
        rnd = kernel.rounds
        active = [
            nd.id
            for nd in nodes
            if not nd.done and (fp is None or not fp.gone_forever(nd.id, rnd))
        ]
        if not active:
            break
        if fp is not None:
            alive = [i for i in active if not fp.crashed(i, rnd)]
            if not alive:
                # Every remaining searcher is inside a transient crash
                # window: idle the clock until one comes back.
                waited += 1
                if waited > 1_000_000:
                    raise ProtocolError(
                        "Co-NNT stalled waiting out crash windows"
                    )
                kernel.tick()
                continue
        else:
            alive = active
        phase += 1
        if phase > max_phase + 1 and not reliable:
            raise ProtocolError(
                f"Co-NNT did not terminate within {max_phase} probe phases"
            )
        if phase > 4 * (max_phase + 1):
            # Even with crash windows, a node that probed at the capped
            # sqrt(2) radius must have decided; this many phases means
            # the recovery layer is looping, not progressing.
            raise ProtocolError(
                "Co-NNT did not terminate under fault recovery"
            )
        # A node that slept through earlier wakes (crash window) resumes
        # at its own next radius, so probes stay a doubling sequence
        # per node even when the global phase counter has moved on.
        if trace.enabled:
            trace.emit(
                "probe_phase",
                phase=phase,
                round=kernel.rounds,
                searching=len(alive),
            )
        groups: dict[int, list[int]] = {}
        for i in alive:
            groups.setdefault(min(nodes[i]._phase + 1, phase), []).append(i)
        for ph in sorted(groups):
            kernel.wake(groups[ph], "probe", (ph,))
        kernel.run_until_quiescent()
        if reliable:
            drain_reliable(kernel, nodes)
        kernel.wake(alive, "decide")
        kernel.run_until_quiescent()
        if reliable:
            drain_reliable(kernel, nodes)
        max_probe_radius = max(
            max_probe_radius,
            max((nodes[i].last_radius for i in alive), default=0.0),
        )

    if reliable:
        _reprobe_stranded(kernel, nodes, max_phase)

    edges = collect_tree_edges((nd.id, nd.tree_edges) for nd in nodes)
    unconnected = [nd.id for nd in nodes if nd.connected_to is None]
    if trace.enabled:
        trace.emit(
            "run_end",
            alg="Co-NNT",
            round=kernel.rounds,
            phases=phase,
            unconnected=len(unconnected),
        )
    return AlgorithmResult(
        name="Co-NNT",
        n=n,
        tree_edges=edges,
        stats=kernel.stats(),
        phases=phase,
        extras={
            "max_probe_radius": max_probe_radius,
            # Whp exactly one: the globally highest-ranked node.
            "unconnected_nodes": unconnected,
        },
    )


def _reprobe_stranded(kernel, nodes, max_phase: int) -> None:
    """Re-probe nodes stranded by lost REQUEST floods (reliable mode).

    A searcher whose every REQUEST copy was dropped in the phase where
    its radius first reached ``L_u`` hears silence and wrongly concludes
    it is top-ranked.  REPLY/CONNECTION are reliable, so this is the
    *only* way a non-top node can end unconnected.  The fix is pure
    retry: wake each such node for a fresh full-radius probe (fresh
    round => fresh loss draws) until only the true top-ranked survivor
    remains unconnected.
    """
    fp = kernel.faults
    rnd = kernel.rounds
    live = [
        nd for nd in nodes if fp is None or not fp.gone_forever(nd.id, rnd)
    ]
    if not live:
        return
    top = max(live, key=lambda nd: diagonal_key(nd.x, nd.y, nd.id)).id
    waited = 0
    for attempt in range(200):
        rnd = kernel.rounds
        stranded = [
            nd.id
            for nd in nodes
            if nd.connected_to is None
            and nd.id != top
            and (fp is None or not fp.gone_forever(nd.id, rnd))
        ]
        if not stranded:
            return
        alive = [i for i in stranded if fp is None or not fp.crashed(i, rnd)]
        if not alive:
            waited += 1
            if waited > 1_000_000:
                raise ProtocolError(
                    "Co-NNT re-probe stalled waiting out crash windows"
                )
            kernel.tick()
            continue
        if trace.enabled:
            trace.emit(
                "reprobe", round=rnd, attempt=attempt, nodes=len(alive)
            )
        for i in alive:
            nodes[i].done = False
        # A phase index beyond max_phase caps the radius at sqrt(2):
        # the probe covers the whole square, and bumping it per attempt
        # keeps each probe a genuinely new phase (fresh reply list).
        kernel.wake(alive, "probe", (max_phase + 2 + attempt,))
        kernel.run_until_quiescent()
        drain_reliable(kernel, nodes)
        kernel.wake(alive, "decide")
        kernel.run_until_quiescent()
        drain_reliable(kernel, nodes)
    raise ProtocolError(
        "Co-NNT re-probe did not connect all stranded nodes in 200 attempts"
    )


# -- runspec registration -----------------------------------------------------

def _connt_adapter(points, spec):
    kwargs = {"rx_cost": spec.rx_cost, "recover": spec.recover}
    if spec.faults is not None:
        kwargs["faults"] = spec.faults
    return run_connt(points, **kwargs)


register_algorithm(
    "Co-NNT",
    runner=run_connt,
    adapter=_connt_adapter,
    order=3,
    summary="coordinate-based NNT - O(1) expected energy, constant-factor tree",
    supports_kernel_mode=False,
)
