"""Co-NNT — the coordinate-aware constant-energy NNT protocol (Sec. VI)."""

from repro.algorithms.connt.node import CoNNTNode, diagonal_key
from repro.algorithms.connt.runner import run_connt

__all__ = ["CoNNTNode", "diagonal_key", "run_connt"]
