"""The Co-NNT node protocol (paper Thm 6.2).

Every node ``u`` knows its own coordinates and (an estimate of) ``n``.  It
must find its nearest node of higher *diagonal rank*
(``(x+y, y, id)`` lexicographic — Sec. VI) inside its potential region:

* in probe phase ``i = 1, 2, ...`` the still-searching node broadcasts
  ``REQUEST(x, y)`` to radius ``r_i = sqrt(2^i / n)``;
* every listener of higher rank unicasts ``REPLY()`` back (the requester
  reads the distance off the delivery — physically, off the radio);
* if any replies arrived, the node picks the nearest replier, unicasts
  ``CONNECTION`` to it (both endpoints record the tree edge), and stops;
* a node whose probe radius has reached its potential distance ``L_u``
  without an answer is the highest-ranked node and terminates unconnected.

Because the nearest higher-ranked node lies within ``L_u`` by definition,
the protocol always terminates and reproduces the centralized NNT exactly
(ties in distance are measure-zero under random coordinates).
"""

from __future__ import annotations

import math

from repro.errors import ProtocolError
from repro.geometry.potential import potential_distance
from repro.sim.faults import RetryBuffer
from repro.sim.message import Message
from repro.sim.node import NodeProcess

#: Kinds that bypass the reliable layer.  REQUEST is a discovery flood
#: (losing a copy costs a candidate, never safety — the runner re-probes
#: stranded nodes); ACKs are the reliable layer's own control traffic.
_UNRELIABLE_KINDS = frozenset(("REQUEST", "ACK"))


def diagonal_key(x: float, y: float, node_id: int) -> tuple[float, float, int]:
    """The diagonal-rank comparison key: ``(x+y, y, id)`` lexicographic."""
    return (x + y, y, node_id)


class CoNNTNode(NodeProcess):
    """One processor running the Co-NNT doubling-radius protocol.

    With ``reliable=True`` (set by the runner when a fault plan is
    active) the two unicast kinds that carry safety — REPLY (a missed
    one can strand a requester) and CONNECTION (a missed one leaves an
    asymmetric tree edge) — travel through a :class:`RetryBuffer`
    ACK/retry layer, so under message loss the recorded tree stays
    symmetric and every heard candidate is eventually counted.
    """

    __slots__ = (
        "x",
        "y",
        "key",
        "L",
        "done",
        "connected_to",
        "tree_edges",
        "last_radius",
        "_replies",
        "_phase",
        "reliable",
        "retry",
    )

    def __init__(self, node_id: int, ctx, *, reliable: bool = False) -> None:
        super().__init__(node_id, ctx)
        self.reliable = reliable
        self.retry: RetryBuffer | None = None

    def on_start(self) -> None:
        self.retry = RetryBuffer(self.ctx) if self.reliable else None
        self.x, self.y = self.ctx.coords
        self.key = diagonal_key(self.x, self.y, self.id)
        # L_u is locally computable from own coordinates (closed form).
        self.L = float(potential_distance([[self.x, self.y]])[0])
        self.done = False
        self.connected_to: int | None = None
        self.tree_edges: set[int] = set()
        self.last_radius = 0.0
        self._replies: list[tuple[float, int]] = []
        self._phase = 0

    # -- driver signals -------------------------------------------------------

    def on_wake(self, signal: str, payload: tuple = ()) -> None:
        if signal == "probe":
            if self.done:
                return
            (i,) = payload
            if int(i) != self._phase:
                # Reset candidates only on a genuinely new phase: a
                # retransmitted REPLY that lands between a duplicate
                # probe wake and the decide still counts.
                self._replies = []
            self._phase = int(i)
            radius = min(math.sqrt(2.0**i / max(self.ctx.n_nodes, 1)), math.sqrt(2.0))
            self.last_radius = radius
            self.ctx.local_broadcast(radius, "REQUEST", self.x, self.y)
        elif signal == "retry_tick":
            if self.retry is not None:
                self.retry.tick()
        elif signal == "decide":
            if self.done:
                return
            self._decide()
        else:
            raise ProtocolError(f"unknown wake signal {signal!r}")

    def _decide(self) -> None:
        if self._replies:
            # Nearest replier; ties broken by id for determinism.
            _, target = min(self._replies)
            self.connected_to = target
            self.tree_edges.add(target)
            self._send(target, "CONNECTION")
            self.done = True
        elif self.last_radius >= self.L:
            # Probed the whole potential region and heard nothing: this is
            # the highest-ranked node (paper: "it terminates anyway").
            self.done = True

    def _send(self, dst: int, kind: str, *payload) -> None:
        """Unicast, through the retry layer when it applies (see class doc)."""
        if self.retry is not None and kind not in _UNRELIABLE_KINDS:
            self.retry.send(dst, kind, payload)
        else:
            self.ctx.unicast(dst, kind, *payload)

    # -- messages ---------------------------------------------------------------

    def on_message(self, msg: Message, distance: float) -> None:
        kind = msg.kind
        payload = msg.payload
        if self.retry is not None and kind not in _UNRELIABLE_KINDS:
            seq = payload[0]
            # ACK every copy: a duplicate means our previous ACK was lost.
            self.ctx.unicast(msg.src, "ACK", seq)
            if not self.retry.accept(msg.src, seq):
                return
            payload = payload[1:]
        elif kind == "ACK":
            if self.retry is None:
                raise ProtocolError(
                    f"node {self.id}: ACK received but reliable mode is off"
                )
            self.retry.on_ack(msg.src, payload[0])
            return
        self._dispatch(kind, msg.src, payload, distance)

    def _dispatch(
        self, kind: str, src: int, payload: tuple, distance: float
    ) -> None:
        if kind == "REQUEST":
            rx, ry = payload
            if self.key > diagonal_key(rx, ry, src):
                self._send(src, "REPLY")
        elif kind == "REPLY":
            self._replies.append((distance, src))
        elif kind == "CONNECTION":
            self.tree_edges.add(src)
        else:
            raise ProtocolError(f"node {self.id}: unknown message kind {kind!r}")
