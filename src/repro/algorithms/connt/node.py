"""The Co-NNT node protocol (paper Thm 6.2).

Every node ``u`` knows its own coordinates and (an estimate of) ``n``.  It
must find its nearest node of higher *diagonal rank*
(``(x+y, y, id)`` lexicographic — Sec. VI) inside its potential region:

* in probe phase ``i = 1, 2, ...`` the still-searching node broadcasts
  ``REQUEST(x, y)`` to radius ``r_i = sqrt(2^i / n)``;
* every listener of higher rank unicasts ``REPLY()`` back (the requester
  reads the distance off the delivery — physically, off the radio);
* if any replies arrived, the node picks the nearest replier, unicasts
  ``CONNECTION`` to it (both endpoints record the tree edge), and stops;
* a node whose probe radius has reached its potential distance ``L_u``
  without an answer is the highest-ranked node and terminates unconnected.

Because the nearest higher-ranked node lies within ``L_u`` by definition,
the protocol always terminates and reproduces the centralized NNT exactly
(ties in distance are measure-zero under random coordinates).
"""

from __future__ import annotations

import math

from repro.errors import ProtocolError
from repro.geometry.potential import potential_distance
from repro.sim.message import Message
from repro.sim.node import NodeProcess


def diagonal_key(x: float, y: float, node_id: int) -> tuple[float, float, int]:
    """The diagonal-rank comparison key: ``(x+y, y, id)`` lexicographic."""
    return (x + y, y, node_id)


class CoNNTNode(NodeProcess):
    """One processor running the Co-NNT doubling-radius protocol."""

    __slots__ = (
        "x",
        "y",
        "key",
        "L",
        "done",
        "connected_to",
        "tree_edges",
        "last_radius",
        "_replies",
        "_phase",
    )

    def on_start(self) -> None:
        self.x, self.y = self.ctx.coords
        self.key = diagonal_key(self.x, self.y, self.id)
        # L_u is locally computable from own coordinates (closed form).
        self.L = float(potential_distance([[self.x, self.y]])[0])
        self.done = False
        self.connected_to: int | None = None
        self.tree_edges: set[int] = set()
        self.last_radius = 0.0
        self._replies: list[tuple[float, int]] = []
        self._phase = 0

    # -- driver signals -------------------------------------------------------

    def on_wake(self, signal: str, payload: tuple = ()) -> None:
        if signal == "probe":
            if self.done:
                return
            (i,) = payload
            self._phase = int(i)
            radius = min(math.sqrt(2.0**i / max(self.ctx.n_nodes, 1)), math.sqrt(2.0))
            self.last_radius = radius
            self._replies = []
            self.ctx.local_broadcast(radius, "REQUEST", self.x, self.y)
        elif signal == "decide":
            if self.done:
                return
            self._decide()
        else:
            raise ProtocolError(f"unknown wake signal {signal!r}")

    def _decide(self) -> None:
        if self._replies:
            # Nearest replier; ties broken by id for determinism.
            _, target = min(self._replies)
            self.connected_to = target
            self.tree_edges.add(target)
            self.ctx.unicast(target, "CONNECTION")
            self.done = True
        elif self.last_radius >= self.L:
            # Probed the whole potential region and heard nothing: this is
            # the highest-ranked node (paper: "it terminates anyway").
            self.done = True

    # -- messages ---------------------------------------------------------------

    def on_message(self, msg: Message, distance: float) -> None:
        kind = msg.kind
        if kind == "REQUEST":
            rx, ry = msg.payload
            if self.key > diagonal_key(rx, ry, msg.src):
                self.ctx.unicast(msg.src, "REPLY")
        elif kind == "REPLY":
            self._replies.append((distance, msg.src))
        elif kind == "CONNECTION":
            self.tree_edges.add(msg.src)
        else:
            raise ProtocolError(f"node {self.id}: unknown message kind {kind!r}")
