"""repro — reproduction of "Energy-Optimal Distributed Algorithms for
Minimum Spanning Trees" (Choi, Khan, Anil Kumar, Pandurangan; SPAA 2008 /
IEEE JSAC 2009).

The package implements the paper's model and all three algorithms on a
synchronous message-passing simulator with exact energy accounting:

>>> from repro import uniform_points, run_eopt, euclidean_mst, same_tree
>>> pts = uniform_points(200, seed=1)
>>> result = run_eopt(pts)
>>> mst_edges, _ = euclidean_mst(pts)
>>> same_tree(result.tree_edges, mst_edges)
True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.geometry import (
    uniform_points,
    poisson_points,
    perturbed_grid_points,
    clustered_points,
    diagonal_ranks,
    lexicographic_ranks,
    connectivity_radius,
    giant_radius,
)
from repro.rgg import build_rgg, GeometricGraph, is_connected
from repro.mst import (
    euclidean_mst,
    kruskal_mst,
    prim_mst,
    nearest_neighbor_tree,
    verify_spanning_tree,
    tree_cost,
    approximation_ratio,
    same_tree,
)
from repro.percolation import analyze_percolation
from repro.sim import PathLossModel, SynchronousKernel, NodeProcess
from repro.algorithms import (
    AlgorithmResult,
    run_ghs,
    run_modified_ghs,
    run_eopt,
    run_connt,
    run_randnnt,
)

__version__ = "1.0.0"

__all__ = [
    "uniform_points",
    "poisson_points",
    "perturbed_grid_points",
    "clustered_points",
    "diagonal_ranks",
    "lexicographic_ranks",
    "connectivity_radius",
    "giant_radius",
    "build_rgg",
    "GeometricGraph",
    "is_connected",
    "euclidean_mst",
    "kruskal_mst",
    "prim_mst",
    "nearest_neighbor_tree",
    "verify_spanning_tree",
    "tree_cost",
    "approximation_ratio",
    "same_tree",
    "analyze_percolation",
    "PathLossModel",
    "SynchronousKernel",
    "NodeProcess",
    "AlgorithmResult",
    "run_ghs",
    "run_modified_ghs",
    "run_eopt",
    "run_connt",
    "run_randnnt",
    "__version__",
]
