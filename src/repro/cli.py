"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's experiments without writing code:

* ``run``    — one algorithm on one instance, full stats (a thin
  :class:`~repro.runspec.spec.RunSpec` builder over
  :func:`repro.runspec.engine.execute`; ``--spec``/``--emit-spec``
  round-trip the spec as JSON);
* ``algorithms`` — the registered algorithm labels and capabilities;
* ``kernels``    — the registered kernel backends (see
  :mod:`repro.sim.backends`);
* ``fig3a`` / ``fig3b`` — the energy sweep and the slope fits;
* ``fig1`` / ``fig2``   — percolation picture / potential-region lemmas;
* ``tab1``   — the Co-NNT vs MST quality comparison;
* ``thm52``  — giant-component empirics;
* ``lb``     — lower-bound constants;
* ``fuzz``   — stateful protocol fuzzing (corpus replay + hypothesis
  state machines; see :mod:`repro.fuzz` and ``docs/fuzzing.md``);
* ``render`` — SVG of an instance with its MST and NNT.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import BENCH_NS, SweepConfig
from repro.experiments.report import format_table
from repro.runspec import KERNEL_MODES, algorithm_names


def _parse_crash(spec: str) -> tuple[int, int, int | None]:
    """Parse a ``NODE:START[:END]`` crash-window spec."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"crash spec {spec!r} is not NODE:START[:END]"
        )
    try:
        node, start = int(parts[0]), int(parts[1])
        end = int(parts[2]) if len(parts) == 3 else None
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"crash spec {spec!r} has non-integer fields"
        ) from exc
    return (node, start, end)


def _build_fault_plan(args):
    """A :class:`FaultPlan` from the ``run`` flags, or None when unused."""
    if not (args.drop_rate or args.dup_rate or args.crash):
        return None
    from repro.sim.faults import FaultPlan

    return FaultPlan(
        seed=args.fault_seed,
        drop_rate=args.drop_rate,
        dup_rate=args.dup_rate,
        crashes=tuple(args.crash),
    )


def _build_run_spec(args):
    """The :class:`RunSpec` for the ``run`` flags (or the ``--spec`` file)."""
    from pathlib import Path

    from repro.runspec import RunSpec

    if args.spec:
        spec = RunSpec.from_json(Path(args.spec).read_text())
    else:
        spec = RunSpec(
            algorithm=args.algorithm,
            n=args.n,
            seed=args.seed,
            kernel=args.kernel,
            faults=_build_fault_plan(args),
        )
    if getattr(args, "scenario", None):
        from repro.scenario import ScenarioPlan

        spec = spec.with_(
            scenario=ScenarioPlan.from_json(Path(args.scenario).read_text())
        )
    # The instrumentation flags compose with a loaded spec: --perf /
    # --trace on top of --spec FILE turn recording on for this run.
    if args.perf:
        spec = spec.with_(perf=True)
    if args.trace is not None:
        spec = spec.with_(trace=True)
    return spec


def _cmd_run(args) -> int:
    from pathlib import Path

    from repro.experiments.report import format_phase_summary
    from repro.perf import format_snapshot
    from repro.runspec import execute
    from repro.trace import export_events_jsonl

    if args.algorithm is None and not args.spec:
        print("repro run: needs an algorithm label or --spec FILE", file=sys.stderr)
        return 2
    spec = _build_run_spec(args)
    if args.emit_spec:
        out = Path(args.emit_spec)
        out.write_text(spec.to_json())
        print(f"spec written to {out}")
        print(f"spec_hash: {spec.spec_hash()}")
        return 0

    store = None
    if args.cache or args.cache_path:
        from repro.store import ResultStore

        store = ResultStore(args.cache_path)
        hits_before = store.stats()["hits"]
    report = execute(spec, store=store)
    if store is not None:
        outcome = "hit" if store.stats()["hits"] > hits_before else "miss (stored)"
        print(f"cache: {outcome}  key={spec.result_key()[:16]}  {store.path}")
    res = report.result
    print(res.summary())
    print("\nper message kind:")
    rows = [(k, m, f"{e:.4f}") for k, m, e in res.stats.kind_table()]
    print(format_table(["kind", "messages", "energy"], rows))
    if res.stats.energy_by_stage:
        print("\nper stage:")
        rows = [(s, m, f"{e:.4f}") for s, m, e in res.stats.stage_table()]
        print(format_table(["stage", "messages", "energy"], rows))
    if spec.faults is not None:
        print("\nfault plane:")
        rows = report.fault_table()
        if rows:
            print(
                format_table(["kind", "dropped", "crash-dropped", "dup"], rows)
            )
        else:
            print("(no deliveries dropped, duplicated or crash-dropped)")
    if report.trace is not None:
        if args.trace is not None:
            path = export_events_jsonl(report.trace, args.trace)
            print(f"\ntrace: {len(report.trace)} events -> {path}")
        else:
            print(f"\ntrace: {len(report.trace)} events")
        print(format_phase_summary(report.trace))
    if report.perf is not None:
        print("\nperf report:")
        print(format_snapshot(report.perf))
    return 0


def _cmd_algorithms(args) -> int:
    from repro.runspec import algorithm_entries

    rows = [
        (
            e.name,
            "yes" if e.supports_faults else "no",
            "yes" if e.supports_kernel_mode else "no",
            "yes" if e.supports_scenario else "no",
            e.summary,
        )
        for e in algorithm_entries()
    ]
    print(
        format_table(
            ["algorithm", "faults", "alt kernels", "scenarios", "summary"], rows
        )
    )
    return 0


def _cmd_scenarios(args) -> int:
    """List the scenario presets, or emit one as a plan JSON file."""
    import inspect
    from pathlib import Path

    from repro.scenario.mobility import PRESETS

    if args.emit:
        factory = PRESETS[args.preset]
        plan = factory(args.n, seed=args.seed)
        out = Path(args.emit)
        out.write_text(plan.to_json(indent=1))
        print(
            f"{args.preset} plan for n={args.n} seed={args.seed}: "
            f"{len(plan.events)} events -> {out}"
        )
        print(f"run it:  repro run MAINT -n {args.n} --scenario {out}")
        return 0
    rows = [
        (name, (inspect.getdoc(factory) or "").splitlines()[0])
        for name, factory in PRESETS.items()
    ]
    print(format_table(["preset", "summary"], rows))
    print(
        "\nemit one:  repro scenarios --emit PLAN.json --preset churn -n 40 --seed 0"
    )
    return 0


def _cmd_kernels(args) -> int:
    from repro.sim.backends import kernel_entries

    rows = [
        (
            e.name,
            "yes" if e.reference else "no",
            e.instance_layout,
            e.summary,
        )
        for e in kernel_entries()
    ]
    print(format_table(["kernel", "reference", "layout", "summary"], rows))
    return 0


def _cmd_cache(args) -> int:
    from repro.store import ResultStore

    with ResultStore(args.store) as store:
        if args.action == "prune":
            evicted = store.prune(args.max_bytes)
            print(f"pruned {evicted} entries from {store.path}")
        elif args.action == "clear":
            dropped = store.clear()
            print(f"cleared {dropped} entries from {store.path}")
        s = store.stats()
        rows = [(k, str(v)) for k, v in s.items()]
        print(format_table(["stat", "value"], rows))
        if args.action == "stats":
            entries = store.entry_rows()
            if entries:
                print("\nnewest entries:")
                print(
                    format_table(
                        ["key", "algorithm", "n", "bytes"],
                        [(k[:16], a, n, b) for k, a, n, b in entries],
                    )
                )
    return 0


def _cmd_trace_diff(args) -> int:
    from repro.trace.diff import diff_files, format_divergence

    d = diff_files(args.left, args.right, context=args.context)
    print(format_divergence(d, args.left, args.right))
    return 1 if d is not None else 0


def _cmd_fuzz(args) -> int:
    """Replay the corpus, then run the stateful fuzz machines."""
    from repro.fuzz.corpus import iter_corpus, load_scenario, replay_scenario

    rc = 0
    corpus_files = iter_corpus(args.corpus) if args.corpus else []
    for path in corpus_files:
        try:
            replay_scenario(load_scenario(path))
            print(f"corpus  {path.name}: ok")
        except Exception as exc:
            rc = 1
            print(f"corpus  {path.name}: FAILED ({type(exc).__name__}: {exc})")
    if corpus_files:
        print(f"corpus  {len(corpus_files)} scenario(s) replayed")

    from repro.fuzz.machine import run_fuzz

    machines = (
        ["ghs", "retry", "connt", "maint"]
        if args.machine == "all"
        else [args.machine]
    )
    for name in machines:
        out = run_fuzz(
            name,
            examples=args.examples,
            steps=args.steps,
            seed=args.seed,
            export_dir=args.out,
        )
        if out.ok:
            print(f"machine {name}: ok ({args.examples} examples x {args.steps} steps)")
        else:
            rc = 1
            print(f"machine {name}: FAILED — {out.error}")
            for kind, path in out.artifacts.items():
                print(f"  {kind}: {path}")
    return rc


def _cmd_serve(args) -> int:
    """Run the HTTP run service (docs/architecture.md, serve layer)."""
    import asyncio

    from repro.serve import serve

    store = None
    if not args.no_cache:
        from repro.store import ResultStore

        store = ResultStore(args.cache_path)

    def ready(bound) -> None:
        where = store.path if store is not None else "off"
        print(
            f"repro serve listening on http://{bound[0]}:{bound[1]}  "
            f"(store: {where}, backend: {args.backend})",
            flush=True,
        )

    try:
        asyncio.run(
            serve(
                args.host,
                args.port,
                store=store,
                backend=args.backend,
                workers=args.workers,
                ready=ready,
            )
        )
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        if store is not None:
            store.close()
    return 0


def _cmd_fig3a(args) -> int:
    from repro.experiments.figures import fig3a_energy, fig3a_plot, fig3a_rows

    ns = tuple(n for n in BENCH_NS if n <= args.max_n)
    cfg = SweepConfig(ns=ns, seeds=tuple(range(args.seeds)))
    sweep = fig3a_energy(cfg)
    headers = ["n"] + [f"E[{a}]" for a in cfg.algorithms]
    print(format_table(headers, fig3a_rows(sweep)))
    print()
    print(fig3a_plot(sweep))
    if args.save:
        from repro.experiments.io import save_sweep

        print(f"\nsweep saved to {save_sweep(sweep, args.save)}")
    return 0


def _cmd_fig3b(args) -> int:
    from repro.experiments.figures import fig3a_energy, fig3b_plot, fig3b_slopes
    from repro.experiments.io import load_sweep

    if args.load:
        sweep = load_sweep(args.load)
    else:
        ns = tuple(n for n in BENCH_NS if n <= args.max_n)
        sweep = fig3a_energy(SweepConfig(ns=ns, seeds=tuple(range(args.seeds))))
    fits = fig3b_slopes(sweep, min_n=args.min_n)
    rows = [
        (a, f"{f.slope:.2f}", f"{f.r_squared:.3f}") for a, f in fits.items()
    ]
    print(format_table(["algorithm", "slope", "R^2"], rows))
    print()
    print(fig3b_plot(sweep, min_n=args.min_n))
    return 0


def _cmd_fig1(args) -> int:
    from repro.experiments.figures import fig1_percolation

    r = fig1_percolation(n=args.n, c1=args.c1, seed=args.seed)
    print(
        f"n={r.n}  r={r.radius:.4f}  giant={r.giant_fraction:.1%}  "
        f"max small region={r.max_small_region_nodes} nodes"
    )
    print(r.good_cluster_picture)
    return 0


def _cmd_fig2(args) -> int:
    from repro.experiments.figures import fig2_potential

    r = fig2_potential(n=args.n, seed=args.seed)
    rows = [
        ("min potential angle (Lemma 6.1: >= 0.5)", f"{r.min_potential_angle:.4f}"),
        ("n * E[d_u^2] (Thm 6.1: <= 4)", f"{r.n * r.mean_sq_connect_distance:.3f}"),
        ("n * 2/(n alpha) bound (Lemma 6.2)", f"{r.n * r.expected_sq_bound:.3f}"),
        ("max d_u / sqrt(log n / n) (Lemma 6.3)", f"{r.lemma63_constant:.3f}"),
    ]
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_tab1(args) -> int:
    from repro.experiments.tables import PAPER_TAB1_EDGE_SUMS, tab1_quality

    rows = []
    for row in tab1_quality(ns=tuple(args.ns), seed=args.seed):
        paper = PAPER_TAB1_EDGE_SUMS.get(row.n, ("-", "-"))
        rows.append(
            (
                row.n,
                f"{row.connt_edge_sum:.1f}",
                paper[0],
                f"{row.mst_edge_sum:.1f}",
                paper[1],
                f"{row.connt_sq_sum:.2f}",
                f"{row.mst_sq_sum:.2f}",
            )
        )
    print(
        format_table(
            ["n", "CoNNT len", "paper", "MST len", "paper", "CoNNT d^2", "MST d^2"],
            rows,
        )
    )
    return 0


def _cmd_thm52(args) -> int:
    from repro.experiments.tables import thm52_giant

    rows = [
        (r.n, f"{r.radius:.4f}", f"{r.giant_fraction:.1%}", r.second_component,
         f"{r.beta_estimate:.2f}")
        for r in thm52_giant(ns=tuple(args.ns), c1=args.c1, seed=args.seed)
    ]
    print(format_table(["n", "r1", "giant", "2nd comp", "beta"], rows))
    return 0


def _cmd_lb(args) -> int:
    from repro.experiments.tables import lower_bound_table

    rows = [
        (r.n, f"{r.l_mst:.3f}", r.knn_k, f"{r.knn_min_energy:.2e}",
         f"{r.lemma41_b:.1f}", f"{r.omega_log_curve:.2f}")
        for r in lower_bound_table(ns=tuple(args.ns), seed=args.seed)
    ]
    print(
        format_table(
            ["n", "L_MST", "k", "min kNN energy", "b", "log n/pi"], rows
        )
    )
    return 0


def _cmd_render(args) -> int:
    from repro.geometry.points import uniform_points
    from repro.mst.delaunay import euclidean_mst
    from repro.mst.nnt import nearest_neighbor_tree
    from repro.viz.svg import render_instance

    pts = uniform_points(args.n, seed=args.seed)
    mst, _ = euclidean_mst(pts)
    nnt, _ = nearest_neighbor_tree(pts)
    canvas = render_instance(
        pts, {"MST": mst, "NNT": nnt}, title=f"n={args.n} seed={args.seed}"
    )
    print(f"written {canvas.save(args.output)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Energy-optimal distributed MST — paper reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    perf_help = "enable repro.perf timers/counters and print the table after"

    run = sub.add_parser("run", help="run one algorithm on one instance")
    run.add_argument(
        "algorithm",
        nargs="?",
        choices=list(algorithm_names()),
        help="registered algorithm label (optional with --spec)",
    )
    run.add_argument("-n", type=int, default=500)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--kernel",
        choices=list(KERNEL_MODES),
        default="fast",
        help="kernel implementation (legacy = frozen pre-optimization "
        "reference; GHS family only)",
    )
    run.add_argument(
        "--spec",
        metavar="FILE.json",
        help="load the full RunSpec from FILE (instance and fault flags "
        "are then ignored; --perf/--trace still compose)",
    )
    run.add_argument(
        "--scenario",
        metavar="FILE.json",
        help="attach a scenario plan (timed churn/mobility events; MAINT "
        "workload) from FILE; composes with --spec; see `repro scenarios`",
    )
    run.add_argument(
        "--emit-spec",
        metavar="FILE.json",
        help="write the assembled RunSpec JSON to FILE and exit "
        "without running",
    )
    run.add_argument(
        "--cache",
        action="store_true",
        help="memoize through the persistent result store (default "
        "location: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    run.add_argument(
        "--cache-path",
        metavar="FILE.sqlite",
        help="result-store database to use (implies --cache)",
    )
    run.add_argument("--perf", action="store_true", help=perf_help)
    run.add_argument(
        "--trace",
        metavar="OUT.jsonl",
        help="record a repro.trace event stream, write it here as JSONL "
        "and print the per-phase summary",
    )
    run.add_argument(
        "--drop-rate",
        type=float,
        default=0.0,
        help="per-delivery message loss probability (fault plane)",
    )
    run.add_argument(
        "--dup-rate",
        type=float,
        default=0.0,
        help="per-delivery duplicate probability (fault plane)",
    )
    run.add_argument(
        "--crash",
        type=_parse_crash,
        action="append",
        default=[],
        metavar="NODE:START[:END]",
        help="crash window: node radio off for rounds [START, END) "
        "(END omitted = forever); repeatable",
    )
    run.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault plane",
    )
    # The run command manages its own instrumentation through the spec
    # engine; main()'s global perf/trace wrapper must not double-record.
    run.set_defaults(func=_cmd_run, spec_managed=True)

    algs = sub.add_parser(
        "algorithms", help="list the registered algorithms and capabilities"
    )
    algs.set_defaults(func=_cmd_algorithms)

    kerns = sub.add_parser(
        "kernels", help="list the registered kernel backends"
    )
    kerns.set_defaults(func=_cmd_kernels)

    scen = sub.add_parser(
        "scenarios",
        help="list scenario presets or emit one as a plan JSON file",
    )
    scen.add_argument(
        "--emit",
        metavar="FILE.json",
        help="write the generated ScenarioPlan JSON here",
    )
    scen.add_argument(
        "--preset",
        choices=("churn", "mobility", "mixed"),
        default="churn",
        help="which generator to use (see `repro scenarios`)",
    )
    scen.add_argument("-n", type=int, default=40, help="initial instance size")
    scen.add_argument("--seed", type=int, default=0, help="schedule seed")
    scen.set_defaults(func=_cmd_scenarios)

    cache = sub.add_parser(
        "cache", help="inspect or maintain the persistent result store"
    )
    cache.add_argument(
        "action",
        choices=("stats", "prune", "clear"),
        help="stats = counters and newest entries; prune = evict LRU "
        "entries past the byte bound; clear = drop every entry",
    )
    cache.add_argument(
        "--store",
        metavar="FILE.sqlite",
        help="result-store database (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="byte bound for prune (default: the store's configured bound)",
    )
    cache.set_defaults(func=_cmd_cache)

    f3a = sub.add_parser("fig3a", help="energy-vs-n sweep (Fig. 3a)")
    f3a.add_argument("--max-n", type=int, default=2000)
    f3a.add_argument("--seeds", type=int, default=1)
    f3a.add_argument("--save", help="write the sweep JSON here")
    f3a.add_argument("--perf", action="store_true", help=perf_help)
    f3a.set_defaults(func=_cmd_fig3a)

    f3b = sub.add_parser("fig3b", help="log-log-log slope fits (Fig. 3b)")
    f3b.add_argument("--max-n", type=int, default=2000)
    f3b.add_argument("--seeds", type=int, default=1)
    f3b.add_argument("--min-n", type=int, default=100)
    f3b.add_argument("--load", help="reuse a sweep JSON from fig3a --save")
    f3b.add_argument("--perf", action="store_true", help=perf_help)
    f3b.set_defaults(func=_cmd_fig3b)

    f1 = sub.add_parser("fig1", help="percolation picture (Fig. 1)")
    f1.add_argument("-n", type=int, default=3000)
    f1.add_argument("--c1", type=float, default=3.0)
    f1.add_argument("--seed", type=int, default=0)
    f1.set_defaults(func=_cmd_fig1)

    f2 = sub.add_parser("fig2", help="potential-region lemma checks (Fig. 2)")
    f2.add_argument("-n", type=int, default=2000)
    f2.add_argument("--seed", type=int, default=0)
    f2.set_defaults(func=_cmd_fig2)

    t1 = sub.add_parser("tab1", help="Co-NNT vs MST quality (Sec. VII)")
    t1.add_argument("--ns", type=int, nargs="+", default=[1000, 5000])
    t1.add_argument("--seed", type=int, default=0)
    t1.set_defaults(func=_cmd_tab1)

    t52 = sub.add_parser("thm52", help="giant-component empirics (Thm 5.2)")
    t52.add_argument("--ns", type=int, nargs="+", default=[500, 1000, 2000, 4000])
    t52.add_argument("--c1", type=float, default=1.4)
    t52.add_argument("--seed", type=int, default=0)
    t52.set_defaults(func=_cmd_thm52)

    lb = sub.add_parser("lb", help="lower-bound constants (Sec. IV)")
    lb.add_argument("--ns", type=int, nargs="+", default=[500, 1000, 2000])
    lb.add_argument("--seed", type=int, default=0)
    lb.set_defaults(func=_cmd_lb)

    td = sub.add_parser(
        "trace-diff",
        help="report the first divergent event between two trace JSONL files",
    )
    td.add_argument("left")
    td.add_argument("right")
    td.add_argument(
        "--context",
        type=int,
        default=3,
        help="agreed-upon events to print before the divergence",
    )
    td.set_defaults(func=_cmd_trace_diff)

    fz = sub.add_parser(
        "fuzz",
        help="stateful protocol fuzzing: corpus replay + hypothesis machines",
    )
    fz.add_argument(
        "--machine",
        choices=["ghs", "retry", "connt", "maint", "all"],
        default="all",
        help="which state machine(s) to run",
    )
    fz.add_argument(
        "--examples", type=int, default=20, help="hypothesis examples per machine"
    )
    fz.add_argument(
        "--steps", type=int, default=30, help="max rule applications per example"
    )
    fz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="scenario-offset seed (runs stay deterministic per seed)",
    )
    fz.add_argument(
        "--corpus",
        default=None,
        help="directory of saved counterexample scenarios to replay first",
    )
    fz.add_argument(
        "--out",
        default="fuzz-failure",
        help="directory for counterexample artifacts on failure",
    )
    fz.set_defaults(func=_cmd_fuzz)

    sv = sub.add_parser(
        "serve",
        help="HTTP run service: submit RunSpecs over the wire, results "
        "memoized through the store",
    )
    sv.add_argument("--host", default="127.0.0.1", help="bind address")
    sv.add_argument(
        "--port",
        type=int,
        default=8177,
        help="bind port (0 picks an ephemeral port and prints it)",
    )
    sv.add_argument(
        "--cache-path",
        default=None,
        help="result-store database (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    sv.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without a result store (every submission recomputes)",
    )
    sv.add_argument(
        "--backend",
        choices=["serial", "process"],
        default="process",
        help="engine fan-out backend for submitted runs",
    )
    sv.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: CPU count)",
    )
    sv.set_defaults(func=_cmd_serve, spec_managed=True)

    rd = sub.add_parser("render", help="SVG of an instance with MST + NNT")
    rd.add_argument("-n", type=int, default=300)
    rd.add_argument("--seed", type=int, default=0)
    rd.add_argument("-o", "--output", default="instance.svg")
    rd.set_defaults(func=_cmd_render)

    return p


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "spec_managed", False):
        # Spec-managed commands record perf/trace through the engine's
        # isolated snapshot lifecycle instead of the global wrapper.
        return args.func(args)
    want_perf = getattr(args, "perf", False)
    trace_out = getattr(args, "trace", None)
    if not want_perf and trace_out is None:
        return args.func(args)
    # Reset at the run boundary: repeated in-process invocations (tests,
    # notebooks) must not accumulate a previous run's numbers.
    if want_perf:
        from repro.perf import perf

        perf.reset()
        perf.enable()
    if trace_out is not None:
        from repro.trace import trace

        trace.reset()
        trace.enable()
    try:
        rc = args.func(args)
    finally:
        if want_perf:
            perf.disable()
        if trace_out is not None:
            trace.disable()
    if trace_out is not None:
        from repro.experiments.report import format_phase_summary

        path = trace.export_jsonl(trace_out)
        print(f"\ntrace: {len(trace.events)} events -> {path}")
        print(format_phase_summary(trace.events))
    if want_perf:
        print("\nperf report:")
        print(perf.report())
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
