"""The message record exchanged between simulated nodes.

Messages are deliberately minimal (``__slots__``, positional payload
tuples): simulations at n = 5000 push through hundreds of thousands of
messages, so per-message overhead matters (see the HPC guide's advice on
allocation-light inner loops).

The paper bounds message size at O(log n) bits; protocols in this repo
respect that by construction (payloads are O(1) node ids / fragment ids /
coordinates), and the tests assert it for each protocol's message kinds.
"""

from __future__ import annotations


class Message:
    """One transmitted message.

    Attributes
    ----------
    kind:
        Protocol-level message type (e.g. ``"TEST"``, ``"INITIATE"``).
    src:
        Sender node id.
    dst:
        Recipient node id for unicast, ``None`` for a local broadcast.
    payload:
        Positional payload tuple; meaning is defined by each protocol.
    radius:
        Transmission radius: the unicast distance or broadcast radius.
        Set by the kernel at send time (this is what gets charged).
    """

    __slots__ = ("kind", "src", "dst", "payload", "radius")

    def __init__(
        self,
        kind: str,
        src: int,
        dst: int | None,
        payload: tuple,
        radius: float,
    ) -> None:
        self.kind = kind
        self.src = src
        self.dst = dst
        self.payload = payload
        self.radius = radius

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = "*" if self.dst is None else self.dst
        return (
            f"Message({self.kind}, {self.src}->{target}, "
            f"payload={self.payload!r}, radius={self.radius:.4g})"
        )
