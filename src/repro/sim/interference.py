"""Radio-interference modelling (paper Sec. VIII).

The main results assume collision-free rounds; the paper notes that
combining its algorithms with a contention-resolution protocol in the
Radio Broadcast Network (RBN) model costs *constant-factor energy* and a
*larger running time*.  :class:`ContentionKernel` makes that concrete:

* In the RBN model a transmission from ``u`` is received by ``v`` iff no
  other node whose signal reaches ``v`` transmits in the same slot.
* The kernel takes each synchronous round's transmissions, builds their
  conflict graph (two transmissions conflict when one's signal footprint
  covers any *intended* receiver of the other), greedy-colors it, and
  plays the color classes in consecutive interference-free slots.

This models an idealised TDMA contention-resolution layer: every message
is still transmitted exactly once (energy identical to the collision-free
kernel — the paper's "constant factor" is 1 for perfect scheduling), but
the round count inflates by the local contention — which is what the
paper's time-complexity caveat is about.  The slot count per round is at
most (max conflict degree + 1).
"""

from __future__ import annotations

import numpy as np

from repro.sim.kernel import SynchronousKernel
from repro.trace import trace


class ContentionKernel(SynchronousKernel):
    """Synchronous kernel with RBN contention resolution.

    Drop-in replacement for :class:`SynchronousKernel`: protocols and
    drivers run unchanged, trees and energies are identical, but
    ``rounds`` reflects the serialisation into interference-free slots.

    Round/slot accounting: this kernel's :meth:`step` fully replaces the
    base implementation (it never calls ``super().step()``), and it
    advances ``rounds`` by exactly one per interference-free slot — so
    over a run ``rounds == slots`` plus any idle :meth:`tick` rounds.
    There is no separate "logical round" counter and no double count:
    one base-kernel round that serialises into ``k`` slots costs ``k``
    rounds here, which is precisely the RBN time-inflation the paper's
    Sec. VIII caveat describes.

    Attributes
    ----------
    slots:
        Total interference-free slots used (>= rounds of the base kernel).
    max_slot_factor:
        Worst per-round inflation observed (slots used in one round);
        0 until the first non-empty round is stepped.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Conflict grouping needs the flat, send-ordered delivery list
        # (greedy coloring is defined over transmission arrival order).
        self._flat_pending = True
        self.slots = 0
        # 0, not 1: a run that never steps a non-empty round has observed
        # no inflation, and must not report a factor of 1.
        self.max_slot_factor = 0

    def step(self) -> int:
        """Play one base round's transmissions in interference-free slots.

        Advances ``rounds`` once per slot (see the class docstring).
        With a fault plane active, fates are drawn at delivery time with
        the slot's round number: contention reshuffles *when* a message
        arrives, so its loss draw legitimately differs from the
        collision-free kernel's — determinism holds per kernel class.
        """
        if not self._pending:
            return 0
        deliveries = self._pending
        self._pending = []

        # Group deliveries by physical transmission (same Message object).
        by_msg: dict[int, list[tuple[int, object, float]]] = {}
        order: list = []
        for item in deliveries:
            key = id(item[1])
            if key not in by_msg:
                by_msg[key] = []
                order.append(item[1])
            by_msg[key].append(item)

        # Conflict graph over transmissions.  Footprint of a transmission =
        # every node within its radius of the sender (not just intended
        # receivers): a unicast still radiates.
        senders = np.array([m.src for m in order])
        radii = np.array([m.radius for m in order])
        receivers = [
            np.array([dst for dst, _, _ in by_msg[id(m)]], dtype=np.int64)
            for m in order
        ]
        k = len(order)
        conflicts: list[set[int]] = [set() for _ in range(k)]
        pts = self.points
        for i in range(k):
            for j in range(i + 1, k):
                if self._interferes(pts, senders, radii, receivers, i, j) or (
                    self._interferes(pts, senders, radii, receivers, j, i)
                ):
                    conflicts[i].add(j)
                    conflicts[j].add(i)

        # Greedy coloring in arrival order: slot = smallest free color.
        color = [-1] * k
        for i in range(k):
            used = {color[j] for j in conflicts[i] if color[j] >= 0}
            c = 0
            while c in used:
                c += 1
            color[i] = c
        n_slots = max(color) + 1 if k else 0
        self.slots += n_slots
        self.max_slot_factor = max(self.max_slot_factor, n_slots)

        # Deliver slot by slot (deterministic recipient order within a slot).
        nodes = self.nodes
        rx = self.rx_cost
        ledger = self._ledger
        fp = self.faults
        for slot in range(n_slots):
            batch: list[tuple[int, object, float]] = []
            for i in range(k):
                if color[i] == slot:
                    batch.extend(by_msg[id(order[i])])
            batch.sort(key=lambda t: t[0])
            if fp is not None:
                batch = self._apply_faults_list(batch)
            for dst, msg, dist in batch:
                if rx:
                    ledger.charge_rx(dst, rx)
                nodes[dst].on_message(msg, dist)
            self.rounds += 1
            if trace.enabled:
                self._trace_round()
            self._round_advanced()
        return len(deliveries)

    @staticmethod
    def _interferes(pts, senders, radii, receivers, i: int, j: int) -> bool:
        """Does transmission ``j``'s signal cover any intended receiver of
        ``i`` (other than when j == i's own sender, excluded by caller)?"""
        rec = receivers[i]
        if len(rec) == 0:
            return False
        d = pts[rec] - pts[senders[j]]
        dist2 = np.sum(d * d, axis=1)
        return bool((dist2 <= radii[j] * radii[j] * (1 + 1e-12)).any())
