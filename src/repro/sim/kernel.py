"""The synchronous simulation kernel.

Semantics (paper Sec. II):

* Time advances in discrete rounds.  Messages sent in round ``t`` are
  delivered at the start of round ``t+1``; handlers run sequentially in a
  deterministic order (by recipient id, then send order), which is sound
  because nodes cannot observe intra-round ordering in a synchronous
  system.
* ``unicast(dst, ...)`` models a directed transmission at exactly the
  power needed to reach ``dst``: it costs ``a d(src,dst)^alpha`` and is
  delivered to ``dst`` only (other nodes in range ignore it).
* ``local_broadcast(R, ...)`` costs ``a R^alpha`` and is delivered to every
  node within distance ``R`` of the sender.
* Transmissions are capped by the kernel's ``max_radius`` (the maximum
  power level); drivers may raise it between algorithm steps, modelling
  the adaptive power control EOPT relies on.
* No collisions/losses: every transmission succeeds (the paper defers
  physical-interference modelling to future work; see DESIGN.md).

Hot-path layout (see docs/performance.md for the full story):

* **Neighbor table** — a CSR array of (neighbor id, distance) per node,
  sorted by distance, built lazily from one ``cKDTree.query_pairs`` call
  and invalidated only when ``set_max_radius`` *raises* the power cap.
  ``local_broadcast`` becomes a cached-slice lookup plus one
  ``searchsorted`` cutoff; ``unicast`` reads a cached distance.  Kernels
  whose power cap covers nearly the whole square (Co-NNT, flooding) would
  need an O(n^2) table, so a density gate falls back to per-call KD-tree
  queries there — the pre-table behaviour.
* **Broadcast descriptors** — ``local_broadcast`` enqueues a single
  ``(message, recipients-view, distances-view, seq)`` descriptor (O(1)
  per send, no per-recipient Python loop); unicasts go to a small flat
  list.  ``step`` expands the descriptors with numpy and orders all
  deliveries by one ``lexsort`` over (recipient id, send sequence) — the
  same stable order as sorting the send-ordered flat list by recipient.
  Subclasses that need the flat, send-ordered delivery list (the
  contention kernel, the legacy reference kernel) set
  ``_flat_pending = True``.
* **Batched charges** — the headline ``energy_total``/``messages_total``
  stay exact running sums, but the per-kind / per-stage / per-node
  breakdowns accumulate in plain dict/list accumulators flushed into the
  :class:`~repro.sim.energy.EnergyLedger` when ``stats()`` (or the
  ``ledger`` property) is read.
* **Flood planes** — some protocol stages are pure cache refreshes with
  no control flow: every sender broadcasts one integer (the GHS family's
  HELLO and ANNOUNCE floods), every receiver only overwrites a cache
  entry.  :meth:`SynchronousKernel.broadcast_plane` (and the per-sender
  :meth:`Context.plane_broadcast`) charge the senders exactly like
  ``local_broadcast`` but skip :class:`~repro.sim.message.Message`
  construction and per-recipient dispatch entirely: ``step`` expands the
  plane's (sender, recipient) edges straight from the CSR table and
  hands the whole batch to one registered ``plane handler``
  (:meth:`set_plane_handler`) that applies the updates with numpy.
  Planes are *order-free by construction* — receivers only overwrite
  per-sender cache slots — so the one documented relaxation versus the
  legacy kernel is that deliveries **within** a plane round are not
  interleaved per-message with that round's unicasts.  Energy totals,
  message counts, round counts and recipient sets stay bit-identical.

Delivery order (outside plane rounds), energy totals, message counts and
round counts are bit-identical to the pre-optimization kernel (kept
verbatim as :class:`~repro.sim.legacy.LegacyKernel`);
``tests/test_hotpath_equivalence.py`` pins that down.

**Fault plane** — an optional, seeded :class:`~repro.sim.faults.FaultPlan`
(message loss, duplicate delivery, node crash windows) is applied at
*delivery* time on every path (flat, unicast-only, merged, flood plane):
the sender's TX charge stands, the lost/extra copies are tallied per kind
in the ledger, and ``rx_cost`` is charged only for copies actually
delivered.  Fates are counter-free hashes of ``(seed, src, dst, kind,
round)``, so runs are deterministic and identical across ``planes=True``
/ ``planes=False``/legacy delivery.  With ``faults=None`` (the default)
every hot path is untouched — see ``docs/model.md``, "Fault model".
"""

from __future__ import annotations

import math
import operator
from typing import Callable, Iterable, Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import GeometryError, PowerLimitError, SimulationError
from repro.perf import perf
from repro.trace import trace
from repro.sim.energy import EnergyLedger, SimStats
from repro.sim.faults import FaultPlan, FaultPlane
from repro.sim.message import Message
from repro.sim.node import NodeProcess
from repro.sim.power import PathLossModel

#: Relative slack on the max-power check, to absorb float rounding when a
#: protocol transmits at exactly its discovered neighbour distance.
_POWER_EPS = 1e-9

#: Density gate for the neighbor table: skip building it when the expected
#: number of directed (src, dst) entries exceeds ``max(_TABLE_MIN_BUDGET,
#: _TABLE_DEGREE_BUDGET * n)`` — a cap of sqrt(2) over thousands of nodes
#: is an O(n^2) table nobody ever slices.
_TABLE_DEGREE_BUDGET = 128
_TABLE_MIN_BUDGET = 65536

#: Sentinel cached when the density gate rejected a table at the current
#: ``max_radius`` (distinct from "not built yet").
_NO_TABLE = object()

#: Sort key for unicast-only rounds (stable sort by recipient id).
_BY_DST = operator.itemgetter(0)


def _dict_delta(cur: dict, prev: dict) -> dict:
    """Nonzero per-key differences ``cur - prev`` (trace round events)."""
    out = {}
    for key, val in cur.items():
        d = val - prev.get(key, 0)
        if d:
            out[key] = d
    return out


def table_within_budget(n: int, radius: float) -> bool:
    """Whether the density gate admits a CSR table for ``(n, radius)``.

    The same budget :meth:`SynchronousKernel._build_neighbor_table`
    applies; exposed so out-of-process table builders (the shared-memory
    instance fabric) publish exactly the tables a kernel would build.
    """
    est_entries = n * (n - 1) * min(1.0, math.pi * radius * radius)
    return est_entries <= max(_TABLE_MIN_BUDGET, _TABLE_DEGREE_BUDGET * n)


def neighbor_csr_arrays(
    points: np.ndarray, radius: float, *, tree: "cKDTree | None" = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The neighbor-table CSR payload ``(indptr, ids, dists)`` at ``radius``.

    Exactly the arrays :meth:`SynchronousKernel._build_neighbor_table`
    assembles — same ``query_pairs`` enumeration, same float distance
    expression, same ``(src, dist)`` lexsort — returned as plain arrays
    so they can be staged in shared memory and rehydrated elsewhere via
    :func:`make_neighbor_table`.
    """
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    if tree is None:
        tree = cKDTree(pts)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    if len(pairs):
        src = np.concatenate([pairs[:, 0], pairs[:, 1]])
        dst = np.concatenate([pairs[:, 1], pairs[:, 0]])
        diff = pts[src] - pts[dst]
        dx, dy = diff[:, 0], diff[:, 1]
        # Same float expression as the scalar unicast path, so the
        # cached distances are bit-identical to recomputation.
        dist = np.sqrt(dx * dx + dy * dy)
        order = np.lexsort((dist, src))
        src, dst, dist = src[order], dst[order], dist[order]
    else:
        src = np.zeros(0, dtype=np.int64)
        dst = np.zeros(0, dtype=np.int64)
        dist = np.zeros(0)
    indptr = np.searchsorted(src, np.arange(n + 1))
    return indptr.astype(np.int64), dst.astype(np.int64, copy=False), dist


def make_neighbor_table(
    radius: float, indptr: np.ndarray, ids: np.ndarray, dists: np.ndarray
) -> "_NeighborTable":
    """Rehydrate a neighbor table from its CSR payload arrays.

    The arrays may be views over shared memory; the table never writes
    to them (its lazy mirrors and caches are private side tables).
    """
    return _NeighborTable(float(radius), list(indptr), ids, dists)


#: Optional neighbor-table provider hook: ``fn(points, radius) ->
#: _NeighborTable | None``.  Consulted before every in-kernel CSR build;
#: a non-None return is used verbatim.  The shared-memory instance
#: fabric registers a provider in pool workers so kernels attach the
#: parent's prebuilt tables instead of re-deriving them.
_table_provider: Callable | None = None


def set_table_provider(fn: Callable | None) -> None:
    """Install (or clear, with ``None``) the neighbor-table provider."""
    global _table_provider
    _table_provider = fn


def concat_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate the half-open index ranges ``[starts[i], ends[i])``.

    Vectorized multi-``arange``: the result lists every index of every
    range, in range order.  Zero-length ranges are skipped naturally.
    """
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    out = np.repeat(starts.astype(np.intp, copy=False), counts)
    shift = np.concatenate(([0], np.cumsum(counts)[:-1]))
    out += np.arange(total, dtype=np.intp) - np.repeat(shift, counts)
    return out


class _NeighborTable:
    """CSR adjacency of every pair within ``max_radius``, sorted by distance.

    ``ids``/``dists`` are the CSR payload arrays (``searchsorted`` radius
    cutoffs need the float64 array; broadcast descriptors keep views into
    both).  ``ids_list``/``dists_list`` mirror them as plain Python lists
    so the per-source ``{neighbor: distance}`` dicts (``dist_of``, built
    lazily on a node's first unicast) hold native ints and floats.  The
    mirrors are built lazily: at n=10^6 an RGG table holds ~10^8 entries
    and the eager ``tolist()`` copies alone cost multiple GB, while the
    only consumer of the full mirrors is the legacy kernel's flat
    broadcast path (``tolist`` of a float64/intp array yields the same
    native values either way, so laziness is unobservable).
    """

    __slots__ = (
        "max_radius",
        "indptr",
        "indptr_arr",
        "ids",
        "dists",
        "_ids_list",
        "_dists_list",
        "dist_of",
        "_rev",
    )

    def __init__(
        self,
        max_radius: float,
        indptr: list[int],
        ids: np.ndarray,
        dists: np.ndarray,
    ) -> None:
        self.max_radius = max_radius
        self.indptr = indptr
        self.indptr_arr = np.asarray(indptr, dtype=np.intp)
        self.ids = ids
        self.dists = dists
        self._ids_list: list[int] | None = None
        self._dists_list: list[float] | None = None
        self.dist_of: list[dict[int, float] | None] = [None] * (len(indptr) - 1)
        self._rev: np.ndarray | None = None

    @property
    def ids_list(self) -> list[int]:
        """Native-int mirror of ``ids`` (lazy; legacy flat path only)."""
        m = self._ids_list
        if m is None:
            m = self._ids_list = self.ids.tolist()
        return m

    @property
    def dists_list(self) -> list[float]:
        """Native-float mirror of ``dists`` (lazy; legacy flat path only)."""
        m = self._dists_list
        if m is None:
            m = self._dists_list = self.dists.tolist()
        return m

    @property
    def rev(self) -> np.ndarray:
        """Index of the reverse entry ``(dst, src)`` for every entry ``(src, dst)``.

        The table holds both directions of every pair, so this is a
        permutation (an involution); flood-plane delivery uses it to map
        a sender's CSR row onto the recipients' cache slots.  Built
        lazily — only plane-using runs pay for it.
        """
        r = self._rev
        if r is None:
            n = len(self.indptr) - 1
            src = np.repeat(
                np.arange(n, dtype=np.intp), np.diff(self.indptr_arr)
            )
            dst = self.ids
            # k-th edge in (src, dst) order is the reverse of the k-th
            # edge in (dst, src) order: the symmetric edge set enumerates
            # the same ordered pairs either way.
            fwd = np.lexsort((dst, src))
            bwd = np.lexsort((src, dst))
            r = np.empty(len(dst), dtype=np.intp)
            r[fwd] = bwd
            self._rev = r
        return r

    def neighbors_of(self, src: int) -> dict[int, float]:
        """The (lazily built) ``{neighbor: distance}`` map for ``src``."""
        m = self.dist_of[src]
        if m is None:
            s, e = self.indptr[src], self.indptr[src + 1]
            # Row-sized tolist() slices: identical native values to the
            # full mirrors without materializing them.
            m = dict(zip(self.ids[s:e].tolist(), self.dists[s:e].tolist()))
            self.dist_of[src] = m
        return m


class Context:
    """Per-node facade over the kernel: the only API a node may use."""

    __slots__ = ("_kernel", "_id")

    def __init__(self, kernel: "SynchronousKernel", node_id: int) -> None:
        self._kernel = kernel
        self._id = node_id

    # -- information a node legitimately has --------------------------------

    @property
    def n_nodes(self) -> int:
        """Network size ``n`` (the paper lets nodes know a Theta(n) estimate)."""
        return self._kernel.n

    @property
    def max_radius(self) -> float:
        """Current maximum transmission radius (max power level)."""
        return self._kernel.max_radius

    @property
    def coords(self) -> tuple[float, float]:
        """Own coordinates — only for coordinate-aware algorithms (Sec. VI)."""
        if not self._kernel.expose_coordinates:
            raise SimulationError(
                "this kernel was built without coordinate knowledge "
                "(pass expose_coordinates=True for Sec. VI algorithms)"
            )
        x, y = self._kernel.points[self._id]
        return float(x), float(y)

    # -- communication -------------------------------------------------------

    def unicast(self, dst: int, kind: str, *payload) -> None:
        """Send a message to a specific node, at exactly the needed power."""
        self._kernel._send_unicast(self._id, dst, kind, payload)

    def local_broadcast(self, radius: float, kind: str, *payload) -> None:
        """Transmit to every node within ``radius`` (one message, one charge)."""
        self._kernel._send_broadcast(self._id, radius, kind, payload)

    def plane_broadcast(self, radius: float, kind: str, payload: int) -> bool:
        """Fast-path local broadcast of one integer via the flood plane.

        Semantically identical to ``local_broadcast(radius, kind, payload)``
        — same charge, same recipient set, delivered next round — but the
        payload reaches receivers through the kernel's registered plane
        handler instead of per-recipient ``on_message`` calls.  Returns
        ``False`` (sending nothing, charging nothing) when the kernel has
        no plane fast path; the caller must then fall back to
        ``local_broadcast``.
        """
        return self._kernel._send_plane(self._id, radius, kind, payload)


class SynchronousKernel:
    """Synchronous, collision-free message-passing simulator."""

    def __init__(
        self,
        points: np.ndarray,
        max_radius: float,
        power: PathLossModel | None = None,
        *,
        expose_coordinates: bool = False,
        rx_cost: float = 0.0,
        faults: FaultPlan | None = None,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
        if max_radius <= 0:
            raise GeometryError(f"max_radius must be positive, got {max_radius}")
        if rx_cost < 0:
            raise GeometryError(f"rx_cost must be non-negative, got {rx_cost}")
        self.points = pts
        self.n = len(pts)
        self.max_radius = float(max_radius)
        self.power = power or PathLossModel()
        self.expose_coordinates = expose_coordinates
        #: Constant energy a radio pays to receive one message (paper
        #: Sec. VIII extension; 0 recovers the paper's TX-only model).
        self.rx_cost = float(rx_cost)
        #: Compiled fault plane (None = fault-free; a null plan is
        #: normalized to None so the hot paths stay branchless-on-off).
        self.fault_plan = faults
        self.faults: FaultPlane | None = (
            faults.build(len(pts)) if faults is not None and not faults.is_null else None
        )
        self.nodes: list[NodeProcess] = []
        self._ledger = EnergyLedger(self.n)
        self.rounds = 0
        self.stage = "main"
        self._tree = cKDTree(pts) if self.n else None
        #: Cached neighbor table: None = not built, _NO_TABLE = too dense.
        self._nbr_table: _NeighborTable | None | object = None
        #: Pending unicasts for the next round: (dst, msg, dist, seq).
        self._uni: list[tuple[int, Message, float, int]] = []
        #: Pending broadcast descriptors: (msg, ids view, dists view, seq).
        self._bcasts: list[tuple[Message, np.ndarray, np.ndarray, int]] = []
        #: Send-call sequence number (ties delivery order to send order).
        self._seq = 0
        self._n_pending = 0
        #: Subclasses set True to receive the flat, send-ordered
        #: ``(dst, Message, distance)`` list instead of bucket queues.
        #: Flat kernels (legacy reference, contention) never take the
        #: plane fast path: their semantics are per-message.
        self._flat_pending = False
        self._pending: list[tuple[int, Message, float]] = []
        #: Flood-plane state: the vectorized delivery callback (None =
        #: planes unavailable), buffered single-sender registrations per
        #: kind, batch descriptors from broadcast_plane, the table all of
        #: this round's plane slices index into, and the pending
        #: recipient count.
        self._plane_handler: Callable | None = None
        self._plane_singles: dict[str, list[tuple[int, int, int, int]]] = {}
        self._plane_batches: list[tuple] = []
        self._plane_tbl: _NeighborTable | None = None
        self._n_plane_pending = 0
        #: Batched ledger accumulators: (kind, stage) -> [energy, count],
        #: plus per-node energy partial sums; flushed by _flush_charges.
        self._acc_kinds: dict[tuple[str, str], list] = {}
        self._acc_node: list[float] = [0.0] * self.n
        #: Ledger snapshot at the last traced round boundary (None until
        #: the first traced round); read only when ``trace.enabled``.
        self._trace_prev: dict | None = None
        #: Round-boundary observer (scenario plane): called with the new
        #: round count after every round advance, on every kernel path.
        self._round_hook: Callable[[int], None] | None = None
        self._started = False

    # -- setup ----------------------------------------------------------------

    def add_nodes(self, factory: Callable[[int, Context], NodeProcess]) -> None:
        """Instantiate one process per point via ``factory(node_id, ctx)``."""
        if self.nodes:
            raise SimulationError("nodes already added")
        self.nodes = [factory(i, Context(self, i)) for i in range(self.n)]

    def set_max_radius(self, radius: float) -> None:
        """Raise/lower the maximum power level (EOPT step transition).

        Raising the cap invalidates the cached neighbor table (it no
        longer covers every reachable pair); lowering keeps it — a
        superset table stays correct because every delivery filters by
        the requested radius.
        """
        if radius <= 0:
            raise GeometryError(f"max_radius must be positive, got {radius}")
        self.max_radius = float(radius)
        tbl = self._nbr_table
        if tbl is not None and (
            tbl is _NO_TABLE or self.max_radius > tbl.max_radius
        ):
            self._nbr_table = None
        if trace.enabled:
            trace.emit("power", round=self.rounds, radius=self.max_radius)

    def set_stage(self, label: str) -> None:
        """Tag subsequent charges with ``label`` in the per-stage breakdown."""
        self.stage = label
        if trace.enabled:
            trace.emit("stage", round=self.rounds, stage=label)

    # -- neighbor table --------------------------------------------------------

    def _build_neighbor_table(self) -> "_NeighborTable | object":
        """Build the CSR neighbor table at the current ``max_radius``.

        Returns :data:`_NO_TABLE` when the expected table size blows the
        density budget (near-global power caps), in which case broadcasts
        keep using per-call KD-tree queries.
        """
        n = self.n
        r = self.max_radius
        if not table_within_budget(n, r):
            if perf.enabled:
                perf.add("kernel.nbr_table_fallbacks")
            return _NO_TABLE
        if _table_provider is not None:
            table = _table_provider(self.points, r)
            if table is not None:
                if perf.enabled:
                    perf.add("kernel.nbr_table_provided")
                return table
        with perf.timed("kernel.nbr_table_build"):
            indptr, dst, dist = neighbor_csr_arrays(self.points, r, tree=self._tree)
            table = _NeighborTable(r, indptr.tolist(), dst, dist)
        if perf.enabled:
            perf.add("kernel.nbr_table_builds")
            perf.add("kernel.nbr_table_entries", len(table.ids))
        return table

    def _table(self) -> "_NeighborTable | None":
        """The cached neighbor table, building it on first use (or None)."""
        tbl = self._nbr_table
        if tbl is None:
            tbl = self._build_neighbor_table()
            self._nbr_table = tbl
        return None if tbl is _NO_TABLE else tbl

    def neighbor_table(self) -> "_NeighborTable | None":
        """The CSR neighbor table at the current cap (``None`` = too dense).

        Public accessor for plane clients (e.g. the GHS flood cache)
        whose index-aligned arrays must share the table's CSR layout.
        """
        if self._tree is None:
            return None
        return self._table()

    # -- flood planes ----------------------------------------------------------

    def set_plane_handler(self, handler: Callable | None) -> None:
        """Register the vectorized plane delivery callback (or clear it).

        ``handler(kind, table, senders, payloads, counts, edge_idx)`` is
        called once per (kind, round) batch at delivery time: ``senders``
        and ``payloads`` are parallel arrays, ``counts[i]`` recipients
        belong to ``senders[i]``, and ``edge_idx`` indexes the delivered
        (sender, recipient) edges into ``table.ids`` / ``table.dists``
        (recipient-side cache slots are ``table.rev[edge_idx]``).

        Flat-delivery kernels (legacy reference, contention) have strict
        per-message semantics and never run planes; registering a
        handler on one is a caller bug and raises immediately rather
        than silently never delivering.  ``plane_broadcast`` /
        ``broadcast_plane`` on such kernels return ``False`` (the
        documented per-message fallback) instead.
        """
        if handler is not None and self._flat_pending:
            raise SimulationError(
                "flat-delivery kernel (per-message semantics) cannot take a "
                "plane handler; use the per-message fallback (planes=False, "
                "or honor broadcast_plane() returning False)"
            )
        self._plane_handler = handler

    def _plane_table(self) -> "_NeighborTable | None":
        """The table plane sends may slice, or ``None`` if planes are off.

        Planes need a per-message-free delivery path (no flat subclass),
        a registered handler, and the CSR table at the current cap.
        """
        if self._flat_pending or self._plane_handler is None or self._tree is None:
            return None
        return self._table()

    def _plane_bind(self, tbl: "_NeighborTable") -> None:
        """Pin this round's plane slices to one table generation."""
        if self._plane_tbl is None:
            self._plane_tbl = tbl
        elif self._plane_tbl is not tbl:
            raise SimulationError(
                "flood plane spans a neighbor-table rebuild; deliver pending "
                "planes (run a round) before changing the power cap"
            )

    def broadcast_plane(
        self,
        senders: Sequence[int] | np.ndarray,
        radius: float,
        kind: str,
        payloads: Sequence[int] | np.ndarray,
    ) -> bool:
        """Batch ``local_broadcast`` for many senders at one radius.

        Charges every sender exactly as ``local_broadcast(radius, kind,
        payloads[i])`` would (same energy expression, same summation
        order as per-sender sends), computes each sender's recipient
        slice from the CSR table, and schedules one plane descriptor for
        next round's vectorized delivery.  Returns ``False`` — sending
        and charging nothing — when the plane fast path is unavailable
        (flat-delivery kernel, no handler registered, or the density
        gate rejected the table); callers fall back to per-sender
        ``local_broadcast``.
        """
        radius = float(radius)
        if radius < 0:
            raise GeometryError(
                f"broadcast radius must be non-negative, got {radius}"
            )
        tbl = self._plane_table()
        if tbl is None or radius > tbl.max_radius:
            return False
        senders = np.asarray(senders, dtype=np.intp)
        payloads = np.asarray(payloads, dtype=np.int64)
        if len(senders) != len(payloads):
            raise SimulationError(
                f"broadcast_plane got {len(senders)} senders but "
                f"{len(payloads)} payloads"
            )
        if len(senders) == 0:
            return True
        self._check_power(int(senders[0]), radius)
        self._plane_bind(tbl)
        cost = self.power.energy(radius)
        charge = self._charge_tx
        for s in senders.tolist():
            charge(s, kind, cost)
        starts = tbl.indptr_arr[senders]
        ends = tbl.indptr_arr[senders + 1]
        if radius < tbl.max_radius:
            # Same per-sender cutoff as _send_broadcast: distances are
            # sorted within a row, side="right" keeps the closed ball.
            dists = tbl.dists
            ends = np.fromiter(
                (
                    s0 + int(np.searchsorted(dists[s0:e0], radius, side="right"))
                    for s0, e0 in zip(starts.tolist(), ends.tolist())
                ),
                dtype=np.intp,
                count=len(senders),
            )
        n_rcpt = int((ends - starts).sum())
        if n_rcpt:
            self._plane_batches.append((kind, tbl, senders, payloads, starts, ends))
            self._n_plane_pending += n_rcpt
        if perf.enabled:
            perf.add("kernel.plane_sends", len(senders))
        return True

    def _send_plane(self, src: int, radius: float, kind: str, payload: int) -> bool:
        """Single-sender plane registration (buffered per kind per round)."""
        radius = float(radius)
        if radius < 0:
            raise GeometryError(
                f"broadcast radius must be non-negative, got {radius}"
            )
        # Hot path: reuse the table already bound this round (many nodes
        # announce in one round; only the first pays the lookup chain).
        tbl = self._plane_tbl
        if tbl is None:
            tbl = self._plane_table()
            if tbl is None or radius > tbl.max_radius:
                return False
            self._plane_bind(tbl)
        elif radius > tbl.max_radius:
            return False
        self._check_power(src, radius)
        self._charge_tx(src, kind, self.power.energy(radius))
        s, e = tbl.indptr[src], tbl.indptr[src + 1]
        if radius < tbl.max_radius:
            e = s + int(np.searchsorted(tbl.dists[s:e], radius, side="right"))
        if e > s:
            self._plane_singles.setdefault(kind, []).append((src, payload, s, e))
            self._n_plane_pending += e - s
        if perf.enabled:
            perf.add("kernel.plane_sends")
        return True

    def _deliver_planes(self) -> int:
        """Expand and deliver all pending planes (one handler call each)."""
        batches = self._plane_batches
        singles = self._plane_singles
        tbl = self._plane_tbl
        delivered = self._n_plane_pending
        self._plane_batches = []
        self._plane_singles = {}
        self._plane_tbl = None
        self._n_plane_pending = 0
        for kind, entries in singles.items():
            k = len(entries)
            batches.append(
                (
                    kind,
                    tbl,
                    np.fromiter((t[0] for t in entries), dtype=np.intp, count=k),
                    np.fromiter((t[1] for t in entries), dtype=np.int64, count=k),
                    np.fromiter((t[2] for t in entries), dtype=np.intp, count=k),
                    np.fromiter((t[3] for t in entries), dtype=np.intp, count=k),
                )
            )
        handler = self._plane_handler
        rx = self.rx_cost
        led = self._ledger
        fp = self.faults
        for kind, btbl, senders, payloads, starts, ends in batches:
            counts = ends - starts
            edge_idx = concat_ranges(starts, ends)
            if fp is not None and len(edge_idx):
                # Per-edge fates: drop/dup the delivered copies while the
                # senders' charges (already taken) stand.
                src_e = np.repeat(senders.astype(np.int64, copy=False), counts)
                times, cm, dm, um = fp.times(
                    src_e, btbl.ids[edge_idx], fp.kind_hash(kind), self.rounds
                )
                ncr, ndr, ndu = int(cm.sum()), int(dm.sum()), int(um.sum())
                if ncr:
                    led.crash_drops_by_kind[kind] += ncr
                if ndr:
                    led.drops_by_kind[kind] += ndr
                if ndu:
                    led.dup_deliveries_by_kind[kind] += ndu
                if ncr or ndr or ndu:
                    seg = np.repeat(np.arange(len(senders), dtype=np.intp), counts)
                    counts = np.bincount(
                        seg, weights=times, minlength=len(senders)
                    ).astype(np.intp)
                    edge_idx = np.repeat(edge_idx, times)
            handler(kind, btbl, senders, payloads, counts, edge_idx)
            if rx:
                # Scalar loop keeps rx totals bit-identical to the
                # per-message path (same left-to-right summation).
                for dst in btbl.ids[edge_idx].tolist():
                    led.charge_rx(dst, rx)
        if perf.enabled:
            perf.add("kernel.plane_batches", len(batches))
            perf.add("kernel.plane_deliveries", delivered)
        return delivered

    # -- energy accounting -----------------------------------------------------

    @property
    def ledger(self) -> EnergyLedger:
        """The energy ledger, with any batched charges flushed."""
        self._flush_charges()
        return self._ledger

    def _charge_tx(self, node: int, kind: str, energy: float) -> None:
        """Record one transmission: exact totals now, breakdowns batched."""
        led = self._ledger
        led.energy_total += energy
        led.messages_total += 1
        self._acc_node[node] += energy
        acc = self._acc_kinds
        key = (kind, self.stage)
        cell = acc.get(key)
        if cell is None:
            acc[key] = [energy, 1]
        else:
            cell[0] += energy
            cell[1] += 1

    def _flush_charges(self) -> None:
        """Fold the batched accumulators into the ledger's breakdowns."""
        acc = self._acc_kinds
        if not acc:
            return
        led = self._ledger
        for (kind, stage), (e, c) in acc.items():
            led.energy_by_kind[kind] += e
            led.messages_by_kind[kind] += c
            led.energy_by_stage[stage] += e
            led.messages_by_stage[stage] += c
        acc.clear()
        led.energy_by_node += self._acc_node
        self._acc_node = [0.0] * self.n

    def _trace_round(self) -> None:
        """Emit one per-round trace event (deltas since the last round).

        Runs once per round, only while tracing is enabled.  Every field
        is invariant across delivery paths: per-kind message counts are
        exact integers, ``de`` is a difference of the *exact* running
        ``energy_total`` (bit-identical legacy/fast/planes), and fault
        tallies come from path-independent fate hashes.  Per-kind energy
        *breakdowns* are deliberately absent — they are batched float
        sums that may differ in the last ulp between kernels and would
        make equivalent runs diff as divergent.
        """
        self._flush_charges()
        led = self._ledger
        prev = self._trace_prev
        if prev is None:
            prev = {"m": 0, "e": 0.0, "kinds": {}, "drop": {}, "dup": {}, "crash": {}}
        fields = {
            "round": self.rounds,
            "dm": led.messages_total - prev["m"],
            "de": led.energy_total - prev["e"],
            "kinds": _dict_delta(led.messages_by_kind, prev["kinds"]),
        }
        # Fault outcomes appear only when they happened this round, so a
        # fault-free run's trace carries no fault fields at all.
        for field, tally in (
            ("drop", led.drops_by_kind),
            ("dup", led.dup_deliveries_by_kind),
            ("crash", led.crash_drops_by_kind),
        ):
            delta = _dict_delta(tally, prev[field])
            if delta:
                fields[field] = delta
        trace.emit("round", **fields)
        self._trace_prev = {
            "m": led.messages_total,
            "e": led.energy_total,
            "kinds": dict(led.messages_by_kind),
            "drop": dict(led.drops_by_kind),
            "dup": dict(led.dup_deliveries_by_kind),
            "crash": dict(led.crash_drops_by_kind),
        }

    # -- sending (called through Context) --------------------------------------

    def _check_power(self, src: int, radius: float) -> None:
        if radius > self.max_radius * (1.0 + _POWER_EPS):
            raise PowerLimitError(
                f"node {src} attempted to transmit to distance {radius:.6g} "
                f"beyond max radius {self.max_radius:.6g}"
            )

    def _send_unicast(self, src: int, dst: int, kind: str, payload: tuple) -> None:
        if not (0 <= dst < self.n):
            raise SimulationError(f"unicast to unknown node {dst}")
        if dst == src:
            raise SimulationError(f"node {src} attempted to unicast to itself")
        tbl = self._nbr_table
        dist = None
        if tbl is not None and tbl is not _NO_TABLE:
            m = tbl.dist_of[src]
            if m is None:
                m = tbl.neighbors_of(src)
            dist = m.get(dst)
        if dist is None:
            d = self.points[src] - self.points[dst]
            dist = math.sqrt(d[0] * d[0] + d[1] * d[1])
        self._check_power(src, dist)
        self._charge_tx(src, kind, self.power.energy(dist))
        msg = Message(kind, src, dst, payload, dist)
        if self._flat_pending:
            self._pending.append((dst, msg, dist))
        else:
            self._uni.append((dst, msg, dist, self._seq))
            self._seq += 1
            self._n_pending += 1

    def _send_broadcast(self, src: int, radius: float, kind: str, payload: tuple) -> None:
        if radius < 0:
            raise GeometryError(f"broadcast radius must be non-negative, got {radius}")
        radius = float(radius)
        self._check_power(src, radius)
        self._charge_tx(src, kind, self.power.energy(radius))
        if self._tree is None:
            return
        msg = Message(kind, src, None, payload, radius)
        tbl = self._table()
        if tbl is None or radius > tbl.max_radius:
            # Dense fallback (or the eps-slack corner where the requested
            # radius exceeds the table's build cutoff): per-call query.
            # All recipients of one broadcast share one sequence number —
            # legal, because a broadcast reaches each recipient at most
            # once, so (dst, seq) pairs stay unique.
            seq = self._seq
            self._seq += 1
            src_pt = self.points[src]
            for r in self._tree.query_ball_point(src_pt, radius):
                if r == src:
                    continue
                d = src_pt - self.points[r]
                dist = math.sqrt(d[0] * d[0] + d[1] * d[1])
                self._deliver_one(r, msg, dist, seq)
            return
        s, e = tbl.indptr[src], tbl.indptr[src + 1]
        if radius < tbl.max_radius:
            # Distances are sorted per source: binary-search the cutoff
            # (side="right" keeps the closed ball, dist <= radius).
            e = s + int(np.searchsorted(tbl.dists[s:e], radius, side="right"))
        if self._flat_pending:
            pend = self._pending
            for dst, dk in zip(tbl.ids_list[s:e], tbl.dists_list[s:e]):
                pend.append((dst, msg, dk))
            return
        if e > s:
            # O(1) enqueue: views into the table arrays keep the table
            # alive even if set_max_radius invalidates it before step().
            self._bcasts.append((msg, tbl.ids[s:e], tbl.dists[s:e], self._seq))
            self._n_pending += e - s
        self._seq += 1

    def _deliver_one(self, dst: int, msg: Message, dist: float, seq: int) -> None:
        """Schedule one delivery for the next round (slow-path helper)."""
        if self._flat_pending:
            self._pending.append((dst, msg, dist))
            return
        self._uni.append((dst, msg, dist, seq))
        self._n_pending += 1

    # -- running -----------------------------------------------------------------

    def start(self) -> None:
        """Call ``on_start`` on every node (once)."""
        if not self.nodes:
            raise SimulationError("no nodes added; call add_nodes() first")
        if self._started:
            raise SimulationError("kernel already started")
        self._started = True
        for node in self.nodes:
            node.on_start()

    def wake(self, node_ids: Iterable[int] | Sequence[int], signal: str, payload: tuple = ()) -> None:
        """Deliver a local driver signal to ``node_ids`` (no energy cost).

        Nodes inside a fault-plane crash window are skipped: a crashed
        node cannot act on a timer/phase signal any more than on a
        message.
        """
        fp = self.faults
        if fp is not None and fp.has_crashes:
            rnd = self.rounds
            for nid in node_ids:
                if not fp.crashed(nid, rnd):
                    self.nodes[nid].on_wake(signal, payload)
            return
        for nid in node_ids:
            self.nodes[nid].on_wake(signal, payload)

    def set_round_hook(self, hook: Callable[[int], None] | None) -> None:
        """Install an observer called with ``self.rounds`` after every
        round advance (``None`` detaches it).

        This is the scenario plane's round-boundary anchor: every kernel
        path — scalar step, flat legacy step, plane-only rounds, idle
        ticks and the turbo whole-round engine — reports through the
        same hook, so a global clock driven by it is backend-invariant.
        The hook must not send messages or mutate kernel state.
        """
        self._round_hook = hook

    def _round_advanced(self) -> None:
        """Fire the round hook (round counter already incremented)."""
        if self._round_hook is not None:
            self._round_hook(self.rounds)

    def tick(self) -> None:
        """Advance the round clock by one round, even with nothing in flight.

        ``step`` only advances time when it delivers; fault-recovery
        drivers call this to let a crash window expire (wall-clock rounds
        pass whether or not anyone transmits).
        """
        if self.in_flight:
            self.step()
        else:
            self.rounds += 1
            if trace.enabled:
                self._trace_round()
            self._round_advanced()

    def step(self) -> int:
        """Deliver one round of messages; returns the number delivered.

        With a fault plane active the return value counts *attempted*
        deliveries (the ledger's drop tallies hold the difference); a
        round whose deliveries are all dropped still advances the clock.
        """
        if self._pending:
            return self._step_flat()
        uni = self._uni
        bc = self._bcasts
        if not uni and not bc and not self._n_plane_pending:
            return 0
        # Swap the pending structures out *before* delivering, so handler
        # sends go to the next round.
        self._uni = []
        self._bcasts = []
        delivered = self._n_pending
        self._n_pending = 0
        if self._n_plane_pending:
            # Planes land before per-message dispatch: within a round the
            # relative order is unobservable to well-formed plane handlers
            # (they only overwrite cache slots), and front-loading them
            # keeps the message loop below branch-free.
            delivered += self._deliver_planes()
        if not uni and not bc:
            self.rounds += 1
            if perf.enabled:
                perf.add("kernel.rounds")
                perf.add("kernel.deliveries", delivered)
                perf.sample_rss()
            if trace.enabled:
                self._trace_round()
            self._round_advanced()
            return delivered
        nodes = self.nodes
        rx = self.rx_cost
        led = self._ledger
        if not bc:
            # Unicast-only round: a stable sort by recipient id over the
            # send-ordered list is exactly the legacy delivery order.
            uni.sort(key=_BY_DST)
            if self.faults is not None:
                uni = self._apply_faults_list(uni)
            if rx:
                for dst, msg, dist, _ in uni:
                    led.charge_rx(dst, rx)
                    nodes[dst].on_message(msg, dist)
            else:
                for dst, msg, dist, _ in uni:
                    nodes[dst].on_message(msg, dist)
        else:
            # Expand broadcast descriptors and merge with unicasts in one
            # vectorized pass.  lexsort by (recipient id, send seq) is the
            # same total order as the legacy stable sort by recipient of
            # the send-ordered flat list: (dst, seq) pairs are unique
            # because one send reaches a given recipient at most once.
            k = len(bc)
            msgs = [b[0] for b in bc]
            counts = np.fromiter((len(b[1]) for b in bc), dtype=np.intp, count=k)
            dst_all = np.concatenate([b[1] for b in bc])
            dist_all = np.concatenate([b[2] for b in bc])
            seqs = np.fromiter((b[3] for b in bc), dtype=np.intp, count=k)
            seq_all = np.repeat(seqs, counts)
            midx = np.repeat(np.arange(k, dtype=np.intp), counts)
            if uni:
                u = len(uni)
                msgs.extend(t[1] for t in uni)
                dst_all = np.concatenate(
                    [dst_all, np.fromiter((t[0] for t in uni), dtype=np.intp, count=u)]
                )
                dist_all = np.concatenate(
                    [dist_all, np.fromiter((t[2] for t in uni), dtype=float, count=u)]
                )
                seq_all = np.concatenate(
                    [seq_all, np.fromiter((t[3] for t in uni), dtype=np.intp, count=u)]
                )
                midx = np.concatenate([midx, np.arange(k, k + u, dtype=np.intp)])
            order = np.lexsort((seq_all, dst_all))
            fp = self.faults
            if fp is not None:
                m = len(msgs)
                src_by_msg = np.fromiter(
                    (mm.src for mm in msgs), dtype=np.int64, count=m
                )
                kh_by_msg = np.fromiter(
                    (fp.kind_hash(mm.kind) for mm in msgs), dtype=np.uint64, count=m
                )
                times, cm, dm, um = fp.times(
                    src_by_msg[midx], dst_all, kh_by_msg[midx], self.rounds
                )
                for mask, tally in (
                    (cm, led.crash_drops_by_kind),
                    (dm, led.drops_by_kind),
                    (um, led.dup_deliveries_by_kind),
                ):
                    if mask.any():
                        for i in np.flatnonzero(mask).tolist():
                            tally[msgs[midx[i]].kind] += 1
                if (times != 1).any():
                    # Duplicates stay adjacent (same (dst, seq) slot).
                    order = np.repeat(order, times[order])
            dsts = dst_all[order].tolist()
            dists = dist_all[order].tolist()
            mids = midx[order].tolist()
            last = -1
            on_message = None
            if rx:
                for dst, mi, dist in zip(dsts, mids, dists):
                    led.charge_rx(dst, rx)
                    if dst != last:
                        on_message = nodes[dst].on_message
                        last = dst
                    on_message(msgs[mi], dist)
            else:
                for dst, mi, dist in zip(dsts, mids, dists):
                    if dst != last:
                        on_message = nodes[dst].on_message
                        last = dst
                    on_message(msgs[mi], dist)
        self.rounds += 1
        if perf.enabled:
            perf.add("kernel.rounds")
            perf.add("kernel.deliveries", delivered)
            perf.sample_rss()
        if trace.enabled:
            self._trace_round()
        self._round_advanced()
        return delivered

    def _apply_faults_list(self, deliveries: list) -> list:
        """Filter a delivery list through the fault plane (scalar path).

        Accepts the flat ``(dst, msg, dist)`` tuples and the unicast
        ``(dst, msg, dist, seq)`` tuples alike (only ``t[0]``/``t[1]``
        are read; surviving tuples pass through unchanged, duplicates
        are delivered back to back).
        """
        fp = self.faults
        led = self._ledger
        rnd = self.rounds
        out = []
        for t in deliveries:
            msg = t[1]
            f = fp.fate(msg.src, t[0], msg.kind, rnd)
            if f >= 1:
                out.append(t)
                if f == 2:
                    led.dup_deliveries_by_kind[msg.kind] += 1
                    out.append(t)
            elif f == 0:
                led.drops_by_kind[msg.kind] += 1
            else:
                led.crash_drops_by_kind[msg.kind] += 1
        return out

    def _step_flat(self) -> int:
        """Flat-list delivery for subclasses that set ``_flat_pending``."""
        deliveries = self._pending
        self._pending = []
        # Deterministic order: recipients ascending, then send order.
        deliveries.sort(key=lambda t: t[0])
        if self.faults is not None:
            deliveries = self._apply_faults_list(deliveries)
        nodes = self.nodes
        rx = self.rx_cost
        led = self._ledger
        for dst, msg, dist in deliveries:
            if rx:
                led.charge_rx(dst, rx)
            nodes[dst].on_message(msg, dist)
        self.rounds += 1
        if trace.enabled:
            self._trace_round()
        self._round_advanced()
        return len(deliveries)

    def run_until_quiescent(self, max_rounds: int = 1_000_000) -> int:
        """Run rounds until no messages are in flight; returns rounds run."""
        ran = 0
        while self._n_pending or self._pending or self._n_plane_pending:
            self.step()
            ran += 1
            if ran > max_rounds:
                raise SimulationError(
                    f"no quiescence after {max_rounds} rounds — "
                    "protocol is probably livelocked"
                )
        return ran

    @property
    def in_flight(self) -> int:
        """Number of deliveries scheduled for the next round."""
        return self._n_pending + len(self._pending) + self._n_plane_pending

    def stats(self) -> SimStats:
        """Snapshot of the energy ledger and round count."""
        self._flush_charges()
        return self._ledger.snapshot(self.rounds)


# Self-registration in the kernel-backend registry (repro.sim.backends):
# "fast" is the default mode every spec resolves to.
from repro.sim.backends import register_kernel as _register_kernel  # noqa: E402

_register_kernel(
    "fast",
    cls=SynchronousKernel,
    order=0,
    summary="vectorized per-message hot path with flood planes (default)",
)
