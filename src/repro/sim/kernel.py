"""The synchronous simulation kernel.

Semantics (paper Sec. II):

* Time advances in discrete rounds.  Messages sent in round ``t`` are
  delivered at the start of round ``t+1``; handlers run sequentially in a
  deterministic order (by recipient id, then send order), which is sound
  because nodes cannot observe intra-round ordering in a synchronous
  system.
* ``unicast(dst, ...)`` models a directed transmission at exactly the
  power needed to reach ``dst``: it costs ``a d(src,dst)^alpha`` and is
  delivered to ``dst`` only (other nodes in range ignore it).
* ``local_broadcast(R, ...)`` costs ``a R^alpha`` and is delivered to every
  node within distance ``R`` of the sender.
* Transmissions are capped by the kernel's ``max_radius`` (the maximum
  power level); drivers may raise it between algorithm steps, modelling
  the adaptive power control EOPT relies on.
* No collisions/losses: every transmission succeeds (the paper defers
  physical-interference modelling to future work; see DESIGN.md).

The kernel also hosts the energy ledger and a KD-tree over node positions
for broadcast delivery.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import GeometryError, PowerLimitError, SimulationError
from repro.sim.energy import EnergyLedger, SimStats
from repro.sim.message import Message
from repro.sim.node import NodeProcess
from repro.sim.power import PathLossModel

#: Relative slack on the max-power check, to absorb float rounding when a
#: protocol transmits at exactly its discovered neighbour distance.
_POWER_EPS = 1e-9


class Context:
    """Per-node facade over the kernel: the only API a node may use."""

    __slots__ = ("_kernel", "_id")

    def __init__(self, kernel: "SynchronousKernel", node_id: int) -> None:
        self._kernel = kernel
        self._id = node_id

    # -- information a node legitimately has --------------------------------

    @property
    def n_nodes(self) -> int:
        """Network size ``n`` (the paper lets nodes know a Theta(n) estimate)."""
        return self._kernel.n

    @property
    def max_radius(self) -> float:
        """Current maximum transmission radius (max power level)."""
        return self._kernel.max_radius

    @property
    def coords(self) -> tuple[float, float]:
        """Own coordinates — only for coordinate-aware algorithms (Sec. VI)."""
        if not self._kernel.expose_coordinates:
            raise SimulationError(
                "this kernel was built without coordinate knowledge "
                "(pass expose_coordinates=True for Sec. VI algorithms)"
            )
        x, y = self._kernel.points[self._id]
        return float(x), float(y)

    # -- communication -------------------------------------------------------

    def unicast(self, dst: int, kind: str, *payload) -> None:
        """Send a message to a specific node, at exactly the needed power."""
        self._kernel._send_unicast(self._id, dst, kind, payload)

    def local_broadcast(self, radius: float, kind: str, *payload) -> None:
        """Transmit to every node within ``radius`` (one message, one charge)."""
        self._kernel._send_broadcast(self._id, radius, kind, payload)


class SynchronousKernel:
    """Synchronous, collision-free message-passing simulator."""

    def __init__(
        self,
        points: np.ndarray,
        max_radius: float,
        power: PathLossModel | None = None,
        *,
        expose_coordinates: bool = False,
        rx_cost: float = 0.0,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
        if max_radius <= 0:
            raise GeometryError(f"max_radius must be positive, got {max_radius}")
        if rx_cost < 0:
            raise GeometryError(f"rx_cost must be non-negative, got {rx_cost}")
        self.points = pts
        self.n = len(pts)
        self.max_radius = float(max_radius)
        self.power = power or PathLossModel()
        self.expose_coordinates = expose_coordinates
        #: Constant energy a radio pays to receive one message (paper
        #: Sec. VIII extension; 0 recovers the paper's TX-only model).
        self.rx_cost = float(rx_cost)
        self.nodes: list[NodeProcess] = []
        self.ledger = EnergyLedger(self.n)
        self.rounds = 0
        self.stage = "main"
        self._tree = cKDTree(pts) if self.n else None
        #: deliveries scheduled for the next round: (dst, Message, distance)
        self._pending: list[tuple[int, Message, float]] = []
        self._started = False

    # -- setup ----------------------------------------------------------------

    def add_nodes(self, factory: Callable[[int, Context], NodeProcess]) -> None:
        """Instantiate one process per point via ``factory(node_id, ctx)``."""
        if self.nodes:
            raise SimulationError("nodes already added")
        self.nodes = [factory(i, Context(self, i)) for i in range(self.n)]

    def set_max_radius(self, radius: float) -> None:
        """Raise/lower the maximum power level (EOPT step transition)."""
        if radius <= 0:
            raise GeometryError(f"max_radius must be positive, got {radius}")
        self.max_radius = float(radius)

    def set_stage(self, label: str) -> None:
        """Tag subsequent charges with ``label`` in the per-stage breakdown."""
        self.stage = label

    # -- sending (called through Context) --------------------------------------

    def _check_power(self, src: int, radius: float) -> None:
        if radius > self.max_radius * (1.0 + _POWER_EPS):
            raise PowerLimitError(
                f"node {src} attempted to transmit to distance {radius:.6g} "
                f"beyond max radius {self.max_radius:.6g}"
            )

    def _send_unicast(self, src: int, dst: int, kind: str, payload: tuple) -> None:
        if not (0 <= dst < self.n):
            raise SimulationError(f"unicast to unknown node {dst}")
        if dst == src:
            raise SimulationError(f"node {src} attempted to unicast to itself")
        d = self.points[src] - self.points[dst]
        dist = math.sqrt(d[0] * d[0] + d[1] * d[1])
        self._check_power(src, dist)
        self.ledger.charge(src, kind, self.stage, self.power.energy(dist))
        self._pending.append((dst, Message(kind, src, dst, payload, dist), dist))

    def _send_broadcast(self, src: int, radius: float, kind: str, payload: tuple) -> None:
        if radius < 0:
            raise GeometryError(f"broadcast radius must be non-negative, got {radius}")
        radius = float(radius)
        self._check_power(src, radius)
        self.ledger.charge(src, kind, self.stage, self.power.energy(radius))
        if self._tree is None:
            return
        msg = Message(kind, src, None, payload, radius)
        recipients = self._tree.query_ball_point(self.points[src], radius)
        src_pt = self.points[src]
        pending = self._pending
        for r in recipients:
            if r == src:
                continue
            d = src_pt - self.points[r]
            dist = math.sqrt(d[0] * d[0] + d[1] * d[1])
            pending.append((r, msg, dist))

    # -- running -----------------------------------------------------------------

    def start(self) -> None:
        """Call ``on_start`` on every node (once)."""
        if not self.nodes:
            raise SimulationError("no nodes added; call add_nodes() first")
        if self._started:
            raise SimulationError("kernel already started")
        self._started = True
        for node in self.nodes:
            node.on_start()

    def wake(self, node_ids: Iterable[int] | Sequence[int], signal: str, payload: tuple = ()) -> None:
        """Deliver a local driver signal to ``node_ids`` (no energy cost)."""
        for nid in node_ids:
            self.nodes[nid].on_wake(signal, payload)

    def step(self) -> int:
        """Deliver one round of messages; returns the number delivered."""
        if not self._pending:
            return 0
        deliveries = self._pending
        self._pending = []
        # Deterministic order: recipients ascending, then send order.
        deliveries.sort(key=lambda t: t[0])
        nodes = self.nodes
        rx = self.rx_cost
        ledger = self.ledger
        for dst, msg, dist in deliveries:
            if rx:
                ledger.charge_rx(dst, rx)
            nodes[dst].on_message(msg, dist)
        self.rounds += 1
        return len(deliveries)

    def run_until_quiescent(self, max_rounds: int = 1_000_000) -> int:
        """Run rounds until no messages are in flight; returns rounds run."""
        ran = 0
        while self._pending:
            self.step()
            ran += 1
            if ran > max_rounds:
                raise SimulationError(
                    f"no quiescence after {max_rounds} rounds — "
                    "protocol is probably livelocked"
                )
        return ran

    @property
    def in_flight(self) -> int:
        """Number of deliveries scheduled for the next round."""
        return len(self._pending)

    def stats(self) -> SimStats:
        """Snapshot of the energy ledger and round count."""
        return self.ledger.snapshot(self.rounds)
