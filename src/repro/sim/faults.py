"""Deterministic fault injection for the simulation kernel.

The paper's model assumes perfectly reliable, collision-free rounds; its
Sec. VIII discussion is about what survives when the radio layer does
not cooperate.  This module supplies the *adversary* side of that
question: a seeded :class:`FaultPlan` describing message loss, duplicate
delivery and node crash/restart epochs, compiled by the kernel into a
:class:`FaultPlane` that decides the fate of every delivery.

Design constraints (all load-bearing):

* **Counter-free determinism.**  A fate is a pure hash of
  ``(fault seed, stream, src, dst, kind, round)`` — a splitmix64-style
  finalizer over a linear combination of the coordinates — never a
  sequential RNG draw.  Two runs that deliver the same message in the
  same round therefore agree on its fate *regardless of evaluation
  order*, which is what makes the flood-plane fast path
  (``planes=True``) bit-identical to per-message delivery under faults,
  and what makes the scalar Python path agree with the vectorized
  numpy path bit-for-bit.
* **The sender still paid.**  TX energy is charged at send time; a
  dropped delivery refunds nothing (the radio transmitted — the ether
  ate it).  Reception-side costs (``rx_cost``) are only charged for
  copies actually delivered: zero for drops, twice for duplicates.
* **Crashes are radio-off windows.**  A node crashed during
  ``[start, end)`` neither receives (deliveries are counted as crash
  drops) nor acts on driver wakes; its protocol state survives the
  window (pause semantics, not reboot).  ``end=None`` means the node
  never comes back.
* **Zero cost when off.**  A ``None`` or null plan leaves every kernel
  hot path untouched (one ``is None`` branch per round).

:class:`RetryBuffer` is the matching *protocol* side: a small
per-node reliable-unicast layer (sequence numbers, ACKs, receiver
dedup, capped exponential backoff) that the GHS family and Co-NNT use
to recover; see ``docs/protocols.md``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ProtocolError, SimulationError
from repro.trace import trace

__all__ = ["FaultPlan", "FaultPlane", "RetryBuffer", "drain_reliable"]

_M64 = (1 << 64) - 1
#: Round index standing in for "never" in crash-window arrays (far above
#: any reachable round count, far below int64 overflow under +rnd math).
_NEVER = 1 << 62

# Independent odd 64-bit constants mixing each fate coordinate.
_C_SRC = 0x9E3779B97F4A7C15
_C_DST = 0xC2B2AE3D27D4EB4F
_C_RND = 0x165667B19E3779F9
_C_STREAM = 0x27D4EB2F165667C5
_C_KIND = 0xD6E8FEB86659FD93

_STREAM_DROP = 0
_STREAM_DUP = 1


def _mix64(z: int) -> int:
    """splitmix64 finalizer on a Python int (mod 2^64)."""
    z &= _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return z ^ (z >> 31)


def _mix64_np(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer on a uint64 array (wrapping semantics)."""
    with np.errstate(over="ignore"):
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


def _threshold(p: float) -> int:
    """Map a probability to a 64-bit compare threshold (draw < thr)."""
    if p <= 0.0:
        return 0
    if p >= 1.0:
        # Quantized to all-but-one draw; a 2^-64 sliver is below any
        # observable resolution and keeps thresholds inside uint64.
        return _M64
    return int(p * 2.0**64)


def _check_prob(label: str, p: float) -> float:
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"{label} must be in [0, 1], got {p}")
    return p


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative description of the injected faults.

    Parameters
    ----------
    seed:
        Fault seed.  Together with ``(src, dst, kind, round)`` it fully
        determines every drop/duplicate decision — the instance seed and
        the fault seed are independent axes.
    drop_rate:
        Global per-delivery loss probability ``p``.
    dup_rate:
        Per-delivery probability that a successfully delivered copy is
        delivered twice (duplicate-delivery fault, exercising receiver
        idempotence/dedup).
    link_loss:
        Extra per-link loss: a mapping (or iterable of pairs)
        ``(u, v) -> p_link`` applied to *both* directions of the link
        and composed independently with ``drop_rate``:
        ``p_eff = 1 - (1 - drop_rate) (1 - p_link)``.
    crashes:
        ``(node, start, end)`` round windows (``end=None`` = forever;
        at most one window per node).  During ``[start, end)`` the node
        is radio-off: it receives nothing and ignores driver wakes.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    link_loss: tuple = ()
    crashes: tuple = ()

    def __post_init__(self) -> None:
        _check_prob("drop_rate", self.drop_rate)
        _check_prob("dup_rate", self.dup_rate)
        raw = self.link_loss
        if isinstance(raw, Mapping):
            raw = tuple(raw.items())
        norm = []
        for (u, v), p in raw:
            norm.append(((int(u), int(v)), _check_prob(f"link_loss[{u},{v}]", p)))
        object.__setattr__(self, "link_loss", tuple(norm))
        windows = []
        seen: set[int] = set()
        for spec in self.crashes:
            node, start = int(spec[0]), int(spec[1])
            end = spec[2] if len(spec) > 2 else None
            if start < 0:
                raise SimulationError(f"crash start must be >= 0, got {start}")
            if end is not None:
                end = int(end)
                if end <= start:
                    raise SimulationError(
                        f"crash window for node {node} is empty: [{start}, {end})"
                    )
            if node in seen:
                raise SimulationError(f"node {node} has more than one crash window")
            seen.add(node)
            windows.append((node, start, end))
        object.__setattr__(self, "crashes", tuple(windows))

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing (kernel skips it entirely)."""
        return (
            self.drop_rate == 0.0
            and self.dup_rate == 0.0
            and not self.link_loss
            and not self.crashes
        )

    def build(self, n: int) -> "FaultPlane":
        """Compile the plan for an ``n``-node kernel."""
        return FaultPlane(self, n)


class FaultPlane:
    """Compiled fault plan: per-delivery fate decisions for one kernel.

    The fate of a delivery ``(src, dst, kind)`` attempted in round
    ``rnd`` is decided in a fixed order:

    1. ``dst`` crashed in ``rnd``  -> crash drop (0 copies);
    2. drop draw < effective loss threshold -> drop (0 copies);
    3. dup draw < dup threshold -> duplicate (2 copies); else 1 copy.

    :meth:`fate` (scalar) and :meth:`times` (vectorized) implement the
    identical arithmetic; ``tests/test_faults.py`` pins the bit-match.
    """

    __slots__ = (
        "plan",
        "n",
        "_base",
        "_drop_thr",
        "_dup_thr",
        "_link_thr",
        "_cstart",
        "_cend",
        "has_crashes",
        "_kind_hashes",
    )

    def __init__(self, plan: FaultPlan, n: int) -> None:
        self.plan = plan
        self.n = int(n)
        self._base = _mix64(int(plan.seed) ^ 0x5DEECE66D1A2F9E3)
        self._drop_thr = _threshold(plan.drop_rate)
        self._dup_thr = _threshold(plan.dup_rate)
        # Directed (src, dst) -> effective threshold; link entries apply
        # to both directions and compose with the global drop rate.
        keep = 1.0 - plan.drop_rate
        self._link_thr: dict[tuple[int, int], int] = {}
        for (u, v), p in plan.link_loss:
            for a, b in ((u, v), (v, u)):
                if not (0 <= a < n and 0 <= b < n):
                    raise SimulationError(
                        f"link_loss entry ({u}, {v}) outside node range [0, {n})"
                    )
                p_eff = 1.0 - keep * (1.0 - p)
                self._link_thr[(a, b)] = _threshold(p_eff)
        self._cstart = np.full(n, _NEVER, dtype=np.int64)
        self._cend = np.full(n, _NEVER, dtype=np.int64)
        for node, start, end in plan.crashes:
            if not 0 <= node < n:
                raise SimulationError(
                    f"crash window names node {node} outside range [0, {n})"
                )
            self._cstart[node] = start
            self._cend[node] = _NEVER if end is None else end
        self.has_crashes = bool(plan.crashes)
        self._kind_hashes: dict[str, int] = {}

    # -- crash schedule ------------------------------------------------------

    def crashed(self, node: int, rnd: int) -> bool:
        """Is ``node`` radio-off in round ``rnd``?"""
        return bool(self._cstart[node] <= rnd < self._cend[node])

    def crashed_mask(self, node_ids: np.ndarray, rnd: int) -> np.ndarray:
        """Vectorized :meth:`crashed` over an id array."""
        s = self._cstart[node_ids]
        return (s <= rnd) & (rnd < self._cend[node_ids])

    def gone_forever(self, node: int, rnd: int) -> bool:
        """Crashed in ``rnd`` with no scheduled restart."""
        # The whole conjunction is wrapped: ``a and b`` short-circuits, and
        # returning the raw numpy comparison would leak ``np.bool_`` into
        # callers that pin on the builtin (JSON writers, identity checks).
        return bool((self._cstart[node] <= rnd) and (self._cend[node] >= _NEVER))

    def gone_mask(self, node_ids: np.ndarray, rnd: int) -> np.ndarray:
        """Vectorized :meth:`gone_forever`."""
        return (self._cstart[node_ids] <= rnd) & (self._cend[node_ids] >= _NEVER)

    def crash_start(self, node: int) -> int:
        """First crashed round for ``node`` (a huge sentinel if never)."""
        return int(self._cstart[node])

    # -- fate draws ----------------------------------------------------------

    def kind_hash(self, kind: str) -> int:
        """Stable 64-bit hash of a message kind (cached)."""
        h = self._kind_hashes.get(kind)
        if h is None:
            h = _mix64(zlib.crc32(kind.encode()) * _C_KIND)
            self._kind_hashes[kind] = h
        return h

    def _draw(self, src: int, dst: int, kindh: int, rnd: int, stream: int) -> int:
        z = (
            self._base
            + src * _C_SRC
            + dst * _C_DST
            + rnd * _C_RND
            + stream * _C_STREAM
            + kindh
        )
        return _mix64(z)

    def fate(self, src: int, dst: int, kind: str, rnd: int) -> int:
        """Fate code for one delivery: -1 crash drop, 0 drop, 1 deliver,
        2 deliver twice."""
        if self.has_crashes and self._cstart[dst] <= rnd < self._cend[dst]:
            return -1
        kindh = self.kind_hash(kind)
        thr = self._link_thr.get((src, dst), self._drop_thr) if self._link_thr \
            else self._drop_thr
        if thr and self._draw(src, dst, kindh, rnd, _STREAM_DROP) < thr:
            return 0
        if self._dup_thr and self._draw(src, dst, kindh, rnd, _STREAM_DUP) < self._dup_thr:
            return 2
        return 1

    def times(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        kindh: "int | np.ndarray",
        rnd: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized fates: per-delivery copy counts plus outcome masks.

        ``kindh`` is one :meth:`kind_hash` value (homogeneous batch, e.g.
        a flood plane) or a per-delivery uint64 array (mixed rounds).
        Returns ``(times, crash_mask, drop_mask, dup_mask)``; ``times``
        is 0/1/2 copies.  Bit-identical to calling :meth:`fate` per
        delivery.
        """
        dst_i = np.asarray(dst)
        src_u = np.asarray(src).astype(np.uint64, copy=False)
        dst_u = dst_i.astype(np.uint64, copy=False)
        k = len(dst_u)
        base = (self._base + rnd * _C_RND) & _M64
        if isinstance(kindh, np.ndarray):
            kh = kindh.astype(np.uint64, copy=False)
        else:
            kh = np.uint64(int(kindh) & _M64)
        with np.errstate(over="ignore"):
            z = (
                np.uint64(base)
                + src_u * np.uint64(_C_SRC)
                + dst_u * np.uint64(_C_DST)
                + kh
            )
        if self.has_crashes:
            crash = self.crashed_mask(dst_i.astype(np.intp, copy=False), rnd)
        else:
            crash = np.zeros(k, dtype=bool)
        if self._drop_thr or self._link_thr:
            with np.errstate(over="ignore"):
                draw = _mix64_np(z + np.uint64(_STREAM_DROP * _C_STREAM))
            if self._link_thr:
                thr = np.full(k, self._drop_thr, dtype=np.uint64)
                src_i = np.asarray(src)
                for (a, b), t in self._link_thr.items():
                    thr[(src_i == a) & (dst_i == b)] = t
                drop = draw < thr
            else:
                drop = draw < np.uint64(self._drop_thr)
            drop &= ~crash
        else:
            drop = np.zeros(k, dtype=bool)
        if self._dup_thr:
            with np.errstate(over="ignore"):
                draw = _mix64_np(z + np.uint64(_STREAM_DUP * _C_STREAM))
            dup = (draw < np.uint64(self._dup_thr)) & ~crash & ~drop
        else:
            dup = np.zeros(k, dtype=bool)
        times = np.ones(k, dtype=np.intp)
        times[crash | drop] = 0
        times[dup] = 2
        return times, crash, drop, dup


class RetryBuffer:
    """Per-node reliable-unicast layer: seq numbers, ACKs, dedup, backoff.

    A reliable node sends protocol unicasts through :meth:`send`, which
    prepends a fresh per-destination sequence number.  The receiver ACKs
    every reliable message (ACKs themselves are unreliable — a lost ACK
    just causes a retransmission that the receiver's per-sender dedup
    state absorbs) and processes only first deliveries.  Unacknowledged
    messages are retransmitted when the driver issues a ``retry_tick``
    wake, after a capped exponential backoff counted in ticks (the
    synchronous stand-in for a node-local timeout).

    Sequence numbers form one independent stream per destination, so the
    receiver side can compact its dedup state: for each sender it keeps
    only the first sequence number not yet seen (``_seen_lo``) plus the
    finite set of out-of-order arrivals beyond it (``seen``).  Under
    in-order delivery the set stays empty no matter how long the run is;
    a reordered or duplicated burst grows it only by the width of the
    reorder window.
    """

    __slots__ = ("ctx", "max_retries", "backoff_cap", "next_seq", "pending", "seen", "_seen_lo")

    def __init__(self, ctx, *, max_retries: int = 400, backoff_cap: int = 4) -> None:
        self.ctx = ctx
        self.max_retries = max_retries
        self.backoff_cap = backoff_cap
        #: dst -> next sequence number on the stream to that destination.
        self.next_seq: dict[int, int] = {}
        #: (dst, seq) -> [dst, kind, payload, attempts, ticks-until-retry]
        self.pending: dict[tuple[int, int], list] = {}
        #: src -> out-of-order seqs received beyond the compacted prefix.
        self.seen: dict[int, set[int]] = {}
        #: src -> lowest seq not yet covered by the contiguous prefix.
        self._seen_lo: dict[int, int] = {}

    def send(self, dst: int, kind: str, payload: tuple) -> None:
        """Transmit ``kind(seq, *payload)`` and arm the retry timer."""
        seq = self.next_seq.get(dst, 0)
        self.next_seq[dst] = seq + 1
        self.pending[(dst, seq)] = [dst, kind, payload, 0, 1]
        self.ctx.unicast(dst, kind, seq, *payload)

    def on_ack(self, src: int, seq: int) -> None:
        """Retire a delivered message (idempotent for duplicate ACKs)."""
        self.pending.pop((src, seq), None)

    def accept(self, src: int, seq: int) -> bool:
        """First delivery of ``(src, seq)``?  Duplicates return False."""
        lo = self._seen_lo.get(src, 0)
        if seq < lo:
            return False  # inside the compacted prefix: definitely a dup
        extra = self.seen.get(src)
        if extra is None:
            extra = self.seen[src] = set()
        if seq in extra:
            return False
        extra.add(seq)
        # Fold the contiguous prefix into the watermark.
        while lo in extra:
            extra.remove(lo)
            lo += 1
        self._seen_lo[src] = lo
        return True

    def tick(self) -> None:
        """One timeout tick: retransmit everything whose backoff expired."""
        # Snapshot: retransmitting can deliver synchronously on some
        # delivery paths, and the resulting ACK retires entries from
        # ``pending`` mid-iteration.
        for (dst, seq), ent in list(self.pending.items()):
            if (dst, seq) not in self.pending:
                continue  # retired by an ACK triggered earlier in this tick
            ent[4] -= 1
            if ent[4] > 0:
                continue
            ent[3] += 1
            if ent[3] > self.max_retries:
                raise ProtocolError(
                    f"reliable {ent[1]} to node {ent[0]} undeliverable after "
                    f"{self.max_retries} retries (peer permanently down?)"
                )
            ent[4] = min(1 << ent[3], self.backoff_cap)
            self.ctx.unicast(dst, ent[1], seq, *ent[2])


def drain_reliable(kernel, nodes, *, max_iters: int = 20000) -> None:
    """Run the kernel until quiescent with no unacknowledged traffic left.

    The minimal settle loop for protocols whose only recovery mechanism
    is the :class:`RetryBuffer` (Co-NNT): alternate quiescence with
    ``retry_tick`` wakes, idling the clock (``kernel.tick``) through
    rounds where backoff or a transient crash window prevents any
    transmission.  Holders that are gone forever (crashed with no
    scheduled restart) are excluded from the drain condition: their
    unacknowledged traffic can never move again, and the recovery audit
    (:func:`repro.algorithms.ghs.audit.audit_pending_retry`) explicitly
    tolerates it — without the exclusion the loop idles ``max_iters``
    ticks waiting for a restart that never comes, then raises.
    """
    fp = kernel.faults
    for _ in range(max_iters):
        kernel.run_until_quiescent()
        if fp is None:
            return
        rnd = kernel.rounds
        holders = [
            nd.id
            for nd in nodes
            if getattr(nd, "retry", None) is not None and nd.retry.pending
        ]
        if not holders:
            return
        live = [i for i in holders if not fp.gone_forever(i, rnd)]
        if not live:
            return  # only permanently dead nodes hold traffic: drained
        alive = [i for i in live if not fp.crashed(i, rnd)]
        if alive:
            if trace.enabled:
                trace.emit("retry", round=rnd, nodes=len(alive))
            kernel.wake(alive, "retry_tick")
            if not kernel.in_flight:
                kernel.tick()  # backoff armed: let a round pass
        else:
            kernel.tick()  # every live holder is down: wait out the window
    raise ProtocolError(f"reliable traffic did not drain in {max_iters} settle iterations")
