"""The pre-optimization delivery path, preserved as a reference kernel.

:class:`LegacyKernel` re-implements sending, delivery and energy charging
exactly as the kernel did before the hot-path rework (per-recipient
KD-tree queries in ``local_broadcast``, a flat pending list with a full
per-round sort, unbatched ledger charges).  It exists for two reasons:

* ``tests/test_hotpath_equivalence.py`` runs the GHS family and EOPT on
  both kernels and asserts bit-identical energy / message / round stats
  and MST edge sets — the contract that lets the fast path evolve;
* ``benchmarks/bench_kernel_hotpath.py`` times both, so every future PR
  can report its speedup against a fixed pre-PR baseline.

Do not "optimize" this module: its value is being frozen.
"""

from __future__ import annotations

import math

from repro.errors import GeometryError, SimulationError
from repro.sim.kernel import SynchronousKernel
from repro.sim.message import Message


class LegacyKernel(SynchronousKernel):
    """Drop-in kernel with the original (pre-cache) hot path."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._flat_pending = True

    def _send_unicast(self, src: int, dst: int, kind: str, payload: tuple) -> None:
        if not (0 <= dst < self.n):
            raise SimulationError(f"unicast to unknown node {dst}")
        if dst == src:
            raise SimulationError(f"node {src} attempted to unicast to itself")
        d = self.points[src] - self.points[dst]
        dist = math.sqrt(d[0] * d[0] + d[1] * d[1])
        self._check_power(src, dist)
        self._ledger.charge(src, kind, self.stage, self.power.energy(dist))
        self._pending.append((dst, Message(kind, src, dst, payload, dist), dist))

    def _send_broadcast(self, src: int, radius: float, kind: str, payload: tuple) -> None:
        if radius < 0:
            raise GeometryError(f"broadcast radius must be non-negative, got {radius}")
        radius = float(radius)
        self._check_power(src, radius)
        self._ledger.charge(src, kind, self.stage, self.power.energy(radius))
        if self._tree is None:
            return
        msg = Message(kind, src, None, payload, radius)
        recipients = self._tree.query_ball_point(self.points[src], radius)
        src_pt = self.points[src]
        pending = self._pending
        for r in recipients:
            if r == src:
                continue
            d = src_pt - self.points[r]
            dist = math.sqrt(d[0] * d[0] + d[1] * d[1])
            pending.append((r, msg, dist))

    def step(self) -> int:
        if not self._pending:
            return 0
        return self._step_flat()


# Self-registration in the kernel-backend registry (repro.sim.backends).
from repro.sim.backends import register_kernel as _register_kernel  # noqa: E402

_register_kernel(
    "legacy",
    cls=LegacyKernel,
    order=1,
    summary="frozen pre-optimization reference (equivalence baseline)",
    reference=True,
)
