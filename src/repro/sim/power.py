"""Radio path-loss / energy model.

The paper assumes the radiation energy to send one message over distance
``d`` is ``w = a * d**alpha`` with path-loss exponent ``alpha`` (Sec. II).
Energy complexity is always computed with ``alpha = 2``; the model is kept
parametric so the ABL-A bench can sweep the exponent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError


@dataclass(frozen=True)
class PathLossModel:
    """Transmission-energy model ``w(d) = a * d**alpha``.

    Attributes
    ----------
    a:
        Proportionality constant (paper: unspecified constant; we use 1).
    alpha:
        Path-loss exponent (paper: 2 for all energy accounting; 2-4 covers
        realistic fading environments).
    """

    a: float = 1.0
    alpha: float = 2.0

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise GeometryError(f"path-loss constant a must be positive, got {self.a}")
        if self.alpha <= 0:
            raise GeometryError(f"path-loss exponent must be positive, got {self.alpha}")

    def energy(self, distance: float) -> float:
        """Energy to transmit one message to ``distance``."""
        if distance < 0:
            raise GeometryError(f"distance must be non-negative, got {distance}")
        if self.alpha == 2.0:  # hot path: avoid pow()
            return self.a * distance * distance
        return self.a * distance**self.alpha

    def energy_array(self, distances):
        """Vectorized :meth:`energy` over a float64 array.

        Bit-identical per element to the scalar path: for ``alpha == 2``
        the same ``a*d*d`` expression vectorizes exactly; for other
        exponents numpy's pow can differ from Python's in the last ulp,
        so the general case loops the scalar expression.
        """
        import numpy as np

        distances = np.asarray(distances, dtype=np.float64)
        if distances.size and float(distances.min()) < 0:
            raise GeometryError("distances must be non-negative")
        if self.alpha == 2.0:
            return self.a * distances * distances
        return np.array(
            [self.a * d**self.alpha for d in distances.tolist()], dtype=np.float64
        )

    def range_for_energy(self, energy: float) -> float:
        """Inverse model: the distance reachable with ``energy``."""
        if energy < 0:
            raise GeometryError(f"energy must be non-negative, got {energy}")
        return (energy / self.a) ** (1.0 / self.alpha)
