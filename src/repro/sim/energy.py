"""Energy ledger and run statistics.

Energy complexity (the paper's headline metric) is the sum over all
transmitted messages of ``a d^alpha``.  The ledger tracks that total plus
the breakdowns every experiment needs: per node, per message kind, and per
*stage* (an algorithm-defined label such as ``"step1"`` / ``"step2"`` so
EOPT's two steps can be audited against the Sec. V-C analysis).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np


class EnergyLedger:
    """Mutable accumulator for message counts and energy."""

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self.energy_total: float = 0.0
        self.messages_total: int = 0
        self.energy_by_node = np.zeros(n_nodes)
        self.energy_by_kind: dict[str, float] = defaultdict(float)
        self.messages_by_kind: dict[str, int] = defaultdict(int)
        self.energy_by_stage: dict[str, float] = defaultdict(float)
        self.messages_by_stage: dict[str, int] = defaultdict(int)
        # Reception-side accounting (paper Sec. VIII extension): tracked
        # separately so ``energy_total`` remains the paper's TX-only metric.
        self.rx_energy_total: float = 0.0
        self.receptions_total: int = 0
        self.rx_energy_by_node = np.zeros(n_nodes)

    def charge(self, node: int, kind: str, stage: str, energy: float) -> None:
        """Record one transmitted message by ``node`` costing ``energy``."""
        self.energy_total += energy
        self.messages_total += 1
        self.energy_by_node[node] += energy
        self.energy_by_kind[kind] += energy
        self.messages_by_kind[kind] += 1
        self.energy_by_stage[stage] += energy
        self.messages_by_stage[stage] += 1

    def charge_rx(self, node: int, energy: float) -> None:
        """Record one reception by ``node`` (constant radio-listen cost)."""
        self.rx_energy_total += energy
        self.receptions_total += 1
        self.rx_energy_by_node[node] += energy

    def snapshot(self, rounds: int) -> "SimStats":
        """Freeze the ledger into an immutable :class:`SimStats`."""
        return SimStats(
            energy_total=self.energy_total,
            messages_total=self.messages_total,
            rounds=rounds,
            energy_by_kind=dict(self.energy_by_kind),
            messages_by_kind=dict(self.messages_by_kind),
            energy_by_stage=dict(self.energy_by_stage),
            messages_by_stage=dict(self.messages_by_stage),
            energy_by_node=self.energy_by_node.copy(),
            rx_energy_total=self.rx_energy_total,
            receptions_total=self.receptions_total,
            rx_energy_by_node=self.rx_energy_by_node.copy(),
        )


@dataclass(frozen=True)
class SimStats:
    """Immutable statistics for one simulation run.

    ``energy_total`` is the paper's transmit-side energy complexity;
    ``rx_energy_total`` is the optional reception-cost extension
    (Sec. VIII) and is zero unless the kernel was given an ``rx_cost``.
    """

    energy_total: float
    messages_total: int
    rounds: int
    energy_by_kind: dict[str, float]
    messages_by_kind: dict[str, int]
    energy_by_stage: dict[str, float]
    messages_by_stage: dict[str, int]
    energy_by_node: np.ndarray = field(repr=False)
    rx_energy_total: float = 0.0
    receptions_total: int = 0
    rx_energy_by_node: np.ndarray = field(default=None, repr=False)

    @property
    def total_energy_with_rx(self) -> float:
        """Transmit plus reception energy (the extended model)."""
        return self.energy_total + self.rx_energy_total

    @property
    def max_node_energy(self) -> float:
        """Peak per-node energy — the battery-drain hotspot."""
        if len(self.energy_by_node) == 0:
            return 0.0
        return float(self.energy_by_node.max())

    def kind_table(self) -> list[tuple[str, int, float]]:
        """``(kind, messages, energy)`` rows sorted by descending energy."""
        rows = [
            (k, self.messages_by_kind.get(k, 0), e)
            for k, e in self.energy_by_kind.items()
        ]
        return sorted(rows, key=lambda r: -r[2])

    def stage_table(self) -> list[tuple[str, int, float]]:
        """``(stage, messages, energy)`` rows in stage-label order."""
        return [
            (s, self.messages_by_stage.get(s, 0), e)
            for s, e in sorted(self.energy_by_stage.items())
        ]
