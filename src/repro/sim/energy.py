"""Energy ledger and run statistics.

Energy complexity (the paper's headline metric) is the sum over all
transmitted messages of ``a d^alpha``.  The ledger tracks that total plus
the breakdowns every experiment needs: per node, per message kind, and per
*stage* (an algorithm-defined label such as ``"step1"`` / ``"step2"`` so
EOPT's two steps can be audited against the Sec. V-C analysis).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np


class EnergyLedger:
    """Mutable accumulator for message counts and energy."""

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes
        self.energy_total: float = 0.0
        self.messages_total: int = 0
        self.energy_by_node = np.zeros(n_nodes)
        self.energy_by_kind: dict[str, float] = defaultdict(float)
        self.messages_by_kind: dict[str, int] = defaultdict(int)
        self.energy_by_stage: dict[str, float] = defaultdict(float)
        self.messages_by_stage: dict[str, int] = defaultdict(int)
        # Reception-side accounting (paper Sec. VIII extension): tracked
        # separately so ``energy_total`` remains the paper's TX-only metric.
        self.rx_energy_total: float = 0.0
        self.receptions_total: int = 0
        self.rx_energy_by_node = np.zeros(n_nodes)
        # Fault-plane outcomes (repro.sim.faults).  A dropped delivery
        # keeps its TX charge — the sender still paid — so these count
        # *deliveries that never happened*, per message kind.
        self.drops_by_kind: dict[str, int] = defaultdict(int)
        self.dup_deliveries_by_kind: dict[str, int] = defaultdict(int)
        self.crash_drops_by_kind: dict[str, int] = defaultdict(int)

    def charge(self, node: int, kind: str, stage: str, energy: float) -> None:
        """Record one transmitted message by ``node`` costing ``energy``."""
        self.energy_total += energy
        self.messages_total += 1
        self.energy_by_node[node] += energy
        self.energy_by_kind[kind] += energy
        self.messages_by_kind[kind] += 1
        self.energy_by_stage[stage] += energy
        self.messages_by_stage[stage] += 1

    def charge_rx(self, node: int, energy: float) -> None:
        """Record one reception by ``node`` (constant radio-listen cost)."""
        self.rx_energy_total += energy
        self.receptions_total += 1
        self.rx_energy_by_node[node] += energy

    def snapshot(self, rounds: int) -> "SimStats":
        """Freeze the ledger into an immutable :class:`SimStats`."""
        return SimStats(
            energy_total=self.energy_total,
            messages_total=self.messages_total,
            rounds=rounds,
            energy_by_kind=dict(self.energy_by_kind),
            messages_by_kind=dict(self.messages_by_kind),
            energy_by_stage=dict(self.energy_by_stage),
            messages_by_stage=dict(self.messages_by_stage),
            energy_by_node=self.energy_by_node.copy(),
            rx_energy_total=self.rx_energy_total,
            receptions_total=self.receptions_total,
            rx_energy_by_node=self.rx_energy_by_node.copy(),
            drops_by_kind=dict(self.drops_by_kind),
            dup_deliveries_by_kind=dict(self.dup_deliveries_by_kind),
            crash_drops_by_kind=dict(self.crash_drops_by_kind),
        )


@dataclass(frozen=True)
class SimStats:
    """Immutable statistics for one simulation run.

    ``energy_total`` is the paper's transmit-side energy complexity;
    ``rx_energy_total`` is the optional reception-cost extension
    (Sec. VIII) and is zero unless the kernel was given an ``rx_cost``.
    """

    energy_total: float
    messages_total: int
    rounds: int
    energy_by_kind: dict[str, float]
    messages_by_kind: dict[str, int]
    energy_by_stage: dict[str, float]
    messages_by_stage: dict[str, int]
    energy_by_node: np.ndarray = field(repr=False)
    rx_energy_total: float = 0.0
    receptions_total: int = 0
    # An empty array, never None: hand-constructed or deserialized stats
    # must survive aggregation and ``.copy()`` without a guard at every
    # call site (regression: this used to default to None).
    rx_energy_by_node: np.ndarray = field(
        default_factory=lambda: np.zeros(0), repr=False
    )
    # Fault-plane delivery outcomes (empty when faults are off).
    drops_by_kind: dict[str, int] = field(default_factory=dict)
    dup_deliveries_by_kind: dict[str, int] = field(default_factory=dict)
    crash_drops_by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def total_energy_with_rx(self) -> float:
        """Transmit plus reception energy (the extended model)."""
        return self.energy_total + self.rx_energy_total

    @property
    def max_node_energy(self) -> float:
        """Peak per-node energy — the battery-drain hotspot."""
        if len(self.energy_by_node) == 0:
            return 0.0
        return float(self.energy_by_node.max())

    @property
    def dropped_total(self) -> int:
        """Deliveries lost to the fault plane (loss draws only)."""
        return sum(self.drops_by_kind.values())

    @property
    def crash_dropped_total(self) -> int:
        """Deliveries lost because the recipient was crashed."""
        return sum(self.crash_drops_by_kind.values())

    @property
    def dup_delivered_total(self) -> int:
        """Deliveries duplicated by the fault plane."""
        return sum(self.dup_deliveries_by_kind.values())

    def fault_table(self) -> list[tuple[str, int, int, int]]:
        """``(kind, drops, crash drops, dups)`` rows, sorted by kind.

        A run with no fault plan (or a null plan, or hand-constructed /
        deserialized stats whose fault dicts are missing) yields a
        well-formed *empty* list — never an exception, never rows of
        zeros.  Callers decide how to render "nothing happened".
        """
        drops = self.drops_by_kind or {}
        crash = self.crash_drops_by_kind or {}
        dups = self.dup_deliveries_by_kind or {}
        kinds = set(drops) | set(crash) | set(dups)
        return [
            (k, drops.get(k, 0), crash.get(k, 0), dups.get(k, 0))
            for k in sorted(kinds)
        ]

    def kind_table(self) -> list[tuple[str, int, float]]:
        """``(kind, messages, energy)`` rows sorted by descending energy."""
        rows = [
            (k, self.messages_by_kind.get(k, 0), e)
            for k, e in self.energy_by_kind.items()
        ]
        return sorted(rows, key=lambda r: -r[2])

    def stage_table(self) -> list[tuple[str, int, float]]:
        """``(stage, messages, energy)`` rows in stage-label order."""
        return [
            (s, self.messages_by_stage.get(s, 0), e)
            for s, e in sorted(self.energy_by_stage.items())
        ]
