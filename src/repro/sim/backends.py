"""The kernel-backend registry: one canonical name -> kernel class.

Mirrors :mod:`repro.runspec.registry` (the algorithm registry): each
kernel module self-registers a :class:`KernelEntry` at import time, and
lookups lazily import the built-in kernel modules so ``kernel_class("turbo")``
works without the caller importing :mod:`repro.sim` first.  The registry
is the single source of truth for:

* which kernel modes exist (:func:`kernel_names`, canonical order);
* how a mode label resolves to a kernel class (:func:`kernel_class`);
* backend properties other layers key on — ``instance_layout`` tells the
  sweep instance cache whether two modes can share a cached instance
  (chunked-CSR vs dense layouts must not), ``reference`` marks the frozen
  pre-optimization baseline that capability checks single out.

``repro.runspec.spec.KERNEL_MODES`` and ``kernel_class`` are thin views
over this registry; the hardcoded tuple + if-chain they replaced lives
only in git history now.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable

from repro.errors import ExperimentError

__all__ = [
    "KernelEntry",
    "register_kernel",
    "get_kernel",
    "kernel_names",
    "kernel_entries",
    "kernel_class",
    "kernel_layout",
]


@dataclass(frozen=True)
class KernelEntry:
    """One registered kernel backend.

    Attributes
    ----------
    name:
        Canonical mode label (``"fast"``, ``"legacy"``, ``"turbo"``).
    cls:
        The kernel class (a :class:`~repro.sim.kernel.SynchronousKernel`
        subclass, or the base class itself).
    order:
        Sort key for the canonical listing.
    summary:
        One-line description for ``repro kernels``.
    reference:
        True for the frozen pre-optimization baseline; algorithms whose
        runners cannot take ``kernel_cls`` reject every non-default mode.
    instance_layout:
        Instance-cache layout tag (``"dense"`` or ``"chunked"``).  The
        sweep instance cache keys on this, so modes with different
        instance layouts can never be served each other's cached builds.
    """

    name: str
    cls: type
    order: int
    summary: str = ""
    reference: bool = False
    instance_layout: str = "dense"


#: Modules whose import registers the built-in kernels.
_KERNEL_MODULES = (
    "repro.sim.kernel",
    "repro.sim.legacy",
    "repro.sim.turbo",
)

_REGISTRY: dict[str, KernelEntry] = {}
_loaded = False


def register_kernel(
    name: str,
    *,
    cls: Callable,
    order: int,
    summary: str = "",
    reference: bool = False,
    instance_layout: str = "dense",
) -> KernelEntry:
    """Register one kernel backend; called by kernel modules at import time.

    Re-registering the same ``(name, cls)`` pair is a no-op (module
    reloads); registering a different class under a taken name raises.
    """
    entry = KernelEntry(
        name=name,
        cls=cls,
        order=order,
        summary=summary,
        reference=reference,
        instance_layout=instance_layout,
    )
    existing = _REGISTRY.get(name)
    if existing is not None and existing.cls is not cls:
        raise ExperimentError(
            f"kernel mode {name!r} is already registered to "
            f"{existing.cls.__module__}.{existing.cls.__qualname__}"
        )
    _REGISTRY[name] = entry
    return entry


def _ensure_loaded() -> None:
    """Import the built-in kernel modules once so they self-register."""
    global _loaded
    if _loaded:
        return
    for module in _KERNEL_MODULES:
        importlib.import_module(module)
    _loaded = True


def kernel_names() -> tuple[str, ...]:
    """All registered mode labels, in canonical order."""
    _ensure_loaded()
    return tuple(
        e.name for e in sorted(_REGISTRY.values(), key=lambda e: (e.order, e.name))
    )


def kernel_entries() -> tuple[KernelEntry, ...]:
    """All registered entries, in canonical order."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY.values(), key=lambda e: (e.order, e.name)))


def get_kernel(name: str) -> KernelEntry:
    """The entry for ``name``; unknown labels list what *is* registered."""
    _ensure_loaded()
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ExperimentError(
            f"unknown kernel mode {name!r}; registered kernels: "
            + ", ".join(kernel_names())
        )
    return entry


def kernel_class(name: str) -> type:
    """Resolve a kernel-mode label to its kernel class."""
    return get_kernel(name).cls


def kernel_layout(name: str) -> str:
    """The instance-cache layout tag for kernel mode ``name``."""
    return get_kernel(name).instance_layout
