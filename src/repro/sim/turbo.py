"""The turbo kernel backend: whole-round execution as array programs.

:class:`TurboKernel` extends the fast kernel with *flat batch* message
semantics: a round's outbox is a set of ``(senders, recipients, kind,
payload-column)`` arrays instead of per-message ``Message`` objects, and
delivery hands each kind's whole batch to one registered vectorized
handler — the unicast analogue of the flood planes the fast kernel
already runs for HELLO/ANNOUNCE.  Fault fates come from
:meth:`repro.sim.faults.FaultPlane.times` applied to the entire batch at
once; charges are taken with one ``np.add.accumulate`` chain seeded with
the running total, which is bit-identical to the scalar kernel's
sequential ``+=`` per message.

Two layers build on these primitives:

* the GHS-family driver detects a :class:`TurboKernel` and replaces its
  phase loop with the whole-round array program in
  :mod:`repro.algorithms.ghs.turbo` (flood and converge-cast stages with
  no per-node handler calls);
* scripted/irregular traffic (and every configuration the turbo phase
  engine does not cover: plain GHS, fault plans, reliable transport,
  reception costs) falls through to the inherited fast-kernel paths
  unchanged, so ``kernel="turbo"`` is *always* observationally identical
  to ``kernel="fast"`` — sometimes just not faster.

Numba is optional by policy (see :mod:`repro.sim._jit`): every array
program here runs as pure numpy when Numba is absent.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SimulationError
from repro.perf import perf
from repro.sim._jit import HAVE_NUMBA, njit
from repro.sim.kernel import SynchronousKernel
from repro.trace import trace

__all__ = ["TurboKernel", "seq_energy_accumulate"]


@njit(cache=True)
def _seq_sum_jit(total: float, energies: np.ndarray) -> float:
    total = float(total)
    for i in range(energies.shape[0]):
        total += energies[i]
    return total


def seq_energy_accumulate(total: float, energies: np.ndarray) -> float:
    """``total`` advanced by every element of ``energies``, *in order*.

    The scalar tail of the turbo backend's energy accounting: the ledger
    total must move through the exact left-to-right partial sums the
    per-message kernel's ``+=`` loop produces, so pairwise/compensated
    summation is off the table.  Under Numba this is the jitted scalar
    loop itself; without it, a seeded ``np.add.accumulate`` chain —
    ufunc accumulation is defined as sequential application, so the two
    paths are bit-identical (pinned by ``tests/test_turbo.py`` with and
    without ``REPRO_NO_NUMBA=1``).
    """
    if HAVE_NUMBA:
        return float(_seq_sum_jit(float(total), np.ascontiguousarray(energies)))
    return float(np.add.accumulate(np.concatenate(([total], energies)))[-1])


class TurboKernel(SynchronousKernel):
    """Fast kernel plus flat-batch rounds (see module docstring)."""

    #: Capability flag algorithm drivers test before swapping their
    #: per-message loops for whole-round array programs.
    turbo_rounds = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Flat batches pending for the next round: (kind, srcs, dsts,
        # dists, payloads) with parallel arrays.
        self._flat_batches: list[tuple] = []
        self._n_flat_pending = 0
        self._batch_handlers: dict[str, Callable] = {}

    # -- batch API -------------------------------------------------------------

    def set_batch_handler(self, kind: str, handler: Callable | None) -> None:
        """Register (or clear) the vectorized delivery callback for ``kind``.

        ``handler(kind, srcs, dsts, dists, payloads)`` receives the whole
        surviving batch for one round — parallel arrays, already ordered
        by recipient then send order, with fault fates applied.
        """
        if handler is None:
            self._batch_handlers.pop(kind, None)
        else:
            self._batch_handlers[kind] = handler

    def charge_tx_batch(self, srcs: np.ndarray, kind: str, energies: np.ndarray) -> None:
        """Charge one transmission per ``srcs[i]`` costing ``energies[i]``.

        Exactly the accumulation the scalar ``_charge_tx`` loop performs:
        ``energy_total`` advances through the same left-to-right partial
        sums (``np.add.accumulate`` seeded with the running total is
        sequential, not pairwise), per-kind/per-stage cells batch the
        same way the fast kernel batches them, and per-node energy goes
        straight into the ledger array (the breakdowns' contract is
        reassociation-tolerant).
        """
        k = len(srcs)
        if k == 0:
            return
        led = self._ledger
        led.energy_total = seq_energy_accumulate(led.energy_total, energies)
        led.messages_total += k
        np.add.at(led.energy_by_node, srcs, energies)
        acc = self._acc_kinds
        key = (kind, self.stage)
        cell = acc.get(key)
        esum = float(energies.sum())
        if cell is None:
            acc[key] = [esum, k]
        else:
            cell[0] += esum
            cell[1] += k
        if perf.enabled:
            perf.add("kernel.turbo_charges", k)

    def unicast_batch(
        self,
        srcs,
        dsts,
        kind: str,
        payloads=None,
        *,
        dists=None,
    ) -> None:
        """Batch ``unicast``: one flat outbox entry for many messages.

        Charges every sender as the scalar unicast would (same distance
        expression, same summation order as sending them in array order)
        and schedules the batch for next round's vectorized delivery via
        the handler registered for ``kind``.
        """
        srcs = np.asarray(srcs, dtype=np.intp)
        dsts = np.asarray(dsts, dtype=np.intp)
        if len(srcs) != len(dsts):
            raise SimulationError(
                f"unicast_batch got {len(srcs)} senders but {len(dsts)} recipients"
            )
        if len(srcs) == 0:
            return
        if kind not in self._batch_handlers:
            raise SimulationError(
                f"unicast_batch kind {kind!r} has no batch handler registered"
            )
        if dsts.min() < 0 or dsts.max() >= self.n:
            raise SimulationError("unicast_batch recipient out of range")
        if bool((srcs == dsts).any()):
            raise SimulationError("unicast_batch cannot send to self")
        if dists is None:
            diff = self.points[srcs] - self.points[dsts]
            dx, dy = diff[:, 0], diff[:, 1]
            # Same float expression as the scalar unicast path.
            dists = np.sqrt(dx * dx + dy * dy)
        else:
            dists = np.asarray(dists, dtype=np.float64)
        if float(dists.max()) > self.max_radius * (1.0 + 1e-9):
            raise SimulationError(
                f"unicast_batch distance {float(dists.max()):.6g} exceeds "
                f"max radius {self.max_radius:.6g}"
            )
        self.charge_tx_batch(srcs, kind, self.power.energy_array(dists))
        if payloads is None:
            payloads = np.zeros(len(srcs), dtype=np.int64)
        else:
            payloads = np.asarray(payloads, dtype=np.int64)
        # Deterministic delivery order within the batch: recipient id,
        # then send (array) order — the fast kernel's (dst, seq) order.
        order = np.argsort(dsts, kind="stable")
        self._flat_batches.append(
            (kind, srcs[order], dsts[order], dists[order], payloads[order])
        )
        self._n_flat_pending += len(srcs)
        if perf.enabled:
            perf.add("kernel.turbo_batch_sends", len(srcs))

    # -- round execution -------------------------------------------------------

    def step(self) -> int:
        if not self._flat_batches:
            return super().step()
        if self._uni or self._bcasts or self._pending:
            raise SimulationError(
                "turbo flat batches cannot mix with per-message sends "
                "in the same round"
            )
        batches = self._flat_batches
        self._flat_batches = []
        delivered = self._n_flat_pending
        self._n_flat_pending = 0
        if self._n_plane_pending:
            delivered += self._deliver_planes()
        fp = self.faults
        led = self._ledger
        rx = self.rx_cost
        for kind, srcs, dsts, dists, payloads in batches:
            if fp is not None and len(srcs):
                times, cm, dm, um = fp.times(
                    srcs.astype(np.int64, copy=False),
                    dsts.astype(np.int64, copy=False),
                    fp.kind_hash(kind),
                    self.rounds,
                )
                ncr, ndr, ndu = int(cm.sum()), int(dm.sum()), int(um.sum())
                if ncr:
                    led.crash_drops_by_kind[kind] += ncr
                if ndr:
                    led.drops_by_kind[kind] += ndr
                if ndu:
                    led.dup_deliveries_by_kind[kind] += ndu
                if ncr or ndr or ndu:
                    srcs = np.repeat(srcs, times)
                    dsts = np.repeat(dsts, times)
                    dists = np.repeat(dists, times)
                    payloads = np.repeat(payloads, times)
            handler = self._batch_handlers[kind]
            handler(kind, srcs, dsts, dists, payloads)
            if rx:
                # Scalar loop keeps rx totals bit-identical to the
                # per-message path (same left-to-right summation).
                for dst in dsts.tolist():
                    led.charge_rx(dst, rx)
        self.rounds += 1
        if perf.enabled:
            perf.add("kernel.rounds")
            perf.add("kernel.deliveries", delivered)
            perf.add("kernel.turbo_batch_rounds")
            perf.sample_rss()
        if trace.enabled:
            self._trace_round()
        self._round_advanced()
        return delivered

    def run_until_quiescent(self, max_rounds: int = 1_000_000) -> int:
        ran = 0
        while (
            self._n_pending
            or self._pending
            or self._n_plane_pending
            or self._n_flat_pending
        ):
            self.step()
            ran += 1
            if ran > max_rounds:
                raise SimulationError(
                    f"no quiescence after {max_rounds} rounds — "
                    "protocol is probably livelocked"
                )
        return ran

    @property
    def in_flight(self) -> int:
        return super().in_flight + self._n_flat_pending


# Self-registration in the kernel-backend registry (repro.sim.backends).
# Turbo instances use the chunked CSR assembly at scale, so the instance
# cache must never serve it a dense-mode build (and vice versa).
from repro.sim.backends import register_kernel as _register_kernel  # noqa: E402

_register_kernel(
    "turbo",
    cls=TurboKernel,
    order=2,
    summary="whole-round vectorized array programs (GHS family hot paths)",
    instance_layout="chunked",
)
