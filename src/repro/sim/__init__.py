"""Synchronous message-passing simulator with energy accounting.

This implements the paper's model (Sec. II) directly:

* communication happens in discrete synchronous rounds;
* a node transmits at an adaptive power level; a **unicast** to a neighbour
  at distance ``d`` costs ``a d^alpha`` energy, a **local broadcast** to
  radius ``R`` costs ``a R^alpha`` and is received by every node within
  ``R`` (the radio/wireless local-broadcast feature);
* there are no collisions (each message succeeds in one attempt) unless a
  seeded :class:`~repro.sim.faults.FaultPlan` injects message loss,
  duplication, or node crash windows at delivery time;
* the receiver of a message learns the distance to the sender (the RSSI
  assumption implicit in the modified GHS's per-neighbour distance lists);
* the **energy complexity** of a run is the sum of per-message energies,
  which the kernel's ledger tracks per node / per message kind / per stage.

Algorithm code sees only a per-node :class:`~repro.sim.kernel.Context`
facade; coordinates are exposed to a node only when the algorithm is
declared coordinate-aware (Co-NNT), mirroring the paper's information
model.
"""

from repro.sim.power import PathLossModel
from repro.sim.message import Message
from repro.sim.energy import EnergyLedger, SimStats
from repro.sim.node import NodeProcess
from repro.sim.faults import FaultPlan, FaultPlane, RetryBuffer
from repro.sim.kernel import (
    Context,
    SynchronousKernel,
    make_neighbor_table,
    neighbor_csr_arrays,
    set_table_provider,
    table_within_budget,
)
from repro.sim.legacy import LegacyKernel
from repro.sim.turbo import TurboKernel, seq_energy_accumulate
from repro.sim.backends import (
    KernelEntry,
    get_kernel,
    kernel_class,
    kernel_entries,
    kernel_layout,
    kernel_names,
    register_kernel,
)

__all__ = [
    "KernelEntry",
    "TurboKernel",
    "get_kernel",
    "kernel_class",
    "kernel_entries",
    "kernel_layout",
    "kernel_names",
    "register_kernel",
    "PathLossModel",
    "Message",
    "EnergyLedger",
    "SimStats",
    "NodeProcess",
    "FaultPlan",
    "FaultPlane",
    "RetryBuffer",
    "SynchronousKernel",
    "LegacyKernel",
    "Context",
    "make_neighbor_table",
    "neighbor_csr_arrays",
    "seq_energy_accumulate",
    "set_table_provider",
    "table_within_budget",
]
