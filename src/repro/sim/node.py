"""Base class for simulated node processes.

A protocol is written as a :class:`NodeProcess` subclass: the kernel calls
``on_start`` once, ``on_message`` for every delivered message, and
``on_wake`` for driver-issued local signals (phase starts, timer ticks —
events a node in a synchronous system could derive from round counting, so
they carry no information and no energy cost).

Nodes must only use what they could know in the paper's model:

* their own id (and coordinates, *only* when the kernel was built
  coordinate-aware — Sec. VI algorithms);
* the content of received messages plus the sender distance (the RSSI
  assumption backing the modified GHS's neighbour distance lists);
* local state they accumulated.

Nothing in the API lets a node read another node's state or the topology.

Flood-shaped traffic (every sender broadcasts one integer, every
recipient records it) can bypass ``on_message`` entirely: a driver may
register a plane handler on the kernel and issue
``ctx.plane_broadcast``, which delivers whole waves in bulk with
identical energy/message/round accounting (see ``repro.sim.kernel``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Context


class NodeProcess:
    """One simulated processor.

    Subclasses implement the three event handlers.  ``self.ctx`` is the
    node's communication facade (:class:`~repro.sim.kernel.Context`).
    """

    __slots__ = ("id", "ctx")

    def __init__(self, node_id: int, ctx: "Context") -> None:
        self.id = node_id
        self.ctx = ctx

    def on_start(self) -> None:
        """Called once before the first round."""

    def on_message(self, msg: Message, distance: float) -> None:
        """Called for every message delivered to this node.

        ``distance`` is the physical sender distance (measurable at the
        radio layer); protocols may store it.
        """

    def on_wake(self, signal: str, payload: tuple = ()) -> None:
        """Called for a driver-issued local signal (no energy, no data)."""
