"""Optional Numba acceleration shim.

The turbo backend is pure numpy by policy: Numba is an *optional*
accelerator, never a dependency.  This shim resolves the policy in one
place — ``njit`` is Numba's decorator when the package is importable
(and not disabled via ``REPRO_NO_NUMBA=1``), and an identity decorator
otherwise, so decorated kernels run unchanged as plain Python/numpy.

Nothing else in the codebase may import ``numba`` directly; gating the
import here keeps the fallback path tested on hosts without Numba (CI
images bake in only the numpy/scipy toolchain).
"""

from __future__ import annotations

import os

__all__ = ["njit", "HAVE_NUMBA"]


def _identity_njit(*args, **kwargs):
    """Signature-compatible stand-in for ``numba.njit``."""
    if len(args) == 1 and callable(args[0]) and not kwargs:
        return args[0]

    def wrap(fn):
        return fn

    return wrap


HAVE_NUMBA = False
njit = _identity_njit

if not os.environ.get("REPRO_NO_NUMBA"):
    try:  # pragma: no cover - exercised only where numba is installed
        from numba import njit as _numba_njit

        njit = _numba_njit
        HAVE_NUMBA = True
    except ImportError:
        pass
