"""The run-report side of the engine: results plus instrumentation.

A :class:`RunReport` bundles everything one executed
:class:`~repro.runspec.spec.RunSpec` produced: the
:class:`~repro.algorithms.base.AlgorithmResult` (tree + full statistics),
the isolated ``repro.perf`` snapshot and ``repro.trace`` event stream
(when the spec asked for them), and the fault-plane outcome table.  Like
the spec, a report is JSON-round-trippable, so a run's complete record
can be archived, diffed against a golden, or shipped back from a worker
on another host.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import AlgorithmResult
from repro.errors import ExperimentError
from repro.runspec.spec import SCHEMA_VERSION, RunSpec, jsonable
from repro.sim.energy import SimStats

__all__ = ["RunReport", "result_to_dict", "result_from_dict"]


def result_to_dict(result: AlgorithmResult) -> dict:
    """Serialize one algorithm run (tree + stats) to plain JSON data."""
    s = result.stats
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "algorithm_result",
        "name": result.name,
        "n": result.n,
        "phases": result.phases,
        "tree_edges": result.tree_edges.tolist(),
        "extras": jsonable(result.extras),
        "stats": {
            "energy_total": s.energy_total,
            "messages_total": int(s.messages_total),
            "rounds": int(s.rounds),
            "energy_by_kind": jsonable(s.energy_by_kind),
            "messages_by_kind": jsonable(s.messages_by_kind),
            "energy_by_stage": jsonable(s.energy_by_stage),
            "messages_by_stage": jsonable(s.messages_by_stage),
            "energy_by_node": s.energy_by_node.tolist(),
            "rx_energy_total": s.rx_energy_total,
            "receptions_total": int(s.receptions_total),
            "rx_energy_by_node": s.rx_energy_by_node.tolist(),
            "drops_by_kind": jsonable(s.drops_by_kind),
            "dup_deliveries_by_kind": jsonable(s.dup_deliveries_by_kind),
            "crash_drops_by_kind": jsonable(s.crash_drops_by_kind),
        },
    }


def result_from_dict(data: dict) -> AlgorithmResult:
    """Inverse of :func:`result_to_dict`."""
    if data.get("kind") != "algorithm_result":
        raise ExperimentError(
            f"not an algorithm_result payload: {data.get('kind')!r}"
        )
    s = data["stats"]
    stats = SimStats(
        energy_total=float(s["energy_total"]),
        messages_total=int(s["messages_total"]),
        rounds=int(s["rounds"]),
        energy_by_kind=dict(s.get("energy_by_kind", {})),
        messages_by_kind=dict(s.get("messages_by_kind", {})),
        energy_by_stage=dict(s.get("energy_by_stage", {})),
        messages_by_stage=dict(s.get("messages_by_stage", {})),
        energy_by_node=np.asarray(s.get("energy_by_node", ()), dtype=float),
        rx_energy_total=float(s.get("rx_energy_total", 0.0)),
        receptions_total=int(s.get("receptions_total", 0)),
        rx_energy_by_node=np.asarray(s.get("rx_energy_by_node", ()), dtype=float),
        drops_by_kind=dict(s.get("drops_by_kind", {})),
        dup_deliveries_by_kind=dict(s.get("dup_deliveries_by_kind", {})),
        crash_drops_by_kind=dict(s.get("crash_drops_by_kind", {})),
    )
    edges = np.asarray(data["tree_edges"], dtype=np.int64)
    if edges.size == 0:
        edges = np.zeros((0, 2), dtype=np.int64)
    return AlgorithmResult(
        name=data["name"],
        n=int(data["n"]),
        tree_edges=edges,
        stats=stats,
        phases=int(data["phases"]),
        extras=dict(data.get("extras", {})),
    )


@dataclass(frozen=True)
class RunReport:
    """Everything one executed spec produced.

    Attributes
    ----------
    spec:
        The spec that was executed (instance coordinates included, so the
        report is self-describing and replayable).
    result:
        The runner's :class:`~repro.algorithms.base.AlgorithmResult`.
    perf:
        Isolated :meth:`repro.perf.PerfRegistry.snapshot` of the run, or
        ``None`` when ``spec.perf`` was off.
    trace:
        Isolated :meth:`repro.trace.TraceRegistry.snapshot` event list,
        or ``None`` when ``spec.trace`` was off.
    """

    spec: RunSpec
    result: AlgorithmResult
    perf: dict | None = None
    trace: list[dict] | None = None

    # -- headline stats (the sweep tensors are built from these) -------------

    @property
    def energy(self) -> float:
        return self.result.energy

    @property
    def messages(self) -> int:
        return self.result.messages

    @property
    def rounds(self) -> int:
        return self.result.rounds

    def fault_table(self) -> list[tuple[str, int, int, int]]:
        """The fault-plane outcome rows (empty when faults never engaged)."""
        return self.result.stats.fault_table()

    # -- JSON round trip -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain JSON-serializable payload (inverse: :meth:`from_dict`).

        ``spec_hash`` is stamped in (derived from the spec, so the
        payload stays a pure function of the report's contents): a
        stored payload and a freshly computed one are diffable by key
        without re-deriving the hash.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "run_report",
            "spec_hash": self.spec.spec_hash(),
            "spec": self.spec.to_dict(),
            "result": result_to_dict(self.result),
            "perf": self.perf,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output."""
        if data.get("kind") != "run_report":
            raise ExperimentError(f"not a run_report payload: {data.get('kind')!r}")
        version = data.get("schema_version", data.get("schema"))
        if version != SCHEMA_VERSION:
            raise ExperimentError(f"unsupported run_report schema version {version!r}")
        spec = RunSpec.from_dict(data["spec"])
        stamp = data.get("spec_hash")
        if stamp is not None and stamp != spec.spec_hash():
            raise ExperimentError(
                "run_report spec_hash stamp does not match its spec payload"
            )
        return cls(
            spec=spec,
            result=result_from_dict(data["result"]),
            perf=data.get("perf"),
            trace=data.get("trace"),
        )

    def to_json(self, *, indent: int | None = 1) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"run report is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
