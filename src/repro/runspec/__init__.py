"""Run-service layer: declarative specs, the algorithm registry, and the
one execution engine under the CLI, sweeps and benchmarks.

The layer stack (see ``docs/architecture.md``)::

    geometry/rgg  ->  sim kernel  ->  algorithms  ->  runspec engine
                                                          |
                                      experiments / CLI / benchmarks

* :class:`RunSpec` — a frozen, JSON-round-trippable run description
  (algorithm, instance seed, radii constants, kernel flags, fault plan,
  instrumentation switches).
* the registry (:func:`algorithm_names`, :func:`algorithm_entries`,
  :func:`get_algorithm`) — runner modules self-register; one canonical
  label ordering for the CLI, tables and error messages.
* :func:`execute` / :func:`execute_batch` — one engine owning kernel
  construction, registry dispatch and the perf/trace snapshot lifecycle;
  the batch form is the single fan-out path for sweeps (serial or
  process-pool, with graceful serial fallback).
* :class:`RunReport` — the result plus perf/trace snapshots and the
  fault table, JSON-round-trippable like the spec.
"""

from repro.runspec.engine import dispatch, execute, execute_batch, shutdown
from repro.runspec.registry import AlgorithmEntry, register_algorithm
from repro.runspec.registry import entries as algorithm_entries
from repro.runspec.registry import get as get_algorithm
from repro.runspec.registry import names as algorithm_names
from repro.runspec.report import RunReport, result_from_dict, result_to_dict
from repro.runspec.spec import (
    KERNEL_MODES,
    SCHEMA_VERSION,
    RunSpec,
    faultplan_from_dict,
    faultplan_to_dict,
    jsonable,
    kernel_class,
    scenarioplan_from_dict,
    scenarioplan_to_dict,
)

__all__ = [
    "AlgorithmEntry",
    "KERNEL_MODES",
    "RunReport",
    "RunSpec",
    "SCHEMA_VERSION",
    "algorithm_entries",
    "algorithm_names",
    "dispatch",
    "execute",
    "execute_batch",
    "faultplan_from_dict",
    "faultplan_to_dict",
    "get_algorithm",
    "jsonable",
    "kernel_class",
    "register_algorithm",
    "result_from_dict",
    "result_to_dict",
    "scenarioplan_from_dict",
    "scenarioplan_to_dict",
    "shutdown",
]
