"""The one execution engine under the CLI, sweeps and benchmarks.

:func:`execute` turns a :class:`~repro.runspec.spec.RunSpec` into a
:class:`~repro.runspec.report.RunReport`: it resolves the algorithm
through the registry, derives the instance from ``(n, seed)`` via the
shared per-process cache, validates capability flags (fault recovery,
legacy kernel) and owns the perf/trace reset–enable–snapshot lifecycle
that used to be duplicated between ``cli.py`` and
``experiments/parallel.py``.  Instrumentation requested by the spec is
*isolated*: whatever the ambient process registries held before the call
is saved and restored, so a spec-managed run can record its own snapshot
inside a larger instrumented session without clobbering it.

Passing a :class:`~repro.store.ResultStore` memoizes: a spec whose
result key (:meth:`RunSpec.result_key` — the content hash minus the
perf/trace switches) is already stored returns the persisted report
without running anything, and a fresh run is written back.  Every run is
deterministic, so the cached payload is byte-for-byte what the run would
have produced (pinned by ``tests/test_store.py`` and the
``bench_run_cache`` golden gate).

:func:`execute_batch` is the one fan-out path.  ``backend="serial"``
executes in-process; ``backend="process"`` ships each spec to a worker as
its serialized dict (small, self-describing task payloads — the worker
re-derives the instance from the seed) and returns the reports in spec
order.  Three batch-level optimizations sit in front of the fan-out:

* **store consult** — with a store attached, cached specs are answered
  before any task is shipped; only the misses fan out.
* **singleflight dedupe** — positions holding an identical spec (same
  :meth:`~RunSpec.spec_hash`) are computed once and the report fanned
  back to every position, preserving spec order.
* **shared-memory instance fabric** — the parent publishes each unique
  instance (points, and the CSR neighbor table for turbo-layout runs)
  once via :mod:`repro.experiments.fabric`; workers attach read-only
  instead of rebuilding.  Unavailable shared memory degrades silently
  to per-worker rebuilds.

One :class:`~concurrent.futures.ProcessPoolExecutor` stays alive at
module level across batches (spawning workers pays interpreter start-up
and a cold instance cache otherwise) and is reused as long as it is at
least as large as the requested worker count; :func:`shutdown` tears it
down (releasing fabric segments with it), and an ``atexit`` hook reaps
it at interpreter exit.  When the host cannot spawn a process pool at
all (sandboxed CI, locked-down containers), the batch degrades to the
serial backend with a single :class:`RuntimeWarning` **per process**
instead of raising — every cell is deterministic, so the results are
identical, only slower.  A long-lived server fanning every request
through here would otherwise log the same warning once per request;
after the first warning the degraded state is surfaced through
:func:`pool_state` (the serve layer exposes it in ``/stats``) rather
than the warnings stream.  Pool lifecycle is guarded by a module lock
so concurrent submitters (serve worker threads) cannot double-spawn or
tear down a pool another batch is using.
"""

from __future__ import annotations

import atexit
import math
import os
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable

from repro.errors import ExperimentError
from repro.perf import perf
from repro.runspec.registry import AlgorithmEntry, get
from repro.runspec.report import RunReport
from repro.runspec.spec import RunSpec
from repro.trace import trace

__all__ = ["execute", "execute_batch", "dispatch", "pool_state", "shutdown"]

#: Batch backends accepted by :func:`execute_batch`.
BACKENDS = ("serial", "process")


def dispatch(entry: AlgorithmEntry, points, spec: RunSpec):
    """Run ``entry`` on explicit ``points`` under ``spec``'s knobs.

    The capability checks live here — one place — so the legacy
    :func:`repro.experiments.runner.run_algorithm` surface and the spec
    engine reject unsupported combinations with identical errors.
    """
    if spec.kernel != "fast" and not entry.supports_kernel_mode:
        raise ExperimentError(
            f"{entry.name} does not support kernel={spec.kernel!r}; "
            f"only the GHS family accepts alternate kernel backends"
        )
    if (
        spec.faults is not None
        and not spec.faults.is_null
        and not entry.supports_faults
    ):
        raise ExperimentError(
            f"{entry.name} has no fault-recovery layer; "
            "run it without --drop-rate/--crash"
        )
    if (
        spec.scenario is not None
        and not spec.scenario.is_null
        and not entry.supports_scenario
    ):
        raise ExperimentError(
            f"{entry.name} does not interpret scenario plans; "
            "run schedules through the MAINT workload"
        )
    return entry.adapter(points, spec)


def execute(spec: RunSpec, *, store=None) -> RunReport:
    """Execute one spec and return its full report.

    Bit-identical to calling the underlying runner directly with the
    spec's constants (pinned by ``tests/test_runspec.py``): the engine is
    plumbing, not behavior.  With ``store`` a cached result short-
    circuits the run entirely and a fresh result is persisted; a store
    failure is never allowed to fail the run (the store degrades to
    inert and the run proceeds uncached).
    """
    # Imported lazily: experiments.instances sits above the algorithm
    # layer, whose runner modules import this package to self-register.
    from repro.experiments.instances import get_points

    if store is not None:
        cached = store.get_report(spec)
        if cached is not None:
            perf.add("engine.store_hits")
            return cached
        perf.add("engine.store_misses")
    entry = get(spec.algorithm)
    pts = get_points(spec.n, spec.seed)
    psnap = tsnap = None
    if spec.perf:
        perf_was_on, perf_prev = perf.enabled, perf.snapshot()
        perf.reset()
        perf.enable()
    if spec.trace:
        trace_was_on, trace_prev = trace.enabled, trace.snapshot()
        trace.reset()
        trace.enable()
    try:
        result = dispatch(entry, pts, spec)
    finally:
        # Snapshot the run's own data, then restore the ambient registry
        # state exactly (a spec-managed run inside a larger instrumented
        # session must not clobber what the session already accumulated).
        if spec.perf:
            psnap = perf.snapshot()
            perf.disable()
            perf.reset()
            perf.merge(perf_prev)
            if perf_was_on:
                perf.enable()
        if spec.trace:
            tsnap = trace.snapshot()
            trace.disable()
            trace.reset()
            trace.merge(trace_prev)
            if trace_was_on:
                trace.enable()
    report = RunReport(spec=spec, result=result, perf=psnap, trace=tsnap)
    if store is not None:
        store.put_report(report)
    return report


# -- process backend ---------------------------------------------------------

#: The module-level pool reused across batches (lazily created).
_pool: ProcessPoolExecutor | None = None
_pool_workers = 0

#: Guards the pool globals: concurrent batches from serve worker threads
#: must not double-spawn the pool or shut one down mid-``map``.
_pool_lock = threading.RLock()

#: Set after the first pool-unavailable fallback; later fallbacks stay
#: silent (the degraded state is queryable via :func:`pool_state`).
_fallback_warned = False

#: Exceptions that mean "the pool machinery is unusable", as opposed to a
#: worker raising from inside a run: spawn failures surface as OSError
#: (EPERM/ENOSYS under sandboxes), missing multiprocessing primitives as
#: ImportError/NotImplementedError, and a dead pool as BrokenProcessPool.
_POOL_FAILURES = (BrokenProcessPool, OSError, ImportError, NotImplementedError)


def _executor(workers: int) -> ProcessPoolExecutor:
    """The shared pool, reused whenever it is big enough.

    A pool with *more* workers than requested serves the batch fine (the
    extras idle), so only growth forces a respawn.  Recreating on every
    size change made alternating sweeps — a wide scaling pass followed by
    a narrow fault grid — pay worker start-up and a cold instance cache
    twice per alternation.
    """
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is None or _pool_workers < workers:
            _shutdown_pool()
            _pool = ProcessPoolExecutor(max_workers=workers)
            _pool_workers = workers
        return _pool


def _shutdown_pool() -> None:
    """Tear down just the process pool (idempotent).

    Deliberately does *not* touch the instance fabric: a pool respawn
    mid-batch (worker-count growth, failure recovery) must leave the
    segments the already-shipped manifests reference alive.
    """
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown()
            _pool = None
            _pool_workers = 0


def pool_state() -> dict:
    """A snapshot of the shared pool for health surfaces (``/stats``).

    ``serial_fallback`` stays ``True`` for the life of the process once
    a batch has degraded — the warn-once policy means the warnings
    stream only ever says it once, so this flag is the durable signal.
    """
    with _pool_lock:
        return {
            "alive": _pool is not None,
            "workers": _pool_workers,
            "serial_fallback": _fallback_warned,
        }


def shutdown() -> None:
    """Tear down the shared pool (idempotent; next batch respawns it).

    Fabric segments are released with it: the workers holding the
    attachments are going away, so keeping the parent's shared maps
    pinned would only defer the unlink to interpreter exit.
    """
    _shutdown_pool()
    try:
        from repro.experiments import fabric

        fabric.release()
    except Exception:
        # Interpreter teardown (this also runs from atexit) may have
        # already reaped the module; fabric registers its own backstop.
        pass


# A process that batches and exits without calling shutdown() would leak
# the worker processes until interpreter teardown reaps them (and under
# some start methods hang joining them).
atexit.register(shutdown)


def _execute_task(task: "dict | tuple") -> RunReport:
    """Worker: one serialized spec -> its report.

    Module-level so it pickles under the spawn start method.  The task is
    the spec's JSON dict — small and self-describing; the worker derives
    the instance through its per-process cache and, because the spec
    carries the perf/trace switches, records isolated snapshots that ship
    back inside the report for the parent to merge.  A task may arrive as
    ``(spec_dict, manifest)``: the manifest lists shared-memory segments
    published by the parent, attached (idempotently) before the run so
    the instance cache serves the parent's arrays instead of rebuilding.
    """
    manifest = None
    if isinstance(task, tuple):
        task, manifest = task
    if manifest is not None:
        from repro.experiments import fabric

        fabric.attach_manifest(manifest)
    return execute(RunSpec.from_dict(task))


def _chunksize(n_tasks: int, workers: int, align: int) -> int:
    """Adaptive ``pool.map`` chunksize.

    A multiple of ``align`` (e.g. the number of algorithms per sweep
    cell, so a chunk never splits a cell across workers and one chunk
    shares one cached instance build), aiming at ~4 chunks per worker to
    balance scheduling overhead against tail latency.
    """
    align = max(1, align)
    target = math.ceil(n_tasks / (workers * 4))
    return max(align, align * math.ceil(target / align))


def execute_batch(
    specs: Iterable[RunSpec],
    *,
    backend: str = "serial",
    workers: int | None = None,
    chunk_align: int = 1,
    store=None,
) -> list[RunReport]:
    """Execute many specs; reports come back in spec order.

    Parameters
    ----------
    specs:
        The run requests.  Order is preserved — report ``i`` belongs to
        spec ``i`` — so callers can merge instrumentation deterministically.
        Positions holding an identical spec are computed once
        (singleflight) and the one report fanned back to each of them.
    backend:
        ``"serial"`` runs in-process; ``"process"`` fans out over the
        shared process pool (falling back to serial, with one warning
        per process, when the host cannot spawn a pool).
    workers:
        Pool size for the process backend; defaults to the CPU count.
    chunk_align:
        Chunk-size alignment for the process backend (see
        :func:`_chunksize`).
    store:
        Optional :class:`~repro.store.ResultStore`.  Cached specs are
        answered before any fan-out; fresh results are written back.
    """
    specs = list(specs)
    if backend not in BACKENDS:
        raise ExperimentError(
            f"unknown batch backend {backend!r}; expected one of {BACKENDS}"
        )
    if not specs:
        return []

    # Singleflight: collapse identical positions to one computation per
    # distinct spec hash, keeping first-appearance order for the fan-out
    # (so chunk alignment still sees cell-major runs of the sweep).
    order: dict[str, int] = {}
    unique: list[RunSpec] = []
    slots: list[int] = []
    for spec in specs:
        h = spec.spec_hash()
        at = order.get(h)
        if at is None:
            at = order[h] = len(unique)
            unique.append(spec)
        slots.append(at)
    if len(unique) < len(specs):
        perf.add("engine.batch_deduped", len(specs) - len(unique))

    # Store consult: answer what we can before shipping anything.
    reports: list[RunReport | None] = [None] * len(unique)
    if store is not None:
        for i, spec in enumerate(unique):
            cached = store.get_report(spec)
            if cached is not None:
                perf.add("engine.store_hits")
                reports[i] = cached
            else:
                perf.add("engine.store_misses")
    todo = [i for i in range(len(unique)) if reports[i] is None]

    if todo:
        fresh = _run_batch(
            [unique[i] for i in todo], backend, workers, chunk_align
        )
        for i, report in zip(todo, fresh):
            reports[i] = report
            if store is not None:
                store.put_report(report)
    return [reports[at] for at in slots]


def _run_batch(
    specs: list[RunSpec], backend: str, workers: int | None, chunk_align: int
) -> list[RunReport]:
    """Fan ``specs`` (already deduped, all misses) out on ``backend``."""
    if backend == "serial":
        return [execute(s) for s in specs]
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")

    from repro.experiments import fabric

    manifest = fabric.manifest_for_specs(specs)
    if manifest is not None:
        tasks: list = [(s.to_dict(), manifest) for s in specs]
    else:
        tasks = [s.to_dict() for s in specs]
    chunksize = _chunksize(len(tasks), workers, chunk_align)
    try:
        pool = _executor(workers)
        return list(pool.map(_execute_task, tasks, chunksize=chunksize))
    except _POOL_FAILURES as exc:
        # The pool machinery itself is unusable (sandboxed CI, broken
        # workers).  Every cell is deterministic, so degrading to the
        # serial backend changes nothing but wall-clock; a genuine
        # per-run error re-raises from the serial execute() below.
        shutdown()
        global _fallback_warned
        if not _fallback_warned:
            _fallback_warned = True
            warnings.warn(
                f"process pool unavailable ({type(exc).__name__}: {exc}); "
                "falling back to the serial backend "
                "(warned once per process; see pool_state())",
                RuntimeWarning,
                stacklevel=2,
            )
        return [execute(s) for s in specs]
    except BaseException:
        # A worker crash or interrupt may leave the shared pool unusable;
        # drop it so the next batch starts clean.
        shutdown()
        raise
