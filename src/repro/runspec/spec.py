"""Declarative run descriptions: :class:`RunSpec` and JSON helpers.

A :class:`RunSpec` is a frozen, JSON-round-trippable value describing one
algorithm run completely: algorithm label, instance coordinates
``(n, seed)``, the paper's radii constants, kernel mode flags, an
optional :class:`~repro.sim.faults.FaultPlan`, and the perf/trace
instrumentation switches.  Because a spec is *data*, not call-site code,
a run request can be saved, diffed, queued, shipped to another process or
host, and replayed — the precondition for sharded multi-host sweeps.

:func:`jsonable` is the one canonical normalizer from numpy-contaminated
result payloads (``AlgorithmResult.extras`` and friends) to plain JSON
types; every writer in :mod:`repro.experiments.io` and
:mod:`repro.runspec.report` goes through it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any

import numpy as np

from repro.errors import ExperimentError
from repro.geometry.radius import PAPER_EOPT_STEP1_CONST, PAPER_GHS_RADIUS_CONST
from repro.scenario.plan import ScenarioPlan, scenarioplan_from_dict, scenarioplan_to_dict
from repro.sim.faults import FaultPlan

__all__ = [
    "SCHEMA_VERSION",
    "KERNEL_MODES",
    "RunSpec",
    "jsonable",
    "kernel_class",
    "faultplan_to_dict",
    "faultplan_from_dict",
    "scenarioplan_to_dict",
    "scenarioplan_from_dict",
]

#: Schema stamp written into every spec / report / sweep JSON payload.
SCHEMA_VERSION = 1


def _kernel_modes() -> tuple[str, ...]:
    """Registered kernel modes (lazy: the registry imports kernel modules)."""
    from repro.sim.backends import kernel_names

    return kernel_names()


class _KernelModes(tuple):
    """A tuple view over the kernel registry, resolved on first use.

    ``KERNEL_MODES`` predates the registry and is imported by the CLI and
    external callers as a plain tuple (argparse choices, membership
    tests).  Keeping the name while sourcing it from
    :mod:`repro.sim.backends` needs one indirection: this subclass defers
    the registry import until the tuple is actually *used*, so importing
    :mod:`repro.runspec.spec` stays cheap.
    """

    _resolved: tuple[str, ...] | None = None

    @classmethod
    def _get(cls) -> tuple[str, ...]:
        if cls._resolved is None:
            cls._resolved = _kernel_modes()
        return cls._resolved

    def __iter__(self):
        return iter(self._get())

    def __len__(self):
        return len(self._get())

    def __getitem__(self, i):
        return self._get()[i]

    def __contains__(self, item):
        return item in self._get()

    def __eq__(self, other):
        return self._get() == other

    def __ne__(self, other):
        return self._get() != other

    def __hash__(self):
        return hash(self._get())

    def __repr__(self):
        return repr(self._get())


#: Accepted kernel implementations, in registry order: the optimized hot
#: path, the frozen pre-optimization reference (benchmarks only) and the
#: whole-round vectorized turbo backend.  Sourced from the kernel-backend
#: registry (:mod:`repro.sim.backends`); resolves lazily on first use.
KERNEL_MODES = _KernelModes()


def jsonable(obj: Any) -> Any:
    """Normalize ``obj`` to plain JSON-serializable Python types.

    Handles the numpy leakage every runner produces: scalars
    (``np.int64``/``np.float64``/``np.bool_``), arrays (to nested lists),
    containers (dicts, lists, tuples, sets) and non-string dict keys.
    Anything already JSON-native passes through unchanged.
    """
    if isinstance(obj, dict):
        return {_json_key(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.generic):
        return obj.item()
    return obj


def _canonical_hash(data: dict) -> str:
    """sha256 hex digest of ``data`` rendered as canonical JSON.

    Canonical = sorted keys, compact separators: the rendering is unique
    for a given payload, so the digest is a content address.
    """
    text = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _json_key(key: Any) -> Any:
    """Dict keys: numpy scalars become native so ``json.dumps`` accepts them."""
    if isinstance(key, np.bool_):
        return bool(key)
    if isinstance(key, np.generic):
        return key.item()
    return key


def kernel_class(mode: str):
    """Resolve a kernel-mode label via the kernel-backend registry.

    Kept as a public re-export (callers predate the registry); unknown
    labels raise with the registered names listed.
    """
    from repro.sim.backends import kernel_class as _kernel_class

    return _kernel_class(mode)


def faultplan_to_dict(plan: FaultPlan | None) -> dict | None:
    """Serialize a :class:`FaultPlan` to plain JSON data (``None`` passes)."""
    if plan is None:
        return None
    return {
        "seed": plan.seed,
        "drop_rate": plan.drop_rate,
        "dup_rate": plan.dup_rate,
        "link_loss": [[int(u), int(v), p] for (u, v), p in plan.link_loss],
        "crashes": [
            [node, start, end] for node, start, end in plan.crashes
        ],
    }


def faultplan_from_dict(data: dict | None) -> FaultPlan | None:
    """Inverse of :func:`faultplan_to_dict`."""
    if data is None:
        return None
    try:
        return FaultPlan(
            seed=int(data.get("seed", 0)),
            drop_rate=float(data.get("drop_rate", 0.0)),
            dup_rate=float(data.get("dup_rate", 0.0)),
            link_loss=tuple(
                ((int(u), int(v)), float(p)) for u, v, p in data.get("link_loss", ())
            ),
            crashes=tuple(
                (node, start, end) for node, start, end in data.get("crashes", ())
            ),
        )
    except (TypeError, ValueError) as exc:
        raise ExperimentError(f"malformed fault plan payload: {exc}") from exc


@dataclass(frozen=True)
class RunSpec:
    """One declarative run request.

    Attributes
    ----------
    algorithm:
        Registered algorithm label (see :mod:`repro.runspec.registry`).
    n / seed:
        Instance coordinates: the uniform point set is
        ``uniform_points(n, seed=seed)`` via the shared per-process cache.
    ghs_radius_const / eopt_c1 / eopt_c2 / eopt_beta:
        The paper's experimental constants (Sec. VII); only the ones an
        algorithm consumes matter to it.
    rx_cost:
        Optional constant reception cost (Sec. VIII extension).
    kernel:
        A registered kernel mode: ``"fast"`` (default), ``"legacy"`` (the
        frozen pre-optimization reference used by equivalence benchmarks)
        or ``"turbo"`` (whole-round vectorized execution).
    planes:
        Flood-plane fast path for HELLO/ANNOUNCE (bit-identical either way).
    recover:
        Enable the reliable-unicast recovery layer when faults are injected.
    faults:
        Optional seeded :class:`~repro.sim.faults.FaultPlan`.
    scenario:
        Optional :class:`~repro.scenario.plan.ScenarioPlan` — a timed
        event schedule (churn/mobility/maintenance checkpoints) for
        algorithms that support the scenario plane (currently
        ``MAINT``).  Serialized inside the spec payload and therefore
        part of ``spec_hash``/``result_key``; omitted entirely when
        ``None`` so scenario-free specs keep their historical hashes.
    perf / trace:
        Instrumentation: when set, :func:`repro.runspec.engine.execute`
        records an isolated perf/trace snapshot into the returned
        :class:`~repro.runspec.report.RunReport`.
    """

    algorithm: str
    n: int
    seed: int = 0
    ghs_radius_const: float = PAPER_GHS_RADIUS_CONST
    eopt_c1: float = PAPER_EOPT_STEP1_CONST
    eopt_c2: float = PAPER_GHS_RADIUS_CONST
    eopt_beta: float = 1.0
    rx_cost: float = 0.0
    kernel: str = "fast"
    planes: bool = True
    recover: bool = True
    faults: FaultPlan | None = field(default=None)
    scenario: ScenarioPlan | None = field(default=None)
    perf: bool = False
    trace: bool = False

    def __post_init__(self) -> None:
        if not self.algorithm:
            raise ExperimentError("spec needs an algorithm label")
        if self.n < 2:
            raise ExperimentError(f"spec needs n >= 2, got {self.n}")
        if self.kernel not in KERNEL_MODES:
            raise ExperimentError(
                f"unknown kernel mode {self.kernel!r}; registered kernels: "
                + ", ".join(KERNEL_MODES)
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ExperimentError(
                f"faults must be a FaultPlan or None, got {type(self.faults).__name__}"
            )
        if self.scenario is not None and not isinstance(self.scenario, ScenarioPlan):
            raise ExperimentError(
                "scenario must be a ScenarioPlan or None, got "
                f"{type(self.scenario).__name__}"
            )

    # -- derived -------------------------------------------------------------

    @property
    def cell(self) -> str:
        """The sweep-cell key this spec occupies (trace source stamp)."""
        return f"{self.algorithm}:n{self.n}:s{self.seed}"

    def spec_hash(self) -> str:
        """Content address of this spec: sha256 over the canonical JSON dict.

        Two specs hash equal iff they are equal (the dict is the full
        field set, the JSON rendering is canonical — sorted keys, no
        whitespace — and the ``schema_version`` stamp is part of the
        hashed payload, so a schema bump can never alias an old key).
        """
        return _canonical_hash(self.to_dict())

    def result_key(self) -> str:
        """Content address of this spec's *result*.

        Like :meth:`spec_hash` but with the perf/trace instrumentation
        switches excluded: instrumentation observes a run without
        changing its outcome, so an instrumented and a bare run of the
        same configuration share one
        :class:`~repro.store.ResultStore` entry.
        """
        data = self.to_dict()
        del data["perf"], data["trace"]
        return _canonical_hash(data)

    def with_(self, **changes: Any) -> "RunSpec":
        """A copy with ``changes`` applied (frozen-dataclass ``replace``)."""
        return replace(self, **changes)

    # -- JSON round trip -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain JSON-serializable payload (inverse: :meth:`from_dict`).

        The ``scenario`` key is present only when a plan is attached:
        scenario-free specs must keep the exact payload (and therefore
        ``spec_hash``/``result_key``) they had before the scenario plane
        existed, so stored reports and caches stay addressable.
        """
        data = {
            "schema_version": SCHEMA_VERSION,
            "kind": "run_spec",
            "algorithm": self.algorithm,
            "n": self.n,
            "seed": self.seed,
            "ghs_radius_const": self.ghs_radius_const,
            "eopt_c1": self.eopt_c1,
            "eopt_c2": self.eopt_c2,
            "eopt_beta": self.eopt_beta,
            "rx_cost": self.rx_cost,
            "kernel": self.kernel,
            "planes": self.planes,
            "recover": self.recover,
            "faults": faultplan_to_dict(self.faults),
            "perf": self.perf,
            "trace": self.trace,
        }
        if self.scenario is not None:
            data["scenario"] = scenarioplan_to_dict(self.scenario)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict: typos fail)."""
        if not isinstance(data, dict):
            raise ExperimentError(f"run spec payload must be an object, got {type(data).__name__}")
        kind = data.get("kind", "run_spec")
        if kind != "run_spec":
            raise ExperimentError(f"not a run_spec payload: {kind!r}")
        version = data.get("schema_version", data.get("schema", SCHEMA_VERSION))
        if version != SCHEMA_VERSION:
            raise ExperimentError(f"unsupported run_spec schema version {version!r}")
        known = {f.name for f in fields(cls)}
        payload = {
            k: v for k, v in data.items() if k not in ("schema_version", "schema", "kind")
        }
        unknown = set(payload) - known
        if unknown:
            raise ExperimentError(
                f"run_spec payload has unknown fields: {sorted(unknown)}"
            )
        if "algorithm" not in payload or "n" not in payload:
            raise ExperimentError("run_spec payload needs 'algorithm' and 'n'")
        payload["faults"] = faultplan_from_dict(payload.get("faults"))
        payload["scenario"] = scenarioplan_from_dict(payload.get("scenario"))
        return cls(**payload)

    def to_json(self, *, indent: int | None = 1) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"run spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
