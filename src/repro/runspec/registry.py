"""The algorithm registry: one canonical name -> runner mapping.

Each runner module self-registers an :class:`AlgorithmEntry` at import
time (see the bottom of ``repro/algorithms/*/runner.py``), replacing the
string-label if-chains that used to live in ``experiments/runner.py`` and
the hand-maintained ``choices`` lists in the CLI.  The registry is the
single source of truth for:

* which labels exist (:func:`names`, in canonical paper order);
* how a :class:`~repro.runspec.spec.RunSpec` maps onto a runner's
  keyword surface (each entry's ``adapter``);
* which capabilities a runner supports (fault recovery, the legacy
  reference kernel), so unsupported spec combinations fail loudly with
  the registered names listed.

Lookups lazily import the built-in runner modules, so ``get("GHS")``
works without the caller importing :mod:`repro.algorithms` first.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ExperimentError

__all__ = ["AlgorithmEntry", "register_algorithm", "get", "names", "entries"]


@dataclass(frozen=True)
class AlgorithmEntry:
    """One registered algorithm.

    Attributes
    ----------
    name:
        Canonical label (``"GHS"``, ``"MGHS"``, ``"EOPT"``, ``"Co-NNT"``,
        ``"Rand-NNT"``, ...).
    runner:
        The underlying ``run_*`` function (identity matters: the registry
        completeness test maps entries back to runner functions).
    adapter:
        ``(points, spec) -> AlgorithmResult`` — maps a
        :class:`~repro.runspec.spec.RunSpec` onto the runner's kwargs.
    order:
        Sort key for the canonical listing (paper presentation order).
    summary:
        One-line description for tables and ``repro algorithms``.
    supports_faults:
        Whether the runner has a fault-recovery layer (a non-null
        :class:`~repro.sim.faults.FaultPlan` is rejected otherwise).
    supports_kernel_mode:
        Whether the runner accepts ``kernel_cls`` (the ``"legacy"``
        reference kernel is rejected otherwise).
    supports_scenario:
        Whether the runner interprets a
        :class:`~repro.scenario.plan.ScenarioPlan` (a non-null
        ``spec.scenario`` is rejected otherwise).
    """

    name: str
    runner: Callable[..., Any]
    adapter: Callable[..., Any]
    order: int
    summary: str = ""
    supports_faults: bool = True
    supports_kernel_mode: bool = True
    supports_scenario: bool = False


#: Modules whose import registers the built-in algorithms.
_RUNNER_MODULES = (
    "repro.algorithms.ghs.runner",
    "repro.algorithms.eopt.runner",
    "repro.algorithms.connt.runner",
    "repro.algorithms.randnnt.protocol",
    "repro.applications.maintenance",
)

_REGISTRY: dict[str, AlgorithmEntry] = {}
_loaded = False


def register_algorithm(
    name: str,
    *,
    runner: Callable[..., Any],
    adapter: Callable[..., Any],
    order: int,
    summary: str = "",
    supports_faults: bool = True,
    supports_kernel_mode: bool = True,
    supports_scenario: bool = False,
) -> AlgorithmEntry:
    """Register one algorithm; called by runner modules at import time.

    Re-registering the same ``(name, runner)`` pair is a no-op (module
    reloads); registering a different runner under a taken name raises.
    """
    entry = AlgorithmEntry(
        name=name,
        runner=runner,
        adapter=adapter,
        order=order,
        summary=summary,
        supports_faults=supports_faults,
        supports_kernel_mode=supports_kernel_mode,
        supports_scenario=supports_scenario,
    )
    existing = _REGISTRY.get(name)
    if existing is not None and existing.runner is not runner:
        raise ExperimentError(
            f"algorithm label {name!r} is already registered to "
            f"{existing.runner.__module__}.{existing.runner.__qualname__}"
        )
    _REGISTRY[name] = entry
    return entry


def _ensure_loaded() -> None:
    """Import the built-in runner modules once so they self-register."""
    global _loaded
    if _loaded:
        return
    for module in _RUNNER_MODULES:
        importlib.import_module(module)
    _loaded = True


def names() -> tuple[str, ...]:
    """All registered labels, in canonical (paper presentation) order."""
    _ensure_loaded()
    return tuple(
        e.name for e in sorted(_REGISTRY.values(), key=lambda e: (e.order, e.name))
    )


def entries() -> tuple[AlgorithmEntry, ...]:
    """All registered entries, in canonical order."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY.values(), key=lambda e: (e.order, e.name)))


def get(name: str) -> AlgorithmEntry:
    """The entry for ``name``; unknown labels list what *is* registered."""
    _ensure_loaded()
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ExperimentError(
            f"unknown algorithm label {name!r}; registered algorithms: "
            + ", ".join(names())
        )
    return entry
