"""Connected-component analysis for geometric graphs.

Thin wrappers over a union-find sweep of the edge list — O(m alpha(n)) — so
no scipy dependency is needed on this hot path.  The percolation module
uses these to find the giant component (Thm 5.2 empirics).
"""

from __future__ import annotations

import numpy as np

from repro.ds.unionfind import UnionFind
from repro.rgg.build import GeometricGraph


def component_labels(graph: GeometricGraph) -> np.ndarray:
    """Label array: ``labels[u]`` is a component id in ``0..k-1``.

    Component ids are assigned in order of first appearance by node id, so
    the labeling is deterministic.
    """
    uf = UnionFind(graph.n)
    for u, v in graph.edges:
        uf.union(int(u), int(v))
    labels = np.empty(graph.n, dtype=np.int64)
    seen: dict[int, int] = {}
    for i in range(graph.n):
        root = uf.find(i)
        if root not in seen:
            seen[root] = len(seen)
        labels[i] = seen[root]
    return labels


def connected_components(graph: GeometricGraph) -> list[np.ndarray]:
    """List of components, each an ascending array of node ids.

    Ordered by first node id, i.e. components()[0] contains node 0.
    """
    labels = component_labels(graph)
    k = int(labels.max()) + 1 if graph.n else 0
    return [np.nonzero(labels == c)[0] for c in range(k)]


def component_sizes(graph: GeometricGraph) -> np.ndarray:
    """Sizes of all components, descending."""
    labels = component_labels(graph)
    if graph.n == 0:
        return np.zeros(0, dtype=np.int64)
    sizes = np.bincount(labels)
    return np.sort(sizes)[::-1]


def is_connected(graph: GeometricGraph) -> bool:
    """``True`` iff the graph has at most one component (and >= 0 nodes)."""
    if graph.n <= 1:
        return True
    uf = UnionFind(graph.n)
    for u, v in graph.edges:
        uf.union(int(u), int(v))
        if uf.n_components == 1:
            return True
    return uf.n_components == 1


def giant_component(graph: GeometricGraph) -> np.ndarray:
    """Node ids of the largest component (ties: smallest first-node id)."""
    comps = connected_components(graph)
    if not comps:
        return np.zeros(0, dtype=np.int64)
    return max(comps, key=len)
