"""Connectivity-threshold estimation for random geometric graphs.

Theorem 5.1 (after Gupta–Kumar) says ``r = sqrt(c log n / n)`` with
``c > 4`` (Chebyshev; constant differs for Euclidean) connects the RGG whp.
These helpers measure where the threshold actually falls for finite ``n`` —
used by tests and by the THM52/ABL-R benches to sanity-check the constants
the paper picked (1.4 and 1.6).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import GeometryError
from repro.geometry.points import uniform_points
from repro.rgg.build import build_rgg
from repro.rgg.components import is_connected


def critical_connectivity_radius(points: np.ndarray) -> float:
    """Smallest radius at which the RGG over ``points`` is connected.

    This equals the longest edge of the Euclidean MST; we compute it as the
    bottleneck of a Prim sweep over KD-tree neighbourhoods, i.e. binary
    search over candidate radii from the MST edge set.  Implementation:
    compute the exact EMST (Delaunay-restricted Kruskal) and return its
    maximum edge length.
    """
    from repro.mst.delaunay import euclidean_mst  # local import: avoid cycle

    pts = np.asarray(points, dtype=float)
    if len(pts) <= 1:
        return 0.0
    _, lengths = euclidean_mst(pts)
    return float(lengths.max())


def connectivity_probability(
    n: int,
    radius: float,
    trials: int = 20,
    seed: int = 0,
) -> float:
    """Empirical probability that a uniform-``n`` RGG at ``radius`` connects.

    Runs ``trials`` independent draws with seeds ``seed, seed+1, ...``.
    """
    if trials <= 0:
        raise GeometryError(f"trials must be positive, got {trials}")
    hits = 0
    for t in range(trials):
        pts = uniform_points(n, seed=seed + t)
        if is_connected(build_rgg(pts, radius)):
            hits += 1
    return hits / trials


def kth_nearest_distances(points: np.ndarray, k: int) -> np.ndarray:
    """Distance from every point to its ``k``-th nearest neighbour.

    Lemma 4.1 empirics: for uniform points the ``k``-th-NN distance squared
    concentrates around ``k / (pi n)``, which is what makes talking to your
    ``k`` closest neighbours cost ``Omega(k/n)`` energy.
    """
    pts = np.asarray(points, dtype=float)
    if k < 1:
        raise GeometryError(f"k must be >= 1, got {k}")
    if k >= len(pts):
        raise GeometryError(f"k={k} must be < n={len(pts)}")
    tree = cKDTree(pts)
    dists, _ = tree.query(pts, k=k + 1)  # first hit is the point itself
    return dists[:, k]
