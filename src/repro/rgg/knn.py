"""The K-closest-neighbours connectivity model (Santis et al. [25]).

Theorem 5.2's giant-component statement mirrors Theorem 1 of Santis,
Grandoni & Panconesi, *but under a different connection rule*: the paper
connects nodes within a fixed radius ``r = sqrt(c1/n)``, whereas [25]
connects each node to its K closest nodes (K a fixed constant).  This
module implements the [25] rule so the two models can be compared
empirically (the ABL-KNN bench): both exhibit a unique giant component
with small leftovers, with K ≈ 3 matching the paper's c1 = 1.4 regime.

The K-closest digraph is symmetrised two ways:

* ``mutual=False`` (default, the [25] convention): keep edge (u, v) if
  *either* endpoint selected the other;
* ``mutual=True``: keep it only if *both* did (a sparser variant).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import GeometryError
from repro.rgg.build import GeometricGraph, _assemble


def knn_graph(
    points: np.ndarray, k: int, *, mutual: bool = False
) -> GeometricGraph:
    """Build the K-closest-neighbours graph over ``points``.

    Parameters
    ----------
    points:
        ``(n, 2)`` coordinates.
    k:
        Number of closest nodes each node connects to (``1 <= k < n``).
    mutual:
        Symmetrisation rule (see module docstring).

    Returns a :class:`GeometricGraph` whose ``radius`` field records the
    longest selected link (the implied per-node power level is
    heterogeneous, unlike the fixed-radius model).
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
    n = len(pts)
    if n == 0:
        return _assemble(pts, 0.0, np.zeros((0, 2), dtype=np.int64), np.zeros(0))
    if not (1 <= k < n):
        raise GeometryError(f"k must be in [1, n), got k={k}, n={n}")

    tree = cKDTree(pts)
    _, idxs = tree.query(pts, k=k + 1)  # first column is the point itself
    sources = np.repeat(np.arange(n), k)
    targets = idxs[:, 1:].ravel()
    pairs = np.stack(
        [np.minimum(sources, targets), np.maximum(sources, targets)], axis=1
    )
    if mutual:
        uniq, counts = np.unique(pairs, axis=0, return_counts=True)
        edges = uniq[counts == 2]
    else:
        edges = np.unique(pairs, axis=0)
    edges = edges.astype(np.int64)
    if len(edges):
        d = pts[edges[:, 0]] - pts[edges[:, 1]]
        lengths = np.sqrt(np.sum(d * d, axis=1))
        radius = float(lengths.max())
    else:
        lengths = np.zeros(0)
        radius = 0.0
    return _assemble(pts, radius, edges, lengths)


def knn_equivalent_radius(n: int, k: int) -> float:
    """The fixed radius whose expected degree matches K-closest: the ball
    holding k neighbours in expectation has area k/n, radius sqrt(k/(pi n)).

    Useful for apples-to-apples comparisons between the two models.
    """
    if n <= 0 or k <= 0:
        raise GeometryError(f"n and k must be positive, got n={n}, k={k}")
    return float(np.sqrt(k / (np.pi * n)))
