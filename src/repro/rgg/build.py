"""RGG construction via KD-tree range queries.

:class:`GeometricGraph` is the central graph object handed to the exact
MST routines, the percolation analytics and the distributed simulator.  It
stores the point coordinates, the radius, a CSR-like adjacency structure
and the undirected edge list with Euclidean lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import GeometryError, GraphError


@dataclass(frozen=True)
class GeometricGraph:
    """An undirected geometric graph over points in the unit square.

    Attributes
    ----------
    points:
        ``(n, 2)`` node coordinates.
    radius:
        Connection radius used to build the graph (``inf`` for a complete
        graph built by :meth:`complete`).
    edges:
        ``(m, 2)`` int array; each row ``(u, v)`` with ``u < v``.
    lengths:
        ``(m,)`` Euclidean edge lengths, parallel to ``edges``.
    indptr, indices:
        CSR adjacency: neighbours of ``u`` are
        ``indices[indptr[u]:indptr[u+1]]``, sorted by node id.
    """

    points: np.ndarray
    radius: float
    edges: np.ndarray
    lengths: np.ndarray
    indptr: np.ndarray = field(repr=False)
    indices: np.ndarray = field(repr=False)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.points)

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.edges)

    def neighbors(self, u: int) -> np.ndarray:
        """Node ids adjacent to ``u`` (sorted ascending)."""
        if not (0 <= u < self.n):
            raise GraphError(f"node {u} out of range [0, {self.n})")
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        if not (0 <= u < self.n):
            raise GraphError(f"node {u} out of range [0, {self.n})")
        return int(self.indptr[u + 1] - self.indptr[u])

    def degrees(self) -> np.ndarray:
        """Degree of every node."""
        return np.diff(self.indptr)

    def distance(self, u: int, v: int) -> float:
        """Euclidean distance between nodes ``u`` and ``v`` (any pair)."""
        d = self.points[u] - self.points[v]
        return float(np.sqrt(d @ d))

    def subgraph_radius(self, r: float) -> "GeometricGraph":
        """The graph restricted to edges of length ``<= r`` (same nodes)."""
        if r < 0:
            raise GeometryError(f"radius must be non-negative, got {r}")
        keep = self.lengths <= r
        return _assemble(self.points, float(r), self.edges[keep], self.lengths[keep])

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` with ``weight`` = length."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_weighted_edges_from(
            (int(u), int(v), float(w))
            for (u, v), w in zip(self.edges, self.lengths)
        )
        return g


def _assemble(
    points: np.ndarray, radius: float, edges: np.ndarray, lengths: np.ndarray
) -> GeometricGraph:
    """Build the CSR adjacency from an undirected edge list."""
    n = len(points)
    if len(edges):
        sym = np.concatenate([edges, edges[:, ::-1]])
        order = np.lexsort((sym[:, 1], sym[:, 0]))
        sym = sym[order]
        counts = np.bincount(sym[:, 0], minlength=n)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        indices = np.ascontiguousarray(sym[:, 1])
    else:
        indptr = np.zeros(n + 1, dtype=np.int64)
        indices = np.zeros(0, dtype=np.int64)
    return GeometricGraph(
        points=points,
        radius=radius,
        edges=edges,
        lengths=lengths,
        indptr=indptr.astype(np.int64),
        indices=indices.astype(np.int64),
    )


def build_rgg(points: np.ndarray, radius: float) -> GeometricGraph:
    """Build the RGG connecting all pairs within Euclidean ``radius``.

    Uses :meth:`cKDTree.query_pairs`, so only the O(|E|) near pairs are ever
    materialised.

    Parameters
    ----------
    points:
        ``(n, 2)`` coordinates.
    radius:
        Connection radius (inclusive: ``d(u, v) <= radius``).
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
    if radius < 0:
        raise GeometryError(f"radius must be non-negative, got {radius}")
    if len(pts) == 0:
        return _assemble(pts, float(radius), np.zeros((0, 2), dtype=np.int64), np.zeros(0))
    tree = cKDTree(pts)
    pairs = tree.query_pairs(r=float(radius), output_type="ndarray")
    if len(pairs):
        # query_pairs returns i < j already, but sort rows for determinism.
        pairs = np.sort(pairs, axis=1)
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        pairs = pairs[order].astype(np.int64)
        diffs = pts[pairs[:, 0]] - pts[pairs[:, 1]]
        lengths = np.sqrt(np.sum(diffs * diffs, axis=1))
    else:
        pairs = np.zeros((0, 2), dtype=np.int64)
        lengths = np.zeros(0)
    return _assemble(pts, float(radius), pairs, lengths)


def complete_graph(points: np.ndarray) -> GeometricGraph:
    """The complete Euclidean graph (radius = unit-square diameter).

    O(n^2) edges; used by brute-force cross-checks and by the Korach-style
    lower-bound experiments which view the network as a complete weighted
    graph (Sec. IV).
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
    n = len(pts)
    iu, ju = np.triu_indices(n, k=1)
    edges = np.stack([iu, ju], axis=1).astype(np.int64)
    diffs = pts[iu] - pts[ju]
    lengths = np.sqrt(np.sum(diffs * diffs, axis=1))
    return _assemble(pts, float(np.sqrt(2.0)), edges, lengths)
