"""RGG construction via KD-tree range queries.

:class:`GeometricGraph` is the central graph object handed to the exact
MST routines, the percolation analytics and the distributed simulator.  It
stores the point coordinates, the radius, a CSR-like adjacency structure
and the undirected edge list with Euclidean lengths.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from itertools import chain

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import GeometryError, GraphError

#: Instance layouts the builders can produce.  ``dense`` materialises all
#: pairs at once (fastest below ~10^5 nodes); ``chunked`` streams the
#: CSR through fixed-size node blocks and spills the big arrays to
#: anonymous memory-mapped scratch files past a byte threshold, so
#: million-node RGGs build within a bounded resident footprint.
LAYOUTS = ("dense", "chunked")


@dataclass(frozen=True)
class GeometricGraph:
    """An undirected geometric graph over points in the unit square.

    Attributes
    ----------
    points:
        ``(n, 2)`` node coordinates.
    radius:
        Connection radius used to build the graph (``inf`` for a complete
        graph built by :meth:`complete`).
    edges:
        ``(m, 2)`` int array; each row ``(u, v)`` with ``u < v``.
    lengths:
        ``(m,)`` Euclidean edge lengths, parallel to ``edges``.
    indptr, indices:
        CSR adjacency: neighbours of ``u`` are
        ``indices[indptr[u]:indptr[u+1]]``, sorted by node id.
    """

    points: np.ndarray
    radius: float
    edges: np.ndarray
    lengths: np.ndarray
    indptr: np.ndarray = field(repr=False)
    indices: np.ndarray = field(repr=False)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.points)

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.edges)

    def neighbors(self, u: int) -> np.ndarray:
        """Node ids adjacent to ``u`` (sorted ascending)."""
        if not (0 <= u < self.n):
            raise GraphError(f"node {u} out of range [0, {self.n})")
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        if not (0 <= u < self.n):
            raise GraphError(f"node {u} out of range [0, {self.n})")
        return int(self.indptr[u + 1] - self.indptr[u])

    def degrees(self) -> np.ndarray:
        """Degree of every node."""
        return np.diff(self.indptr)

    def distance(self, u: int, v: int) -> float:
        """Euclidean distance between nodes ``u`` and ``v`` (any pair)."""
        d = self.points[u] - self.points[v]
        return float(np.sqrt(d @ d))

    def subgraph_radius(self, r: float) -> "GeometricGraph":
        """The graph restricted to edges of length ``<= r`` (same nodes)."""
        if r < 0:
            raise GeometryError(f"radius must be non-negative, got {r}")
        keep = self.lengths <= r
        return _assemble(self.points, float(r), self.edges[keep], self.lengths[keep])

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` with ``weight`` = length."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_weighted_edges_from(
            (int(u), int(v), float(w))
            for (u, v), w in zip(self.edges, self.lengths)
        )
        return g


def _assemble(
    points: np.ndarray, radius: float, edges: np.ndarray, lengths: np.ndarray
) -> GeometricGraph:
    """Build the CSR adjacency from an undirected edge list."""
    n = len(points)
    if len(edges):
        sym = np.concatenate([edges, edges[:, ::-1]])
        order = np.lexsort((sym[:, 1], sym[:, 0]))
        sym = sym[order]
        counts = np.bincount(sym[:, 0], minlength=n)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        indices = np.ascontiguousarray(sym[:, 1])
    else:
        indptr = np.zeros(n + 1, dtype=np.int64)
        indices = np.zeros(0, dtype=np.int64)
    return GeometricGraph(
        points=points,
        radius=radius,
        edges=edges,
        lengths=lengths,
        indptr=indptr.astype(np.int64),
        indices=indices.astype(np.int64),
    )


def build_rgg(points: np.ndarray, radius: float) -> GeometricGraph:
    """Build the RGG connecting all pairs within Euclidean ``radius``.

    Uses :meth:`cKDTree.query_pairs`, so only the O(|E|) near pairs are ever
    materialised.

    Parameters
    ----------
    points:
        ``(n, 2)`` coordinates.
    radius:
        Connection radius (inclusive: ``d(u, v) <= radius``).
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
    if radius < 0:
        raise GeometryError(f"radius must be non-negative, got {radius}")
    if len(pts) == 0:
        return _assemble(pts, float(radius), np.zeros((0, 2), dtype=np.int64), np.zeros(0))
    tree = cKDTree(pts)
    pairs = tree.query_pairs(r=float(radius), output_type="ndarray")
    if len(pairs):
        # query_pairs returns i < j already, but sort rows for determinism.
        pairs = np.sort(pairs, axis=1)
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        pairs = pairs[order].astype(np.int64)
        diffs = pts[pairs[:, 0]] - pts[pairs[:, 1]]
        lengths = np.sqrt(np.sum(diffs * diffs, axis=1))
    else:
        pairs = np.zeros((0, 2), dtype=np.int64)
        lengths = np.zeros(0)
    return _assemble(pts, float(radius), pairs, lengths)


class _ArraySink:
    """Append-only array accumulator that spills to a scratch memmap.

    Chunks stay in RAM until their cumulative size crosses ``threshold``
    bytes; from then on everything streams into an unlinked temp file
    and :meth:`finish` hands back a ``np.memmap`` over it.  Unlinking
    immediately after mapping means the disk space is reclaimed as soon
    as the array (and its mapping) is garbage collected — no cleanup
    protocol leaks scratch files on crash.
    """

    def __init__(self, dtype, threshold: int | None, workdir: str | None) -> None:
        self.dtype = np.dtype(dtype)
        self.threshold = threshold
        self.workdir = workdir
        self.chunks: list[np.ndarray] = []
        self.nbytes = 0
        self.count = 0
        self.file = None

    def append(self, arr: np.ndarray) -> None:
        arr = np.ascontiguousarray(arr, dtype=self.dtype)
        self.count += arr.size
        if self.file is not None:
            self.file.write(arr.tobytes())
            return
        self.chunks.append(arr)
        self.nbytes += arr.nbytes
        if self.threshold is not None and self.nbytes > self.threshold:
            self.file = tempfile.NamedTemporaryFile(
                dir=self.workdir, prefix="rgg-csr-", suffix=".bin", delete=False
            )
            for c in self.chunks:
                self.file.write(c.tobytes())
            self.chunks = []

    def finish(self) -> np.ndarray:
        if self.file is None:
            if not self.chunks:
                return np.zeros(0, dtype=self.dtype)
            out = np.concatenate(self.chunks) if len(self.chunks) > 1 else self.chunks[0]
            self.chunks = []
            return out
        self.file.flush()
        path = self.file.name
        self.file.close()
        mm = np.memmap(path, dtype=self.dtype, mode="r+", shape=(self.count,))
        os.unlink(path)  # POSIX: backing store lives until the map closes
        return mm


def build_rgg_chunked(
    points: np.ndarray,
    radius: float,
    *,
    chunk_nodes: int = 65536,
    memmap_threshold_bytes: int | None = 512 << 20,
    workdir: str | None = None,
) -> GeometricGraph:
    """:func:`build_rgg` in bounded memory: chunked queries, memmap spill.

    Produces a graph **identical** to the dense builder — same edge set,
    same ``(u, v)``-lexicographic edge order, the same float expression
    for lengths, the same sorted CSR — but never materialises the whole
    pair list at once.  Nodes are queried against the KD-tree in blocks
    of ``chunk_nodes``; each block contributes its CSR rows, its
    ``u < v`` edges and their lengths to append-only sinks that spill to
    anonymous scratch memmaps once they exceed ``memmap_threshold_bytes``
    (``None`` = never spill).  Million-node RGGs at the paper's
    connectivity radius (~10^8 directed entries) build with a resident
    footprint of one block plus the spill threshold per array.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
    if radius < 0:
        raise GeometryError(f"radius must be non-negative, got {radius}")
    if chunk_nodes <= 0:
        raise GeometryError(f"chunk_nodes must be positive, got {chunk_nodes}")
    n = len(pts)
    if n == 0:
        return _assemble(pts, float(radius), np.zeros((0, 2), dtype=np.int64), np.zeros(0))
    tree = cKDTree(pts)
    degrees = np.zeros(n, dtype=np.int64)
    ind_sink = _ArraySink(np.int64, memmap_threshold_bytes, workdir)
    edge_sink = _ArraySink(np.int64, memmap_threshold_bytes, workdir)
    len_sink = _ArraySink(np.float64, memmap_threshold_bytes, workdir)
    r = float(radius)
    for lo in range(0, n, chunk_nodes):
        hi = min(lo + chunk_nodes, n)
        # Each list is ascending and includes the query point itself
        # (d = 0 <= r); the self hit is stripped below.
        lists = tree.query_ball_point(pts[lo:hi], r, return_sorted=True)
        cnt = np.fromiter((len(l) for l in lists), dtype=np.int64, count=hi - lo)
        flat = np.fromiter(
            chain.from_iterable(lists), dtype=np.int64, count=int(cnt.sum())
        )
        src = np.repeat(np.arange(lo, hi, dtype=np.int64), cnt)
        keep = flat != src
        src, dst = src[keep], flat[keep]
        degrees[lo:hi] = np.bincount(src - lo, minlength=hi - lo)
        ind_sink.append(dst)
        up = dst > src  # each undirected edge once, already (u, v)-sorted
        eu, ev = src[up], dst[up]
        edge_sink.append(np.stack([eu, ev], axis=1).ravel())
        diffs = pts[eu] - pts[ev]
        # Same float expression as the dense path: bit-identical lengths.
        len_sink.append(np.sqrt(np.sum(diffs * diffs, axis=1)))
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    return GeometricGraph(
        points=pts,
        radius=r,
        edges=edge_sink.finish().reshape(-1, 2),
        lengths=len_sink.finish(),
        indptr=indptr,
        indices=ind_sink.finish(),
    )


def build_rgg_layout(points: np.ndarray, radius: float, layout: str) -> GeometricGraph:
    """Build with the named instance layout (see :data:`LAYOUTS`)."""
    if layout == "dense":
        return build_rgg(points, radius)
    if layout == "chunked":
        return build_rgg_chunked(points, radius)
    raise GraphError(
        f"unknown instance layout {layout!r}; expected one of {', '.join(LAYOUTS)}"
    )


def complete_graph(points: np.ndarray) -> GeometricGraph:
    """The complete Euclidean graph (radius = unit-square diameter).

    O(n^2) edges; used by brute-force cross-checks and by the Korach-style
    lower-bound experiments which view the network as a complete weighted
    graph (Sec. IV).
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
    n = len(pts)
    iu, ju = np.triu_indices(n, k=1)
    edges = np.stack([iu, ju], axis=1).astype(np.int64)
    diffs = pts[iu] - pts[ju]
    lengths = np.sqrt(np.sum(diffs * diffs, axis=1))
    return _assemble(pts, float(np.sqrt(2.0)), edges, lengths)
