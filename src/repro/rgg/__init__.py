"""Random geometric graphs: construction and structural analysis.

An RGG over points ``P`` with radius ``r`` connects every pair within
Euclidean distance ``r``.  This is the paper's network model (Sec. II).
Construction uses a KD-tree, so the cost is O(n log n + |E|) rather than
O(n^2).
"""

from repro.rgg.build import (
    LAYOUTS,
    GeometricGraph,
    build_rgg,
    build_rgg_chunked,
    build_rgg_layout,
)
from repro.rgg.components import connected_components, component_sizes, is_connected
from repro.rgg.connectivity import (
    critical_connectivity_radius,
    connectivity_probability,
)
from repro.rgg.knn import knn_graph, knn_equivalent_radius

__all__ = [
    "GeometricGraph",
    "LAYOUTS",
    "build_rgg",
    "build_rgg_chunked",
    "build_rgg_layout",
    "connected_components",
    "component_sizes",
    "is_connected",
    "critical_connectivity_radius",
    "connectivity_probability",
    "knn_graph",
    "knn_equivalent_radius",
]
