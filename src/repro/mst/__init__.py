"""Centralized (reference) spanning-tree constructions and tree metrics.

These are the ground-truth oracles the distributed algorithms are verified
and scored against:

* :func:`~repro.mst.kruskal.kruskal_mst` / :func:`~repro.mst.prim.prim_mst`
  — textbook MST over an explicit edge list / adjacency;
* :func:`~repro.mst.delaunay.euclidean_mst` — exact Euclidean MST in
  O(n log n) via the Delaunay-containment property;
* :func:`~repro.mst.nnt.nearest_neighbor_tree` — the centralized NNT for
  any ranking (the tree Co-NNT builds distributively);
* :mod:`~repro.mst.quality` — spanning/acyclicity verification, tree costs
  ``sum d^alpha``, approximation ratios.
"""

from repro.mst.kruskal import kruskal_mst
from repro.mst.prim import prim_mst
from repro.mst.delaunay import euclidean_mst, delaunay_edges
from repro.mst.nnt import nearest_neighbor_tree
from repro.mst.quality import (
    verify_spanning_tree,
    tree_cost,
    approximation_ratio,
    same_tree,
)

__all__ = [
    "kruskal_mst",
    "prim_mst",
    "euclidean_mst",
    "delaunay_edges",
    "nearest_neighbor_tree",
    "verify_spanning_tree",
    "tree_cost",
    "approximation_ratio",
    "same_tree",
]
