"""Centralized Borůvka's algorithm with phase tracking.

GHS is the message-passing form of Borůvka: in each phase every fragment
selects its minimum outgoing edge (MOE) under a globally consistent
tie-breaking key and merges along it.  This centralized twin uses the
*same* edge key as the distributed code
(``(length, min_id, max_id)``), so tests can check not just that the
trees agree but that the per-phase merge schedule matches — a much
sharper probe of the protocol's phase logic than tree equality alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ds.unionfind import UnionFind
from repro.errors import GraphError


@dataclass(frozen=True)
class BoruvkaTrace:
    """Result of a Borůvka run with its full phase schedule."""

    tree_edges: np.ndarray            # (k, 2), u < v
    phases: int
    #: edges added per phase, as lists of (u, v) with u < v
    phase_edges: list[list[tuple[int, int]]]
    #: number of fragments alive at the start of each phase
    fragments_per_phase: list[int]


def boruvka_mst(n: int, edges: np.ndarray, weights: np.ndarray) -> BoruvkaTrace:
    """Minimum spanning forest by synchronous Borůvka phases.

    Parameters mirror :func:`repro.mst.kruskal.kruskal_mst`; ties are
    broken by ``(weight, min_id, max_id)`` exactly like the distributed
    GHS implementation, so the phase schedule is comparable.
    """
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    w = np.asarray(weights, dtype=float)
    if len(e) != len(w):
        raise GraphError(f"{len(e)} edges but {len(w)} weights")
    if e.size and (e.min() < 0 or e.max() >= n):
        raise GraphError("edge endpoint out of range")

    lo = np.minimum(e[:, 0], e[:, 1])
    hi = np.maximum(e[:, 0], e[:, 1])

    uf = UnionFind(n)
    chosen: list[tuple[int, int]] = []
    phase_edges: list[list[tuple[int, int]]] = []
    fragments_per_phase: list[int] = []

    while True:
        # MOE per fragment root under the global key order.
        best: dict[int, tuple[float, int, int]] = {}
        for k in range(len(e)):
            ru, rv = uf.find(int(lo[k])), uf.find(int(hi[k]))
            if ru == rv:
                continue
            key = (float(w[k]), int(lo[k]), int(hi[k]))
            for r in (ru, rv):
                if r not in best or key < best[r]:
                    best[r] = key
        if not best:
            break
        fragments_per_phase.append(uf.n_components)
        added: list[tuple[int, int]] = []
        # Deterministic merge order (sorted by fragment root id).
        for r in sorted(best):
            _, u, v = best[r]
            if uf.union(u, v):
                added.append((u, v))
        chosen.extend(added)
        phase_edges.append(added)

    return BoruvkaTrace(
        tree_edges=np.array(sorted(chosen), dtype=np.int64).reshape(-1, 2),
        phases=len(phase_edges),
        phase_edges=phase_edges,
        fragments_per_phase=fragments_per_phase,
    )
