"""Exact Euclidean MST via Delaunay containment.

The Euclidean MST of a planar point set is a subgraph of its Delaunay
triangulation, so running Kruskal on the O(n) Delaunay edges yields the
exact EMST in O(n log n) — this is the ground-truth oracle for every
quality experiment (TAB1) and for verifying the distributed algorithms.

Degenerate inputs (fewer than 4 points, or all points collinear) make
Qhull fail; we fall back to the complete graph there, which is tiny in
those cases.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay, QhullError

from repro.errors import GeometryError
from repro.mst.kruskal import kruskal_mst


def delaunay_edges(points: np.ndarray) -> np.ndarray:
    """Unique undirected edges ``(u < v)`` of the Delaunay triangulation.

    Falls back to all pairs for degenerate inputs (n < 4 or collinear).
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
    n = len(pts)
    if n < 2:
        return np.zeros((0, 2), dtype=np.int64)

    def _all_pairs() -> np.ndarray:
        iu, ju = np.triu_indices(n, k=1)
        return np.stack([iu, ju], axis=1).astype(np.int64)

    if n < 4:
        return _all_pairs()
    try:
        tri = Delaunay(pts)
    except QhullError:
        return _all_pairs()
    simplices = tri.simplices
    # Each triangle (a, b, c) contributes edges ab, bc, ca.
    pairs = np.concatenate(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]]
    )
    pairs = np.sort(pairs, axis=1)
    return np.unique(pairs, axis=0).astype(np.int64)


def euclidean_mst(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exact Euclidean minimum spanning tree of ``points``.

    Returns ``(edges, lengths)``: ``(n-1, 2)`` edges with ``u < v`` and
    their Euclidean lengths, in ascending-weight insertion order.
    """
    pts = np.asarray(points, dtype=float)
    edges = delaunay_edges(pts)
    if len(edges) == 0:
        return np.zeros((0, 2), dtype=np.int64), np.zeros(0)
    diffs = pts[edges[:, 0]] - pts[edges[:, 1]]
    lengths = np.sqrt(np.sum(diffs * diffs, axis=1))
    return kruskal_mst(len(pts), edges, lengths)
