"""Kruskal's algorithm over an explicit weighted edge list.

This is the workhorse the exact-EMST routine feeds Delaunay edges into.
Works on any edge list, connected or not (returns a spanning forest).
Deterministic: ties are broken by the ``(weight, u, v)`` lexicographic key,
matching the globally-consistent edge ordering the distributed algorithms
use, so centralized and distributed results are comparable edge-for-edge.
"""

from __future__ import annotations

import numpy as np

from repro.ds.unionfind import UnionFind
from repro.errors import GraphError


def kruskal_mst(
    n: int,
    edges: np.ndarray,
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Minimum spanning forest by Kruskal's algorithm.

    Parameters
    ----------
    n:
        Number of vertices (``0..n-1``).
    edges:
        ``(m, 2)`` int array of undirected edges.
    weights:
        ``(m,)`` edge weights.

    Returns
    -------
    (tree_edges, tree_weights):
        ``(k, 2)`` chosen edges (rows normalised to ``u < v``) and their
        weights, where ``k = n - #components``.  Edges are returned in the
        order they were added (ascending weight).
    """
    e = np.asarray(edges, dtype=np.int64)
    w = np.asarray(weights, dtype=float)
    if e.ndim != 2 or (e.size and e.shape[1] != 2):
        raise GraphError(f"edges must have shape (m, 2), got {e.shape}")
    if len(e) != len(w):
        raise GraphError(f"{len(e)} edges but {len(w)} weights")
    if e.size and (e.min() < 0 or e.max() >= n):
        raise GraphError("edge endpoint out of range")

    if len(e) == 0:
        return np.zeros((0, 2), dtype=np.int64), np.zeros(0)

    lo = np.minimum(e[:, 0], e[:, 1])
    hi = np.maximum(e[:, 0], e[:, 1])
    order = np.lexsort((hi, lo, w))

    uf = UnionFind(n)
    out_edges: list[tuple[int, int]] = []
    out_w: list[float] = []
    for idx in order:
        u, v = int(lo[idx]), int(hi[idx])
        if u == v:
            continue  # self-loops can never join components
        if uf.union(u, v):
            out_edges.append((u, v))
            out_w.append(float(w[idx]))
            if uf.n_components == 1:
                break
    return (
        np.array(out_edges, dtype=np.int64).reshape(-1, 2),
        np.array(out_w, dtype=float),
    )
