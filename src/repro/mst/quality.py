"""Tree verification and quality metrics.

The paper scores trees by ``cost_alpha(T) = sum_{(u,v) in T} d(u,v)^alpha``
(Sec. II): ``alpha = 1`` is the Euclidean MST objective, ``alpha = 2`` the
energy objective.  Kruskal's exchange argument shows one tree minimises
both simultaneously, which the tests verify empirically.
"""

from __future__ import annotations

import numpy as np

from repro.ds.unionfind import UnionFind
from repro.errors import CycleError, GraphError, NotSpanningError
from repro.geometry.distance import edge_lengths


def verify_spanning_tree(n: int, edges: np.ndarray, *, forest_ok: bool = False) -> None:
    """Raise unless ``edges`` forms a spanning tree of ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        ``(k, 2)`` int array.
    forest_ok:
        If ``True``, accept any acyclic edge set (spanning forest); only
        cycles and out-of-range endpoints are errors then.

    Raises
    ------
    CycleError
        If the edge set contains a cycle (including duplicate edges).
    NotSpanningError
        If acyclic but not spanning (and ``forest_ok`` is False).
    GraphError
        If an endpoint is out of range or an edge is a self-loop.
    """
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if e.size and (e.min() < 0 or e.max() >= n):
        raise GraphError("edge endpoint out of range")
    uf = UnionFind(n)
    for u, v in e:
        u, v = int(u), int(v)
        if u == v:
            raise GraphError(f"self-loop at node {u}")
        if not uf.union(u, v):
            raise CycleError(f"edge ({u}, {v}) closes a cycle")
    if not forest_ok and n > 0 and uf.n_components != 1:
        raise NotSpanningError(
            f"edge set leaves {uf.n_components} components (expected 1)"
        )


def tree_cost(points: np.ndarray, edges: np.ndarray, alpha: float = 1.0) -> float:
    """``sum over edges of d(u,v)^alpha`` — the paper's tree objective."""
    if alpha <= 0:
        raise GraphError(f"alpha must be positive, got {alpha}")
    lengths = edge_lengths(points, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    if len(lengths) == 0:
        return 0.0
    return float(np.sum(lengths**alpha))


def approximation_ratio(
    points: np.ndarray,
    tree_edges: np.ndarray,
    optimal_edges: np.ndarray,
    alpha: float = 1.0,
) -> float:
    """Cost ratio of a candidate tree against the optimum (>= 1 for MSTs)."""
    opt = tree_cost(points, optimal_edges, alpha)
    got = tree_cost(points, tree_edges, alpha)
    if opt == 0.0:
        return 1.0 if got == 0.0 else float("inf")
    return got / opt


def same_tree(edges_a: np.ndarray, edges_b: np.ndarray) -> bool:
    """``True`` iff two edge sets are equal as sets of undirected edges."""
    a = np.asarray(edges_a, dtype=np.int64).reshape(-1, 2)
    b = np.asarray(edges_b, dtype=np.int64).reshape(-1, 2)
    if len(a) != len(b):
        return False
    if len(a) == 0:
        return True
    a = np.unique(np.sort(a, axis=1), axis=0)
    b = np.unique(np.sort(b, axis=1), axis=0)
    return a.shape == b.shape and bool(np.all(a == b))
