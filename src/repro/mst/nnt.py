"""Centralized nearest-neighbour tree (NNT) construction.

The NNT under a ranking connects every node (except the top-ranked one) to
its *nearest higher-ranked* node.  With the diagonal ranking this is
exactly the tree the distributed Co-NNT protocol of Sec. VI builds; the
centralized construction here is the oracle the protocol is verified
against, and the object whose quality TAB1 measures.

The construction is always a tree: orienting each edge from lower to
higher rank gives every non-top node out-degree exactly 1 and edges only
point "uphill" in rank, so no cycle can close.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.potential import nearest_higher_rank_distance
from repro.geometry.ranks import diagonal_ranks
from scipy.spatial import cKDTree


def nearest_neighbor_tree(
    points: np.ndarray,
    ranks: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Build the NNT of ``points`` under ``ranks`` (default: diagonal).

    Returns ``(edges, lengths)``: ``(n-1, 2)`` undirected edges normalised
    to ``u < v`` plus Euclidean lengths.  Row ``k`` is the connection made
    by the node of rank ``k`` (ranks ``0..n-2``; the top node connects to
    nobody).
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must have shape (n, 2), got {pts.shape}")
    n = len(pts)
    if n <= 1:
        return np.zeros((0, 2), dtype=np.int64), np.zeros(0)
    r = diagonal_ranks(pts) if ranks is None else np.asarray(ranks, dtype=np.int64)
    if len(r) != n:
        raise GeometryError("ranks length does not match points")

    target = nearest_higher_rank_target(pts, r)
    order = np.empty(n, dtype=np.int64)
    order[r] = np.arange(n)
    rows = []
    lens = []
    for rank_k in range(n - 1):
        u = int(order[rank_k])
        v = int(target[u])
        d = pts[u] - pts[v]
        rows.append((min(u, v), max(u, v)))
        lens.append(float(np.sqrt(d @ d)))
    return np.array(rows, dtype=np.int64), np.array(lens, dtype=float)


def nearest_higher_rank_target(
    points: np.ndarray, ranks: np.ndarray, *, initial_k: int = 16
) -> np.ndarray:
    """For each node, the id of its nearest higher-ranked node (-1 for top).

    Same expanding KD-tree query as
    :func:`repro.geometry.potential.nearest_higher_rank_distance`, but
    returning node ids instead of distances.  Exact distance ties are
    broken by the *smallest node id* — the same deterministic rule the
    Co-NNT protocol applies to its replies, so the centralized oracle and
    the distributed tree agree even on degenerate (lattice) inputs.
    """
    pts = np.asarray(points, dtype=float)
    n = len(pts)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    tree = cKDTree(pts)
    out = np.full(n, -1, dtype=np.int64)
    unresolved = np.arange(n)
    k = min(initial_k, n)
    while len(unresolved):
        dists, idxs = tree.query(pts[unresolved], k=k)
        if k == 1:
            dists = dists[:, None]
            idxs = idxs[:, None]
        higher = ranks[idxs] > ranks[unresolved][:, None]
        found_rows = np.nonzero(higher.any(axis=1))[0]
        for row in found_rows:
            mask = higher[row]
            dmin = dists[row][mask].min()
            # A tie at the boundary of the k-window could hide an equal-
            # distance smaller id just outside it; only resolve when the
            # minimum is strictly inside the window (or the window is full).
            if k < n and dmin == dists[row][-1]:
                continue
            tied = mask & (dists[row] == dmin)
            out[unresolved[row]] = idxs[row][tied].min()
        unresolved = unresolved[out[unresolved] == -1]
        if k == n:
            break
        k = min(2 * k, n)
    return out


def nnt_edge_lengths(points: np.ndarray, ranks: np.ndarray | None = None) -> np.ndarray:
    """Lengths of all NNT connection edges (one per non-top node).

    Convenience wrapper over
    :func:`~repro.geometry.potential.nearest_higher_rank_distance` that
    drops the top node's ``inf``.
    """
    d = nearest_higher_rank_distance(points, ranks)
    return d[np.isfinite(d)]
