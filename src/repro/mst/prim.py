"""Prim's algorithm over a :class:`~repro.rgg.build.GeometricGraph`.

Uses the indexed min-heap (decrease-key) for the classic O(E log V) bound.
Handles disconnected graphs by restarting from every unvisited vertex, so
the result is a minimum spanning *forest* — mirroring what the distributed
algorithms produce on a disconnected RGG.
"""

from __future__ import annotations

import numpy as np

from repro.ds.heaps import IndexedMinHeap
from repro.rgg.build import GeometricGraph


def prim_mst(graph: GeometricGraph) -> tuple[np.ndarray, np.ndarray]:
    """Minimum spanning forest of ``graph`` by Prim's algorithm.

    Returns ``(edges, lengths)`` with rows normalised to ``u < v``, in the
    order vertices were attached.  Edge weights are the Euclidean lengths
    stored on the graph.
    """
    n = graph.n
    visited = np.zeros(n, dtype=bool)
    best_edge = np.full(n, -1, dtype=np.int64)  # the neighbour we attach through
    out_edges: list[tuple[int, int]] = []
    out_w: list[float] = []

    indptr, indices, points = graph.indptr, graph.indices, graph.points

    for start in range(n):
        if visited[start]:
            continue
        heap = IndexedMinHeap()
        heap.push(start, 0.0)
        best_edge[start] = -1
        while len(heap):
            u, d = heap.pop_min()
            if visited[u]:
                continue
            visited[u] = True
            if best_edge[u] >= 0:
                a, b = int(best_edge[u]), int(u)
                out_edges.append((min(a, b), max(a, b)))
                out_w.append(d)
            pu = points[u]
            for v in indices[indptr[u] : indptr[u + 1]]:
                v = int(v)
                if visited[v]:
                    continue
                dv = pu - points[v]
                w = float(np.sqrt(dv @ dv))
                if heap.push_or_decrease(v, w):
                    best_edge[v] = u
    return (
        np.array(out_edges, dtype=np.int64).reshape(-1, 2),
        np.array(out_w, dtype=float),
    )
