"""Shim for environments whose pip/setuptools cannot build PEP 660
editable wheels offline (no `wheel` package available)."""
from setuptools import setup

setup()
