"""Unit and property tests for the union-find structure."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.ds.unionfind import UnionFind


class TestBasics:
    def test_initial_singletons(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert len(uf) == 5
        for i in range(5):
            assert uf.find(i) == i
            assert uf.component_size(i) == 1

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1) is True
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.n_components == 3

    def test_union_idempotent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert uf.union(1, 0) is False
        assert uf.n_components == 3

    def test_component_size_grows(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_size(0) == 3
        assert uf.component_size(2) == 3
        assert uf.component_size(3) == 1

    def test_transitivity(self):
        uf = UnionFind(10)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 3)
        assert uf.connected(0, 2)

    def test_zero_elements(self):
        uf = UnionFind(0)
        assert uf.n_components == 0
        assert list(uf.roots()) == []
        assert uf.largest_component() == []

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_roots_unique_per_component(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        roots = list(uf.roots())
        assert len(roots) == 4
        assert len(set(roots)) == 4

    def test_components_partition(self):
        uf = UnionFind(7)
        uf.union(0, 1)
        uf.union(5, 6)
        comps = uf.components()
        members = sorted(x for group in comps.values() for x in group)
        assert members == list(range(7))

    def test_largest_component(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        assert uf.largest_component() == [0, 1, 2]

    def test_from_edges(self):
        uf = UnionFind.from_edges(5, [(0, 1), (1, 2)])
        assert uf.connected(0, 2)
        assert uf.n_components == 3


class TestProperties:
    @given(
        st.integers(min_value=1, max_value=50),
        st.lists(st.tuples(st.integers(0, 49), st.integers(0, 49)), max_size=100),
    )
    def test_component_count_invariant(self, n, pairs):
        """n_components always equals n minus the number of effective merges."""
        uf = UnionFind(n)
        merges = 0
        for a, b in pairs:
            if a < n and b < n:
                if uf.union(a, b):
                    merges += 1
        assert uf.n_components == n - merges

    @given(
        st.integers(min_value=2, max_value=40),
        st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=80),
    )
    def test_find_is_canonical(self, n, pairs):
        """All members of a component share one representative."""
        uf = UnionFind(n)
        for a, b in pairs:
            if a < n and b < n:
                uf.union(a, b)
        for root, members in uf.components().items():
            assert all(uf.find(m) == root for m in members)

    @given(
        st.integers(min_value=1, max_value=40),
        st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=80),
    )
    def test_sizes_sum_to_n(self, n, pairs):
        uf = UnionFind(n)
        for a, b in pairs:
            if a < n and b < n:
                uf.union(a, b)
        total = sum(uf.component_size(r) for r in uf.roots())
        assert total == n

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    def test_connectivity_matches_graph_reachability(self, pairs):
        """union-find connectivity agrees with BFS reachability."""
        n = 20
        uf = UnionFind(n)
        adj = {i: set() for i in range(n)}
        for a, b in pairs:
            uf.union(a, b)
            adj[a].add(b)
            adj[b].add(a)

        def reachable(s):
            seen = {s}
            stack = [s]
            while stack:
                u = stack.pop()
                for v in adj[u]:
                    if v not in seen:
                        seen.add(v)
                        stack.append(v)
            return seen

        comp0 = reachable(0)
        for v in range(n):
            assert uf.connected(0, v) == (v in comp0)
