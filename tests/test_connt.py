"""Tests for the Co-NNT distributed protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.connt import run_connt
from repro.algorithms.connt.node import diagonal_key
from repro.geometry.points import clustered_points, uniform_points
from repro.geometry.ranks import diagonal_ranks
from repro.mst.delaunay import euclidean_mst
from repro.mst.nnt import nearest_neighbor_tree
from repro.mst.quality import same_tree, tree_cost, verify_spanning_tree


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_centralized_nnt(self, seed):
        pts = uniform_points(200, seed=seed)
        res = run_connt(pts)
        nnt, _ = nearest_neighbor_tree(pts)
        assert same_tree(res.tree_edges, nnt)

    def test_always_spanning_tree(self):
        pts = uniform_points(300, seed=4)
        res = run_connt(pts)
        verify_spanning_tree(300, res.tree_edges)

    @pytest.mark.parametrize("n", [2, 3, 5, 17])
    def test_tiny_instances(self, n):
        pts = uniform_points(n, seed=5)
        res = run_connt(pts)
        verify_spanning_tree(n, res.tree_edges)
        nnt, _ = nearest_neighbor_tree(pts)
        assert same_tree(res.tree_edges, nnt)

    def test_single_node(self):
        res = run_connt(np.array([[0.3, 0.3]]))
        assert len(res.tree_edges) == 0
        assert res.extras["unconnected_nodes"] == [0]

    def test_unconnected_is_top_ranked(self):
        pts = uniform_points(150, seed=6)
        res = run_connt(pts)
        ranks = diagonal_ranks(pts)
        assert res.extras["unconnected_nodes"] == [int(np.argmax(ranks))]

    def test_clustered_workload(self):
        pts = clustered_points(200, seed=0)
        res = run_connt(pts)
        verify_spanning_tree(200, res.tree_edges)

    def test_diagonal_key_ordering(self):
        assert diagonal_key(0.2, 0.3, 1) < diagonal_key(0.4, 0.4, 0)
        # Same diagonal: smaller y wins.
        assert diagonal_key(0.6, 0.1, 5) < diagonal_key(0.1, 0.6, 2)
        # Full tie: id decides.
        assert diagonal_key(0.5, 0.5, 1) < diagonal_key(0.5, 0.5, 2)


class TestComplexity:
    def test_theorem_6_2_messages_linear(self):
        """O(n) messages with a small constant (paper: n(2+pi) + o(n))."""
        for n in (200, 800):
            res = run_connt(uniform_points(n, seed=0))
            assert res.messages <= 12 * n

    def test_theorem_6_2_energy_constant(self):
        """Energy does not grow with n."""
        e_small = np.mean([run_connt(uniform_points(200, seed=s)).energy for s in range(3)])
        e_big = np.mean([run_connt(uniform_points(3200, seed=s)).energy for s in range(3)])
        assert e_big < 2.0 * e_small
        assert e_big < 25.0  # absolute sanity: the analysis gives ~2(2+pi)+...

    def test_lemma_6_3_probe_radius(self):
        """Max probe radius stays O(sqrt(log n / n)) on typical instances."""
        n = 2000
        res = run_connt(uniform_points(n, seed=1))
        assert res.extras["max_probe_radius"] <= 6.0 * np.sqrt(np.log(n) / n)

    def test_phases_logarithmic_cap(self):
        res = run_connt(uniform_points(500, seed=2))
        assert res.phases <= np.ceil(np.log2(1000)) + 2

    def test_quality_against_mst(self):
        """Sec. VII quality: length ratio ~1.1, squared sum bounded."""
        pts = uniform_points(1000, seed=3)
        res = run_connt(pts)
        mst, _ = euclidean_mst(pts)
        ratio = tree_cost(pts, res.tree_edges) / tree_cost(pts, mst)
        assert 1.0 <= ratio < 1.3
        assert tree_cost(pts, res.tree_edges, alpha=2.0) <= 4.0

    def test_message_kinds(self):
        res = run_connt(uniform_points(100, seed=4))
        kinds = set(res.stats.messages_by_kind)
        assert kinds <= {"REQUEST", "REPLY", "CONNECTION"}
        # Every non-top node sends exactly one CONNECTION.
        assert res.stats.messages_by_kind["CONNECTION"] == 99
