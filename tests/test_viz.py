"""Tests for the SVG renderer."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.points import uniform_points
from repro.mst.delaunay import euclidean_mst
from repro.percolation.cells import good_cell_mask, occupancy_grid
from repro.viz.svg import SvgCanvas, render_instance, render_percolation


def parse(svg_text: str) -> ET.Element:
    return ET.fromstring(svg_text)


class TestCanvas:
    def test_valid_xml(self):
        c = SvgCanvas()
        c.circle(0.5, 0.5, 3)
        c.line(0, 0, 1, 1)
        c.rect(0.1, 0.1, 0.2, 0.2)
        c.text(0.5, 0.9, "hi <&>")
        root = parse(c.to_string())
        assert root.tag.endswith("svg")

    def test_coordinate_mapping_flips_y(self):
        c = SvgCanvas(size=100, margin=0)
        assert c.px(0.0, 0.0) == (0.0, 100.0)  # bottom-left -> bottom of canvas
        assert c.px(1.0, 1.0) == (100.0, 0.0)

    def test_bad_geometry(self):
        with pytest.raises(GeometryError):
            SvgCanvas(size=10, margin=5)
        with pytest.raises(GeometryError):
            SvgCanvas(size=-1)

    def test_save(self, tmp_path):
        c = SvgCanvas()
        c.circle(0.5, 0.5, 1)
        path = c.save(tmp_path / "x.svg")
        assert path.read_text().startswith("<svg")


class TestRenderInstance:
    def test_counts(self):
        pts = uniform_points(40, seed=0)
        mst, _ = euclidean_mst(pts)
        svg = render_instance(pts, {"MST": mst}).to_string()
        root = parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        circles = root.findall(f"{ns}circle")
        lines = root.findall(f"{ns}line")
        assert len(circles) == 40
        assert len(lines) == 39

    def test_two_edge_sets_get_two_colors(self):
        pts = uniform_points(20, seed=1)
        mst, _ = euclidean_mst(pts)
        svg = render_instance(pts, {"A": mst, "B": mst}).to_string()
        assert "#d62728" in svg and "#2ca02c" in svg

    def test_no_edges(self):
        svg = render_instance(uniform_points(10, seed=2)).to_string()
        assert parse(svg) is not None

    def test_bad_points(self):
        with pytest.raises(GeometryError):
            render_instance(np.zeros((3, 3)))


class TestRenderPercolation:
    def test_renders_cells(self):
        pts = uniform_points(500, seed=0)
        grid = occupancy_grid(pts, 0.2)
        good = good_cell_mask(grid)
        svg = render_percolation(grid.counts, good).to_string()
        root = parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        rects = root.findall(f"{ns}rect")
        assert len(rects) > 10  # background + cells

    def test_shape_mismatch(self):
        with pytest.raises(GeometryError):
            render_percolation(np.zeros((3, 3)), np.zeros((2, 2), dtype=bool))
