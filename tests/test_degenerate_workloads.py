"""Adversarial / degenerate workloads for every protocol.

Random uniform points never produce exact distance ties; lattices and
collinear sets do, constantly.  These tests pin down that the
deterministic tie-breaking (edge key ``(d, lo, hi)``, reply key
``(d, id)``) keeps every algorithm correct and oracle-consistent on such
inputs — plus a few other nasty shapes (two far clusters, a line, near-
duplicate points).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.connt import run_connt
from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_ghs, run_modified_ghs
from repro.algorithms.randnnt import run_randnnt
from repro.geometry.points import perturbed_grid_points
from repro.mst.kruskal import kruskal_mst
from repro.mst.nnt import nearest_neighbor_tree
from repro.mst.quality import same_tree, tree_cost, verify_spanning_tree
from repro.rgg.build import build_rgg
from repro.rgg.components import connected_components


def exact_lattice(n: int) -> np.ndarray:
    return perturbed_grid_points(n, jitter=0.0, seed=0)


def reference_msf(points, radius):
    g = build_rgg(points, radius)
    return kruskal_mst(g.n, g.edges, g.lengths)[0]


class TestExactLattice:
    """A perfect grid: every node has 2-4 neighbours at *identical* distance."""

    @pytest.mark.parametrize("runner", [run_ghs, run_modified_ghs])
    def test_ghs_family_matches_kruskal(self, runner):
        pts = exact_lattice(100)
        res = runner(pts, radius=0.25)
        assert same_tree(res.tree_edges, reference_msf(pts, 0.25))

    def test_eopt_valid_forest(self):
        pts = exact_lattice(144)
        res = run_eopt(pts)
        assert same_tree(res.tree_edges, reference_msf(pts, res.extras["r2"]))

    def test_connt_matches_oracle(self):
        pts = exact_lattice(169)
        res = run_connt(pts)
        nnt, _ = nearest_neighbor_tree(pts)
        assert same_tree(res.tree_edges, nnt)

    def test_randnnt_matches_oracle(self):
        pts = exact_lattice(121)
        res = run_randnnt(pts)
        expected, _ = nearest_neighbor_tree(pts, ranks=np.arange(121))
        assert same_tree(res.tree_edges, expected)

    def test_all_spanning(self):
        pts = exact_lattice(100)
        for res in (run_eopt(pts), run_connt(pts), run_randnnt(pts)):
            verify_spanning_tree(100, res.tree_edges, forest_ok=True)


class TestCollinear:
    """All points on one line: Qhull-degenerate, heavy ties in rank keys."""

    @pytest.fixture
    def line(self):
        xs = np.linspace(0.05, 0.95, 40)
        return np.stack([xs, np.full(40, 0.5)], axis=1)

    def test_ghs(self, line):
        res = run_ghs(line, radius=0.2)
        expected = reference_msf(line, 0.2)
        assert same_tree(res.tree_edges, expected)
        # The line MST is simply consecutive points.
        assert len(res.tree_edges) == 39

    def test_connt_chain(self, line):
        res = run_connt(line)
        verify_spanning_tree(40, res.tree_edges)
        # Diagonal rank along a horizontal line = left-to-right order, so
        # the NNT is exactly the chain (each connects to its right
        # neighbour) — which is also the MST.
        assert tree_cost(line, res.tree_edges) == pytest.approx(0.9, rel=1e-6)

    def test_eopt(self, line):
        res = run_eopt(line)
        assert same_tree(res.tree_edges, reference_msf(line, res.extras["r2"]))


class TestTwoClusters:
    """Two tight far-apart clusters: disconnected at the operating radius."""

    @pytest.fixture
    def clusters(self):
        rng = np.random.default_rng(0)
        a = 0.05 + 0.1 * rng.random((40, 2))
        b = 0.85 + 0.1 * rng.random((40, 2))
        return np.concatenate([a, b])

    def test_ghs_forest(self, clusters):
        res = run_ghs(clusters, radius=0.15)
        g = build_rgg(clusters, 0.15)
        n_comp = len(connected_components(g))
        assert len(res.tree_edges) == 80 - n_comp
        assert same_tree(res.tree_edges, reference_msf(clusters, 0.15))

    def test_eopt_forest(self, clusters):
        res = run_eopt(clusters)
        assert same_tree(
            res.tree_edges, reference_msf(clusters, res.extras["r2"])
        )

    def test_connt_bridges_clusters(self, clusters):
        """Co-NNT's power is unbounded (coordinates known), so it spans
        even across the gap — with exactly one long bridge edge."""
        res = run_connt(clusters)
        verify_spanning_tree(80, res.tree_edges)
        from repro.geometry.distance import edge_lengths

        lengths = edge_lengths(clusters, res.tree_edges)
        assert (lengths > 0.5).sum() == 1


class TestNearDuplicates:
    """Pairs of near-coincident points (1e-12 apart): tiny but nonzero
    distances must not break anything."""

    @pytest.fixture
    def doubled(self):
        rng = np.random.default_rng(1)
        base = rng.random((30, 2)) * 0.9 + 0.05
        eps = 1e-12
        return np.concatenate([base, base + eps])

    def test_ghs(self, doubled):
        res = run_ghs(doubled, radius=0.5)
        assert same_tree(res.tree_edges, reference_msf(doubled, 0.5))

    def test_connt(self, doubled):
        res = run_connt(doubled)
        verify_spanning_tree(60, res.tree_edges)

    def test_eopt(self, doubled):
        res = run_eopt(doubled)
        verify_spanning_tree(60, res.tree_edges, forest_ok=True)
