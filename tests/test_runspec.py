"""Tests for the runspec layer: spec round trips, the algorithm registry,
and the one execution engine (bit-identical to the legacy call paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.connt import run_connt
from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_ghs, run_modified_ghs
from repro.algorithms.randnnt import run_randnnt
from repro.errors import ExperimentError
from repro.experiments.instances import get_points
from repro.experiments.runner import run_algorithm
from repro.perf import perf
from repro.runspec import (
    RunReport,
    RunSpec,
    algorithm_entries,
    algorithm_names,
    execute,
    execute_batch,
    get_algorithm,
    kernel_class,
)
from repro.sim.faults import FaultPlan
from repro.sim.kernel import SynchronousKernel
from repro.sim.legacy import LegacyKernel
from repro.trace import trace


class TestRunSpecRoundTrip:
    def test_default_spec_round_trips(self):
        spec = RunSpec(algorithm="GHS", n=100)
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_faultplan_round_trips(self):
        plan = FaultPlan(
            seed=3,
            drop_rate=0.1,
            dup_rate=0.05,
            link_loss=(((0, 1), 0.5), ((2, 7), 1.0)),
            crashes=((4, 10, 20), (9, 5, None)),
        )
        spec = RunSpec(algorithm="MGHS", n=64, seed=2, faults=plan)
        back = RunSpec.from_json(spec.to_json())
        assert back == spec
        assert back.faults == plan
        assert back.faults.crashes == plan.crashes

    def test_kernel_flags_round_trip(self):
        spec = RunSpec(
            algorithm="MGHS",
            n=80,
            kernel="legacy",
            planes=False,
            recover=False,
            rx_cost=0.25,
            perf=True,
            trace=True,
        )
        back = RunSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.kernel == "legacy"
        assert back.planes is False and back.recover is False
        assert back.perf is True and back.trace is True

    def test_payload_is_schema_stamped(self):
        data = RunSpec(algorithm="EOPT", n=50).to_dict()
        assert data["schema_version"] == 1
        assert data["kind"] == "run_spec"

    def test_unknown_field_rejected(self):
        data = RunSpec(algorithm="GHS", n=50).to_dict()
        data["radius_konst"] = 1.6
        with pytest.raises(ExperimentError, match="unknown fields"):
            RunSpec.from_dict(data)

    def test_wrong_kind_rejected(self):
        data = RunSpec(algorithm="GHS", n=50).to_dict()
        data["kind"] = "run_report"
        with pytest.raises(ExperimentError, match="not a run_spec"):
            RunSpec.from_dict(data)

    def test_wrong_schema_version_rejected(self):
        data = RunSpec(algorithm="GHS", n=50).to_dict()
        data["schema_version"] = 99
        with pytest.raises(ExperimentError, match="schema version"):
            RunSpec.from_dict(data)

    def test_legacy_schema_key_accepted(self):
        data = RunSpec(algorithm="GHS", n=50).to_dict()
        data["schema"] = data.pop("schema_version")
        assert RunSpec.from_dict(data).algorithm == "GHS"

    def test_invalid_values_rejected_at_construction(self):
        with pytest.raises(ExperimentError):
            RunSpec(algorithm="", n=50)
        with pytest.raises(ExperimentError):
            RunSpec(algorithm="GHS", n=1)
        with pytest.raises(ExperimentError):
            RunSpec(algorithm="GHS", n=50, kernel="warp9")
        with pytest.raises(ExperimentError):
            RunSpec(algorithm="GHS", n=50, faults={"drop_rate": 0.1})

    def test_with_and_cell(self):
        spec = RunSpec(algorithm="EOPT", n=200, seed=4)
        assert spec.cell == "EOPT:n200:s4"
        bumped = spec.with_(seed=5)
        assert bumped.seed == 5 and spec.seed == 4
        assert bumped.cell == "EOPT:n200:s5"

    def test_kernel_class_resolution(self):
        assert kernel_class("fast") is SynchronousKernel
        assert kernel_class("legacy") is LegacyKernel
        from repro.sim import TurboKernel

        assert kernel_class("turbo") is TurboKernel
        with pytest.raises(ExperimentError):
            kernel_class("warp9")


class TestRegistry:
    def test_canonical_order(self):
        assert algorithm_names() == (
            "GHS", "MGHS", "EOPT", "Co-NNT", "Rand-NNT", "MAINT",
        )

    def test_every_runner_registered_exactly_once(self):
        from repro.applications.maintenance import run_maintenance

        runners = [e.runner for e in algorithm_entries()]
        expected = {
            run_ghs, run_modified_ghs, run_eopt, run_connt, run_randnnt,
            run_maintenance,
        }
        assert set(runners) == expected
        assert len(runners) == len(expected)

    def test_unknown_label_lists_registered_names(self):
        with pytest.raises(ExperimentError) as exc:
            get_algorithm("DIJKSTRA")
        msg = str(exc.value)
        for name in algorithm_names():
            assert name in msg

    def test_capability_flags(self):
        assert get_algorithm("GHS").supports_kernel_mode
        assert get_algorithm("EOPT").supports_faults
        assert not get_algorithm("Co-NNT").supports_kernel_mode
        assert not get_algorithm("Rand-NNT").supports_faults
        assert not get_algorithm("Rand-NNT").supports_kernel_mode

    def test_reregistering_different_runner_raises(self):
        from repro.runspec.registry import register_algorithm

        entry = get_algorithm("GHS")
        try:
            # Same (name, runner) pair: accepted (module reloads).
            register_algorithm(
                "GHS", runner=entry.runner, adapter=entry.adapter, order=entry.order
            )
            with pytest.raises(ExperimentError, match="already registered"):
                register_algorithm(
                    "GHS", runner=run_connt, adapter=entry.adapter, order=0
                )
        finally:
            # Restore the canonical entry (summary and flags included).
            register_algorithm(
                "GHS",
                runner=entry.runner,
                adapter=entry.adapter,
                order=entry.order,
                summary=entry.summary,
                supports_faults=entry.supports_faults,
                supports_kernel_mode=entry.supports_kernel_mode,
            )


def _same_result(a, b) -> bool:
    return (
        a.stats.energy_total == b.stats.energy_total
        and a.stats.messages_total == b.stats.messages_total
        and a.stats.rounds == b.stats.rounds
        and a.phases == b.phases
        and np.array_equal(a.tree_edges, b.tree_edges)
    )


class TestExecuteBitIdentical:
    N, SEED = 120, 3

    @pytest.mark.parametrize(
        "alg,direct",
        [
            ("GHS", run_ghs),
            ("MGHS", run_modified_ghs),
            ("EOPT", run_eopt),
            ("Co-NNT", run_connt),
            ("Rand-NNT", run_randnnt),
        ],
    )
    def test_execute_matches_direct_runner(self, alg, direct):
        pts = get_points(self.N, self.SEED)
        report = execute(RunSpec(algorithm=alg, n=self.N, seed=self.SEED))
        assert _same_result(report.result, direct(pts))

    def test_legacy_run_algorithm_surface_matches_execute(self):
        pts = get_points(self.N, self.SEED)
        for alg in algorithm_names():
            report = execute(RunSpec(algorithm=alg, n=self.N, seed=self.SEED))
            assert _same_result(report.result, run_algorithm(alg, pts))

    def test_faulted_execute_matches_direct_runner(self):
        plan = FaultPlan(seed=1, drop_rate=0.1)
        pts = get_points(self.N, self.SEED)
        report = execute(
            RunSpec(algorithm="MGHS", n=self.N, seed=self.SEED, faults=plan)
        )
        assert _same_result(report.result, run_modified_ghs(pts, faults=plan))

    def test_legacy_kernel_execute_matches_fast(self):
        fast = execute(RunSpec(algorithm="MGHS", n=self.N, seed=self.SEED))
        legacy = execute(
            RunSpec(algorithm="MGHS", n=self.N, seed=self.SEED, kernel="legacy")
        )
        assert _same_result(fast.result, legacy.result)


class TestExecuteValidation:
    def test_randnnt_rejects_nonnull_faults(self):
        spec = RunSpec(
            algorithm="Rand-NNT", n=60, faults=FaultPlan(seed=0, drop_rate=0.1)
        )
        with pytest.raises(ExperimentError, match="no fault-recovery layer"):
            execute(spec)

    def test_randnnt_accepts_null_plan(self):
        report = execute(RunSpec(algorithm="Rand-NNT", n=60, faults=FaultPlan()))
        assert report.result.name == "Rand-NNT"

    def test_connt_rejects_legacy_kernel(self):
        with pytest.raises(ExperimentError, match="legacy"):
            execute(RunSpec(algorithm="Co-NNT", n=60, kernel="legacy"))

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ExperimentError, match="registered algorithms"):
            execute(RunSpec(algorithm="DIJKSTRA", n=60))


class TestInstrumentationIsolation:
    def test_perf_isolated_and_ambient_restored(self):
        perf.reset()
        perf.enable()
        perf.add("ambient.marker", 3)
        try:
            report = execute(RunSpec(algorithm="MGHS", n=60, seed=0, perf=True))
            assert perf.enabled  # ambient switch restored
            snap = perf.snapshot()
        finally:
            perf.disable()
            perf.reset()
        # The run's own data lives in the report, not the ambient registry.
        assert "mghs.hello" in report.perf["timers"]
        assert snap["counters"].get("ambient.marker") == 3
        assert "mghs.hello" not in snap["timers"]

    def test_trace_isolated_and_ambient_restored(self):
        trace.reset()
        trace.enable()
        trace.emit("ambient_marker")
        try:
            report = execute(RunSpec(algorithm="MGHS", n=60, seed=0, trace=True))
            assert trace.enabled
            ambient = trace.snapshot()
        finally:
            trace.disable()
            trace.reset()
        assert [e["ev"] for e in ambient] == ["ambient_marker"]
        assert report.trace[0]["ev"] == "run_start"

    def test_disabled_registries_stay_untouched(self):
        perf.reset()
        trace.reset()
        report = execute(RunSpec(algorithm="Co-NNT", n=60, seed=0))
        assert report.perf is None and report.trace is None
        assert not perf.enabled and not trace.enabled
        assert perf.snapshot() == {"timers": {}, "counters": {}}
        assert trace.events == []


class TestExecuteBatch:
    SPECS = [
        RunSpec(algorithm=alg, n=n, seed=0)
        for n in (50, 80)
        for alg in ("MGHS", "Co-NNT")
    ]

    def test_serial_and_process_backends_agree(self):
        serial = execute_batch(self.SPECS, backend="serial")
        procs = execute_batch(self.SPECS, backend="process", workers=2)
        assert len(serial) == len(procs) == len(self.SPECS)
        for a, b in zip(serial, procs):
            assert a.spec == b.spec
            assert _same_result(a.result, b.result)

    def test_reports_in_spec_order(self):
        reports = execute_batch(self.SPECS, backend="serial")
        assert [r.spec for r in reports] == self.SPECS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExperimentError, match="backend"):
            execute_batch(self.SPECS, backend="threads")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ExperimentError, match="workers"):
            execute_batch(self.SPECS, backend="process", workers=0)

    def test_empty_batch(self):
        assert execute_batch([], backend="serial") == []
        assert execute_batch([], backend="process", workers=1) == []


class TestRunReport:
    def test_report_round_trips_with_instrumentation(self):
        spec = RunSpec(algorithm="MGHS", n=60, seed=1, perf=True, trace=True)
        report = execute(spec)
        back = RunReport.from_json(report.to_json())
        assert back.spec == spec
        assert _same_result(back.result, report.result)
        assert back.perf == report.perf
        assert back.trace == report.trace

    def test_report_json_is_numpy_free(self):
        import json

        report = execute(RunSpec(algorithm="EOPT", n=80, seed=0))
        # json.dumps raises on any numpy leakage in extras/stats.
        payload = json.dumps(report.to_dict())
        assert "schema_version" in payload

    def test_fault_table_passthrough(self):
        report = execute(
            RunSpec(
                algorithm="MGHS",
                n=80,
                seed=0,
                faults=FaultPlan(seed=1, drop_rate=0.2),
            )
        )
        assert report.fault_table() == report.result.stats.fault_table()
        assert report.result.stats.dropped_total > 0
