"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "EOPT"])
        assert args.algorithm == "EOPT"
        assert args.n == 500

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "DIJKSTRA"])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "Co-NNT", "-n", "80", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Co-NNT" in out
        assert "CONNECTION" in out

    def test_run_perf_flag_prints_report(self, capsys):
        assert main(["run", "MGHS", "-n", "120", "--perf"]) == 0
        out = capsys.readouterr().out
        assert "perf report:" in out
        assert "timers:" in out
        assert "mghs.hello" in out
        # The flag must not leave the global registry switched on.
        from repro.perf import perf

        assert not perf.enabled

    def test_run_without_perf_flag_prints_no_report(self, capsys):
        assert main(["run", "MGHS", "-n", "120"]) == 0
        assert "perf report:" not in capsys.readouterr().out

    def test_fig3a(self, capsys):
        assert main(["fig3a", "--max-n", "100"]) == 0
        out = capsys.readouterr().out
        assert "E[GHS]" in out and "Fig 3(a)" in out

    def test_fig3a_save_and_fig3b_load(self, capsys, tmp_path):
        path = str(tmp_path / "sweep.json")
        assert main(["fig3a", "--max-n", "250", "--save", path]) == 0
        assert main(["fig3b", "--load", path, "--min-n", "50"]) == 0
        out = capsys.readouterr().out
        assert "slope" in out

    def test_fig1(self, capsys):
        assert main(["fig1", "-n", "500"]) == 0
        assert "giant" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2", "-n", "400"]) == 0
        assert "Lemma 6.1" in capsys.readouterr().out

    def test_tab1(self, capsys):
        assert main(["tab1", "--ns", "500"]) == 0
        assert "CoNNT len" in capsys.readouterr().out

    def test_thm52(self, capsys):
        assert main(["thm52", "--ns", "300", "500"]) == 0
        assert "giant" in capsys.readouterr().out

    def test_lb(self, capsys):
        assert main(["lb", "--ns", "300"]) == 0
        assert "L_MST" in capsys.readouterr().out

    def test_render(self, capsys, tmp_path):
        out_path = str(tmp_path / "i.svg")
        assert main(["render", "-n", "50", "-o", out_path]) == 0
        assert (tmp_path / "i.svg").read_text().startswith("<svg")


class TestFaultFlags:
    def test_crash_spec_parsing(self):
        args = build_parser().parse_args(
            ["run", "MGHS", "--crash", "3:10", "--crash", "7:0:50"]
        )
        assert args.crash == [(3, 10, None), (7, 0, 50)]

    def test_bad_crash_spec_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "MGHS", "--crash", "nope"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "MGHS", "--crash", "3"])

    def test_run_with_drop_rate_prints_fault_table(self, capsys):
        assert (
            main(
                [
                    "run",
                    "MGHS",
                    "-n",
                    "150",
                    "--drop-rate",
                    "0.2",
                    "--fault-seed",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fault plane:" in out
        assert "dropped" in out

    def test_run_without_fault_flags_prints_no_fault_table(self, capsys):
        assert main(["run", "MGHS", "-n", "120"]) == 0
        assert "fault plane:" not in capsys.readouterr().out

    def test_zero_rate_plan_prints_empty_table_message(self, capsys):
        """Satellite regression: a fault plan that drops nothing used to
        print a bare header row — misleading zeros-with-headers.  An
        explicit "(no deliveries ...)" line replaces it."""
        assert (
            main(["run", "MGHS", "-n", "100", "--crash", "0:100000"]) == 0
        )
        out = capsys.readouterr().out
        assert "fault plane:" in out
        assert "(no deliveries dropped, duplicated or crash-dropped)" in out
        assert "crash-dropped\n" not in out  # no orphaned header row


class TestTraceFlags:
    def test_run_trace_writes_jsonl_and_prints_summary(self, capsys, tmp_path):
        out_path = tmp_path / "run.jsonl"
        assert main(["run", "MGHS", "-n", "120", "--trace", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "events" in out
        assert "phase" in out and "fragments" in out
        from repro.trace import load_jsonl, trace

        events = load_jsonl(out_path)
        assert events and events[0]["ev"] == "run_start"
        # The flag must not leave the global registry switched on or full.
        assert not trace.enabled

    def test_trace_diff_identical_and_divergent(self, capsys, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        assert main(["run", "MGHS", "-n", "100", "--trace", str(a)]) == 0
        assert main(["run", "MGHS", "-n", "100", "--trace", str(b)]) == 0
        capsys.readouterr()
        assert main(["trace-diff", str(a), str(b)]) == 0
        assert "traces identical" in capsys.readouterr().out
        assert main(["run", "MGHS", "-n", "100", "--seed", "1",
                     "--trace", str(b)]) == 0
        capsys.readouterr()
        assert main(["trace-diff", str(a), str(b)]) == 1
        assert "diverge at event" in capsys.readouterr().out

    def test_fuzz_smoke_with_corpus(self, capsys):
        assert main(["fuzz", "--machine", "retry", "--examples", "4",
                     "--steps", "12", "--corpus", "tests/corpus"]) == 0
        out = capsys.readouterr().out
        assert "machine retry: ok" in out
        assert "scenario(s) replayed" in out

    def test_fuzz_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--machine", "nope"])


class TestSpecFlags:
    def test_emit_spec_writes_valid_json(self, capsys, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        argv = ["run", "MGHS", "-n", "100", "--seed", "2",
                "--emit-spec", str(spec_path)]
        assert main(argv) == 0
        assert "spec written to" in capsys.readouterr().out
        data = json.loads(spec_path.read_text())
        assert data["kind"] == "run_spec"
        assert data["schema_version"] == 1
        assert data["algorithm"] == "MGHS"
        assert data["n"] == 100 and data["seed"] == 2

    def test_spec_run_matches_flag_run(self, capsys, tmp_path):
        """`run --spec FILE` replays the emitted spec bit-identically:
        the printed stats are byte-for-byte the flag run's output."""
        spec_path = tmp_path / "spec.json"
        argv = ["run", "EOPT", "-n", "120", "--seed", "3"]
        assert main(argv + ["--emit-spec", str(spec_path)]) == 0
        capsys.readouterr()
        assert main(argv) == 0
        flag_out = capsys.readouterr().out
        assert main(["run", "--spec", str(spec_path)]) == 0
        spec_out = capsys.readouterr().out
        assert spec_out == flag_out

    def test_spec_file_with_faults_round_trips(self, capsys, tmp_path):
        spec_path = tmp_path / "faulted.json"
        assert main(["run", "MGHS", "-n", "100", "--drop-rate", "0.1",
                     "--fault-seed", "1", "--emit-spec", str(spec_path)]) == 0
        capsys.readouterr()
        assert main(["run", "--spec", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "fault plane:" in out

    def test_run_needs_algorithm_or_spec(self, capsys):
        assert main(["run"]) == 2
        assert "needs an algorithm label or --spec" in capsys.readouterr().err

    def test_malformed_spec_file_errors(self, tmp_path):
        from repro.errors import ExperimentError

        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "run_spec", "schema_version": 1, "nn": 5}')
        with pytest.raises(ExperimentError, match="unknown fields"):
            main(["run", "--spec", str(bad)])


class TestAlgorithmsCommand:
    def test_lists_every_registered_algorithm(self, capsys):
        from repro.runspec import algorithm_names

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in algorithm_names():
            assert name in out
        assert "faults" in out and "summary" in out

    def test_unknown_algorithm_error_lists_choices(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "DIJKSTRA", "-n", "100"])
        err = capsys.readouterr().err
        assert "GHS" in err


class TestCacheCli:
    def test_emit_spec_prints_spec_hash(self, capsys, tmp_path):
        from repro.runspec import RunSpec

        spec_path = tmp_path / "spec.json"
        assert main(["run", "GHS", "-n", "80", "--seed", "4",
                     "--emit-spec", str(spec_path)]) == 0
        out = capsys.readouterr().out
        expected = RunSpec(algorithm="GHS", n=80, seed=4).spec_hash()
        assert f"spec_hash: {expected}" in out

    def test_run_cache_miss_then_hit(self, capsys, tmp_path):
        db = tmp_path / "cache.sqlite"
        argv = ["run", "GHS", "-n", "80", "--seed", "4",
                "--cache-path", str(db)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache: miss (stored)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache: hit" in second
        # The cached stats block is byte-identical to the fresh one.
        strip = lambda s: [l for l in s.splitlines() if not l.startswith("cache:")]
        assert strip(first) == strip(second)

    def test_cache_flag_uses_env_dir(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["run", "GHS", "-n", "80", "--cache"]) == 0
        assert "cache: miss (stored)" in capsys.readouterr().out
        assert (tmp_path / "results.sqlite").exists()

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        db = tmp_path / "cache.sqlite"
        assert main(["run", "GHS", "-n", "80", "--cache-path", str(db)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--store", str(db)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "1" in out
        assert main(["cache", "clear", "--store", str(db)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--store", str(db)]) == 0
        assert "entries             1" not in capsys.readouterr().out

    def test_cache_prune_honors_max_bytes(self, capsys, tmp_path):
        db = tmp_path / "cache.sqlite"
        for seed in range(4):
            assert main(["run", "GHS", "-n", "80", "--seed", str(seed),
                         "--cache-path", str(db)]) == 0
        capsys.readouterr()
        assert main(["cache", "prune", "--store", str(db),
                     "--max-bytes", "1"]) == 0
        capsys.readouterr()
        from repro.store import ResultStore

        with ResultStore(db) as store:
            assert store.stats()["entries"] == 0
