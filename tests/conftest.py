"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.points import uniform_points


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_points():
    """A fixed 60-node uniform instance (connected at the default radius)."""
    return uniform_points(60, seed=42)


@pytest.fixture
def medium_points():
    """A fixed 200-node uniform instance."""
    return uniform_points(200, seed=7)


def brute_force_mst_cost(points: np.ndarray) -> float:
    """O(n^2) reference MST length via networkx, for cross-checks."""
    import networkx as nx

    pts = np.asarray(points, dtype=float)
    g = nx.Graph()
    n = len(pts)
    g.add_nodes_from(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            d = float(np.hypot(*(pts[i] - pts[j])))
            g.add_edge(i, j, weight=d)
    t = nx.minimum_spanning_tree(g)
    return sum(d["weight"] for _, _, d in t.edges(data=True))
