"""Tests for the centralized nearest-neighbour tree."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry.points import uniform_points
from repro.geometry.ranks import diagonal_ranks, lexicographic_ranks
from repro.mst.delaunay import euclidean_mst
from repro.mst.nnt import (
    nearest_higher_rank_target,
    nearest_neighbor_tree,
    nnt_edge_lengths,
)
from repro.mst.quality import tree_cost, verify_spanning_tree


class TestConstruction:
    def test_is_spanning_tree(self):
        pts = uniform_points(150, seed=0)
        e, _ = nearest_neighbor_tree(pts)
        verify_spanning_tree(150, e)

    def test_edge_count(self):
        pts = uniform_points(40, seed=1)
        e, w = nearest_neighbor_tree(pts)
        assert len(e) == 39 and len(w) == 39

    def test_small_inputs(self):
        assert nearest_neighbor_tree(np.zeros((0, 2)))[0].shape == (0, 2)
        assert nearest_neighbor_tree(np.array([[0.5, 0.5]]))[0].shape == (0, 2)

    def test_two_points(self):
        e, w = nearest_neighbor_tree(np.array([[0.1, 0.1], [0.9, 0.9]]))
        assert set(map(tuple, e)) == {(0, 1)}

    def test_each_node_connects_to_nearest_higher(self):
        pts = uniform_points(60, seed=2)
        ranks = diagonal_ranks(pts)
        targets = nearest_higher_rank_target(pts, ranks)
        for u in range(60):
            higher = np.nonzero(ranks > ranks[u])[0]
            if len(higher) == 0:
                assert targets[u] == -1
            else:
                d = np.sqrt(((pts[higher] - pts[u]) ** 2).sum(axis=1))
                assert targets[u] == higher[np.argmin(d)]

    @given(st.integers(0, 2**31 - 1), st.integers(2, 50))
    @settings(max_examples=25, deadline=None)
    def test_always_a_tree(self, seed, n):
        """NNT construction never produces a cycle (edges point uphill)."""
        pts = uniform_points(n, seed=seed)
        e, _ = nearest_neighbor_tree(pts)
        verify_spanning_tree(n, e)

    def test_lexicographic_ranking_also_spans(self):
        pts = uniform_points(100, seed=3)
        e, _ = nearest_neighbor_tree(pts, lexicographic_ranks(pts))
        verify_spanning_tree(100, e)


class TestQuality:
    def test_theorem_6_1_squared_cost(self):
        """E[sum of squared NNT edges] <= 4 (Thm 6.1); typical values ~0.7."""
        pts = uniform_points(3000, seed=4)
        e, _ = nearest_neighbor_tree(pts)
        assert tree_cost(pts, e, 2.0) <= 4.0

    def test_constant_factor_vs_mst(self):
        pts = uniform_points(1000, seed=5)
        nnt, _ = nearest_neighbor_tree(pts)
        mst, _ = euclidean_mst(pts)
        ratio = tree_cost(pts, nnt, 1.0) / tree_cost(pts, mst, 1.0)
        assert 1.0 <= ratio < 1.35  # paper observes ~1.1

    def test_diagonal_avoids_long_edges(self):
        """Diagonal ranking's max edge is O(sqrt(log n / n)); the
        lexicographic ranking strands nodes with Theta(1) edges (the
        paper's motivation for the new ranking — ablation ABL-K)."""
        n = 2000
        pts = uniform_points(n, seed=6)
        diag_max = nnt_edge_lengths(pts, diagonal_ranks(pts)).max()
        lex_max = nnt_edge_lengths(pts, lexicographic_ranks(pts)).max()
        assert diag_max <= 3.0 * np.sqrt(np.log(n) / n)
        assert lex_max > diag_max  # typically much larger

    def test_nnt_cost_at_least_mst(self):
        pts = uniform_points(300, seed=7)
        nnt, _ = nearest_neighbor_tree(pts)
        mst, _ = euclidean_mst(pts)
        assert tree_cost(pts, nnt) >= tree_cost(pts, mst) - 1e-9

    def test_nnt_edge_lengths_drops_top(self):
        pts = uniform_points(25, seed=8)
        lens = nnt_edge_lengths(pts)
        assert len(lens) == 24
        assert np.isfinite(lens).all()
