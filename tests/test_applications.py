"""Tests for the application layer (aggregation, broadcast, topology)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications.aggregation import (
    direct_to_sink_energy,
    orient_tree,
    simulate_aggregation,
)
from repro.applications.broadcast import simulate_flooding, simulate_tree_broadcast
from repro.applications.topology import local_mst_topology, topology_stats
from repro.errors import GraphError
from repro.geometry.points import uniform_points
from repro.geometry.radius import connectivity_radius
from repro.mst.delaunay import euclidean_mst
from repro.mst.quality import tree_cost
from repro.rgg.build import build_rgg
from repro.rgg.components import is_connected


@pytest.fixture(scope="module")
def instance():
    pts = uniform_points(120, seed=0)
    mst, _ = euclidean_mst(pts)
    return pts, mst


class TestOrientTree:
    def test_parent_children_consistent(self, instance):
        pts, mst = instance
        parent, children = orient_tree(len(pts), mst, root=0)
        assert parent[0] == -1
        for u in range(len(pts)):
            for c in children[u]:
                assert parent[c] == u
        # Every non-root has exactly one parent.
        assert (parent[1:] >= 0).all()

    def test_non_spanning_rejected(self):
        with pytest.raises(GraphError):
            orient_tree(3, np.array([[0, 1]]), root=0)


class TestAggregation:
    def test_sum(self, instance):
        pts, mst = instance
        vals = np.arange(len(pts), dtype=float)
        result, stats = simulate_aggregation(pts, mst, sink=0, values=vals, op="sum")
        assert result == pytest.approx(vals.sum())

    def test_min_max(self, instance):
        pts, mst = instance
        vals = np.random.default_rng(1).normal(size=len(pts))
        lo, _ = simulate_aggregation(pts, mst, sink=3, values=vals, op="min")
        hi, _ = simulate_aggregation(pts, mst, sink=3, values=vals, op="max")
        assert lo == pytest.approx(vals.min())
        assert hi == pytest.approx(vals.max())

    def test_avg(self, instance):
        pts, mst = instance
        vals = np.random.default_rng(2).random(len(pts))
        avg, _ = simulate_aggregation(pts, mst, sink=5, values=vals, op="avg")
        assert avg == pytest.approx(vals.mean())

    def test_energy_equals_tree_cost(self, instance):
        """One unicast per tree edge: energy = sum d^2 = L_MST."""
        pts, mst = instance
        vals = np.ones(len(pts))
        _, stats = simulate_aggregation(pts, mst, sink=0, values=vals)
        assert stats.energy_total == pytest.approx(tree_cost(pts, mst, alpha=2.0))
        assert stats.messages_total == len(mst)

    def test_beats_direct_to_sink(self, instance):
        """The aggregation-over-MST motivation: Theta(1) vs Theta(n)."""
        pts, mst = instance
        _, stats = simulate_aggregation(pts, mst, sink=0, values=np.ones(len(pts)))
        assert stats.energy_total < 0.25 * direct_to_sink_energy(pts, 0)

    def test_validation(self, instance):
        pts, mst = instance
        with pytest.raises(GraphError):
            simulate_aggregation(pts, mst, sink=0, values=np.ones(3))
        with pytest.raises(GraphError):
            simulate_aggregation(pts, mst, sink=-1, values=np.ones(len(pts)))
        with pytest.raises(GraphError):
            simulate_aggregation(
                pts, mst, sink=0, values=np.ones(len(pts)), op="median"
            )

    def test_two_nodes(self):
        pts = np.array([[0.0, 0.0], [0.6, 0.0]])
        edges = np.array([[0, 1]])
        result, stats = simulate_aggregation(pts, edges, 0, np.array([1.0, 2.0]))
        assert result == 3.0
        assert stats.energy_total == pytest.approx(0.36)

    def test_direct_to_sink_validation(self):
        with pytest.raises(GraphError):
            direct_to_sink_energy(uniform_points(5), sink=9)


class TestBroadcast:
    def test_tree_broadcast_reaches_all(self, instance):
        pts, mst = instance
        reached, _ = simulate_tree_broadcast(pts, mst, source=0)
        assert reached == len(pts)

    def test_tree_broadcast_message_count(self, instance):
        """One transmission per internal node (nodes with children)."""
        pts, mst = instance
        _, children = orient_tree(len(pts), mst, 0)
        internal = sum(1 for c in children if c)
        _, stats = simulate_tree_broadcast(pts, mst, source=0)
        assert stats.messages_total == internal

    def test_flooding_reaches_component(self):
        pts = uniform_points(150, seed=3)
        r = connectivity_radius(150)
        if is_connected(build_rgg(pts, r)):
            reached, stats = simulate_flooding(pts, r, source=0)
            assert reached == 150
            assert stats.energy_total == pytest.approx(150 * r * r)

    def test_tree_broadcast_cheaper_than_flooding(self, instance):
        pts, mst = instance
        r = connectivity_radius(len(pts))
        _, tree_stats = simulate_tree_broadcast(pts, mst, source=0)
        _, flood_stats = simulate_flooding(pts, r, source=0)
        assert tree_stats.energy_total < flood_stats.energy_total

    def test_single_node(self):
        pts = np.array([[0.5, 0.5]])
        reached, stats = simulate_tree_broadcast(pts, np.zeros((0, 2)), 0)
        assert reached == 1
        assert stats.messages_total == 0

    def test_validation(self, instance):
        pts, mst = instance
        with pytest.raises(GraphError):
            simulate_tree_broadcast(pts, mst, source=len(pts))
        with pytest.raises(GraphError):
            simulate_flooding(pts, -0.1, source=0)


class TestTopology:
    def test_preserves_connectivity(self):
        pts = uniform_points(150, seed=0)
        g = build_rgg(pts, connectivity_radius(150))
        assert is_connected(g)
        backbone = local_mst_topology(g)
        assert is_connected(backbone)

    def test_degree_bound(self):
        """LMST's classic guarantee: max degree <= 6."""
        pts = uniform_points(200, seed=1)
        g = build_rgg(pts, connectivity_radius(200))
        backbone = local_mst_topology(g)
        assert backbone.degrees().max() <= 6

    def test_subset_of_input(self):
        pts = uniform_points(100, seed=2)
        g = build_rgg(pts, connectivity_radius(100))
        backbone = local_mst_topology(g)
        assert set(map(tuple, backbone.edges)) <= set(map(tuple, g.edges))

    def test_contains_global_mst(self):
        """Every EMST edge within radius survives LMST (it is in every
        local MST of a neighbourhood containing it)."""
        pts = uniform_points(120, seed=3)
        g = build_rgg(pts, connectivity_radius(120))
        backbone = local_mst_topology(g)
        mst, lengths = euclidean_mst(pts)
        kept = set(map(tuple, backbone.edges))
        for (u, v), d in zip(mst, lengths):
            if d <= g.radius:
                assert (int(u), int(v)) in kept

    def test_sparser_than_input(self):
        pts = uniform_points(250, seed=4)
        g = build_rgg(pts, connectivity_radius(250))
        backbone = local_mst_topology(g)
        stats = topology_stats(g, backbone)
        assert stats.edge_reduction > 0.4
        assert stats.energy_cost_after < stats.energy_cost_before

    def test_asymmetric_variant_superset(self):
        pts = uniform_points(100, seed=5)
        g = build_rgg(pts, connectivity_radius(100))
        sym = set(map(tuple, local_mst_topology(g, symmetric=True).edges))
        asym = set(map(tuple, local_mst_topology(g, symmetric=False).edges))
        assert sym <= asym

    def test_stats_validation(self):
        g1 = build_rgg(uniform_points(10, seed=0), 0.5)
        g2 = build_rgg(uniform_points(11, seed=0), 0.5)
        with pytest.raises(GraphError):
            topology_stats(g1, g2)
