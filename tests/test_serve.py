"""Tests for the HTTP run service: routing, broker dedupe, store
short-circuit, event streaming and the degradation paths.

Every test talks to a real listening socket (ephemeral port) through
urllib on an executor thread — the same wire path curl takes — so the
transport layer (request parsing, close-delimited streams) is exercised,
not mocked around.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.runspec import RunSpec
from repro.serve import InMemoryBroker, ServeApp, create_app
from repro.serve.http import run_http_server
from repro.store import ResultStore


def _http(base: str, method: str, path: str, body=None, timeout=30):
    """One blocking HTTP exchange; returns ``(status, bytes)``."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def run_served(scenario, *, store=None, backend="serial", app=None):
    """Boot a server, run ``await scenario(call, app)``, tear down.

    ``call(method, path, body=None)`` awaits one HTTP exchange done on
    an executor thread (urllib blocks; the loop must keep serving).
    """

    async def main():
        if app is None:
            server, the_app = await create_app(
                "127.0.0.1", 0, store=store, backend=backend
            )
        else:
            the_app = app
            server = await run_http_server(the_app.handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        base = f"http://127.0.0.1:{port}"
        loop = asyncio.get_event_loop()

        def call(method, path, body=None):
            return loop.run_in_executor(None, _http, base, method, path, body)

        try:
            return await scenario(call, the_app)
        finally:
            server.close()
            await server.wait_closed()
            await the_app.broker.close()

    return asyncio.run(main())


async def wait_done(call, job_id: str) -> dict:
    for _ in range(600):
        status, body = await call("GET", f"/runs/{job_id}")
        assert status == 200
        state = json.loads(body)
        if state["state"] in ("done", "failed", "cancelled"):
            return state
        await asyncio.sleep(0.02)
    raise AssertionError(f"job {job_id} never settled")


SPEC = {"algorithm": "GHS", "n": 60, "seed": 1, "trace": True, "perf": True}


class TestRoutes:
    def test_healthz_and_stats(self, tmp_path):
        async def scenario(call, app):
            status, body = await call("GET", "/healthz")
            assert status == 200 and json.loads(body) == {"ok": True}
            status, body = await call("GET", "/stats")
            stats = json.loads(body)
            assert status == 200
            assert stats["store"]["entries"] == 0
            assert stats["broker"]["queue_depth"] == 0
            assert set(stats["pool"]) == {"alive", "workers", "serial_fallback"}

        with ResultStore(tmp_path / "s.sqlite") as store:
            run_served(scenario, store=store)

    def test_unknown_routes_and_methods(self):
        async def scenario(call, app):
            assert (await call("GET", "/nope"))[0] == 404
            assert (await call("GET", "/runs/feedbeef"))[0] == 404
            assert (await call("DELETE", "/healthz"))[0] == 405
            assert (await call("GET", "/runs"))[0] == 405
            assert (await call("POST", "/runs/abc/events"))[0] == 405
            assert (await call("GET", "/runs/abc/unknown"))[0] == 404

        run_served(scenario)

    def test_invalid_spec_is_400(self):
        async def scenario(call, app):
            status, body = await call("POST", "/runs", {"algorithm": "NopeMST"})
            assert status == 400
            assert "invalid RunSpec" in json.loads(body)["error"]
            status, body = await call("POST", "/runs", ["not", "an", "object"])
            assert status == 400
            # Raw garbage (not JSON at all).
            status, body = await call("POST", "/runs", "just a string")
            assert status == 400

        run_served(scenario)


class TestSubmitLifecycle:
    def test_submit_compute_roundtrip(self, tmp_path):
        async def scenario(call, app):
            status, body = await call("POST", "/runs", SPEC)
            assert status == 201
            sub = json.loads(body)
            spec = RunSpec.from_dict(SPEC)
            assert sub["id"] == spec.spec_hash()
            state = await wait_done(call, sub["id"])
            assert state["state"] == "done" and state["source"] == "computed"
            assert state["report"]["spec_hash"] == spec.spec_hash()
            status, payload = await call("GET", f"/runs/{sub['id']}/report")
            assert status == 200
            assert json.loads(payload)["result"]["n"] == SPEC["n"]
            return payload

        with ResultStore(tmp_path / "s.sqlite") as store:
            payload = run_served(scenario, store=store)
            # What went over the wire is exactly what the store holds.
            stored = store.get(RunSpec.from_dict(SPEC).result_key())
            assert payload.decode("utf-8") == stored

    def test_resubmit_dedupes_to_same_job(self, tmp_path):
        async def scenario(call, app):
            status1, body1 = await call("POST", "/runs", SPEC)
            await wait_done(call, json.loads(body1)["id"])
            status2, body2 = await call("POST", "/runs", SPEC)
            assert (status1, status2) == (201, 200)
            assert json.loads(body1)["id"] == json.loads(body2)["id"]
            stats = json.loads((await call("GET", "/stats"))[1])
            assert stats["broker"]["computed"] == 1
            assert stats["broker"]["deduped"] == 1

        with ResultStore(tmp_path / "s.sqlite") as store:
            run_served(scenario, store=store)

    def test_warm_restart_serves_store_hit_byte_identical(self, tmp_path):
        """The acceptance gate: same spec, second service instance —
        no recompute, byte-identical payload, /stats shows the hit."""

        async def cold(call, app):
            status, body = await call("POST", "/runs", SPEC)
            job_id = json.loads(body)["id"]
            await wait_done(call, job_id)
            return (await call("GET", f"/runs/{job_id}/report"))[1]

        async def warm(call, app):
            status, body = await call("POST", "/runs", SPEC)
            sub = json.loads(body)
            assert status == 201  # new job in this broker...
            assert sub["state"] == "done" and sub["source"] == "store"
            payload = (await call("GET", f"/runs/{sub['id']}/report"))[1]
            stats = json.loads((await call("GET", "/stats"))[1])
            assert stats["broker"]["store_resolved"] == 1
            assert stats["broker"]["computed"] == 0
            assert stats["store"]["hits"] >= 1
            return payload

        with ResultStore(tmp_path / "s.sqlite") as store:
            first = run_served(cold, store=store)
            second = run_served(warm, store=store)
        assert first == second

    def test_concurrent_submissions_singleflight(self, tmp_path):
        async def scenario(call, app):
            results = await asyncio.gather(
                *(call("POST", "/runs", SPEC) for _ in range(8))
            )
            ids = {json.loads(body)["id"] for _, body in results}
            assert len(ids) == 1
            assert sorted(status for status, _ in results) == [200] * 7 + [201]
            await wait_done(call, ids.pop())
            stats = json.loads((await call("GET", "/stats"))[1])
            assert stats["broker"]["computed"] == 1
            assert stats["broker"]["deduped"] == 7

        with ResultStore(tmp_path / "s.sqlite") as store:
            run_served(scenario, store=store)

    def test_serves_without_store(self):
        async def scenario(call, app):
            status, body = await call("POST", "/runs", SPEC)
            state = await wait_done(call, json.loads(body)["id"])
            assert state["state"] == "done" and state["source"] == "computed"
            stats = json.loads((await call("GET", "/stats"))[1])
            assert stats["store"] is None

        run_served(scenario, store=None)

    def test_failed_run_reports_error_and_allows_retry(self):
        async def scenario(call, app):
            # Rand-NNT rejects fault plans: a per-run failure, not a
            # transport error.
            bad = {
                "algorithm": "Rand-NNT",
                "n": 50,
                "faults": {"seed": 0, "drop_rate": 0.5},
            }
            status, body = await call("POST", "/runs", bad)
            assert status == 201
            state = await wait_done(call, json.loads(body)["id"])
            assert state["state"] == "failed"
            assert "ExperimentError" in state["error"]
            status, _ = await call(
                "GET", f"/runs/{json.loads(body)['id']}/report"
            )
            assert status == 409
            # A FAILED job does not absorb resubmits: fresh attempt.
            status, body2 = await call("POST", "/runs", bad)
            assert status == 201

        run_served(scenario)


class TestEventsStream:
    def test_ndjson_stream_carries_lifecycle_and_trace(self, tmp_path):
        async def scenario(call, app):
            _, body = await call("POST", "/runs", SPEC)
            job_id = json.loads(body)["id"]
            await wait_done(call, job_id)
            status, raw = await call("GET", f"/runs/{job_id}/events")
            assert status == 200
            events = [json.loads(line) for line in raw.decode().splitlines()]
            kinds = [e["event"] for e in events]
            assert kinds[0] == "queued"
            assert "running" in kinds
            assert kinds[-1] == "done"  # terminal event closes the stream
            assert any(k == "trace" for k in kinds)
            assert any(k == "perf" for k in kinds)

        with ResultStore(tmp_path / "s.sqlite") as store:
            run_served(scenario, store=store)

    def test_store_replay_streams_same_instrumentation(self, tmp_path):
        async def run_and_collect(call, app):
            _, body = await call("POST", "/runs", SPEC)
            job_id = json.loads(body)["id"]
            await wait_done(call, job_id)
            _, raw = await call("GET", f"/runs/{job_id}/events")
            return [
                json.loads(line)["event"]
                for line in raw.decode().splitlines()
            ]

        with ResultStore(tmp_path / "s.sqlite") as store:
            cold = run_served(run_and_collect, store=store)
            warm = run_served(run_and_collect, store=store)
        # The replayed job streams the same trace/perf events the
        # original computed — only the lifecycle prefix differs (no
        # "running" phase on a store hit).
        assert [k for k in cold if k == "trace"] == [
            k for k in warm if k == "trace"
        ]
        assert warm.count("perf") == 1 and warm[-1] == "done"
        assert "running" not in warm


class TestCancellation:
    def test_cancel_queued_job_via_http(self):
        # A broker that was never started keeps jobs QUEUED forever —
        # deterministic cancellation without timing games.
        broker = InMemoryBroker(backend="serial")
        app = ServeApp(broker)

        async def scenario(call, _app):
            _, body = await call("POST", "/runs", SPEC)
            job_id = json.loads(body)["id"]
            status, body = await call("DELETE", f"/runs/{job_id}")
            assert status == 200
            assert json.loads(body)["state"] == "cancelled"
            # Terminal now: a second DELETE is a no-op success report.
            status, _ = await call("DELETE", f"/runs/{job_id}")
            assert status == 200
            # And a resubmit starts a fresh attempt.
            status, body = await call("POST", "/runs", SPEC)
            assert status == 201
            assert json.loads(body)["state"] == "queued"

        run_served(scenario, app=app)

    def test_cannot_cancel_settled_job(self, tmp_path):
        async def scenario(call, app):
            _, body = await call("POST", "/runs", SPEC)
            job_id = json.loads(body)["id"]
            await wait_done(call, job_id)
            status, _ = await call("DELETE", f"/runs/{job_id}")
            assert status == 409

        run_served(scenario)


class TestBrokerUnit:
    """Broker semantics that need no socket."""

    def test_submit_is_atomic_dedupe(self, tmp_path):
        async def main():
            store = ResultStore(tmp_path / "s.sqlite")
            broker = InMemoryBroker(store=store, backend="serial")
            spec = RunSpec.from_dict(SPEC)
            job1, created1 = broker.submit(spec)
            job2, created2 = broker.submit(spec)
            assert job1 is job2
            assert (created1, created2) == (True, False)
            assert broker.stats()["queue_depth"] == 1
            store.close()

        asyncio.run(main())

    def test_degraded_store_still_computes(self, tmp_path):
        """Store unopenable → inert: every probe misses, service runs."""

        async def scenario(call, app):
            status, body = await call("POST", "/runs", SPEC)
            assert status == 201
            state = await wait_done(call, json.loads(body)["id"])
            assert state["state"] == "done" and state["source"] == "computed"
            stats = json.loads((await call("GET", "/stats"))[1])
            assert stats["store"]["entries"] == 0

        store = ResultStore(tmp_path / "s.sqlite")
        store.close()
        store.path = str(tmp_path)  # a directory: unopenable, inert
        run_served(scenario, store=store)

    def test_oversized_body_rejected(self):
        async def scenario(call, app):
            blob = {"algorithm": "GHS", "pad": "x" * (5 * 1024 * 1024)}
            status, _ = await call("POST", "/runs", blob)
            assert status == 413

        run_served(scenario)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
