"""Tests for the cell grid and its cluster labeler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ds.grid import CellGrid
from repro.errors import GeometryError


class TestConstruction:
    def test_cell_count(self):
        g = CellGrid(0.25)
        assert g.m == 4
        assert g.n_cells == 16

    def test_non_divisor_side(self):
        g = CellGrid(0.3)
        assert g.m == 4  # ceil(1/0.3)

    def test_invalid_side(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(GeometryError):
                CellGrid(bad)

    def test_counts_require_assign(self):
        g = CellGrid(0.5)
        with pytest.raises(GeometryError):
            _ = g.counts

    def test_assign_and_counts(self):
        pts = np.array([[0.1, 0.1], [0.1, 0.2], [0.9, 0.9]])
        g = CellGrid(0.5, pts)
        assert g.counts[0, 0] == 2
        assert g.counts[1, 1] == 1
        assert g.counts.sum() == 3

    def test_boundary_points_absorbed(self):
        pts = np.array([[1.0, 1.0], [0.0, 0.0]])
        g = CellGrid(0.5, pts)
        assert g.counts[1, 1] == 1
        assert g.counts[0, 0] == 1

    def test_points_outside_square_rejected(self):
        with pytest.raises(GeometryError):
            CellGrid(0.5, np.array([[1.5, 0.5]]))

    def test_bad_shape_rejected(self):
        with pytest.raises(GeometryError):
            CellGrid(0.5, np.zeros((3, 3)))

    def test_cell_of_and_points_in_cell(self):
        pts = np.array([[0.1, 0.6], [0.7, 0.2]])
        g = CellGrid(0.5, pts)
        assert g.cell_of(0) == (0, 1)
        assert g.cell_of(1) == (1, 0)
        assert list(g.points_in_cell(0, 1)) == [0]
        assert list(g.points_in_cell(1, 1)) == []

    def test_empty_points(self):
        g = CellGrid(0.5, np.zeros((0, 2)))
        assert g.counts.sum() == 0


class TestNeighbors:
    def test_neighbors4_interior(self):
        g = CellGrid(0.25)
        assert set(g.neighbors4(1, 1)) == {(0, 1), (2, 1), (1, 0), (1, 2)}

    def test_neighbors4_corner(self):
        g = CellGrid(0.25)
        assert set(g.neighbors4(0, 0)) == {(1, 0), (0, 1)}

    def test_neighbors8_interior(self):
        g = CellGrid(0.25)
        assert len(list(g.neighbors8(1, 1))) == 8

    def test_neighbors8_corner(self):
        g = CellGrid(0.25)
        assert len(list(g.neighbors8(3, 3))) == 3


class TestClusters:
    def test_single_cluster(self):
        g = CellGrid(0.25)
        mask = np.ones((4, 4), dtype=bool)
        labels = g.label_clusters(mask)
        assert labels.max() == 1
        assert (labels == 1).all()

    def test_two_clusters_4conn(self):
        g = CellGrid(0.5)
        mask = np.array([[True, False], [False, True]])
        labels = g.label_clusters(mask, connectivity=4)
        assert labels.max() == 2  # diagonal cells are NOT 4-adjacent

    def test_diagonal_joins_with_8conn(self):
        g = CellGrid(0.5)
        mask = np.array([[True, False], [False, True]])
        labels = g.label_clusters(mask, connectivity=8)
        assert labels.max() == 1

    def test_empty_mask(self):
        g = CellGrid(0.5)
        labels = g.label_clusters(np.zeros((2, 2), dtype=bool))
        assert labels.max() == 0
        assert len(g.cluster_sizes(labels)) == 0

    def test_cluster_sizes(self):
        g = CellGrid(0.25)
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, :3] = True  # cluster of 3
        mask[3, 3] = True   # cluster of 1
        labels = g.label_clusters(mask)
        assert sorted(g.cluster_sizes(labels)) == [1, 3]

    def test_wrong_mask_shape(self):
        g = CellGrid(0.25)
        with pytest.raises(GeometryError):
            g.label_clusters(np.zeros((2, 2), dtype=bool))

    def test_bad_connectivity(self):
        g = CellGrid(0.5)
        with pytest.raises(ValueError):
            g.label_clusters(np.zeros((2, 2), dtype=bool), connectivity=6)

    def test_matches_scipy_label(self):
        """Cross-check the flood fill against scipy.ndimage.label."""
        from scipy import ndimage

        rng = np.random.default_rng(3)
        g = CellGrid(1 / 16)
        mask = rng.random((16, 16)) < 0.55
        ours = g.label_clusters(mask, connectivity=4)
        theirs, k = ndimage.label(mask)
        assert ours.max() == k
        # Same partition: the label arrays must be equal up to renaming.
        pairs = {(int(a), int(b)) for a, b in zip(ours.ravel(), theirs.ravel()) if a}
        assert len(pairs) == k  # bijection between label sets

    @given(st.integers(0, 2**32 - 1))
    def test_labels_cover_exactly_mask(self, seed):
        rng = np.random.default_rng(seed)
        g = CellGrid(0.125)
        mask = rng.random((8, 8)) < 0.5
        labels = g.label_clusters(mask)
        assert ((labels > 0) == mask).all()
