"""Unit tests for the shared sweep-instance cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import instances
from repro.geometry.points import uniform_points


@pytest.fixture(autouse=True)
def _fresh_cache():
    instances.clear_cache()
    yield
    instances.clear_cache()


def test_values_match_uniform_points():
    np.testing.assert_array_equal(
        instances.get_points(100, 3), uniform_points(100, seed=3)
    )


def test_cache_hits_return_same_object():
    a = instances.get_points(50, 0)
    b = instances.get_points(50, 0)
    assert a is b
    info = instances.cache_info()
    assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1


def test_returned_array_is_read_only():
    pts = instances.get_points(10, 1)
    assert not pts.flags.writeable
    with pytest.raises(ValueError):
        pts[0, 0] = 0.5
    # Callers that need a mutable copy can take one.
    cp = pts.copy()
    cp[0, 0] = 0.5


def test_distinct_keys_are_distinct_instances():
    a = instances.get_points(20, 0)
    b = instances.get_points(20, 1)
    c = instances.get_points(21, 0)
    assert a is not b and a is not c
    assert instances.cache_info()["misses"] == 3


def test_lru_eviction(monkeypatch):
    monkeypatch.setattr(instances, "_CACHE_SIZE", 2)
    a = instances.get_points(10, 0)
    instances.get_points(10, 1)
    instances.get_points(10, 2)  # evicts (10, 0)
    assert instances.cache_info()["size"] == 2
    b = instances.get_points(10, 0)  # rebuilt, not the cached object
    assert b is not a
    np.testing.assert_array_equal(a, b)


def test_clear_cache_resets_counters():
    instances.get_points(10, 0)
    instances.get_points(10, 0)
    instances.clear_cache()
    assert instances.cache_info() == {
        "hits": 0,
        "misses": 0,
        "size": 0,
        "max_size": instances._CACHE_SIZE,
        "graph_size": 0,
        "graph_max_size": instances._GRAPH_CACHE_SIZE,
    }
