"""Tests for the RBN contention-resolution kernel (paper Sec. VIII)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.interference import ContentionKernel
from repro.sim.kernel import SynchronousKernel
from repro.sim.message import Message
from repro.sim.node import NodeProcess


class Recorder(NodeProcess):
    __slots__ = ("heard",)

    def __init__(self, node_id, ctx):
        super().__init__(node_id, ctx)
        self.heard: list[tuple[str, int]] = []

    def on_message(self, msg: Message, distance: float) -> None:
        self.heard.append((msg.kind, msg.src))

    def on_wake(self, signal: str, payload: tuple = ()) -> None:
        if signal == "bc":
            self.ctx.local_broadcast(payload[0], "B", self.id)


def cluster_points():
    """Three mutually-in-range nodes plus one far away."""
    return np.array([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [0.9, 0.9]])


class TestContention:
    def test_all_messages_still_delivered(self):
        k = ContentionKernel(cluster_points(), max_radius=0.3)
        k.add_nodes(Recorder)
        k.start()
        k.wake([0, 1, 2], "bc", (0.2,))
        k.run_until_quiescent()
        # Every pairwise delivery among the cluster happened despite conflicts.
        for i in range(3):
            assert sorted(src for _, src in k.nodes[i].heard) == sorted(
                j for j in range(3) if j != i
            )

    def test_conflicting_broadcasts_serialized(self):
        k = ContentionKernel(cluster_points(), max_radius=0.3)
        k.add_nodes(Recorder)
        k.start()
        k.wake([0, 1, 2], "bc", (0.2,))
        k.run_until_quiescent()
        # Three mutually conflicting transmissions need three slots.
        assert k.slots == 3
        assert k.max_slot_factor == 3

    def test_non_conflicting_share_a_slot(self):
        pts = np.array([[0.0, 0.0], [0.05, 0.0], [1.0, 1.0], [0.95, 1.0]])
        k = ContentionKernel(pts, max_radius=0.2)
        k.add_nodes(Recorder)
        k.start()
        k.wake([0, 2], "bc", (0.1,))
        k.run_until_quiescent()
        assert k.slots == 1  # far apart: simultaneous is fine

    def test_energy_identical_to_collision_free(self):
        """Contention resolution costs time, not energy (paper Sec. VIII)."""
        pts = cluster_points()

        def run(kernel_cls):
            k = kernel_cls(pts, max_radius=0.5)
            k.add_nodes(Recorder)
            k.start()
            k.wake(range(4), "bc", (0.3,))
            k.run_until_quiescent()
            return k.stats()

        base = run(SynchronousKernel)
        cont = run(ContentionKernel)
        assert cont.energy_total == pytest.approx(base.energy_total)
        assert cont.messages_total == base.messages_total
        assert cont.rounds >= base.rounds

    def test_ghs_correct_under_contention(self):
        """Full GHS on the contention kernel: same MST, same energy, more
        rounds.  (Protocols are kernel-agnostic by construction.)"""
        from repro.algorithms.ghs.driver import hello_round, run_ghs_phases
        from repro.algorithms.ghs.node import GHSNode
        from repro.algorithms.base import collect_tree_edges
        from repro.geometry.points import uniform_points
        from repro.geometry.radius import connectivity_radius
        from repro.mst.delaunay import euclidean_mst
        from repro.mst.quality import same_tree

        n = 60
        pts = uniform_points(n, seed=0)
        r = connectivity_radius(n)
        k = ContentionKernel(pts, max_radius=r)
        k.add_nodes(lambda i, ctx: GHSNode(i, ctx, use_tests=False, announce=True))
        k.start()
        hello_round(k, r)
        run_ghs_phases(k, k.nodes)
        edges = collect_tree_edges((nd.id, nd.tree_edges) for nd in k.nodes)
        mst, _ = euclidean_mst(pts)
        assert same_tree(edges, mst)
        assert k.slots >= k.stats().rounds * 0  # slots tracked
        assert k.max_slot_factor >= 1

    def test_empty_round(self):
        k = ContentionKernel(cluster_points(), max_radius=0.5)
        k.add_nodes(Recorder)
        k.start()
        assert k.step() == 0
        assert k.slots == 0


class TestRoundAccounting:
    """Satellite regressions: slot/round bookkeeping and plane rejection."""

    def test_fresh_kernel_reports_zero_slot_factor(self):
        # Regression: a kernel that never stepped a non-empty round must
        # not claim an inflation factor of 1.
        k = ContentionKernel(cluster_points(), max_radius=0.3)
        assert k.max_slot_factor == 0
        assert k.slots == 0

    def test_rounds_equal_slots_plus_idle_ticks(self):
        k = ContentionKernel(cluster_points(), max_radius=0.3)
        k.add_nodes(Recorder)
        k.start()
        k.wake([0, 1, 2], "bc", (0.2,))
        k.run_until_quiescent()
        assert k.rounds == k.slots
        k.tick()
        assert k.rounds == k.slots + 1

    def test_set_plane_handler_rejected(self):
        from repro.errors import SimulationError

        k = ContentionKernel(cluster_points(), max_radius=0.3)
        with pytest.raises(SimulationError):
            k.set_plane_handler(lambda *a: None)

    def test_mghs_planes_flag_works_on_contention_kernel(self):
        # Regression: planes=True on a kernel without plane support must
        # transparently fall back to per-message floods, not crash.
        from repro.algorithms.ghs import run_modified_ghs
        from repro.experiments.instances import get_points

        pts = get_points(120, 0)
        base = run_modified_ghs(pts)
        res = run_modified_ghs(pts, planes=True, kernel_cls=ContentionKernel)
        from repro.mst.quality import same_tree

        assert same_tree(res.tree_edges, base.tree_edges)
        assert res.stats.energy_total == pytest.approx(base.stats.energy_total)

    def test_contention_with_drops(self):
        from repro.sim.faults import FaultPlan

        k = ContentionKernel(
            cluster_points(),
            max_radius=0.3,
            faults=FaultPlan(seed=0, drop_rate=1.0),
        )
        k.add_nodes(Recorder)
        k.start()
        k.wake([0, 1, 2], "bc", (0.2,))
        k.run_until_quiescent()
        # Slots were still played (TX happened, energy paid), nothing heard.
        assert k.slots == 3
        assert all(not nd.heard for nd in k.nodes)
        assert k.stats().dropped_total == 6
        assert k.stats().energy_total > 0
