"""Direct numerical checks of the paper's remaining lemmas and constants.

The benches check these on fixed grids; here they become part of the fast
test suite (smaller instances) plus a couple of statements not covered
elsewhere: Lemma 5.2 (good-cell probability tends to 1 with the cell
constant), the Steele constants, and EOPT's parameter-robustness.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.eopt import run_eopt
from repro.geometry.points import uniform_points
from repro.geometry.radius import giant_radius
from repro.mst.delaunay import euclidean_mst
from repro.mst.kruskal import kruskal_mst
from repro.mst.quality import same_tree
from repro.percolation.cells import good_cell_mask, occupancy_grid
from repro.rgg.build import build_rgg


class TestLemma52:
    """Lemma 5.2: Pr[cell is good] -> 1 as the cell constant c grows."""

    def test_good_probability_increases_with_c(self):
        n = 4000
        pts = uniform_points(n, seed=0)
        fracs = []
        for c in (1.0, 2.0, 4.0, 8.0):
            grid = occupancy_grid(pts, giant_radius(n, np.sqrt(c)))
            fracs.append(float(good_cell_mask(grid).mean()))
        assert all(a <= b + 0.02 for a, b in zip(fracs, fracs[1:]))
        assert fracs[-1] > 0.85

    def test_matches_poisson_prediction(self):
        """Good fraction ~ Pr[Poisson(c/4) >= max(c/8, 1)]."""
        from scipy import stats

        n, c = 8000, 8.0
        pts = uniform_points(n, seed=1)
        grid = occupancy_grid(pts, giant_radius(n, np.sqrt(c)))
        measured = float(good_cell_mask(grid).mean())
        mu, threshold = c / 4.0, max(c / 8.0, 1.0)
        predicted = 1.0 - stats.poisson.cdf(np.ceil(threshold) - 1, mu)
        assert measured == pytest.approx(predicted, abs=0.05)


class TestSteeleConstants:
    """Steele's asymptotics (the paper's [26]): E[sum |e|] = Theta(sqrt n)
    with the known constant ~0.65 for the Euclidean MST, and the squared
    sum a constant."""

    def test_mst_length_constant(self):
        n = 5000
        pts = uniform_points(n, seed=0)
        _, lengths = euclidean_mst(pts)
        const = lengths.sum() / np.sqrt(n)
        assert 0.55 < const < 0.75

    def test_length_scaling_sqrt_n(self):
        sums = {}
        for n in (1000, 4000):
            _, lengths = euclidean_mst(uniform_points(n, seed=1))
            sums[n] = lengths.sum()
        assert sums[4000] / sums[1000] == pytest.approx(2.0, rel=0.12)

    def test_sq_sum_constant_across_n(self):
        vals = []
        for n in (1000, 4000):
            _, lengths = euclidean_mst(uniform_points(n, seed=2))
            vals.append(float(np.sum(lengths**2)))
        assert abs(vals[0] - vals[1]) < 0.15


class TestEOPTParameterRobustness:
    """EOPT must return the exact MST of the r2-RGG for *any* sensible
    parameter combination — the constants only steer energy."""

    @given(
        st.integers(0, 2**31 - 1),
        st.floats(0.6, 2.5),   # c1
        st.floats(1.2, 2.5),   # c2
        st.floats(0.1, 10.0),  # beta
    )
    @settings(max_examples=15, deadline=None)
    def test_exactness_under_any_constants(self, seed, c1, c2, beta):
        pts = uniform_points(80, seed=seed)
        res = run_eopt(pts, c1=c1, c2=c2, beta=beta)
        g = build_rgg(pts, res.extras["r2"])
        expected, _ = kruskal_mst(g.n, g.edges, g.lengths)
        assert same_tree(res.tree_edges, expected)


class TestKorachScale:
    """Sanity check of the message scale behind Thm 4.1: even the
    message-optimal GHS uses Omega(n log n) messages at the connectivity
    radius, the quantity the lower bound converts into energy."""

    def test_ghs_messages_superlinear(self):
        from repro.algorithms.ghs import run_ghs

        msgs = {}
        for n in (200, 800):
            msgs[n] = run_ghs(uniform_points(n, seed=0)).messages
        # Superlinear growth: quadrupling n more than quadruples messages.
        assert msgs[800] > 4.2 * msgs[200]
