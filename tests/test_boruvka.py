"""Tests for centralized Borůvka and its correspondence with GHS."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.ghs import run_ghs, run_modified_ghs
from repro.errors import GraphError
from repro.geometry.points import uniform_points
from repro.mst.boruvka import boruvka_mst
from repro.mst.kruskal import kruskal_mst
from repro.mst.quality import same_tree, verify_spanning_tree
from repro.rgg.build import build_rgg


class TestBoruvka:
    def test_matches_kruskal(self):
        pts = uniform_points(100, seed=0)
        g = build_rgg(pts, 0.3)
        trace = boruvka_mst(g.n, g.edges, g.lengths)
        ke, _ = kruskal_mst(g.n, g.edges, g.lengths)
        assert same_tree(trace.tree_edges, ke)

    def test_phase_count_logarithmic(self):
        pts = uniform_points(256, seed=1)
        g = build_rgg(pts, 0.3)
        trace = boruvka_mst(g.n, g.edges, g.lengths)
        assert trace.phases <= int(np.log2(256)) + 1

    def test_fragments_at_least_halve(self):
        """Borůvka invariant: fragment count at least halves per phase."""
        pts = uniform_points(200, seed=2)
        g = build_rgg(pts, 0.25)
        trace = boruvka_mst(g.n, g.edges, g.lengths)
        f = trace.fragments_per_phase
        for a, b in zip(f, f[1:]):
            assert b <= (a + 1) // 2 + a % 2 or b <= a // 2 + 1

    def test_phase_edges_partition_tree(self):
        pts = uniform_points(80, seed=3)
        g = build_rgg(pts, 0.4)
        trace = boruvka_mst(g.n, g.edges, g.lengths)
        flat = [e for phase in trace.phase_edges for e in phase]
        assert len(flat) == len(trace.tree_edges)
        verify_spanning_tree(g.n, np.array(flat), forest_ok=True)

    def test_disconnected_forest(self):
        e = np.array([[0, 1], [2, 3]])
        trace = boruvka_mst(5, e, np.array([1.0, 2.0]))
        assert len(trace.tree_edges) == 2

    def test_empty(self):
        trace = boruvka_mst(3, np.zeros((0, 2)), np.zeros(0))
        assert trace.phases == 0
        assert len(trace.tree_edges) == 0

    def test_validation(self):
        with pytest.raises(GraphError):
            boruvka_mst(2, np.array([[0, 1]]), np.zeros(0))
        with pytest.raises(GraphError):
            boruvka_mst(2, np.array([[0, 9]]), np.array([1.0]))

    @given(st.integers(0, 2**31 - 1), st.integers(2, 60), st.floats(0.1, 0.6))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_kruskal(self, seed, n, r):
        pts = uniform_points(n, seed=seed)
        g = build_rgg(pts, r)
        trace = boruvka_mst(g.n, g.edges, g.lengths)
        ke, _ = kruskal_mst(g.n, g.edges, g.lengths)
        assert same_tree(trace.tree_edges, ke)


class TestGHSCorrespondence:
    """GHS *is* distributed Borůvka: the phase schedules must agree."""

    @pytest.mark.parametrize("runner", [run_ghs, run_modified_ghs])
    def test_phase_count_matches(self, runner):
        """GHS = Borůvka phases + 1: the distributed version needs one
        final phase in which the surviving fragment searches, finds no
        outgoing edge, and halts — the centralized loop just stops."""
        pts = uniform_points(120, seed=4)
        res = runner(pts)
        g = build_rgg(pts, res.extras["radius"])
        trace = boruvka_mst(g.n, g.edges, g.lengths)
        assert res.phases == trace.phases + 1

    def test_phase_merge_schedule_matches(self):
        """The exact set of edges added in each GHS phase equals the
        centralized Borůvka phase — the sharpest protocol check we have.

        We recover GHS's per-phase edges by diffing tree_edges snapshots
        is not possible post-hoc, so instead rerun the driver phase by
        phase using the kernel directly."""
        from repro.algorithms.base import collect_tree_edges
        from repro.algorithms.ghs.driver import hello_round
        from repro.algorithms.ghs.node import GHSNode
        from repro.geometry.radius import connectivity_radius
        from repro.sim.kernel import SynchronousKernel

        n = 80
        pts = uniform_points(n, seed=5)
        r = connectivity_radius(n)
        k = SynchronousKernel(pts, max_radius=r)
        k.add_nodes(lambda i, ctx: GHSNode(i, ctx, use_tests=False, announce=True))
        k.start()
        hello_round(k, r)

        g = build_rgg(pts, r)
        trace = boruvka_mst(g.n, g.edges, g.lengths)

        prev: set[tuple[int, int]] = set()
        phase = 0
        while True:
            leaders = [
                nd.id for nd in k.nodes if nd.leader and not nd.halted and not nd.passive
            ]
            if not leaders:
                break
            phase += 1
            k.wake(leaders, "initiate", (phase,))
            k.run_until_quiescent()
            participants = [nd.id for nd in k.nodes if nd.cur_phase == phase]
            k.wake(participants, "find_moe", (phase,))
            k.run_until_quiescent()
            now = {tuple(e) for e in
                   collect_tree_edges((nd.id, nd.tree_edges) for nd in k.nodes)}
            added = now - prev
            prev = now
            if phase <= trace.phases:
                assert added == set(trace.phase_edges[phase - 1]), f"phase {phase}"
            else:
                assert added == set()  # the final halt-discovery phase
        assert phase == trace.phases + 1
