"""Scenario plane tests: plan schema, spec hashing, scheduler semantics,
and end-to-end determinism of dynamic (MAINT) runs.

The determinism pins are the acceptance criteria of the scenario plane:
the same churn schedule must produce *byte-identical* RunReports across
every kernel backend, across the serial and process batch executors, and
across a ResultStore warm restart — and identical trace streams, so
``trace-diff`` triages dynamic runs exactly like static ones.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.runspec import RunSpec, execute, execute_batch
from repro.scenario.mobility import PRESETS, mixed_plan
from repro.scenario.plan import ScenarioEvent, ScenarioPlan
from repro.scenario.scheduler import ScenarioScheduler
from repro.store import ResultStore
from repro.trace import trace
from repro.trace.diff import diff_traces, format_divergence


def small_plan(checkpoint: str = "repair") -> ScenarioPlan:
    return mixed_plan(24, seed=5, cycles=2, gap=30, checkpoint=checkpoint)


def maint_spec(**kw) -> RunSpec:
    kw.setdefault("scenario", small_plan())
    return RunSpec(algorithm="MAINT", n=24, seed=5, **kw)


# ---------------------------------------------------------------------------
# plan schema


class TestScenarioEvent:
    def test_defaults_and_rows(self):
        ev = ScenarioEvent(round=3, kind="crash", node=1, duration=4)
        assert ScenarioEvent.from_row(ev.to_row()) == ev
        ev = ScenarioEvent(round=0, kind="join", x=0.25, y=0.75)
        assert ScenarioEvent.from_row(ev.to_row()) == ev

    def test_kind_field_constraints(self):
        with pytest.raises(ExperimentError):
            ScenarioEvent(round=0, kind="teleport")
        with pytest.raises(ExperimentError):
            ScenarioEvent(round=0, kind="crash")  # needs a node
        with pytest.raises(ExperimentError):
            ScenarioEvent(round=0, kind="repair", node=2)  # must not name one
        with pytest.raises(ExperimentError):
            ScenarioEvent(round=0, kind="join", x=1.5, y=0.0)  # off the square
        with pytest.raises(ExperimentError):
            ScenarioEvent(round=0, kind="leave", node=1, duration=3)
        with pytest.raises(ExperimentError):
            ScenarioEvent(round=-1, kind="rebuild")

    def test_positions_only_for_spatial_kinds(self):
        with pytest.raises(ExperimentError):
            ScenarioEvent(round=0, kind="crash", node=0, x=0.5, y=0.5)


class TestScenarioPlan:
    def test_json_round_trip(self):
        plan = small_plan()
        back = ScenarioPlan.from_json(plan.to_json())
        assert back == plan
        payload = json.loads(plan.to_json())
        assert payload["kind"] == "scenario_plan"
        assert payload["schema_version"] == 1

    def test_rounds_must_be_non_decreasing(self):
        with pytest.raises(ExperimentError):
            ScenarioPlan(
                events=(
                    ScenarioEvent(round=5, kind="repair"),
                    ScenarioEvent(round=4, kind="rebuild"),
                )
            )

    def test_strict_from_dict(self):
        good = small_plan().to_dict()
        for breakage in (
            {"schema_version": 2},
            {"kind": "fault_plan"},
            {"extra": 1},
        ):
            with pytest.raises(ExperimentError):
                ScenarioPlan.from_dict({**good, **breakage})

    def test_null_and_counts(self):
        assert ScenarioPlan(events=()).is_null
        plan = ScenarioPlan(
            events=(
                ScenarioEvent(round=0, kind="join", x=0.5, y=0.5),
                ScenarioEvent(round=1, kind="crash", node=7),
                ScenarioEvent(round=1, kind="repair"),
            )
        )
        assert not plan.is_null
        assert plan.n_joins() == 1
        assert plan.max_node() == 7

    def test_presets_generate_valid_plans(self):
        for name, factory in PRESETS.items():
            plan = factory(20, seed=3)
            assert not plan.is_null, name
            assert ScenarioPlan.from_json(plan.to_json()) == plan


# ---------------------------------------------------------------------------
# spec integration: hashing, round trip, dispatch gate


class TestSpecIntegration:
    def test_scenario_free_payload_has_no_scenario_key(self):
        """Hash stability: specs without a plan serialize exactly as they
        did before the scenario plane existed."""
        assert "scenario" not in RunSpec(algorithm="MGHS", n=50).to_dict()

    def test_spec_round_trips_with_scenario(self):
        spec = maint_spec()
        back = RunSpec.from_json(spec.to_json())
        assert back == spec
        assert back.spec_hash() == spec.spec_hash()
        assert back.result_key() == spec.result_key()

    def test_scenario_feeds_the_hash(self):
        a = maint_spec(scenario=small_plan("repair"))
        b = maint_spec(scenario=small_plan("rebuild"))
        assert a.spec_hash() != b.spec_hash()

    def test_non_maint_algorithms_reject_plans(self):
        spec = RunSpec(algorithm="MGHS", n=50, scenario=small_plan())
        with pytest.raises(ExperimentError, match="scenario"):
            execute(spec)

    def test_null_plan_allowed_anywhere(self):
        spec = RunSpec(algorithm="MGHS", n=50, scenario=ScenarioPlan(events=()))
        assert execute(spec).result.name == "MGHS"

    def test_maint_rejects_fault_plan_crashes(self):
        from repro.sim.faults import FaultPlan

        spec = maint_spec(faults=FaultPlan(seed=1, crashes=((0, 2, None),)))
        with pytest.raises(ExperimentError, match="scenario events"):
            execute(spec)


# ---------------------------------------------------------------------------
# scheduler semantics


class TestScheduler:
    def _sched(self, n=16, seed=2, **kw):
        from repro.experiments.instances import get_points

        s = ScenarioScheduler(get_points(n, seed), **kw)
        s.build()
        return s

    def test_build_then_idle_checkpoint(self):
        s = self._sched()
        built = len(s.tree)
        clock = s.clock
        s.checkpoint("repair", at_round=clock + 5)
        assert s.clock >= clock + 5  # idle ticks reached the target round
        assert len(s.tree) == built

    def test_permanent_crash_and_leave_shrink_the_network(self):
        s = self._sched()
        s.crash(0)
        s.leave(1)
        s.checkpoint("repair")
        alive = set(int(g) for g in s.alive_ids())
        assert 0 not in alive and 1 not in alive
        assert not np.isin(s.tree, [0, 1]).any()

    def test_join_gets_fresh_global_id(self):
        s = self._sched(n=16)
        gid = s.join(0.5, 0.5)
        assert gid == 16
        s.checkpoint("repair")
        assert gid in set(int(g) for g in s.alive_ids())

    def test_move_relocates(self):
        s = self._sched()
        s.move(2, 0.9, 0.9)
        s.checkpoint("repair")
        assert tuple(s.positions[2]) == (0.9, 0.9)

    def test_transient_crash_recovers(self):
        """A transient window engages the reliable/recovery path and the
        node is back in the tree afterwards."""
        s = self._sched()
        s.crash(3, duration=4)
        s.checkpoint("repair")
        alive = set(int(g) for g in s.alive_ids())
        assert 3 in alive
        assert np.isin(s.tree, [3]).any() or len(alive) == 1

    def test_past_checkpoint_round_clamps_to_now(self):
        """Checkpoint rounds are minimums: a target in the past runs the
        cycle immediately rather than rewinding the clock."""
        s = self._sched()
        clock = s.clock
        s.checkpoint("repair", at_round=clock - 10)
        assert s.clock >= clock  # no time travel

    def test_dead_node_rejected(self):
        s = self._sched()
        s.crash(0)
        with pytest.raises(ExperimentError):
            s.move(0, 0.1, 0.1)


# ---------------------------------------------------------------------------
# end-to-end determinism (the acceptance criteria)


class TestDeterminism:
    def test_backends_byte_identical(self):
        base = maint_spec()
        reports = {}
        for kernel, planes in (("fast", True), ("fast", False),
                               ("legacy", False), ("turbo", True)):
            spec = base.with_(kernel=kernel, planes=planes)
            reports[(kernel, planes)] = execute(spec)
        ref = reports[("fast", True)].result
        for key, rep in reports.items():
            res = rep.result
            assert res.stats.energy_total == ref.stats.energy_total, key
            assert res.stats.messages_total == ref.stats.messages_total, key
            assert res.stats.rounds == ref.stats.rounds, key
            assert np.array_equal(res.tree_edges, ref.tree_edges), key
            assert res.extras["cycles"] == ref.extras["cycles"], key

    def test_traces_identical_across_backends(self):
        def traced(kernel, planes):
            spec = maint_spec(kernel=kernel, planes=planes)
            trace.reset()
            trace.enable()
            try:
                execute(spec)
                return trace.snapshot()
            finally:
                trace.disable()
                trace.reset()

        fast = traced("fast", True)
        assert any(e.get("ev") == "scenario/event" for e in fast)
        assert any(e.get("ev") == "repair/summary" for e in fast)
        for kernel, planes in (("legacy", False), ("turbo", True)):
            other = traced(kernel, planes)
            d = diff_traces(fast, other)
            assert d is None, format_divergence(d, "fast", kernel)

    def test_serial_and_process_batch_byte_identical(self):
        specs = [maint_spec(), maint_spec(scenario=small_plan("rebuild"))]
        serial = execute_batch(specs, backend="serial")
        procs = execute_batch(specs, backend="process", workers=2)
        for a, b in zip(serial, procs):
            assert a.to_json() == b.to_json()

    def test_store_warm_restart_byte_identical(self, tmp_path):
        spec = maint_spec()
        path = tmp_path / "results.sqlite"
        with ResultStore(path) as store:
            cold = execute(spec, store=store)
        with ResultStore(path) as store:  # fresh handle: a warm restart
            warm = execute(spec, store=store)
            assert store.stats()["hits"] >= 1
        assert warm.to_json() == cold.to_json()


# ---------------------------------------------------------------------------
# CLI surface


class TestCLI:
    def test_run_with_scenario_file(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "plan.json"
        path.write_text(small_plan().to_json())
        assert main(["run", "MAINT", "-n", "24", "--seed", "5",
                     "--scenario", str(path)]) == 0
        assert "MAINT" in capsys.readouterr().out

    def test_emit_spec_round_trips_scenario(self, capsys, tmp_path):
        from repro.cli import main

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(small_plan().to_json())
        spec_path = tmp_path / "spec.json"
        assert main(["run", "MAINT", "-n", "24", "--seed", "5",
                     "--scenario", str(plan_path),
                     "--emit-spec", str(spec_path)]) == 0
        spec = RunSpec.from_json(spec_path.read_text())
        assert spec.scenario == small_plan()
        capsys.readouterr()

    def test_scenarios_lists_presets(self, capsys):
        from repro.cli import main

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in PRESETS:
            assert name in out

    def test_scenarios_emit(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "churn.json"
        assert main(["scenarios", "--emit", str(path), "--preset", "mixed",
                     "-n", "24", "--seed", "5"]) == 0
        assert ScenarioPlan.from_json(path.read_text()) == mixed_plan(24, seed=5)
        capsys.readouterr()

    def test_algorithms_table_has_scenario_column(self, capsys):
        from repro.cli import main

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "scenarios" in out and "MAINT" in out


# ---------------------------------------------------------------------------
# serve surface: dynamic specs are ordinary submissions


class TestServe:
    def test_scenario_spec_served_and_cached(self, tmp_path):
        from tests.test_serve import run_served, wait_done

        spec_payload = json.loads(maint_spec().to_json())

        async def scenario(call, app):
            status, body = await call("POST", "/runs", spec_payload)
            assert status in (200, 201, 202), body
            job = json.loads(body)["id"]
            state = await wait_done(call, job)
            assert state["state"] == "done"
            status, body = await call("GET", f"/runs/{job}/report")
            assert status == 200
            report = json.loads(body)
            assert report["result"]["name"] == "MAINT"
            return report

        with ResultStore(tmp_path / "s.sqlite") as store:
            first = run_served(scenario, store=store)
        with ResultStore(tmp_path / "s.sqlite") as store:
            again = run_served(scenario, store=store)
        assert first == again
