"""Property-based end-to-end tests: random instances, full protocol runs.

These are the strongest correctness guards in the suite: for arbitrary
seeded point sets and radii, the distributed protocols must agree with the
centralized references edge-for-edge, and the energy ledger must stay
internally consistent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.connt import run_connt
from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_ghs, run_modified_ghs
from repro.geometry.points import uniform_points
from repro.mst.kruskal import kruskal_mst
from repro.mst.nnt import nearest_neighbor_tree
from repro.mst.quality import same_tree, verify_spanning_tree
from repro.rgg.build import build_rgg

seeds = st.integers(0, 2**31 - 1)
sizes = st.integers(2, 80)
radii = st.floats(0.05, 0.8)


def reference_msf(points, radius):
    g = build_rgg(points, radius)
    return kruskal_mst(g.n, g.edges, g.lengths)[0]


@settings(max_examples=20, deadline=None)
@given(seeds, sizes, radii)
def test_ghs_equals_reference_msf(seed, n, radius):
    """Original GHS at any radius = Kruskal on the RGG, edge for edge."""
    pts = uniform_points(n, seed=seed)
    res = run_ghs(pts, radius=radius)
    assert same_tree(res.tree_edges, reference_msf(pts, radius))


@settings(max_examples=20, deadline=None)
@given(seeds, sizes, radii)
def test_mghs_equals_reference_msf(seed, n, radius):
    pts = uniform_points(n, seed=seed)
    res = run_modified_ghs(pts, radius=radius)
    assert same_tree(res.tree_edges, reference_msf(pts, radius))


@settings(max_examples=20, deadline=None)
@given(seeds, st.integers(2, 120))
def test_eopt_equals_reference_msf(seed, n):
    pts = uniform_points(n, seed=seed)
    res = run_eopt(pts)
    assert same_tree(res.tree_edges, reference_msf(pts, res.extras["r2"]))


@settings(max_examples=20, deadline=None)
@given(seeds, st.integers(1, 100))
def test_connt_equals_centralized_nnt(seed, n):
    pts = uniform_points(n, seed=seed)
    res = run_connt(pts)
    nnt, _ = nearest_neighbor_tree(pts)
    assert same_tree(res.tree_edges, nnt)
    verify_spanning_tree(n, res.tree_edges)


@settings(max_examples=15, deadline=None)
@given(seeds, st.integers(2, 60))
def test_ledger_conservation(seed, n):
    """Total energy == sum over kinds == sum over stages == sum over nodes,
    for every algorithm."""
    pts = uniform_points(n, seed=seed)
    for res in (run_ghs(pts), run_eopt(pts), run_connt(pts)):
        s = res.stats
        assert s.energy_total == pytest.approx(sum(s.energy_by_kind.values()))
        assert s.energy_total == pytest.approx(sum(s.energy_by_stage.values()))
        assert s.energy_total == pytest.approx(float(s.energy_by_node.sum()))
        assert s.messages_total == sum(s.messages_by_kind.values())
        assert s.messages_total == sum(s.messages_by_stage.values())


@settings(max_examples=10, deadline=None)
@given(seeds, st.integers(2, 60))
def test_determinism(seed, n):
    """Same instance, same algorithm -> identical tree, energy, messages."""
    pts = uniform_points(n, seed=seed)
    a, b = run_eopt(pts), run_eopt(pts)
    assert same_tree(a.tree_edges, b.tree_edges)
    assert a.energy == b.energy
    assert a.messages == b.messages


@settings(max_examples=10, deadline=None)
@given(seeds, st.integers(4, 60))
def test_message_payloads_are_constant_size(seed, n):
    """The paper's O(log n)-bit message assumption: every payload field is
    a scalar (id / fid / coordinate / count), never a collection."""
    from repro.sim.kernel import SynchronousKernel

    recorded = []
    original = SynchronousKernel._send_unicast

    def spy(self, src, dst, kind, payload):
        recorded.append(payload)
        original(self, src, dst, kind, payload)

    SynchronousKernel._send_unicast = spy
    try:
        run_eopt(uniform_points(n, seed=seed))
    finally:
        SynchronousKernel._send_unicast = original
    for payload in recorded:
        assert len(payload) <= 3
        for field in payload:
            assert np.isscalar(field) or isinstance(field, (int, float))
