"""Tests for the synchronous simulation kernel, power model and ledger."""

from __future__ import annotations


import numpy as np
import pytest

from repro.errors import GeometryError, PowerLimitError, SimulationError
from repro.sim.energy import EnergyLedger
from repro.sim.kernel import SynchronousKernel
from repro.sim.message import Message
from repro.sim.node import NodeProcess
from repro.sim.power import PathLossModel


class Recorder(NodeProcess):
    """Test node that records everything it hears."""

    __slots__ = ("heard", "woken")

    def __init__(self, node_id, ctx):
        super().__init__(node_id, ctx)
        self.heard: list[tuple[str, int, float]] = []
        self.woken: list[str] = []

    def on_message(self, msg: Message, distance: float) -> None:
        self.heard.append((msg.kind, msg.src, distance))

    def on_wake(self, signal: str, payload: tuple = ()) -> None:
        self.woken.append(signal)


class Echoer(Recorder):
    """Replies PONG to every PING (used for round-counting tests)."""

    def on_message(self, msg: Message, distance: float) -> None:
        super().on_message(msg, distance)
        if msg.kind == "PING":
            self.ctx.unicast(msg.src, "PONG")


def make_kernel(points, radius=2.0, node_cls=Recorder, **kw):
    k = SynchronousKernel(np.asarray(points, dtype=float), max_radius=radius, **kw)
    k.add_nodes(node_cls)
    k.start()
    return k


LINE = [[0.0, 0.0], [0.3, 0.0], [0.8, 0.0]]


class TestPathLoss:
    def test_default_quadratic(self):
        m = PathLossModel()
        assert m.energy(0.5) == 0.25

    def test_general_exponent(self):
        m = PathLossModel(a=2.0, alpha=3.0)
        assert m.energy(0.5) == pytest.approx(2.0 * 0.125)

    def test_inverse(self):
        m = PathLossModel(a=3.0, alpha=4.0)
        assert m.range_for_energy(m.energy(0.37)) == pytest.approx(0.37)

    def test_validation(self):
        with pytest.raises(GeometryError):
            PathLossModel(a=0)
        with pytest.raises(GeometryError):
            PathLossModel(alpha=-1)
        with pytest.raises(GeometryError):
            PathLossModel().energy(-0.1)


class TestUnicast:
    def test_delivery_and_distance(self):
        k = make_kernel(LINE)
        k.nodes[0].ctx.unicast(1, "HI", 42)
        k.run_until_quiescent()
        assert k.nodes[1].heard == [("HI", 0, pytest.approx(0.3))]
        assert k.nodes[2].heard == []

    def test_energy_is_squared_distance(self):
        k = make_kernel(LINE)
        k.nodes[0].ctx.unicast(2, "HI")
        k.run_until_quiescent()
        assert k.stats().energy_total == pytest.approx(0.64)

    def test_power_limit_enforced(self):
        k = make_kernel(LINE, radius=0.5)
        with pytest.raises(PowerLimitError):
            k.nodes[0].ctx.unicast(2, "HI")  # distance 0.8 > 0.5

    def test_no_self_send(self):
        k = make_kernel(LINE)
        with pytest.raises(SimulationError):
            k.nodes[0].ctx.unicast(0, "HI")

    def test_unknown_target(self):
        k = make_kernel(LINE)
        with pytest.raises(SimulationError):
            k.nodes[0].ctx.unicast(9, "HI")

    def test_delivery_is_next_round(self):
        k = make_kernel(LINE, node_cls=Echoer)
        k.nodes[0].ctx.unicast(1, "PING")
        assert k.nodes[1].heard == []  # not yet delivered
        k.step()
        assert ("PING", 0, pytest.approx(0.3)) in k.nodes[1].heard
        assert k.nodes[0].heard == []  # PONG needs another round
        k.step()
        assert ("PONG", 1, pytest.approx(0.3)) in k.nodes[0].heard


class TestBroadcast:
    def test_reaches_only_within_radius(self):
        k = make_kernel(LINE)
        k.nodes[0].ctx.local_broadcast(0.5, "B")
        k.run_until_quiescent()
        assert len(k.nodes[1].heard) == 1
        assert k.nodes[2].heard == []

    def test_single_charge_regardless_of_receivers(self):
        k = make_kernel(LINE)
        k.nodes[0].ctx.local_broadcast(1.0, "B")
        k.run_until_quiescent()
        s = k.stats()
        assert s.messages_total == 1
        assert s.energy_total == pytest.approx(1.0)  # radius^2, not per receiver

    def test_sender_not_a_receiver(self):
        k = make_kernel(LINE)
        k.nodes[1].ctx.local_broadcast(1.0, "B")
        k.run_until_quiescent()
        assert k.nodes[1].heard == []
        assert len(k.nodes[0].heard) == 1 and len(k.nodes[2].heard) == 1

    def test_zero_radius_broadcast(self):
        k = make_kernel(LINE)
        k.nodes[0].ctx.local_broadcast(0.0, "B")
        k.run_until_quiescent()
        assert all(nd.heard == [] for nd in k.nodes)
        assert k.stats().energy_total == 0.0

    def test_power_limit(self):
        k = make_kernel(LINE, radius=0.4)
        with pytest.raises(PowerLimitError):
            k.nodes[0].ctx.local_broadcast(0.6, "B")

    def test_negative_radius(self):
        k = make_kernel(LINE)
        with pytest.raises(GeometryError):
            k.nodes[0].ctx.local_broadcast(-0.1, "B")


class TestKernelLifecycle:
    def test_start_requires_nodes(self):
        k = SynchronousKernel(np.array(LINE), max_radius=1.0)
        with pytest.raises(SimulationError):
            k.start()

    def test_double_start_rejected(self):
        k = make_kernel(LINE)
        with pytest.raises(SimulationError):
            k.start()

    def test_double_add_rejected(self):
        k = make_kernel(LINE)
        with pytest.raises(SimulationError):
            k.add_nodes(Recorder)

    def test_wake_costs_nothing(self):
        k = make_kernel(LINE)
        k.wake([0, 1], "tick")
        assert k.nodes[0].woken == ["tick"]
        assert k.stats().energy_total == 0.0
        assert k.stats().messages_total == 0

    def test_rounds_counted(self):
        k = make_kernel(LINE, node_cls=Echoer)
        k.nodes[0].ctx.unicast(1, "PING")
        k.run_until_quiescent()
        assert k.stats().rounds == 2  # PING round + PONG round

    def test_quiescence_guard(self):
        class Chatter(Recorder):
            def on_message(self, msg, distance):
                self.ctx.unicast(msg.src, "MORE")  # never settles

        k = make_kernel(LINE, node_cls=Chatter)
        k.nodes[0].ctx.unicast(1, "MORE")
        with pytest.raises(SimulationError):
            k.run_until_quiescent(max_rounds=50)

    def test_set_max_radius(self):
        k = make_kernel(LINE, radius=0.4)
        k.set_max_radius(1.0)
        k.nodes[0].ctx.unicast(2, "HI")  # now allowed
        k.run_until_quiescent()
        assert len(k.nodes[2].heard) == 1
        with pytest.raises(GeometryError):
            k.set_max_radius(0.0)

    def test_coordinates_guarded(self):
        k = make_kernel(LINE)
        with pytest.raises(SimulationError):
            _ = k.nodes[0].ctx.coords

    def test_coordinates_exposed_when_allowed(self):
        k = make_kernel(LINE, expose_coordinates=True)
        assert k.nodes[2].ctx.coords == (0.8, 0.0)

    def test_n_nodes_visible(self):
        k = make_kernel(LINE)
        assert k.nodes[0].ctx.n_nodes == 3

    def test_deterministic_delivery_order(self):
        """Messages to one node in one round arrive recipient-sorted and
        stable, so two identical runs behave identically."""
        def run():
            k = make_kernel(LINE)
            k.nodes[2].ctx.unicast(0, "A")
            k.nodes[1].ctx.unicast(0, "B")
            k.run_until_quiescent()
            return [h[0] for h in k.nodes[0].heard]

        assert run() == run()


class TestStats:
    def test_per_kind_breakdown(self):
        k = make_kernel(LINE)
        k.nodes[0].ctx.unicast(1, "A")
        k.nodes[0].ctx.unicast(1, "B")
        k.nodes[0].ctx.unicast(1, "B")
        k.run_until_quiescent()
        s = k.stats()
        assert s.messages_by_kind == {"A": 1, "B": 2}
        assert s.energy_by_kind["B"] == pytest.approx(2 * 0.09)

    def test_per_stage_breakdown(self):
        k = make_kernel(LINE)
        k.set_stage("one")
        k.nodes[0].ctx.unicast(1, "A")
        k.run_until_quiescent()
        k.set_stage("two")
        k.nodes[1].ctx.unicast(0, "A")
        k.run_until_quiescent()
        s = k.stats()
        assert set(s.energy_by_stage) == {"one", "two"}
        assert s.energy_by_stage["one"] == pytest.approx(0.09)

    def test_totals_equal_breakdown_sums(self):
        k = make_kernel(LINE)
        for _ in range(3):
            k.nodes[0].ctx.unicast(1, "X")
            k.nodes[1].ctx.local_broadcast(0.5, "Y")
        k.run_until_quiescent()
        s = k.stats()
        assert s.energy_total == pytest.approx(sum(s.energy_by_kind.values()))
        assert s.energy_total == pytest.approx(sum(s.energy_by_stage.values()))
        assert s.energy_total == pytest.approx(float(s.energy_by_node.sum()))
        assert s.messages_total == sum(s.messages_by_kind.values())

    def test_max_node_energy(self):
        k = make_kernel(LINE)
        k.nodes[0].ctx.unicast(2, "X")  # 0.64 on node 0
        k.nodes[1].ctx.unicast(0, "X")  # 0.09 on node 1
        k.run_until_quiescent()
        assert k.stats().max_node_energy == pytest.approx(0.64)

    def test_kind_table_sorted(self):
        ledger = EnergyLedger(2)
        ledger.charge(0, "small", "s", 0.1)
        ledger.charge(1, "big", "s", 5.0)
        rows = ledger.snapshot(0).kind_table()
        assert [r[0] for r in rows] == ["big", "small"]

    def test_custom_power_model(self):
        k = SynchronousKernel(
            np.array(LINE), max_radius=2.0, power=PathLossModel(a=2.0, alpha=4.0)
        )
        k.add_nodes(Recorder)
        k.start()
        k.nodes[0].ctx.unicast(1, "X")
        k.run_until_quiescent()
        assert k.stats().energy_total == pytest.approx(2.0 * 0.3**4)
