"""Tests for the fault plane: fate hashing, kernel integration, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.energy import SimStats
from repro.sim.faults import FaultPlan, RetryBuffer
from repro.sim.kernel import SynchronousKernel
from repro.sim.node import NodeProcess


def _line_points(n: int, spacing: float = 0.05) -> np.ndarray:
    return np.column_stack([np.arange(n) * spacing, np.zeros(n)])


class _Sender(NodeProcess):
    """Minimal node: wake 'u' unicasts PING to node 1, 'b' broadcasts."""

    def on_start(self) -> None:
        self.got: list[int] = []

    def on_wake(self, signal: str, payload: tuple = ()) -> None:
        if signal == "u":
            self.ctx.unicast(payload[0], "PING")
        elif signal == "b":
            self.ctx.local_broadcast(0.2, "BCAST", 1)

    def on_message(self, msg, distance: float) -> None:
        self.got.append(msg.src)


class TestFaultPlan:
    def test_null_plan(self):
        assert FaultPlan().is_null
        assert not FaultPlan(drop_rate=0.1).is_null
        assert not FaultPlan(crashes=((0, 0, None),)).is_null

    def test_validation(self):
        with pytest.raises(SimulationError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(SimulationError):
            FaultPlan(crashes=((0, 5, 5),))  # empty window
        with pytest.raises(SimulationError):
            FaultPlan(crashes=((0, 0, 10), (0, 20, 30)))  # two windows

    def test_null_plan_leaves_kernel_faultless(self):
        k = SynchronousKernel(_line_points(3), max_radius=0.2, faults=FaultPlan())
        assert k.faults is None


class TestFateHashing:
    """The scalar and vectorized fate paths must agree bit-for-bit."""

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(seed=1, drop_rate=0.3),
            FaultPlan(seed=2, drop_rate=0.1, dup_rate=0.25),
            FaultPlan(seed=3, drop_rate=0.2, link_loss={(0, 5): 0.5}),
            FaultPlan(seed=4, dup_rate=0.4, crashes=((3, 2, 9), (7, 0, None))),
        ],
    )
    def test_scalar_matches_vectorized(self, plan):
        fp = plan.build(16)
        rng = np.random.default_rng(0)
        src = rng.integers(0, 16, size=200)
        dst = rng.integers(0, 16, size=200)
        for rnd in (0, 3, 7, 100):
            for kind in ("PING", "HELLO"):
                times, crash, drop, dup = fp.times(
                    src, dst, fp.kind_hash(kind), rnd
                )
                for i in range(len(src)):
                    f = fp.fate(int(src[i]), int(dst[i]), kind, rnd)
                    expect = {-1: 0, 0: 0, 1: 1, 2: 2}[f]
                    assert times[i] == expect
                    assert crash[i] == (f == -1)
                    assert drop[i] == (f == 0)
                    assert dup[i] == (f == 2)

    def test_fate_is_evaluation_order_free(self):
        fp = FaultPlan(seed=9, drop_rate=0.5).build(8)
        a = fp.fate(2, 3, "PING", 17)
        fp.fate(5, 1, "PONG", 4)  # interleaved draw must not matter
        assert fp.fate(2, 3, "PING", 17) == a


class TestKernelIntegration:
    def _kernel(self, plan, n=3):
        k = SynchronousKernel(_line_points(n), max_radius=0.2, faults=plan)
        k.add_nodes(_Sender)
        k.start()
        return k

    def test_drop_charges_sender_but_not_receiver(self):
        # drop_rate=1: every delivery lost, but TX paid in full.
        k = self._kernel(FaultPlan(seed=0, drop_rate=1.0), n=2)
        k.wake([0], "u", (1,))
        k.run_until_quiescent()
        st = k.stats()
        assert k.nodes[1].got == []
        assert st.energy_total > 0
        assert st.messages_total == 1
        assert st.drops_by_kind == {"PING": 1}

    def test_duplicate_delivery(self):
        k = self._kernel(FaultPlan(seed=0, dup_rate=1.0), n=2)
        k.wake([0], "u", (1,))
        k.run_until_quiescent()
        assert k.nodes[1].got == [0, 0]
        assert k.stats().dup_deliveries_by_kind == {"PING": 1}

    def test_rx_cost_follows_delivered_copies(self):
        pts = _line_points(2)
        for plan, copies in [
            (FaultPlan(seed=0, drop_rate=1.0), 0),
            (FaultPlan(seed=0, dup_rate=1.0), 2),
            (None, 1),
        ]:
            k = SynchronousKernel(pts, max_radius=0.2, rx_cost=0.5, faults=plan)
            k.add_nodes(_Sender)
            k.start()
            k.wake([0], "u", (1,))
            k.run_until_quiescent()
            assert k.stats().rx_energy_total == pytest.approx(0.5 * copies)

    def test_crash_window_drops_and_restores(self):
        # Node 1 radio-off for rounds [0, 3): first send crash-drops,
        # a later one lands.
        k = self._kernel(FaultPlan(seed=0, crashes=((1, 0, 3),)), n=2)
        k.wake([0], "u", (1,))
        k.run_until_quiescent()
        assert k.nodes[1].got == []
        assert k.stats().crash_drops_by_kind == {"PING": 1}
        while k.rounds < 3:
            k.tick()
        k.wake([0], "u", (1,))
        k.run_until_quiescent()
        assert k.nodes[1].got == [0]

    def test_wake_skips_crashed_node(self):
        k = self._kernel(FaultPlan(seed=0, crashes=((0, 0, None),)), n=2)
        k.wake([0], "u", (1,))
        k.run_until_quiescent()
        assert k.stats().messages_total == 0

    def test_link_loss_composes_both_directions(self):
        plan = FaultPlan(seed=0, link_loss={(0, 1): 1.0})
        k = self._kernel(plan, n=3)
        k.wake([0], "u", (1,))
        k.wake([1], "u", (0,))
        k.wake([1], "u", (2,))
        k.run_until_quiescent()
        assert k.nodes[1].got == []  # 0 -> 1 dead
        assert k.nodes[0].got == []  # 1 -> 0 dead (symmetric)
        assert k.nodes[2].got == [1]  # unrelated link untouched

    def test_broadcast_fates_are_per_receiver(self):
        plan = FaultPlan(seed=0, link_loss={(0, 1): 1.0})
        k = self._kernel(plan, n=3)
        k.wake([0], "b")
        k.run_until_quiescent()
        assert k.nodes[1].got == []
        assert k.nodes[2].got == [0]

    def test_faults_off_stats_clean(self):
        k = self._kernel(None, n=2)
        k.wake([0], "u", (1,))
        k.run_until_quiescent()
        st = k.stats()
        assert st.drops_by_kind == {}
        assert st.crash_drops_by_kind == {}
        assert st.dup_deliveries_by_kind == {}
        assert st.dropped_total == 0
        assert st.fault_table() == []


class TestSimStatsDefaults:
    def test_default_rx_energy_by_node_is_empty_array(self):
        """Regression: hand-constructed stats used to default to None."""
        st = SimStats(
            energy_total=1.0,
            messages_total=2,
            rounds=3,
            energy_by_kind={},
            messages_by_kind={},
            energy_by_stage={},
            messages_by_stage={},
            energy_by_node=np.zeros(4),
        )
        assert isinstance(st.rx_energy_by_node, np.ndarray)
        assert st.rx_energy_by_node.size == 0
        assert st.rx_energy_by_node.copy() is not None  # no None guard needed
        assert st.rx_energy_total == 0.0


class TestRetryBuffer:
    class _Ctx:
        def __init__(self):
            self.sent = []

        def unicast(self, dst, kind, *payload):
            self.sent.append((dst, kind, payload))

    def test_send_ack_dedup_cycle(self):
        ctx = self._Ctx()
        rb = RetryBuffer(ctx)
        rb.send(5, "REPORT", (1, 2))
        assert ctx.sent == [(5, "REPORT", (0, 1, 2))]
        assert rb.accept(7, 0)
        assert not rb.accept(7, 0)  # duplicate rejected
        rb.on_ack(0)
        assert not rb.pending
        rb.on_ack(0)  # idempotent

    def test_tick_retransmits_with_backoff(self):
        ctx = self._Ctx()
        rb = RetryBuffer(ctx, backoff_cap=2)
        rb.send(3, "X", ())
        ctx.sent.clear()
        rb.tick()  # first timeout: immediate retransmit
        assert len(ctx.sent) == 1
        ctx.sent.clear()
        rb.tick()  # backoff 2: armed, no send yet
        assert ctx.sent == []
        rb.tick()
        assert len(ctx.sent) == 1

    def test_retry_exhaustion_raises(self):
        from repro.errors import ProtocolError

        ctx = self._Ctx()
        rb = RetryBuffer(ctx, max_retries=2, backoff_cap=1)
        rb.send(3, "X", ())
        rb.tick()
        rb.tick()
        with pytest.raises(ProtocolError):
            rb.tick()


class TestDeterminism:
    """Satellite: identical (instance seed, fault seed) => identical runs."""

    def test_mghs_identical_across_runs_and_planes(self):
        from repro.algorithms.ghs.runner import run_modified_ghs
        from repro.experiments.instances import get_points

        pts = get_points(200, 3)
        plan = FaultPlan(seed=1, drop_rate=0.15, dup_rate=0.05)
        a = run_modified_ghs(pts, faults=plan)
        b = run_modified_ghs(pts, faults=plan)
        c = run_modified_ghs(pts, faults=plan, planes=False)
        for other in (b, c):
            assert np.array_equal(
                np.asarray(a.tree_edges), np.asarray(other.tree_edges)
            )
            assert a.stats.drops_by_kind == other.stats.drops_by_kind
            assert (
                a.stats.dup_deliveries_by_kind
                == other.stats.dup_deliveries_by_kind
            )
        # The run-to-run pair (same delivery path) is fully bit-identical.
        assert a.stats.energy_total == b.stats.energy_total
        assert a.stats.messages_total == b.stats.messages_total
        assert a.stats.rounds == b.stats.rounds

    def test_different_fault_seed_differs(self):
        from repro.algorithms.ghs.runner import run_modified_ghs
        from repro.experiments.instances import get_points

        pts = get_points(200, 3)
        a = run_modified_ghs(pts, faults=FaultPlan(seed=1, drop_rate=0.15))
        b = run_modified_ghs(pts, faults=FaultPlan(seed=2, drop_rate=0.15))
        assert a.stats.drops_by_kind != b.stats.drops_by_kind
