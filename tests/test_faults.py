"""Tests for the fault plane: fate hashing, kernel integration, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.energy import SimStats
from repro.sim.faults import FaultPlan, RetryBuffer
from repro.sim.kernel import SynchronousKernel
from repro.sim.node import NodeProcess


def _line_points(n: int, spacing: float = 0.05) -> np.ndarray:
    return np.column_stack([np.arange(n) * spacing, np.zeros(n)])


class _Sender(NodeProcess):
    """Minimal node: wake 'u' unicasts PING to node 1, 'b' broadcasts."""

    def on_start(self) -> None:
        self.got: list[int] = []

    def on_wake(self, signal: str, payload: tuple = ()) -> None:
        if signal == "u":
            self.ctx.unicast(payload[0], "PING")
        elif signal == "b":
            self.ctx.local_broadcast(0.2, "BCAST", 1)

    def on_message(self, msg, distance: float) -> None:
        self.got.append(msg.src)


class TestFaultPlan:
    def test_null_plan(self):
        assert FaultPlan().is_null
        assert not FaultPlan(drop_rate=0.1).is_null
        assert not FaultPlan(crashes=((0, 0, None),)).is_null

    def test_validation(self):
        with pytest.raises(SimulationError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(SimulationError):
            FaultPlan(crashes=((0, 5, 5),))  # empty window
        with pytest.raises(SimulationError):
            FaultPlan(crashes=((0, 0, 10), (0, 20, 30)))  # two windows

    def test_null_plan_leaves_kernel_faultless(self):
        k = SynchronousKernel(_line_points(3), max_radius=0.2, faults=FaultPlan())
        assert k.faults is None


class TestFateHashing:
    """The scalar and vectorized fate paths must agree bit-for-bit."""

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(seed=1, drop_rate=0.3),
            FaultPlan(seed=2, drop_rate=0.1, dup_rate=0.25),
            FaultPlan(seed=3, drop_rate=0.2, link_loss={(0, 5): 0.5}),
            FaultPlan(seed=4, dup_rate=0.4, crashes=((3, 2, 9), (7, 0, None))),
        ],
    )
    def test_scalar_matches_vectorized(self, plan):
        fp = plan.build(16)
        rng = np.random.default_rng(0)
        src = rng.integers(0, 16, size=200)
        dst = rng.integers(0, 16, size=200)
        for rnd in (0, 3, 7, 100):
            for kind in ("PING", "HELLO"):
                times, crash, drop, dup = fp.times(
                    src, dst, fp.kind_hash(kind), rnd
                )
                for i in range(len(src)):
                    f = fp.fate(int(src[i]), int(dst[i]), kind, rnd)
                    expect = {-1: 0, 0: 0, 1: 1, 2: 2}[f]
                    assert times[i] == expect
                    assert crash[i] == (f == -1)
                    assert drop[i] == (f == 0)
                    assert dup[i] == (f == 2)

    def test_fate_is_evaluation_order_free(self):
        fp = FaultPlan(seed=9, drop_rate=0.5).build(8)
        a = fp.fate(2, 3, "PING", 17)
        fp.fate(5, 1, "PONG", 4)  # interleaved draw must not matter
        assert fp.fate(2, 3, "PING", 17) == a

    def _assert_bit_match(self, fp, src, dst, kinds, rnd):
        kh = np.array([fp.kind_hash(k) for k in kinds], dtype=np.uint64)
        times, crash, drop, dup = fp.times(src, dst, kh, rnd)
        for i in range(len(src)):
            f = fp.fate(int(src[i]), int(dst[i]), kinds[i], rnd)
            assert times[i] == {-1: 0, 0: 0, 1: 1, 2: 2}[f]
            assert crash[i] == (f == -1)
            assert drop[i] == (f == 0)
            assert dup[i] == (f == 2)

    def test_link_loss_without_global_drop(self):
        # drop_rate=0 leaves _drop_thr=0 but the link table non-empty; the
        # vectorized path must still take the per-link branch.
        fp = FaultPlan(seed=11, link_loss={(0, 5): 0.5, (2, 3): 1.0}).build(8)
        rng = np.random.default_rng(1)
        src = rng.integers(0, 8, size=300)
        dst = rng.integers(0, 8, size=300)
        for rnd in (0, 4, 50):
            self._assert_bit_match(fp, src, dst, ["PING"] * 300, rnd)

    def test_mixed_kindh_arrays(self):
        # Per-delivery kind hashes (a merged unicast round mixes kinds).
        fp = FaultPlan(
            seed=12, drop_rate=0.3, dup_rate=0.2, link_loss={(1, 2): 0.4}
        ).build(8)
        rng = np.random.default_rng(2)
        src = rng.integers(0, 8, size=240)
        dst = rng.integers(0, 8, size=240)
        pool = ["REPORT", "TEST", "JOIN", "MERGE"]
        kinds = [pool[i % len(pool)] for i in range(240)]
        for rnd in (0, 9, 77):
            self._assert_bit_match(fp, src, dst, kinds, rnd)

    def test_crash_window_boundary_rounds(self):
        # Fates at exactly start (first crashed round) and exactly end
        # (first live round again) — the half-open [start, end) contract.
        plan = FaultPlan(seed=13, drop_rate=0.2, crashes=((3, 5, 9),))
        fp = plan.build(8)
        src = np.zeros(8, dtype=np.int64)
        dst = np.full(8, 3, dtype=np.int64)
        for rnd in (4, 5, 8, 9):
            self._assert_bit_match(fp, src, dst, ["PING"] * 8, rnd)
        assert fp.fate(0, 3, "PING", 4) != -1
        assert fp.fate(0, 3, "PING", 5) == -1
        assert fp.fate(0, 3, "PING", 8) == -1
        assert fp.fate(0, 3, "PING", 9) != -1

    def test_p_one_threshold_quantization(self):
        # p=1.0 maps to the all-but-one-draw threshold (2^64 - 1): both
        # paths must quantize identically instead of overflowing uint64.
        for plan in (
            FaultPlan(seed=14, drop_rate=1.0),
            FaultPlan(seed=14, dup_rate=1.0),
            FaultPlan(seed=14, link_loss={(0, 1): 1.0}),
        ):
            fp = plan.build(4)
            rng = np.random.default_rng(3)
            src = rng.integers(0, 4, size=120)
            dst = rng.integers(0, 4, size=120)
            for rnd in (0, 6):
                self._assert_bit_match(fp, src, dst, ["PING"] * 120, rnd)


class TestCrashPredicateTypes:
    """The scalar crash predicates must return builtin bool, not np.bool_."""

    def test_crashed_and_gone_forever_return_builtin_bool(self):
        fp = FaultPlan(seed=0, crashes=((1, 2, 5), (2, 3, None))).build(4)
        for node, rnd in [(0, 0), (1, 2), (1, 5), (2, 3), (2, 100)]:
            c = fp.crashed(node, rnd)
            g = fp.gone_forever(node, rnd)
            assert type(c) is bool, (node, rnd, type(c))
            assert type(g) is bool, (node, rnd, type(g))
        # Regression: when the first conjunct was truthy, gone_forever
        # used to short-circuit into returning a raw np.bool_.
        assert type(fp.gone_forever(2, 10)) is bool
        assert fp.gone_forever(2, 10) is True
        assert fp.gone_forever(1, 2) is False  # transient window
        assert fp.gone_forever(2, 1) is False  # before the window opens


class TestKernelIntegration:
    def _kernel(self, plan, n=3):
        k = SynchronousKernel(_line_points(n), max_radius=0.2, faults=plan)
        k.add_nodes(_Sender)
        k.start()
        return k

    def test_drop_charges_sender_but_not_receiver(self):
        # drop_rate=1: every delivery lost, but TX paid in full.
        k = self._kernel(FaultPlan(seed=0, drop_rate=1.0), n=2)
        k.wake([0], "u", (1,))
        k.run_until_quiescent()
        st = k.stats()
        assert k.nodes[1].got == []
        assert st.energy_total > 0
        assert st.messages_total == 1
        assert st.drops_by_kind == {"PING": 1}

    def test_duplicate_delivery(self):
        k = self._kernel(FaultPlan(seed=0, dup_rate=1.0), n=2)
        k.wake([0], "u", (1,))
        k.run_until_quiescent()
        assert k.nodes[1].got == [0, 0]
        assert k.stats().dup_deliveries_by_kind == {"PING": 1}

    def test_rx_cost_follows_delivered_copies(self):
        pts = _line_points(2)
        for plan, copies in [
            (FaultPlan(seed=0, drop_rate=1.0), 0),
            (FaultPlan(seed=0, dup_rate=1.0), 2),
            (None, 1),
        ]:
            k = SynchronousKernel(pts, max_radius=0.2, rx_cost=0.5, faults=plan)
            k.add_nodes(_Sender)
            k.start()
            k.wake([0], "u", (1,))
            k.run_until_quiescent()
            assert k.stats().rx_energy_total == pytest.approx(0.5 * copies)

    def test_crash_window_drops_and_restores(self):
        # Node 1 radio-off for rounds [0, 3): first send crash-drops,
        # a later one lands.
        k = self._kernel(FaultPlan(seed=0, crashes=((1, 0, 3),)), n=2)
        k.wake([0], "u", (1,))
        k.run_until_quiescent()
        assert k.nodes[1].got == []
        assert k.stats().crash_drops_by_kind == {"PING": 1}
        while k.rounds < 3:
            k.tick()
        k.wake([0], "u", (1,))
        k.run_until_quiescent()
        assert k.nodes[1].got == [0]

    def test_wake_skips_crashed_node(self):
        k = self._kernel(FaultPlan(seed=0, crashes=((0, 0, None),)), n=2)
        k.wake([0], "u", (1,))
        k.run_until_quiescent()
        assert k.stats().messages_total == 0

    def test_link_loss_composes_both_directions(self):
        plan = FaultPlan(seed=0, link_loss={(0, 1): 1.0})
        k = self._kernel(plan, n=3)
        k.wake([0], "u", (1,))
        k.wake([1], "u", (0,))
        k.wake([1], "u", (2,))
        k.run_until_quiescent()
        assert k.nodes[1].got == []  # 0 -> 1 dead
        assert k.nodes[0].got == []  # 1 -> 0 dead (symmetric)
        assert k.nodes[2].got == [1]  # unrelated link untouched

    def test_broadcast_fates_are_per_receiver(self):
        plan = FaultPlan(seed=0, link_loss={(0, 1): 1.0})
        k = self._kernel(plan, n=3)
        k.wake([0], "b")
        k.run_until_quiescent()
        assert k.nodes[1].got == []
        assert k.nodes[2].got == [0]

    def test_faults_off_stats_clean(self):
        k = self._kernel(None, n=2)
        k.wake([0], "u", (1,))
        k.run_until_quiescent()
        st = k.stats()
        assert st.drops_by_kind == {}
        assert st.crash_drops_by_kind == {}
        assert st.dup_deliveries_by_kind == {}
        assert st.dropped_total == 0
        assert st.fault_table() == []


class TestSimStatsDefaults:
    def test_default_rx_energy_by_node_is_empty_array(self):
        """Regression: hand-constructed stats used to default to None."""
        st = SimStats(
            energy_total=1.0,
            messages_total=2,
            rounds=3,
            energy_by_kind={},
            messages_by_kind={},
            energy_by_stage={},
            messages_by_stage={},
            energy_by_node=np.zeros(4),
        )
        assert isinstance(st.rx_energy_by_node, np.ndarray)
        assert st.rx_energy_by_node.size == 0
        assert st.rx_energy_by_node.copy() is not None  # no None guard needed
        assert st.rx_energy_total == 0.0


class TestRetryBuffer:
    class _Ctx:
        def __init__(self):
            self.sent = []

        def unicast(self, dst, kind, *payload):
            self.sent.append((dst, kind, payload))

    def test_send_ack_dedup_cycle(self):
        ctx = self._Ctx()
        rb = RetryBuffer(ctx)
        rb.send(5, "REPORT", (1, 2))
        assert ctx.sent == [(5, "REPORT", (0, 1, 2))]
        assert rb.accept(7, 0)
        assert not rb.accept(7, 0)  # duplicate rejected
        rb.on_ack(5, 0)
        assert not rb.pending
        rb.on_ack(5, 0)  # idempotent

    def test_per_destination_sequence_streams(self):
        # Each destination gets its own seq stream starting at 0, so a
        # receiver can compact its dedup state as a contiguous prefix.
        ctx = self._Ctx()
        rb = RetryBuffer(ctx)
        rb.send(3, "A", ())
        rb.send(4, "B", ())
        rb.send(3, "C", ())
        assert ctx.sent == [(3, "A", (0,)), (4, "B", (0,)), (3, "C", (1,))]
        assert set(rb.pending) == {(3, 0), (4, 0), (3, 1)}
        rb.on_ack(3, 0)
        assert set(rb.pending) == {(4, 0), (3, 1)}
        # An ACK for dst 4's seq 0 must not alias dst 3's retired seq 0.
        rb.on_ack(4, 0)
        assert set(rb.pending) == {(3, 1)}

    def test_seen_compacts_contiguous_prefix(self):
        rb = RetryBuffer(self._Ctx())
        for seq in range(100):
            assert rb.accept(7, seq)
        # In-order delivery: everything folded into the watermark.
        assert rb.seen[7] == set()
        assert rb._seen_lo[7] == 100
        assert not rb.accept(7, 42)  # inside the prefix: duplicate
        # Out-of-order arrival parks until the gap fills.
        assert rb.accept(7, 102)
        assert rb.seen[7] == {102}
        assert rb.accept(7, 100)
        assert rb.seen[7] == {102}
        assert rb._seen_lo[7] == 101
        assert rb.accept(7, 101)  # gap filled: prefix folds through 102
        assert rb.seen[7] == set()
        assert rb._seen_lo[7] == 103

    def test_tick_survives_synchronous_ack_retirement(self):
        # A delivery path that ACKs synchronously retires pending entries
        # while tick() is iterating; the snapshot makes that safe.
        rb_box = []

        class _AckingCtx(self._Ctx):
            def unicast(self, dst, kind, *payload):
                super().unicast(dst, kind, *payload)
                # Retransmission delivered instantly: peer ACKs everything.
                if rb_box and kind != "ACK":
                    for key in list(rb_box[0].pending):
                        rb_box[0].on_ack(*key)

        ctx = _AckingCtx()
        rb = RetryBuffer(ctx)
        rb.send(1, "X", ())
        rb.send(2, "Y", ())
        rb_box.append(rb)  # arm synchronous ACKs for retransmissions only
        rb.tick()  # pre-fix: RuntimeError (dict changed size during iteration)
        assert not rb.pending

    def test_tick_retransmits_with_backoff(self):
        ctx = self._Ctx()
        rb = RetryBuffer(ctx, backoff_cap=2)
        rb.send(3, "X", ())
        ctx.sent.clear()
        rb.tick()  # first timeout: immediate retransmit
        assert len(ctx.sent) == 1
        ctx.sent.clear()
        rb.tick()  # backoff 2: armed, no send yet
        assert ctx.sent == []
        rb.tick()
        assert len(ctx.sent) == 1

    def test_retry_exhaustion_raises(self):
        from repro.errors import ProtocolError

        ctx = self._Ctx()
        rb = RetryBuffer(ctx, max_retries=2, backoff_cap=1)
        rb.send(3, "X", ())
        rb.tick()
        rb.tick()
        with pytest.raises(ProtocolError):
            rb.tick()


class TestDrainReliable:
    """drain_reliable terminates once only dead nodes hold traffic."""

    def _world(self, plan, n=3):
        from repro.fuzz.retry_world import ReliableEchoNode

        k = SynchronousKernel(_line_points(n), max_radius=0.12, faults=plan)
        k.add_nodes(ReliableEchoNode)
        k.start()
        return k

    def test_gone_forever_holder_does_not_hang(self):
        from repro.sim.faults import drain_reliable

        # Node 0 sends reliably to node 1, then crashes forever at round 1
        # — exactly when node 1's ACK would land.  The unacknowledged
        # entry can never drain; pre-fix this idled kernel.tick() for
        # max_iters iterations and raised ProtocolError.
        k = self._world(FaultPlan(seed=0, crashes=((0, 1, None),)))
        k.wake([0], "send", (1, 0))
        drain_reliable(k, k.nodes, max_iters=50)
        assert k.nodes[0].retry.pending  # tolerated: holder is gone forever
        assert k.nodes[1].delivered == [(0, 0)]  # the DATA itself landed

    def test_transient_holder_still_drains(self):
        from repro.sim.faults import drain_reliable

        # A finite window must still be waited out, not skipped.
        k = self._world(FaultPlan(seed=0, crashes=((0, 1, 6),)))
        k.wake([0], "send", (1, 0))
        drain_reliable(k, k.nodes, max_iters=100)
        assert not k.nodes[0].retry.pending
        assert k.nodes[1].delivered == [(0, 0)]


class TestDeterminism:
    """Satellite: identical (instance seed, fault seed) => identical runs."""

    def test_mghs_identical_across_runs_and_planes(self):
        from repro.algorithms.ghs.runner import run_modified_ghs
        from repro.experiments.instances import get_points

        pts = get_points(200, 3)
        plan = FaultPlan(seed=1, drop_rate=0.15, dup_rate=0.05)
        a = run_modified_ghs(pts, faults=plan)
        b = run_modified_ghs(pts, faults=plan)
        c = run_modified_ghs(pts, faults=plan, planes=False)
        for other in (b, c):
            assert np.array_equal(
                np.asarray(a.tree_edges), np.asarray(other.tree_edges)
            )
            assert a.stats.drops_by_kind == other.stats.drops_by_kind
            assert (
                a.stats.dup_deliveries_by_kind
                == other.stats.dup_deliveries_by_kind
            )
        # The run-to-run pair (same delivery path) is fully bit-identical.
        assert a.stats.energy_total == b.stats.energy_total
        assert a.stats.messages_total == b.stats.messages_total
        assert a.stats.rounds == b.stats.rounds

    def test_different_fault_seed_differs(self):
        from repro.algorithms.ghs.runner import run_modified_ghs
        from repro.experiments.instances import get_points

        pts = get_points(200, 3)
        a = run_modified_ghs(pts, faults=FaultPlan(seed=1, drop_rate=0.15))
        b = run_modified_ghs(pts, faults=FaultPlan(seed=2, drop_rate=0.15))
        assert a.stats.drops_by_kind != b.stats.drops_by_kind
