"""Flood-plane machinery: CSR helpers, cache delivery, MOE batch, gates.

Complements ``test_hotpath_equivalence.py`` (which pins end-to-end
bit-identity of the plane path against the legacy kernel) with unit
coverage of the moving parts: ``concat_ranges``, the reverse-edge
permutation, plane registration/delivery semantics (zero-recipient
sends, round accounting, flat-kernel refusal), the density gate at its
exact threshold, and the batched MOE search against a brute-force
oracle.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms.ghs.node import NO_EDGE, GHSNode
from repro.algorithms.ghs.plane import FloodCache
from repro.geometry.points import uniform_points
from repro.sim import LegacyKernel, NodeProcess, SynchronousKernel
from repro.sim.kernel import _NO_TABLE, concat_ranges


class _Recorder(NodeProcess):
    """Logs every delivery; never replies."""

    def __init__(self, node_id, ctx):
        super().__init__(node_id, ctx)
        self.heard = []

    def on_message(self, msg, distance):
        self.heard.append((msg.kind, msg.src, distance))

    def on_wake(self, signal, payload=()):
        if signal == "bcast":
            self.ctx.local_broadcast(payload[0], "PING", self.id)


# ---------------------------------------------------------------- helpers


def test_concat_ranges_matches_manual_aranges():
    starts = np.array([0, 5, 5, 9, 20], dtype=np.intp)
    ends = np.array([3, 5, 8, 9, 23], dtype=np.intp)  # two empty ranges
    expected = np.concatenate(
        [np.arange(s, e) for s, e in zip(starts, ends)]
    ).astype(np.intp)
    np.testing.assert_array_equal(concat_ranges(starts, ends), expected)


def test_concat_ranges_all_empty():
    starts = np.array([4, 7], dtype=np.intp)
    ends = np.array([4, 7], dtype=np.intp)
    out = concat_ranges(starts, ends)
    assert out.shape == (0,)
    assert out.dtype == np.intp


def test_reverse_permutation_is_involution_and_pairs_edges():
    pts = uniform_points(120, seed=2)
    kernel = SynchronousKernel(pts, max_radius=0.25)
    tbl = kernel.neighbor_table()
    assert tbl is not None
    rev = tbl.rev
    m = len(tbl.ids)
    src = np.repeat(np.arange(kernel.n), np.diff(tbl.indptr_arr))
    # Involution: reversing twice is the identity.
    np.testing.assert_array_equal(rev[rev], np.arange(m))
    # Pairing: entry j is (src[j] -> ids[j]); its reverse must be the
    # opposite ordered pair at the same distance.
    np.testing.assert_array_equal(src[rev], tbl.ids)
    np.testing.assert_array_equal(tbl.ids[rev], src)
    np.testing.assert_array_equal(tbl.dists[rev], tbl.dists)


# ------------------------------------------------------- plane registration


def _ghs_kernel(pts, r):
    kernel = SynchronousKernel(pts, max_radius=r)
    kernel.add_nodes(
        lambda i, ctx: GHSNode(i, ctx, use_tests=False, announce=True)
    )
    kernel.start()
    return kernel


def test_zero_recipient_plane_charges_but_adds_no_round():
    # One far-away corner node: its broadcast at a tiny radius reaches
    # nobody.  Legacy semantics: the send is charged, no delivery round
    # happens.
    pts = np.array([[0.0, 0.0], [0.01, 0.0], [0.9, 0.9]])
    kernel = _ghs_kernel(pts, 0.05)
    cache = FloodCache.ensure(kernel)
    assert cache is not None
    kernel.set_plane_handler(cache.on_plane)
    for nd in kernel.nodes:
        nd.attach_cache(cache)
    ok = kernel.broadcast_plane(
        np.array([2], dtype=np.intp), 0.05, "HELLO", np.array([2], dtype=np.int64)
    )
    assert ok
    assert kernel.in_flight == 0
    before = kernel.rounds
    kernel.run_until_quiescent()
    assert kernel.rounds == before
    stats = kernel.stats()
    assert stats.messages_by_kind == {"HELLO": 1}
    assert stats.energy_total == pytest.approx(0.05**2)


def test_plane_refused_without_handler_or_on_flat_kernels():
    pts = uniform_points(40, seed=0)
    kernel = _ghs_kernel(pts, 0.3)
    senders = np.arange(kernel.n, dtype=np.intp)
    fids = np.arange(kernel.n, dtype=np.int64)
    # No handler registered: refuse (and charge nothing).
    assert not kernel.broadcast_plane(senders, 0.3, "HELLO", fids)
    assert kernel.stats().messages_total == 0
    # Flat-delivery kernels never take the plane path, and registering a
    # handler on one is a caller bug that fails loudly (the handler
    # would silently never fire otherwise).
    from repro.errors import SimulationError

    legacy = LegacyKernel(pts, max_radius=0.3)
    legacy.add_nodes(
        lambda i, ctx: GHSNode(i, ctx, use_tests=False, announce=True)
    )
    legacy.start()
    assert FloodCache.ensure(legacy) is None
    with pytest.raises(SimulationError):
        legacy.set_plane_handler(lambda *a: None)
    assert not legacy.broadcast_plane(senders, 0.3, "HELLO", fids)


def test_plane_hello_fills_cache_like_messages():
    pts = uniform_points(80, seed=5)
    r = 0.2
    # Plane path.
    k1 = _ghs_kernel(pts, r)
    cache = FloodCache.ensure(k1)
    k1.set_plane_handler(cache.on_plane)
    for nd in k1.nodes:
        nd.attach_cache(cache)
        nd.radio_radius = r
    fids = np.fromiter((nd.fid for nd in k1.nodes), dtype=np.int64, count=k1.n)
    assert k1.broadcast_plane(np.arange(k1.n, dtype=np.intp), r, "HELLO", fids)
    k1.run_until_quiescent()
    # Per-message path.
    k2 = _ghs_kernel(pts, r)
    k2.wake(range(k2.n), "hello", (r,))
    k2.run_until_quiescent()
    for a, b in zip(k1.nodes, k2.nodes):
        assert dict(a.fragment_cache_items()) == dict(b.fragment_cache_items())
    s1, s2 = k1.stats(), k2.stats()
    assert s1.energy_total == s2.energy_total
    assert s1.messages_by_kind == s2.messages_by_kind
    assert s1.rounds == s2.rounds


# ------------------------------------------------------- density gate edge


def test_density_gate_threshold_paths_identical():
    # n=300: budget = max(65536, 128*300) = 65536 expected entries, so the
    # gate flips at r_eq = sqrt(65536 / (300*299*pi)).  A cap just under
    # builds the CSR table; just over falls back to per-call KD queries.
    n, budget = 300, 65536
    pts = uniform_points(n, seed=8)
    r_eq = math.sqrt(budget / (n * (n - 1) * math.pi))
    caps = {"table": r_eq * 0.999, "fallback": r_eq * 1.001}
    rb = 0.9 * caps["table"]  # same broadcast radius under both caps

    def drive(cap):
        kernel = SynchronousKernel(pts, max_radius=cap)
        kernel.add_nodes(lambda i, ctx: _Recorder(i, ctx))
        kernel.start()
        kernel.wake([0, 17, 101, 299], "bcast", (rb,))
        kernel.run_until_quiescent()
        return kernel, [nd.heard for nd in kernel.nodes], kernel.stats()

    k_tbl, logs_tbl, stats_tbl = drive(caps["table"])
    k_fb, logs_fb, stats_fb = drive(caps["fallback"])
    # The two runs really took different paths...
    assert k_tbl._nbr_table is not None and k_tbl._nbr_table is not _NO_TABLE
    assert k_fb._nbr_table is _NO_TABLE
    # ...and still agree on recipients, distances, energy, rounds.
    assert logs_tbl == logs_fb
    assert stats_tbl.energy_total == stats_fb.energy_total
    assert stats_tbl.messages_total == stats_fb.messages_total
    assert stats_tbl.rounds == stats_fb.rounds


# --------------------------------------------------------------- MOE batch


def _brute_moe(node, fid):
    """Oracle: scan the node's cache views exactly like the dict path."""
    best_nb, best_key = -1, NO_EDGE
    for j in range(len(node.nb_ids)):
        if not node.nb_known[j] or node.nb_fid[j] == fid:
            continue
        key = (float(node.nb_dist[j]), int(node.nb_lo[j]), int(node.nb_hi[j]))
        if key < best_key:
            best_key, best_nb = key, int(node.nb_ids[j])
    return best_nb, best_key


def test_moe_batch_matches_bruteforce():
    pts = uniform_points(150, seed=13)
    kernel = _ghs_kernel(pts, 0.25)
    cache = FloodCache.ensure(kernel)
    for nd in kernel.nodes:
        nd.attach_cache(cache)
    # Random-ish cache state: nodes spread over 7 fragments, a sprinkle
    # of unheard entries.
    rng = np.random.default_rng(99)
    cache.fid[:] = rng.integers(0, 7, size=len(cache.fid))
    cache.known[:] = rng.random(len(cache.known)) < 0.85
    node_ids = np.arange(kernel.n, dtype=np.intp)
    fids = rng.integers(0, 7, size=kernel.n).astype(np.int64)
    cand, kd, klo, khi = cache.moe_batch(node_ids, fids)
    for i in range(kernel.n):
        nb, key = _brute_moe(kernel.nodes[i], int(fids[i]))
        assert int(cand[i]) == nb
        if nb >= 0:
            assert (float(kd[i]), int(klo[i]), int(khi[i])) == key
        else:
            assert math.isinf(kd[i])


def test_moe_tie_broken_by_edge_ids():
    # Unit square: node 0 sees 1 and 2 at exactly distance 1.  The edge
    # key (1.0, 0, 1) < (1.0, 0, 2) must pick neighbour 1 in both the
    # batch and the per-node search.
    pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    kernel = _ghs_kernel(pts, 1.45)
    cache = FloodCache.ensure(kernel)
    for nd in kernel.nodes:
        nd.attach_cache(cache)
    cache.known[:] = True
    cache.fid[:] = 9  # everyone reports a foreign fragment
    cand, kd, klo, khi = cache.moe_batch(
        np.array([0], dtype=np.intp), np.array([0], dtype=np.int64)
    )
    assert (int(cand[0]), float(kd[0]), int(klo[0]), int(khi[0])) == (1, 1.0, 0, 1)
    nb, key = kernel.nodes[0]._search_cache()
    assert (nb, key) == (1, (1.0, 0, 1))
