"""Property-based tests for the application layer over random trees."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.applications.aggregation import simulate_aggregation
from repro.applications.broadcast import simulate_tree_broadcast
from repro.applications.maintenance import repair_after_failures
from repro.geometry.points import uniform_points
from repro.mst.delaunay import euclidean_mst
from repro.mst.nnt import nearest_neighbor_tree
from repro.mst.quality import tree_cost, verify_spanning_tree

seeds = st.integers(0, 2**31 - 1)


@settings(max_examples=15, deadline=None)
@given(seeds, st.integers(2, 60), st.sampled_from(["sum", "min", "max", "avg"]))
def test_aggregation_exact_over_any_tree(seed, n, op):
    """Aggregation over *any* spanning tree (here: the NNT, a skewed one)
    computes the exact aggregate, from any sink."""
    pts = uniform_points(n, seed=seed)
    tree, _ = nearest_neighbor_tree(pts)
    rng = np.random.default_rng(seed)
    vals = rng.normal(size=n)
    sink = int(rng.integers(0, n))
    result, stats = simulate_aggregation(pts, tree, sink, vals, op=op)
    expected = {"sum": vals.sum(), "min": vals.min(), "max": vals.max(),
                "avg": vals.mean()}[op]
    assert result == pytest.approx(expected)
    assert stats.messages_total == n - 1


@settings(max_examples=15, deadline=None)
@given(seeds, st.integers(1, 60))
def test_broadcast_covers_any_tree_from_any_source(seed, n):
    pts = uniform_points(n, seed=seed)
    tree, _ = euclidean_mst(pts)
    source = int(np.random.default_rng(seed).integers(0, n))
    reached, stats = simulate_tree_broadcast(pts, tree, source)
    assert reached == n


@settings(max_examples=10, deadline=None)
@given(seeds, st.integers(10, 80), st.integers(0, 5))
def test_repair_always_valid(seed, n, n_fail):
    """Arbitrary failures on an arbitrary built tree: the repair always
    yields an acyclic forest spanning each survivor component."""
    pts = uniform_points(n, seed=seed)
    tree, _ = euclidean_mst(pts)
    rng = np.random.default_rng(seed)
    n_fail = min(n_fail, n - 2)
    failed = rng.choice(n, size=n_fail, replace=False)
    rep = repair_after_failures(pts, tree, failed, radius=2.0)
    verify_spanning_tree(rep.n, rep.tree_edges, forest_ok=True)
    # Radius 2.0 covers the whole square: the forest must be a tree.
    assert len(rep.tree_edges) == rep.n - 1


@settings(max_examples=10, deadline=None)
@given(seeds, st.integers(5, 50))
def test_aggregation_energy_is_tree_energy(seed, n):
    """Aggregation energy over any tree == sum of d^2 over its edges —
    the identity connecting the application to L_MST."""
    pts = uniform_points(n, seed=seed)
    tree, _ = euclidean_mst(pts)
    _, stats = simulate_aggregation(pts, tree, 0, np.ones(n))
    assert stats.energy_total == pytest.approx(tree_cost(pts, tree, alpha=2.0))
