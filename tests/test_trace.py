"""Tests for the trace plane: registry, kernel/driver events, diff triage.

Two contracts are pinned here:

* **zero-cost when off** — with tracing disabled a run records nothing
  and every headline stat is bit-identical to a never-traced run (the
  hooks are one attribute check per round/phase);
* **path-invariance when on** — equivalent runs (legacy vs fast kernel,
  planes on vs off, faulted runs on either kernel) emit *identical*
  event streams, which is what makes :mod:`repro.trace.diff` a triage
  tool rather than a noise generator.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms.eopt import run_eopt
from repro.algorithms.ghs import run_modified_ghs
from repro.geometry.points import uniform_points
from repro.sim import LegacyKernel
from repro.sim.faults import FaultPlan
from repro.trace import TraceRegistry, load_jsonl, trace
from repro.trace.diff import Divergence, diff_files, diff_traces, format_divergence


@pytest.fixture(autouse=True)
def _clean_global_registry():
    trace.disable()
    trace.reset()
    yield
    trace.disable()
    trace.reset()


def _traced(runner, pts, **kwargs):
    """Run ``runner`` with tracing on; return (result, events)."""
    trace.reset()
    trace.enable()
    try:
        res = runner(pts, **kwargs)
    finally:
        events = trace.snapshot()
        trace.disable()
        trace.reset()
    return res, events


# ---------------------------------------------------------------------------
# registry unit behaviour


class TestRegistry:
    def test_emit_disabled_is_backstop_noop(self):
        reg = TraceRegistry()
        reg.emit("round", round=1)  # unguarded call site: must not leak
        assert reg.events == []

    def test_emit_assigns_sequential_indices(self):
        reg = TraceRegistry()
        reg.enable()
        reg.emit("a", x=1)
        reg.emit("b", y=2)
        assert [e["i"] for e in reg.events] == [0, 1]
        assert reg.events[0]["ev"] == "a" and reg.events[1]["y"] == 2

    def test_reset_keeps_switch(self):
        reg = TraceRegistry()
        reg.enable()
        reg.emit("a")
        reg.reset()
        assert reg.events == [] and reg.enabled

    def test_snapshot_is_deep_copy(self):
        reg = TraceRegistry()
        reg.enable()
        reg.emit("round", kinds={"HELLO": 3}, sizes=[[1, 2]])
        snap = reg.snapshot()
        snap[0]["kinds"]["HELLO"] = 99
        snap[0]["sizes"].append([5, 5])
        assert reg.events[0]["kinds"] == {"HELLO": 3}
        assert reg.events[0]["sizes"] == [[1, 2]]

    def test_merge_reindexes_and_stamps_source(self):
        reg = TraceRegistry()
        reg.enable()
        reg.emit("local")
        worker = [{"i": 0, "ev": "round", "dm": 4}]
        reg.merge(worker, source="MGHS:n50:s0")
        assert reg.events[1]["i"] == 1
        assert reg.events[1]["src"] == "MGHS:n50:s0"
        assert worker[0] == {"i": 0, "ev": "round", "dm": 4}  # input untouched

    def test_merge_works_while_disabled(self):
        # Merging is bookkeeping of data recorded elsewhere, not a new
        # measurement: a disabled parent still collects worker snapshots.
        reg = TraceRegistry()
        reg.merge([{"i": 0, "ev": "round"}])
        assert len(reg.events) == 1


# ---------------------------------------------------------------------------
# diff triage


class TestDiff:
    def test_identical_traces(self):
        a = [{"i": 0, "ev": "round", "dm": 1}]
        assert diff_traces(a, [dict(a[0])]) is None

    def test_key_order_and_tuple_list_canonicalization(self):
        a = [{"i": 0, "ev": "x", "sizes": [(1, 2)]}]
        b = [{"sizes": [[1, 2]], "ev": "x", "i": 0}]
        assert diff_traces(a, b) is None

    def test_first_divergence_with_context(self):
        a = [{"i": k, "ev": "round", "dm": k} for k in range(6)]
        b = [dict(e) for e in a]
        b[4]["dm"] = 99
        d = diff_traces(a, b, context=2)
        assert d is not None and d.index == 4
        assert d.left["dm"] == 4 and d.right["dm"] == 99
        assert [e["i"] for e in d.context] == [2, 3]
        text = format_divergence(d, "fast", "legacy")
        assert "diverge at event 4" in text and "fast" in text and "legacy" in text

    def test_shorter_trace_diverges_at_its_end(self):
        a = [{"i": 0, "ev": "round"}, {"i": 1, "ev": "round"}]
        d = diff_traces(a, a[:1])
        assert d is not None and d.index == 1 and d.right is None
        assert "<trace ended>" in format_divergence(d)

    def test_format_agreement(self):
        assert format_divergence(None) == "traces identical"

    def test_diff_files_roundtrip(self, tmp_path):
        reg = TraceRegistry()
        reg.enable()
        reg.emit("round", dm=3, de=0.5)
        pa = reg.export_jsonl(tmp_path / "a.jsonl")
        pb = reg.export_jsonl(tmp_path / "b.jsonl")
        assert diff_files(pa, pb) is None
        reg.emit("round", dm=1)
        pc = reg.export_jsonl(tmp_path / "c.jsonl")
        d = diff_files(pa, pc)
        assert isinstance(d, Divergence) and d.index == 1


# ---------------------------------------------------------------------------
# zero-cost-when-off contract


class TestTraceOff:
    def test_disabled_run_records_nothing(self):
        run_modified_ghs(uniform_points(120, seed=0))
        assert trace.events == []

    def test_stats_bit_identical_with_tracing(self):
        """Tracing on must not perturb a single headline stat — on the
        fast kernel, the legacy kernel, planes off, and a faulted run."""
        pts = uniform_points(200, seed=2)
        plan = FaultPlan(seed=3, drop_rate=0.05)
        for kwargs in (
            {},
            {"kernel_cls": LegacyKernel, "planes": False},
            {"planes": False},
            {"faults": plan},
            {"faults": plan, "kernel_cls": LegacyKernel, "planes": False},
        ):
            plain = run_modified_ghs(pts, **kwargs)
            traced, events = _traced(run_modified_ghs, pts, **kwargs)
            assert events, f"no events recorded for {kwargs!r}"
            assert traced.stats.energy_total == plain.stats.energy_total
            assert traced.stats.messages_total == plain.stats.messages_total
            assert traced.stats.rounds == plain.stats.rounds
            assert traced.stats.messages_by_kind == plain.stats.messages_by_kind
            assert traced.stats.drops_by_kind == plain.stats.drops_by_kind


# ---------------------------------------------------------------------------
# path-invariance: equivalent runs emit identical streams


class TestTraceEquivalence:
    def _assert_identical(self, a, b, label_a, label_b):
        d = diff_traces(a, b)
        assert d is None, format_divergence(d, label_a, label_b)

    @pytest.mark.parametrize("runner, n, seed", [
        (run_modified_ghs, 300, 0),
        (run_eopt, 300, 2),
    ])
    def test_legacy_vs_fast_vs_planes_off(self, runner, n, seed):
        pts = uniform_points(n, seed=seed)
        _, fast = _traced(runner, pts)
        _, legacy = _traced(runner, pts, kernel_cls=LegacyKernel, planes=False)
        _, planes_off = _traced(runner, pts, planes=False)
        self._assert_identical(fast, legacy, "fast", "legacy")
        self._assert_identical(fast, planes_off, "planes-on", "planes-off")

    def test_faulted_legacy_vs_fast(self):
        pts = uniform_points(250, seed=4)
        plan = FaultPlan(seed=7, drop_rate=0.08, dup_rate=0.02)
        _, fast = _traced(run_modified_ghs, pts, faults=plan)
        _, legacy = _traced(
            run_modified_ghs, pts, faults=plan,
            kernel_cls=LegacyKernel, planes=False,
        )
        self._assert_identical(fast, legacy, "fast", "legacy")
        # The fault plane must actually have shown up in the stream.
        assert any("drop" in e for e in fast if e["ev"] == "round")

    def test_perturbed_run_diverges_at_expected_first_event(self):
        """Sensitivity: a different radius constant must split the
        traces at the very first event that encodes the radius — the
        ``run_start`` emitted before any message moves."""
        pts = uniform_points(150, seed=1)
        _, a = _traced(run_modified_ghs, pts, radius_const=1.6)
        _, b = _traced(run_modified_ghs, pts, radius_const=1.7)
        d = diff_traces(a, b)
        assert d is not None and d.index == 0
        assert d.left["ev"] == "run_start" == d.right["ev"]
        assert d.left["radius"] != d.right["radius"]

    def test_fault_seed_perturbation_diverges_at_a_round_event(self):
        pts = uniform_points(200, seed=2)
        _, a = _traced(
            run_modified_ghs, pts, faults=FaultPlan(seed=1, drop_rate=0.1)
        )
        _, b = _traced(
            run_modified_ghs, pts, faults=FaultPlan(seed=2, drop_rate=0.1)
        )
        d = diff_traces(a, b)
        assert d is not None
        assert d.left is not None and d.left["ev"] == "round"


# ---------------------------------------------------------------------------
# event content


class TestEventContent:
    def test_round_deltas_sum_to_headline_stats(self):
        pts = uniform_points(200, seed=5)
        res, events = _traced(run_modified_ghs, pts)
        rounds = [e for e in events if e["ev"] == "round"]
        assert len(rounds) == res.stats.rounds
        assert sum(e["dm"] for e in rounds) == res.stats.messages_total
        assert sum(e["de"] for e in rounds) == pytest.approx(
            res.stats.energy_total, rel=1e-12
        )
        by_kind: dict[str, int] = {}
        for e in rounds:
            for k, v in e["kinds"].items():
                by_kind[k] = by_kind.get(k, 0) + v
        assert by_kind == res.stats.messages_by_kind

    def test_phase_events_bracket_rounds_and_shrink_fragments(self):
        pts = uniform_points(250, seed=6)
        res, events = _traced(run_modified_ghs, pts)
        starts = [e for e in events if e["ev"] == "phase_start"]
        ends = [e for e in events if e["ev"] == "phase_end"]
        assert len(starts) == len(ends) == res.phases
        frag_series = [e["fragments"] for e in ends]
        assert frag_series == sorted(frag_series, reverse=True)
        assert frag_series[-1] == res.extras["n_fragments_final"]
        for e in ends:
            # histogram consistency: sizes weighted by multiplicity
            # cover every node, entries sorted ascending.
            assert sum(s * c for s, c in e["sizes"]) == len(pts)
            assert [s for s, _ in e["sizes"]] == sorted(s for s, _ in e["sizes"])
            assert sum(c for _, c in e["sizes"]) == e["fragments"]

    def test_eopt_census_reproduces_thm52_shape(self):
        """Thm 5.2: step 1 ends with one giant fragment above the
        ``beta log^2 n`` bar and *only* small fragments below it."""
        pts = uniform_points(400, seed=3)
        res, events = _traced(run_eopt, pts)
        census = [e for e in events if e["ev"] == "census"]
        assert len(census) == 1
        ev = census[0]
        assert res.extras["giant_found"]
        threshold = ev["threshold"]
        sizes = ev["sizes"]
        giants = [(s, c) for s, c in sizes if s > threshold]
        small = [(s, c) for s, c in sizes if s <= threshold]
        assert giants == [(ev["giant_size"], 1)]
        assert all(c >= 1 for _, c in small)
        assert sum(s * c for s, c in sizes) == len(pts)
        # And the giant stays passive: step-2 phase_starts activate only
        # small fragments, so active counts stay far below step 1's.
        assert ev["giant_size"] > threshold >= max((s for s, _ in small), default=0)

    def test_stage_and_power_events(self):
        pts = uniform_points(200, seed=8)
        _, events = _traced(run_eopt, pts)
        stages = [e["stage"] for e in events if e["ev"] == "stage"]
        assert stages == ["step1:hello", "step1:ghs", "step2:size",
                          "step2:hello", "step2:ghs"]
        powers = [e for e in events if e["ev"] == "power"]
        assert len(powers) == 1  # the r1 -> r2 raise
        run_start = events[0]
        assert run_start["ev"] == "run_start"
        assert powers[0]["radius"] == run_start["r2"]


# ---------------------------------------------------------------------------
# JSONL round trip


class TestJsonl:
    def test_export_load_identity(self, tmp_path):
        pts = uniform_points(150, seed=9)
        trace.reset()
        trace.enable()
        try:
            run_modified_ghs(pts)
            path = trace.export_jsonl(tmp_path / "run.jsonl")
            events = trace.snapshot()
        finally:
            trace.disable()
        loaded = load_jsonl(path)
        # Strict ==, not just canonical-equal: every payload is JSON-native.
        assert loaded == events

    def test_jsonl_is_one_object_per_line(self, tmp_path):
        reg = TraceRegistry()
        reg.enable()
        reg.emit("a", x=1)
        reg.emit("b", y=[1, 2])
        text = reg.to_jsonl()
        lines = text.splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1]) == {"i": 1, "ev": "b", "y": [1, 2]}


# ---------------------------------------------------------------------------
# per-phase summary (experiments/report.py)


class TestPhaseSummary:
    def test_summary_accounts_every_message(self):
        from repro.experiments.report import (
            PHASE_SUMMARY_HEADERS,
            format_phase_summary,
            phase_summary_rows,
        )

        pts = uniform_points(200, seed=5)
        res, events = _traced(run_modified_ghs, pts)
        rows = phase_summary_rows(events)
        assert rows, "no summary rows from a traced run"
        assert sum(r[2] for r in rows) == res.stats.messages_total
        assert sum(r[3] for r in rows) == pytest.approx(
            res.stats.energy_total, rel=1e-12
        )
        phase_rows = [r for r in rows if r[0] != "-"]
        assert len(phase_rows) == res.phases
        text = format_phase_summary(events)
        for header in PHASE_SUMMARY_HEADERS:
            assert header in text

    def test_empty_trace_summary(self):
        from repro.experiments.report import format_phase_summary

        assert "no round or phase events" in format_phase_summary([])
