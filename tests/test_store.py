"""Tests for the content-addressed run cache: spec hashing, the sqlite
result store, engine memoization and the batch singleflight dedupe."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.errors import ExperimentError
from repro.runspec import RunReport, RunSpec, execute, execute_batch
from repro.store import DEFAULT_MAX_BYTES, ResultStore, default_store_path


def make_store(tmp_path, **kwargs) -> ResultStore:
    return ResultStore(tmp_path / "results.sqlite", **kwargs)


class TestSpecHash:
    def test_hash_is_deterministic_and_content_addressed(self):
        a = RunSpec(algorithm="GHS", n=100, seed=3)
        b = RunSpec(algorithm="GHS", n=100, seed=3)
        assert a.spec_hash() == b.spec_hash()
        assert len(a.spec_hash()) == 64
        assert a.spec_hash() != RunSpec(algorithm="GHS", n=100, seed=4).spec_hash()
        assert a.spec_hash() != RunSpec(algorithm="MGHS", n=100, seed=3).spec_hash()

    def test_instrumentation_changes_spec_hash_not_result_key(self):
        bare = RunSpec(algorithm="GHS", n=100)
        instrumented = bare.with_(perf=True, trace=True)
        assert bare.spec_hash() != instrumented.spec_hash()
        assert bare.result_key() == instrumented.result_key()
        assert bare.result_key() != bare.spec_hash()

    def test_result_key_still_sees_semantic_fields(self):
        base = RunSpec(algorithm="GHS", n=100)
        assert base.result_key() != base.with_(rx_cost=0.5).result_key()
        assert base.result_key() != base.with_(kernel="turbo").result_key()

    def test_report_payload_stamped_and_validated(self):
        spec = RunSpec(algorithm="Co-NNT", n=60)
        report = execute(spec)
        data = report.to_dict()
        assert data["spec_hash"] == spec.spec_hash()
        assert RunReport.from_dict(data).spec == spec
        data["spec_hash"] = "0" * 64
        with pytest.raises(ExperimentError, match="spec_hash stamp"):
            RunReport.from_dict(data)


class TestResultStore:
    def test_default_path_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_store_path() == tmp_path / "results.sqlite"

    def test_report_round_trip_is_byte_identical(self, tmp_path):
        spec = RunSpec(algorithm="GHS", n=80, seed=1)
        report = execute(spec)
        with make_store(tmp_path) as store:
            store.put_report(report)
            hit = store.get_report(spec)
        assert hit is not None
        assert hit.to_json() == report.to_json()

    def test_memoized_execute_skips_recompute(self, tmp_path):
        spec = RunSpec(algorithm="MGHS", n=80, seed=2)
        with make_store(tmp_path) as store:
            first = execute(spec, store=store)
            assert store.stats()["misses"] == 1
            again = execute(spec, store=store)
            assert store.stats()["hits"] == 1
            assert again.to_json() == first.to_json()

    def test_instrumented_and_bare_share_result_entry(self, tmp_path):
        bare = RunSpec(algorithm="GHS", n=70)
        instrumented = bare.with_(perf=True)
        with make_store(tmp_path) as store:
            report = execute(instrumented, store=store)
            assert report.perf is not None
            # The bare spec hits the instrumented entry, snapshot stripped.
            hit = store.get_report(bare)
            assert hit is not None
            assert hit.perf is None
            assert hit.result.stats.energy_total == report.result.stats.energy_total

    def test_missing_instrumentation_is_a_miss(self, tmp_path):
        bare = RunSpec(algorithm="GHS", n=70)
        with make_store(tmp_path) as store:
            execute(bare, store=store)
            # Asking for perf the stored payload never recorded: recompute.
            assert store.get_report(bare.with_(perf=True)) is None
            report = execute(bare.with_(perf=True), store=store)
            assert report.perf is not None
            # The overwrite upgraded the shared entry for both callers.
            assert store.get_report(bare.with_(perf=True)) is not None
            assert store.get_report(bare) is not None

    def test_corrupted_database_recovers_cold(self, tmp_path):
        path = tmp_path / "results.sqlite"
        path.write_bytes(b"this is definitely not a sqlite file" * 100)
        spec = RunSpec(algorithm="Co-NNT", n=50)
        store = ResultStore(path)
        assert store.get_report(spec) is None  # cold, not crashed
        report = execute(spec, store=store)
        assert store.get_report(spec).to_json() == report.to_json()
        store.close()

    def test_truncated_database_mid_life_never_crashes(self, tmp_path):
        path = tmp_path / "results.sqlite"
        spec = RunSpec(algorithm="Co-NNT", n=50)
        store = ResultStore(path)
        execute(spec, store=store)
        store.close()
        path.write_bytes(path.read_bytes()[:100])  # truncate the file
        store = ResultStore(path)
        # Either recovered cold or degraded inert — both answer None and
        # accept a fresh run without raising.
        assert store.get_report(spec) is None
        execute(spec, store=store)
        store.close()

    def test_unparseable_payload_dropped_as_miss(self, tmp_path):
        spec = RunSpec(algorithm="GHS", n=60)
        with make_store(tmp_path) as store:
            store.put(spec.result_key(), "{not json", algorithm="GHS", n=60)
            assert store.get_report(spec) is None
            assert store.stats()["entries"] == 0  # corrupt row dropped

    def test_prune_respects_byte_bound(self, tmp_path):
        with make_store(tmp_path, max_bytes=DEFAULT_MAX_BYTES) as store:
            payload = "x" * 1000
            for i in range(10):
                store.put(f"key{i}", payload)
            assert store.stats()["entries"] == 10
            # Touch the oldest entries so LRU order != insert order.
            store.get("key0")
            store.get("key1")
            store.prune(max_bytes=3000)
            stats = store.stats()
            assert stats["total_bytes"] <= 3000
            assert stats["entries"] == 3
            # The touched rows survived; the stale middle ones went.
            assert store.get("key0") is not None
            assert store.get("key1") is not None
            assert store.get("key5") is None

    def test_put_enforces_bound_inline(self, tmp_path):
        with make_store(tmp_path, max_bytes=2500) as store:
            for i in range(10):
                store.put(f"key{i}", "x" * 1000)
            assert store.stats()["total_bytes"] <= 2500

    def test_clear_drops_entries_keeps_counters(self, tmp_path):
        spec = RunSpec(algorithm="GHS", n=60)
        with make_store(tmp_path) as store:
            execute(spec, store=store)
            execute(spec, store=store)
            assert store.clear() == 1
            stats = store.stats()
            assert stats["entries"] == 0
            assert stats["hits"] == 1 and stats["misses"] == 1

    def test_counters_persist_across_reopen(self, tmp_path):
        path = tmp_path / "results.sqlite"
        spec = RunSpec(algorithm="GHS", n=60)
        with ResultStore(path) as store:
            execute(spec, store=store)
            execute(spec, store=store)
        with ResultStore(path) as store:
            stats = store.stats()
            assert stats["hits"] == 1 and stats["misses"] == 1
            assert stats["entries"] == 1

    def test_stale_payload_schema_dropped(self, tmp_path):
        spec = RunSpec(algorithm="GHS", n=60)
        with make_store(tmp_path) as store:
            report = execute(spec, store=store)
            with sqlite3.connect(store.path) as conn:
                conn.execute("UPDATE results SET schema_version = 999")
            assert store.get_report(spec) is None
            assert store.stats()["entries"] == 0
            assert report is not None


class TestBatchCaching:
    def _counting_execute(self, monkeypatch):
        from repro.runspec import engine as engine_mod

        calls = []
        real = engine_mod.execute

        def counted(spec, **kwargs):
            calls.append(spec)
            return real(spec, **kwargs)

        monkeypatch.setattr(engine_mod, "execute", counted)
        return calls

    def test_in_batch_dedupe_preserves_spec_order(self, monkeypatch):
        calls = self._counting_execute(monkeypatch)
        a = RunSpec(algorithm="GHS", n=60, seed=0)
        b = RunSpec(algorithm="Co-NNT", n=60, seed=0)
        specs = [a, b, a, a, b]
        reports = execute_batch(specs, backend="serial")
        assert len(calls) == 2  # singleflight: one compute per distinct spec
        assert [r.spec for r in reports] == specs
        assert reports[0].to_json() == reports[2].to_json() == reports[3].to_json()
        assert reports[1].to_json() == reports[4].to_json()

    def test_dedupe_keys_on_full_spec_hash(self, monkeypatch):
        calls = self._counting_execute(monkeypatch)
        bare = RunSpec(algorithm="GHS", n=60, seed=0)
        instrumented = bare.with_(perf=True)
        reports = execute_batch([bare, instrumented], backend="serial")
        assert len(calls) == 2  # same result key, but NOT the same run
        assert reports[0].perf is None
        assert reports[1].perf is not None

    def test_store_consulted_before_fanout(self, tmp_path, monkeypatch):
        spec = RunSpec(algorithm="GHS", n=60, seed=1)
        with make_store(tmp_path) as store:
            warmed = execute(spec, store=store)
            calls = self._counting_execute(monkeypatch)
            reports = execute_batch([spec, spec], backend="serial", store=store)
            assert calls == []  # answered from the store, nothing ran
            assert [r.to_json() for r in reports] == [warmed.to_json()] * 2

    def test_batch_misses_written_back(self, tmp_path):
        specs = [RunSpec(algorithm="GHS", n=60, seed=s) for s in (0, 1)]
        with make_store(tmp_path) as store:
            first = execute_batch(specs, backend="serial", store=store)
            assert store.stats()["entries"] == 2
            second = execute_batch(specs, backend="serial", store=store)
            assert [r.to_json() for r in first] == [r.to_json() for r in second]
            assert store.stats()["hits"] == 2

    def test_cached_process_batch_identical_to_fresh(self, tmp_path):
        from repro.runspec import shutdown

        specs = [
            RunSpec(algorithm=alg, n=80, seed=s)
            for alg in ("GHS", "MGHS")
            for s in (0, 1)
        ]
        with make_store(tmp_path) as store:
            shutdown()
            fresh = execute_batch(specs, backend="process", workers=2, store=store)
            warm = execute_batch(specs, backend="process", workers=2, store=store)
            shutdown()
            for a, b in zip(fresh, warm):
                assert a.to_json() == b.to_json()
            stats = store.stats()
            assert stats["hits"] == 4 and stats["misses"] == 4

    def test_degraded_store_never_fails_the_run(self, tmp_path, monkeypatch):
        spec = RunSpec(algorithm="GHS", n=60)
        store = make_store(tmp_path)
        # Make the database directory unwritable-after-close unrecoverable:
        # close the connection and point the store at an unopenable path.
        store.close()
        store.path = str(tmp_path)  # a directory: sqlite cannot open it
        report = execute(spec, store=store)
        assert report.result.stats.energy_total > 0
        assert store.stats().get("degraded", True) or store.stats()["entries"] == 0


class TestStorePayloadIsCanonicalJson:
    def test_stored_payload_equals_fresh_serialization(self, tmp_path):
        """The cache must hand back byte-for-byte what the engine would
        have produced — pinned here and by the bench golden gate."""
        spec = RunSpec(algorithm="MGHS", n=90, seed=5, kernel="turbo")
        fresh = execute(spec)
        with make_store(tmp_path) as store:
            store.put_report(fresh)
            payload = store.get(spec.result_key())
        assert payload == fresh.to_json(indent=None)
        assert json.loads(payload)["spec_hash"] == spec.spec_hash()


class _TouchOnDelete:
    """Connection proxy: just before the prune's DELETE reaches
    ``victim``, bump the row's recency — the exact interleave a
    concurrent ``get_report`` produces between the prune's LRU
    snapshot and its eviction."""

    def __init__(self, conn, victim: str):
        self._conn = conn
        self.victim = victim
        self.fired = False

    def execute(self, sql, params=()):
        if (
            not self.fired
            and sql.lstrip().startswith("DELETE")
            and params
            and params[0] == self.victim
        ):
            self.fired = True
            self._conn.execute(
                "UPDATE results SET last_used = last_used + 1000 WHERE key = ?",
                (self.victim,),
            )
        return self._conn.execute(sql, params)


class TestStoreConcurrency:
    """The serve layer shares one store across worker threads; these
    pin the fixes that make that safe (busy timeout + instance lock +
    ``check_same_thread=False`` + conditional prune deletes)."""

    def test_two_thread_hammer_no_locked_errors(self, tmp_path):
        """Before the fix this *silently lost every row*: the
        cross-thread ``sqlite3.ProgrammingError`` (a subclass of
        ``sqlite3.Error``) tripped the corruption ladder, which deleted
        the database files and degraded the store to inert."""
        import threading

        store = make_store(tmp_path)
        errors: list[BaseException] = []

        def worker(tid: int) -> None:
            try:
                for i in range(50):
                    key = f"k-{tid}-{i}"
                    store.put(key, "x" * 100, algorithm="GHS", n=10)
                    assert store.get(key) is not None
            except BaseException as exc:  # noqa: BLE001 - collect for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stats = store.stats()
        assert stats["entries"] == 100
        assert not stats.get("degraded")
        store.close()

    def test_hammer_with_report_round_trips(self, tmp_path):
        """Same hammer through the report API: concurrent put_report /
        get_report must stay byte-identical and lock-free."""
        import threading

        store = make_store(tmp_path)
        specs = [RunSpec(algorithm="GHS", n=40 + i) for i in range(4)]
        reports = [execute(s) for s in specs]
        errors: list[BaseException] = []

        def worker() -> None:
            try:
                for _ in range(15):
                    for spec, report in zip(specs, reports):
                        store.put_report(report)
                        got = store.get_report(spec)
                        assert got is not None
                        assert got.to_json() == report.to_json()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert store.stats()["entries"] == len(specs)
        store.close()

    def test_prune_spares_concurrently_touched_row(self, tmp_path):
        """A row the LRU snapshot marked for eviction but a reader
        touched in between must survive the prune: the DELETE is
        conditional on the snapshot's ``(last_used, seq)``, and the
        loop re-snapshots to evict the next genuine victim instead."""
        with make_store(tmp_path) as store:
            for i in range(6):
                store.put(f"key{i}", "x" * 1000)
            proxy = _TouchOnDelete(store._conn, victim="key0")
            evicted = ResultStore._prune_locked(proxy, 3000)
            store._conn.commit()
            assert proxy.fired
            # The touched row survived; the next-oldest went instead.
            assert store.get("key0") is not None
            assert store.get("key1") is None
            assert evicted == 3
            stats = store.stats()
            assert stats["total_bytes"] <= 3000
            assert stats["entries"] == 3

    def test_prune_stops_when_every_candidate_is_touched(self, tmp_path):
        """If *every* candidate gets refreshed mid-prune, the loop must
        bail out instead of livelocking — pruning is advisory."""

        class _TouchAll(_TouchOnDelete):
            def execute(self, sql, params=()):
                if sql.lstrip().startswith("DELETE") and params:
                    self._conn.execute(
                        "UPDATE results SET last_used = last_used + 1000"
                        " WHERE key = ?",
                        (params[0],),
                    )
                return self._conn.execute(sql, params)

        with make_store(tmp_path) as store:
            for i in range(4):
                store.put(f"key{i}", "x" * 1000)
            evicted = ResultStore._prune_locked(
                _TouchAll(store._conn, victim=""), 1000
            )
            store._conn.commit()
            assert evicted == 0
            assert store.stats()["entries"] == 4
